//! Criterion bench for ablation A1/A2: runtime of the three solvers —
//! LP + randomized rounding (symmetric and full forms), greedy local
//! search, and the exact branch-and-bound — on the same detectability
//! table.

use ced_core::exact::exact_minimum_cover;
use ced_core::greedy::{greedy_cover, GreedyOptions};
use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_core::relax::LpForm;
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_fsm::suite::paper_table1_scaled;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_solvers(c: &mut Criterion) {
    let options = PipelineOptions::paper_defaults();
    let spec = paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == "s27")
        .expect("suite circuit");
    let fsm = spec.build();
    let circuit = synthesize_circuit(&fsm, &options).expect("synthesizable");
    let faults = fault_list(&circuit, &options);
    let (table, _) = DetectabilityTable::build(
        &circuit,
        &faults,
        &DetectOptions {
            latency: 2,
            ..DetectOptions::default()
        },
    )
    .expect("within cap");

    let mut group = c.benchmark_group("solvers");
    group.sample_size(10);

    group.bench_function("lp_rr_symmetric", |b| {
        b.iter(|| {
            black_box(
                minimize_parity_functions(
                    &table,
                    &CedOptions {
                        iterations: 200,
                        ..CedOptions::default()
                    },
                )
                .q,
            )
        })
    });

    group.bench_function("lp_rr_full", |b| {
        b.iter(|| {
            black_box(
                minimize_parity_functions(
                    &table,
                    &CedOptions {
                        iterations: 200,
                        form: LpForm::Full,
                        ..CedOptions::default()
                    },
                )
                .q,
            )
        })
    });

    group.bench_function("greedy", |b| {
        b.iter(|| black_box(greedy_cover(&table, &GreedyOptions::default()).len()))
    });

    if table.num_bits() <= 12 {
        group.bench_function("exact", |b| {
            b.iter(|| black_box(exact_minimum_cover(&table).map(|c| c.len())))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_solvers);
criterion_main!(benches);
