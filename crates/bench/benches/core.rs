//! Analytic-core harness: measures the search phase (LP + randomized
//! rounding + verification — the part the bit-packed sparse engine
//! accelerates) on the scaled paper machines and one large generated
//! machine (the `ced gen` scaling workload), under both engines. Every
//! dense `SearchOutcome` is asserted equal to its sparse twin before
//! any number is reported — the harness doubles as a differential test
//! at benchmark scale. Emits one `ced-core-bench/1` JSON line; the
//! committed `BENCH_core.json` is the full run. The interesting number
//! is `speedup` on the generated machine, where packed 64-wide cover
//! checks and the case kernel dominate.
//!
//! Usage: `cargo bench --bench core [-- --quick]` (`--quick` shrinks
//! the generated machine and the repeat count, not the matrix).

use ced_bench::{git_rev, trajectory_row};
use ced_core::pipeline::{synthesize_circuit, PipelineOptions};
use ced_core::search::{minimize_parity_functions, CedOptions, SearchOutcome, SolverEngine};
use ced_fsm::generator::{generate, scaled_workload};
use ced_fsm::machine::Fsm;
use ced_runtime::Json;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::fault::collapsed_faults;
use std::time::Instant;

const LATENCY: usize = 2;

fn corpus(quick: bool) -> Vec<(String, Fsm)> {
    let mut machines: Vec<(String, Fsm)> = ced_fsm::suite::paper_table1_scaled()
        .into_iter()
        .filter(|s| ["s27", "tav", "dk512"].contains(&s.name))
        .map(|s| (s.name.to_string(), s.build()))
        .collect();
    let scale = if quick { 3 } else { 10 };
    let gen = generate(&scaled_workload(scale, 3));
    machines.push((format!("gen{scale}x"), gen));
    machines
}

/// Best-of-`repeats` wall-clock of one engine's search, plus the
/// outcome of the last run (identical across runs — the search is a
/// pure function of table, options and seed).
fn time_search(
    table: &DetectabilityTable,
    engine: SolverEngine,
    repeats: usize,
) -> (SearchOutcome, f64) {
    let options = CedOptions {
        engine,
        ..CedOptions::default()
    };
    let mut best = f64::INFINITY;
    let mut outcome = None;
    for _ in 0..repeats {
        let start = Instant::now();
        let result = minimize_parity_functions(table, &options);
        best = best.min(start.elapsed().as_secs_f64() * 1e3);
        outcome = Some(result);
    }
    (outcome.expect("at least one repeat"), best)
}

struct Row {
    machine: String,
    n_states: usize,
    faults: usize,
    cases: usize,
    tensor_ms: f64,
    sparse_ms: f64,
    dense_ms: f64,
    q: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let repeats = if quick { 1 } else { 3 };
    let rev = git_rev();
    let pipeline = PipelineOptions::paper_defaults();

    let mut rows = Vec::new();
    for (name, fsm) in corpus(quick) {
        let n_states = fsm.num_states();
        let circuit = synthesize_circuit(&fsm, &pipeline).expect("synthesis");
        let faults = collapsed_faults(circuit.netlist());
        let start = Instant::now();
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: LATENCY,
                ..DetectOptions::default()
            },
        )
        .expect("tensor fits");
        let tensor_ms = start.elapsed().as_secs_f64() * 1e3;

        let (sparse, sparse_ms) = time_search(&table, SolverEngine::Sparse, repeats);
        let (dense, dense_ms) = time_search(&table, SolverEngine::Dense, repeats);
        assert_eq!(
            sparse, dense,
            "{name}: engines must agree on the full search outcome"
        );
        eprintln!(
            "  {:<8} {:>4} states {:>6} cases: tensor {tensor_ms:8.1} ms, \
             sparse {sparse_ms:8.1} ms, dense {dense_ms:8.1} ms ({:.1}x)",
            name,
            n_states,
            table.len(),
            dense_ms / sparse_ms.max(1e-9)
        );
        rows.push(Row {
            machine: name,
            n_states,
            faults: faults.len(),
            cases: table.len(),
            tensor_ms,
            sparse_ms,
            dense_ms,
            q: sparse.cover.masks.len(),
        });
    }

    let doc = Json::Object(vec![
        ("schema".into(), Json::str("ced-core-bench/1")),
        ("quick".into(), Json::Bool(quick)),
        ("rev".into(), Json::str(&rev)),
        ("latency".into(), Json::UInt(LATENCY as u64)),
        (
            "machines".into(),
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("machine".into(), Json::str(&r.machine)),
                            ("n_states".into(), Json::UInt(r.n_states as u64)),
                            ("faults".into(), Json::UInt(r.faults as u64)),
                            ("cases".into(), Json::UInt(r.cases as u64)),
                            ("q".into(), Json::UInt(r.q as u64)),
                            ("tensor_ms".into(), Json::Float(r.tensor_ms)),
                            ("sparse_ms".into(), Json::Float(r.sparse_ms)),
                            ("dense_ms".into(), Json::Float(r.dense_ms)),
                            (
                                "speedup".into(),
                                Json::Float(r.dense_ms / r.sparse_ms.max(1e-9)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "trajectory".into(),
            Json::Array(
                rows.iter()
                    .map(|r| trajectory_row(&rev, &r.machine, r.n_states, r.sparse_ms))
                    .collect(),
            ),
        ),
        ("identical".into(), Json::Bool(true)),
    ]);
    println!("{}", doc.render());

    let last = rows.last().expect("non-empty corpus");
    eprintln!(
        "analytic core on {} ({} states, {} cases): sparse {:.1} ms vs dense {:.1} ms \
         — {:.1}x, outcomes identical",
        last.machine,
        last.n_states,
        last.cases,
        last.sparse_ms,
        last.dense_ms,
        last.dense_ms / last.sparse_ms.max(1e-9)
    );
}
