//! Edit→re-diagnose harness (EXPERIMENTS.md B6): the wall-clock win
//! of incremental re-analysis. One cold `check` of the synthetic
//! gen10x machine fills the store; a sweep of single-transition edits
//! is then re-analyzed warm against the unedited baseline — exactly
//! what `ced check --baseline` and the daemon's `analyze-delta` run.
//!
//! Two edit classes are swept:
//!
//! * **dc-refine** — a don't-care output bit specified to the value
//!   the synthesized netlist already realizes. The encoded tables are
//!   byte-identical, so every per-fault-cone fragment and the cover
//!   memo hit directly: the fast class the ≥5× headline is about.
//! * **flip** — a specified output bit inverted. The tables change,
//!   so clean cones promote across contexts while dirty cones and the
//!   parity-tree search rebuild: the honest mid-range.
//!
//! Before any timing, every edit's warm incremental payload is
//! asserted byte-identical to a from-scratch storeless analysis — the
//! harness refuses to benchmark a wrong answer. Emits one
//! `ced-edit-bench/1` JSON line; the committed `BENCH_edit.json` is
//! the full run.
//!
//! Usage: `cargo bench --bench edit [-- --quick]` (`--quick` swaps
//! gen10x for gen3x and trims the sweep; the headline assertion only
//! runs full).

use ced_bench::git_rev;
use ced_core::pipeline::{prepare_machine, PipelineOptions};
use ced_fsm::generator::{generate, scaled_workload};
use ced_fsm::machine::{Fsm, OutputValue};
use ced_par::ParExec;
use ced_runtime::{Budget, Json};
use ced_serve::ops::check_text_with_baseline;
use ced_serve::{OpKind, OpRequest};
use ced_sim::tables::TransitionTables;
use ced_store::{StageCounters, Store, TENSOR_FRAG_STAGE};
use std::path::PathBuf;
use std::time::Instant;

const LATENCY: usize = 2;

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ced-edit-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Rebuilds `fsm` with transition `t_idx`'s output bit `bit` set to `v`.
fn with_output_edit(fsm: &Fsm, t_idx: usize, bit: usize, v: OutputValue) -> Fsm {
    let mut out = Fsm::new(fsm.name(), fsm.num_inputs(), fsm.num_outputs());
    for s in fsm.state_names() {
        out.add_state(s.clone());
    }
    out.set_reset_state(fsm.reset_state()).unwrap();
    for (i, t) in fsm.transitions().iter().enumerate() {
        let mut output = t.output.clone();
        if i == t_idx {
            output[bit] = v;
        }
        out.add_transition(t.input.clone(), t.from, t.to, output)
            .unwrap();
    }
    out
}

/// One planned edit: the revised machine plus its class label.
struct Edit {
    kind: &'static str,
    fsm: Fsm,
}

/// Plans the sweep: up to `k/2` dc-refinements (don't-care bits set to
/// the value the synthesized netlist realizes — tables byte-identical)
/// and `k/2` semantic flips of specified bits.
fn plan_edits(base: &Fsm, options: &PipelineOptions, k: usize) -> Vec<Edit> {
    let (encoded, circuit) = prepare_machine(base, options).expect("synthesis");
    let good = TransitionTables::good(&circuit);
    let mut edits = Vec::new();

    // dc-refine class: DC positions whose realized value we adopt —
    // kept only when re-synthesis reproduces the identical netlist
    // (the KISS2 text changed, nothing downstream did). The realized
    // value makes that likely, not certain, so each candidate is
    // verified before it enters the sweep.
    for (i, t) in base.transitions().iter().enumerate() {
        if edits.len() >= k / 2 {
            break;
        }
        for (b, &v) in t.output.iter().enumerate() {
            if v != OutputValue::DontCare {
                continue;
            }
            // The generator's machines drive one fully-specified
            // input bit per cube.
            let input_val = match t.input.to_string().as_bytes()[0] {
                b'1' => 1u64,
                _ => 0u64,
            };
            let code = encoded.encoding().code(t.from);
            let realized = (good.response(code, input_val) >> b) & 1;
            let v = if realized == 1 {
                OutputValue::One
            } else {
                OutputValue::Zero
            };
            let candidate = with_output_edit(base, i, b, v);
            let (_, resynth) = prepare_machine(&candidate, options).expect("synthesis");
            if resynth.netlist() == circuit.netlist() {
                edits.push(Edit {
                    kind: "dc-refine",
                    fsm: candidate,
                });
            }
            break;
        }
    }

    // flip class: invert specified bits, spread across the machine.
    let transitions = base.transitions();
    let mut i = 0;
    while edits.len() < k && i < transitions.len() {
        let t = &transitions[i];
        if let Some((b, v)) = t.output.iter().enumerate().find_map(|(b, &v)| match v {
            OutputValue::Zero => Some((b, OutputValue::One)),
            OutputValue::One => Some((b, OutputValue::Zero)),
            OutputValue::DontCare => None,
        }) {
            edits.push(Edit {
                kind: "flip",
                fsm: with_output_edit(base, i, b, v),
            });
        }
        i += 7; // stride: touch different regions of the machine
    }
    edits
}

fn request(options: &PipelineOptions) -> OpRequest {
    let mut request = OpRequest::new(OpKind::Check, "");
    request.latency = LATENCY;
    request.options = options.clone();
    request
}

fn frag_counters(store: &Store) -> StageCounters {
    store
        .stats()
        .stages
        .into_iter()
        .find(|(s, _)| s == TENSOR_FRAG_STAGE)
        .map(|(_, c)| c)
        .unwrap_or_default()
}

struct EditRow {
    kind: &'static str,
    wall_ms: f64,
    frag_hits: u64,
    frag_rebuilt: u64,
    cones_dirty: usize,
    cones_total: usize,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (label, scale, k) = if quick {
        ("gen3x", 3, 4)
    } else {
        ("gen10x", 10, 10)
    };
    let base = generate(&scaled_workload(scale, 3));
    let n_states = base.num_states();
    let options = PipelineOptions::paper_defaults();
    let request = request(&options);
    let pool = ParExec::new(1);
    let budget = Budget::new();

    let dir = scratch(label);
    let store = Store::open(&dir).expect("store opens");

    // Cold: the baseline's own analysis, nothing cached.
    let start = Instant::now();
    let (base_payload, _) =
        check_text_with_baseline(&base, None, &request, &budget, &pool, Some(&store))
            .expect("cold analysis");
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;
    assert!(!base_payload.is_empty());

    // The sweep: each edit re-analyzed warm against the baseline,
    // with outcome equality asserted before its timing counts.
    let edits = plan_edits(&base, &options, k);
    assert!(edits.len() >= 2, "sweep needs both edit classes");
    let mut rows: Vec<EditRow> = Vec::new();
    for edit in &edits {
        let (reference, _) =
            check_text_with_baseline(&edit.fsm, None, &request, &budget, &pool, None)
                .expect("from-scratch analysis");

        let before = frag_counters(&store);
        let start = Instant::now();
        let (warm, summary) = check_text_with_baseline(
            &edit.fsm,
            Some(&base),
            &request,
            &budget,
            &pool,
            Some(&store),
        )
        .expect("incremental analysis");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let after = frag_counters(&store);

        assert_eq!(
            warm, reference,
            "{} edit: incremental payload must equal from-scratch",
            edit.kind
        );
        let summary = summary.expect("baseline produces a summary");
        rows.push(EditRow {
            kind: edit.kind,
            wall_ms,
            frag_hits: after.hits - before.hits,
            frag_rebuilt: after.puts - before.puts,
            cones_dirty: summary.cones_dirty,
            cones_total: summary.cones_total,
        });
    }

    // Headline: median warm wall-clock of the fast class vs cold.
    let mut fast: Vec<f64> = rows
        .iter()
        .filter(|r| r.kind == "dc-refine")
        .map(|r| r.wall_ms)
        .collect();
    fast.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let fast_median_ms = fast[fast.len() / 2];
    let speedup = cold_ms / fast_median_ms;
    let reused: u64 = rows.iter().map(|r| r.frag_hits).sum();
    assert!(reused > 0, "warm sweep must reuse baseline fragments");
    if !quick {
        assert!(
            speedup >= 5.0,
            "warm single-edit re-analysis must be >= 5x cold ({cold_ms:.1}ms \
             cold vs {fast_median_ms:.1}ms warm median)"
        );
    }

    let rev = git_rev();
    let doc = Json::Object(vec![
        ("schema".into(), Json::str("ced-edit-bench/1")),
        ("quick".into(), Json::Bool(quick)),
        ("machine".into(), Json::str(label)),
        ("n_states".into(), Json::UInt(n_states as u64)),
        ("latency".into(), Json::UInt(LATENCY as u64)),
        ("cold_ms".into(), Json::Float(cold_ms)),
        ("warm_dc_median_ms".into(), Json::Float(fast_median_ms)),
        ("speedup".into(), Json::Float(speedup)),
        (
            "edits".into(),
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("kind".into(), Json::str(r.kind)),
                            ("wall_ms".into(), Json::Float(r.wall_ms)),
                            ("frag_hits".into(), Json::UInt(r.frag_hits)),
                            ("frag_rebuilt".into(), Json::UInt(r.frag_rebuilt)),
                            ("cones_dirty".into(), Json::UInt(r.cones_dirty as u64)),
                            ("cones_total".into(), Json::UInt(r.cones_total as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "trajectory".into(),
            Json::Array(vec![
                Json::Object(vec![
                    ("rev".into(), Json::str(&rev)),
                    ("machine".into(), Json::str(label)),
                    ("n_states".into(), Json::UInt(n_states as u64)),
                    ("edits".into(), Json::UInt(0)),
                    ("wall_ms".into(), Json::Float(cold_ms)),
                ]),
                Json::Object(vec![
                    ("rev".into(), Json::str(&rev)),
                    ("machine".into(), Json::str(label)),
                    ("n_states".into(), Json::UInt(n_states as u64)),
                    ("edits".into(), Json::UInt(rows.len() as u64)),
                    ("wall_ms".into(), Json::Float(fast_median_ms)),
                ]),
            ]),
        ),
    ]);
    println!("{}", doc.render());
    let _ = std::fs::remove_dir_all(&dir);
}
