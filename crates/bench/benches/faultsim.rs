//! Criterion bench of the fault-simulation substrate: transition-table
//! extraction (64-way bit-parallel) and detectability-table
//! construction at several latency bounds.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_fsm::suite::paper_table1_scaled;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::tables::TransitionTables;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_faultsim(c: &mut Criterion) {
    let options = PipelineOptions::paper_defaults();
    let spec = paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == "s386")
        .expect("suite circuit");
    let fsm = spec.build();
    let circuit = synthesize_circuit(&fsm, &options).expect("synthesizable");
    let faults = fault_list(&circuit, &options);

    let mut group = c.benchmark_group("faultsim");
    group.sample_size(10);

    group.bench_function("good_tables", |b| {
        b.iter(|| black_box(TransitionTables::good(&circuit)))
    });

    group.bench_function("faulty_tables_x16", |b| {
        b.iter(|| {
            for &f in faults.iter().take(16) {
                black_box(TransitionTables::faulty(&circuit, f));
            }
        })
    });

    for p in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("detectability", p), &p, |b, &p| {
            b.iter(|| {
                let (t, _) = DetectabilityTable::build(
                    &circuit,
                    &faults,
                    &DetectOptions {
                        latency: p,
                        ..DetectOptions::default()
                    },
                )
                .expect("within row cap");
                black_box(t.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_faultsim);
criterion_main!(benches);
