//! Shard-scaling harness for the fleet layer: runs the s27/tav/dk512
//! campaign serially (`run_suite`, the ground truth), then as a fleet
//! campaign at 1, 2 and 4 worker shards (coordinator + workers as
//! in-process threads speaking the real on-disk protocol), and asserts
//! every merged report is byte-identical to the serial one before
//! reporting wall-clock per shard count as a `ced-fleet-bench/1` JSON
//! line. The interesting number is the *overhead* at 1 shard (protocol
//! tax: envelopes, leases, polling) and the scaling from 1 → N.
//!
//! Usage: `cargo bench --bench fleet [-- --quick]` (`--quick` uses the
//! scaled analogues; without it the full Table-1 machines run).

use ced_bench::{git_rev, trajectory_row};
use ced_core::{run_suite, SuiteControl, SuiteOptions};
use ced_fleet::{run_coordinator, run_worker, CoordinatorOptions, WorkerOptions};
use ced_fsm::machine::Fsm;
use ced_fsm::suite::{paper_table1, paper_table1_scaled};
use ced_logic::gate::CellLibrary;
use ced_runtime::{CancelToken, Json};
use std::path::Path;
use std::time::{Duration, Instant};

const MACHINES: [&str; 3] = ["s27", "tav", "dk512"];

fn corpus(quick: bool) -> Vec<(String, Fsm)> {
    let specs = if quick {
        paper_table1_scaled()
    } else {
        paper_table1()
    };
    MACHINES
        .iter()
        .map(|name| {
            let spec = specs
                .iter()
                .find(|s| s.name == *name)
                .expect("suite machine");
            (spec.name.to_string(), spec.build())
        })
        .collect()
}

fn options() -> SuiteOptions {
    SuiteOptions {
        latencies: vec![1, 2],
        ..SuiteOptions::default()
    }
}

/// One fleet campaign with `shards` worker threads against a fresh
/// directory; returns the merged report JSON and the wall-clock.
fn fleet_campaign(dir: &Path, machines: &[(String, Fsm)], shards: usize) -> (String, f64) {
    let opts = options();
    let copts = CoordinatorOptions {
        heartbeat_timeout: Duration::from_secs(10),
        poll_interval: Duration::from_millis(5),
        ..CoordinatorOptions::default()
    };
    let cancel = CancelToken::new();
    let start = Instant::now();
    let outcome = std::thread::scope(|scope| {
        for shard in 0..shards {
            let opts = opts.clone();
            let cancel = cancel.clone();
            scope.spawn(move || {
                let wopts = WorkerOptions {
                    worker_id: format!("bench{shard}"),
                    heartbeat_period: Duration::from_millis(50),
                    poll_interval: Duration::from_millis(5),
                    idle_timeout: Some(Duration::from_secs(120)),
                    manifest_wait: Duration::from_secs(30),
                };
                let lib = CellLibrary::new();
                run_worker(dir, &opts, &wopts, &lib, &cancel, None).expect("worker completes")
            });
        }
        run_coordinator(dir, machines, &opts, &copts, &cancel).expect("coordinator completes")
    });
    (outcome.report.to_json(), start.elapsed().as_secs_f64())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machines = corpus(quick);
    let opts = options();

    let lib = CellLibrary::new();
    let start = Instant::now();
    let serial = run_suite(&machines, &opts, &lib, SuiteControl::new()).expect("serial suite");
    let serial_secs = start.elapsed().as_secs_f64();
    let serial_json = serial.to_json();

    // Per-machine serial timing for the cross-bench trajectory: each
    // machine re-run alone so its wall-clock is attributable (the
    // combined run above stays the byte-identity ground truth).
    let rev = git_rev();
    let trajectory: Vec<Json> = machines
        .iter()
        .map(|(name, fsm)| {
            let one = [(name.clone(), fsm.clone())];
            let start = Instant::now();
            run_suite(&one, &opts, &lib, SuiteControl::new()).expect("per-machine suite");
            let wall_ms = start.elapsed().as_secs_f64() * 1e3;
            trajectory_row(&rev, name, fsm.num_states(), wall_ms)
        })
        .collect();

    let shard_counts = [1usize, 2, 4];
    let mut shard_rows = Vec::new();
    for &shards in &shard_counts {
        let dir =
            std::env::temp_dir().join(format!("ced-fleet-bench-{}-{shards}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let (json, secs) = fleet_campaign(&dir, &machines, shards);
        let _ = std::fs::remove_dir_all(&dir);
        assert_eq!(
            json, serial_json,
            "{shards}-shard fleet report must be byte-identical to the serial run"
        );
        shard_rows.push((shards, secs));
    }

    let doc = Json::Object(vec![
        ("schema".into(), Json::str("ced-fleet-bench/1")),
        ("quick".into(), Json::Bool(quick)),
        (
            "machines".into(),
            Json::Array(MACHINES.iter().map(|m| Json::str(m)).collect()),
        ),
        (
            "latencies".into(),
            Json::Array(
                opts.latencies
                    .iter()
                    .map(|&p| Json::UInt(p as u64))
                    .collect(),
            ),
        ),
        ("serial_secs".into(), Json::Float(serial_secs)),
        (
            "shards".into(),
            Json::Array(
                shard_rows
                    .iter()
                    .map(|&(n, secs)| {
                        Json::Object(vec![
                            ("workers".into(), Json::UInt(n as u64)),
                            ("secs".into(), Json::Float(secs)),
                            (
                                "speedup_vs_serial".into(),
                                Json::Float(serial_secs / secs.max(1e-9)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("trajectory".into(), Json::Array(trajectory)),
        ("identical".into(), Json::Bool(true)),
    ]);
    println!("{}", doc.render());
    let one_shard = shard_rows[0].1;
    eprintln!(
        "fleet campaign over {}: serial {serial_secs:.3}s, 1-shard fleet {one_shard:.3}s \
         (protocol overhead {:.0}%), every merged report byte-identical",
        MACHINES.join("/"),
        (one_shard / serial_secs.max(1e-9) - 1.0) * 100.0
    );
    for &(n, secs) in &shard_rows[1..] {
        eprintln!(
            "  {n} shards: {secs:.3}s ({:.2}x vs serial)",
            serial_secs / secs.max(1e-9)
        );
    }
}
