//! Criterion bench of the fault-injection campaign subsystem: the
//! checker-in-the-loop machine-fault campaign (with tensor
//! cross-validation) and the bit-parallel checker-netlist self-audit.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_core::synthesize_ced;
use ced_fsm::suite;
use ced_inject::{audit_checker, run_campaign, CampaignOptions};
use ced_sim::detect::{DetectOptions, DetectabilityTable, InputModel, Semantics};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_inject(c: &mut Criterion) {
    let options = PipelineOptions::paper_defaults();
    let fsm = suite::sequence_detector();
    let circuit = synthesize_circuit(&fsm, &options).expect("synthesizable");
    let faults = fault_list(&circuit, &options);

    let mut group = c.benchmark_group("inject");
    group.sample_size(10);

    for p in [1usize, 2] {
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                semantics: Semantics::FaultyTrajectory,
                input_model: InputModel::Exhaustive,
                ..DetectOptions::default()
            },
        )
        .expect("within row cap");
        let outcome = minimize_parity_functions(&table, &CedOptions::default());
        let ced = synthesize_ced(&circuit, &outcome.cover, p, &options.minimize);

        group.bench_with_input(BenchmarkId::new("campaign", p), &p, |b, _| {
            b.iter(|| {
                let report = run_campaign(
                    &circuit,
                    &ced,
                    &faults,
                    &CampaignOptions {
                        checker_faults: false,
                        ..CampaignOptions::default()
                    },
                )
                .expect("runs");
                black_box(report.machine.detected_within_bound)
            })
        });

        group.bench_with_input(BenchmarkId::new("checker_audit", p), &p, |b, _| {
            b.iter(|| {
                let audit = audit_checker(&circuit, &ced, &CampaignOptions::default());
                black_box(audit.self_masking)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_inject);
criterion_main!(benches);
