//! Criterion bench of the from-scratch Simplex solver on the LP
//! relaxations produced by the CED pipeline (Statement 5, symmetric and
//! full forms) across problem sizes.

use ced_core::relax::{build_relaxation, LpForm};
use ced_lp::solve;
use ced_sim::detect::{DetectabilityTable, EcRow};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

/// Deterministic synthetic detectability table.
fn synth_table(num_bits: usize, latency: usize, rows: usize, seed: u64) -> DetectabilityTable {
    let mut state = seed;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        state >> 16
    };
    let mask = (1u64 << num_bits) - 1;
    let ec_rows: Vec<EcRow> = (0..rows)
        .map(|_| {
            let mut steps = Vec::with_capacity(latency);
            // Nonzero first step, sparse later steps.
            let mut first = next() & mask;
            if first == 0 {
                first = 1;
            }
            steps.push(first);
            for _ in 1..latency {
                steps.push(next() & mask & next());
            }
            EcRow { steps }
        })
        .collect();
    DetectabilityTable::from_rows(num_bits, latency, ec_rows)
}

fn bench_lp(c: &mut Criterion) {
    let mut group = c.benchmark_group("lp_relaxation");
    group.sample_size(10);
    for &m in &[32usize, 64, 128] {
        let table = synth_table(12, 2, m, 0xABCD);
        let rows: Vec<usize> = (0..table.len()).collect();
        group.bench_with_input(BenchmarkId::new("symmetric", m), &m, |b, _| {
            b.iter(|| {
                let relax = build_relaxation(&table, 4, LpForm::Symmetric, &rows);
                black_box(solve(&relax.lp).expect("feasible").objective)
            })
        });
    }
    // Full Statement-5 form is q× larger; bench one size for the ratio.
    let table = synth_table(12, 2, 32, 0xABCD);
    let rows: Vec<usize> = (0..table.len()).collect();
    group.bench_function("full_q4_m32", |b| {
        b.iter(|| {
            let relax = build_relaxation(&table, 4, LpForm::Full, &rows);
            black_box(solve(&relax.lp).expect("feasible").objective)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_lp);
criterion_main!(benches);
