//! Wall-clock benchmark of the deterministic parallel execution layer:
//! detectability-tensor construction for the largest bundled MCNC
//! machines (styr: 9 inputs / 30 states, s1488: 8 inputs / 48 states)
//! at one vs. four workers.
//!
//! Not a Criterion microbench — the payload is seconds per build — so
//! it times whole tensor constructions directly and prints the
//! speedup ratio. Per-fault transition-table extraction dominates the
//! build (87–104% of wall-clock on these machines), so the speedup is
//! near-linear in worker count on multicore hosts; on a single-core
//! host the ratio degenerates to ~1× and the bench says so instead of
//! reporting a vacuous number. Byte-identity of the tensors across
//! job counts is asserted unconditionally — that is the property the
//! parallel layer exists to preserve.
//!
//! Run with `cargo bench -p ced-bench --bench par`. The fault cap
//! (default 512, keeping a full run under a minute) is overridable
//! via `CED_PAR_FAULTS=N`; `CED_PAR_FAULTS=0` lifts it.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_fsm::suite::paper_table1;
use ced_par::ParExec;
use ced_runtime::Budget;
use ced_sim::detect::{BuildControl, DetectOptions, DetectabilityTable};
use std::time::Instant;

fn fault_cap() -> Option<usize> {
    match std::env::var("CED_PAR_FAULTS") {
        Ok(v) => match v.parse::<usize>() {
            Ok(0) => None,
            Ok(n) => Some(n),
            Err(_) => panic!("CED_PAR_FAULTS must be a number"),
        },
        Err(_) => Some(512),
    }
}

/// One tensor construction; returns (canonical bytes, seconds).
fn timed_build(
    circuit: &ced_fsm::encoded::FsmCircuit,
    faults: &[ced_sim::fault::Fault],
    pool: Option<&ParExec>,
) -> (Vec<u8>, f64) {
    let budget = Budget::unlimited();
    let start = Instant::now();
    let results = DetectabilityTable::build_many_controlled(
        circuit,
        faults,
        &DetectOptions::default(),
        &[1],
        BuildControl {
            pool,
            ..BuildControl::new(&budget)
        },
    )
    .expect("within row cap");
    let secs = start.elapsed().as_secs_f64();
    let mut bytes = Vec::new();
    for (table, stats) in &results {
        bytes.extend_from_slice(&table.to_bytes());
        bytes.extend_from_slice(format!("{stats:?}").as_bytes());
    }
    (bytes, secs)
}

fn main() {
    let options = PipelineOptions::paper_defaults();
    let cap = fault_cap();
    let cores = ParExec::available().jobs();
    println!("parallel tensor construction, {cores} core(s) available");

    for name in ["styr", "s1488"] {
        let spec = paper_table1()
            .into_iter()
            .find(|s| s.name == name)
            .expect("suite machine");
        let fsm = spec.build();
        let circuit = synthesize_circuit(&fsm, &options).expect("synthesizable");
        let mut faults = fault_list(&circuit, &options);
        if let Some(cap) = cap {
            faults.truncate(cap);
        }

        let (serial_bytes, t1) = timed_build(&circuit, &faults, Some(&ParExec::new(1)));
        let (par_bytes, t4) = timed_build(&circuit, &faults, Some(&ParExec::new(4)));
        assert_eq!(
            serial_bytes, par_bytes,
            "{name}: tensors differ between --jobs 1 and --jobs 4"
        );

        let speedup = t1 / t4;
        println!(
            "{name}: {} faults, jobs=1 {t1:.2}s, jobs=4 {t4:.2}s, speedup {speedup:.2}x \
             (tensors byte-identical)",
            faults.len()
        );
        if cores < 4 {
            println!("  note: only {cores} core(s); a 4-worker speedup is not observable here");
        }
    }
}
