//! Criterion bench of randomized rounding: cost of one rounding attempt
//! (sampling + exact Statement-4 verification) and of full
//! `round_cover` calls at different table sizes.

use ced_core::ip::ParityCover;
use ced_core::round::{round_cover, RoundingOptions};
use ced_lp::rounding::round_to_mask;
use ced_sim::detect::{DetectabilityTable, EcRow};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn synth_table(num_bits: usize, rows: usize) -> DetectabilityTable {
    let mut state = 0x1357_9BDF_u64;
    let mut next = move || {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        state >> 20
    };
    let mask = (1u64 << num_bits) - 1;
    let ec: Vec<EcRow> = (0..rows)
        .map(|_| EcRow {
            steps: vec![(next() & mask).max(1), next() & mask & next()],
        })
        .collect();
    DetectabilityTable::from_rows(num_bits, 2, ec)
}

fn bench_rounding(c: &mut Criterion) {
    let mut group = c.benchmark_group("rounding");

    group.bench_function("sample_mask_16bits", |b| {
        let beta = vec![0.3; 16];
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| black_box(round_to_mask(&beta, &mut rng)))
    });

    for &m in &[100usize, 1000, 10_000] {
        let table = synth_table(16, m);
        let masks: Vec<u64> = ParityCover::singletons(16).masks;
        group.bench_with_input(BenchmarkId::new("verify_statement4", m), &m, |b, _| {
            b.iter(|| black_box(table.all_covered(&masks)))
        });
    }

    let table = synth_table(16, 1000);
    let beta = vec![vec![0.4; 16]];
    group.bench_function("round_cover_m1000", |b| {
        b.iter(|| {
            let r = round_cover(
                &table,
                6,
                &beta,
                &RoundingOptions {
                    iterations: 50,
                    seed: 7,
                },
            );
            black_box(r.is_ok())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_rounding);
criterion_main!(benches);
