//! Criterion bench of pipeline scaling with FSM size: end-to-end time
//! as the state count grows at fixed interface width, plus the
//! logic-synthesis substrate alone (the SIS-substitute cost).

use ced_core::pipeline::{run_circuit, synthesize_circuit, PipelineOptions};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_logic::gate::CellLibrary;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn machine(states: usize) -> ced_fsm::Fsm {
    generate(&GeneratorConfig {
        name: format!("scale{states}"),
        num_inputs: 3,
        num_states: states,
        num_outputs: 3,
        cubes_per_state: 5,
        self_loop_bias: 0.2,
        output_dc_prob: 0.05,
        output_pool: 4,
        seed: 0x5CA1E,
    })
}

fn bench_scaling(c: &mut Criterion) {
    let lib = CellLibrary::new();
    let mut options = PipelineOptions::paper_defaults();
    options.ced.iterations = 100;

    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    for &states in &[4usize, 8, 16] {
        let fsm = machine(states);
        group.bench_with_input(BenchmarkId::new("synthesis", states), &states, |b, _| {
            b.iter(|| black_box(synthesize_circuit(&fsm, &options).expect("ok").gate_count()))
        });
        group.bench_with_input(
            BenchmarkId::new("end_to_end_p2", states),
            &states,
            |b, _| {
                b.iter(|| {
                    let r = run_circuit(&fsm, &[1, 2], &options, &lib).expect("ok");
                    black_box(r.latencies.len())
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_scaling);
criterion_main!(benches);
