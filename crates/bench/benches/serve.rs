//! Served-latency harness for the `ced serve` daemon: measures the
//! cold-store and warm-store request latency of each analysis op over
//! real loopback TCP (daemon in-process, protocol on the wire), then
//! saturates a deliberately tiny daemon (one executor, one pending
//! slot) and counts the typed `overloaded` rejections. Emits one
//! `ced-serve-bench/1` JSON line; the committed `BENCH_serve.json` is
//! the full run. The interesting numbers are the warm/cold ratio per
//! op (what a resident store buys interactive callers) and the shed
//! count (admission control rejecting instead of queueing without
//! bound).
//!
//! Usage: `cargo bench --bench serve [-- --quick]` (`--quick` trims
//! the iteration counts, not the protocol).

use ced_bench::{git_rev, trajectory_row};
use ced_runtime::Json;
use ced_serve::{Client, ServeOptions, Server};
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// The measured machine: the scaled `s27` analogue — small enough
/// that per-request protocol cost is visible next to the analysis.
fn machine_text() -> String {
    let spec = ced_fsm::suite::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == "s27")
        .expect("suite machine");
    ced_fsm::kiss::to_string(&spec.build())
}

/// An `n`-state counter whose exhaustive-input detectability tensor is
/// expensive to build — the slow request that keeps the single
/// executor busy during the overload measurement.
fn counter_kiss2(n: usize) -> String {
    let mut out = format!(".i 1\n.o 1\n.p {}\n.s {n}\n.r s0\n", 2 * n);
    for i in 0..n {
        out.push_str(&format!("0 s{i} s{i} {}\n", i % 2));
        out.push_str(&format!("1 s{i} s{} {}\n", (i + 1) % n, (i >> 1) % 2));
    }
    out.push_str(".e\n");
    out
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn op_request(op: &str, id: &str, machine: &str) -> Json {
    let mut fields = vec![
        ("id", Json::str(id)),
        ("cmd", Json::str(op)),
        ("machine", Json::str(machine)),
    ];
    match op {
        "table" | "certify" => {
            fields.push(("latencies", Json::Array(vec![Json::UInt(1), Json::UInt(2)])));
        }
        "inject" => {
            fields.push(("steps", Json::UInt(40)));
            fields.push(("seed", Json::UInt(1)));
        }
        _ => {}
    }
    obj(fields)
}

fn request_ok(client: &mut Client, doc: &Json) -> Json {
    let resp = client.request(doc).expect("request round trip");
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "response: {}",
        resp.render()
    );
    resp
}

fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    let idx = ((sorted_ms.len() as f64 - 1.0) * p).round() as usize;
    sorted_ms[idx]
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ced-serve-bench-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

struct OpRow {
    op: &'static str,
    cold_ms: f64,
    warm_p50_ms: f64,
    warm_p99_ms: f64,
    iters: usize,
}

/// Cold-then-warm latency of one op against a fresh daemon + store.
fn measure_op(op: &'static str, machine: &str, iters: usize) -> OpRow {
    let store = scratch(op);
    let server = Server::start(ServeOptions {
        store_dir: Some(store.clone()),
        ..ServeOptions::default()
    })
    .expect("daemon starts");
    let mut client = Client::connect(server.addr()).expect("connect");

    let start = Instant::now();
    request_ok(&mut client, &op_request(op, "cold", machine));
    let cold_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut warm_ms: Vec<f64> = (0..iters)
        .map(|i| {
            let start = Instant::now();
            request_ok(&mut client, &op_request(op, &format!("warm{i}"), machine));
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    warm_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));

    server.stop();
    drop(client);
    server.wait();
    let _ = std::fs::remove_dir_all(&store);
    OpRow {
        op,
        cold_ms,
        warm_p50_ms: percentile(&warm_ms, 0.50),
        warm_p99_ms: percentile(&warm_ms, 0.99),
        iters,
    }
}

/// Saturates a one-executor, one-slot daemon and counts typed
/// `overloaded` rejections: one slow request runs, one fills the
/// pending slot, and every flood request must be shed at admission.
fn measure_overload(flood: usize, slow_states: usize) -> (usize, usize) {
    let server = Server::start(ServeOptions {
        workers: 1,
        max_pending: 1,
        ..ServeOptions::default()
    })
    .expect("daemon starts");
    let slow_machine = counter_kiss2(slow_states);
    let slow = obj(vec![
        ("id", Json::str("slow")),
        ("cmd", Json::str("table")),
        ("machine", Json::str(&slow_machine)),
        (
            "latencies",
            Json::Array(vec![
                Json::UInt(1),
                Json::UInt(2),
                Json::UInt(3),
                Json::UInt(4),
            ]),
        ),
        ("exhaustive_inputs", Json::Bool(true)),
    ]);
    let mut busy = Client::connect(server.addr()).expect("connect");
    busy.send_line(&slow.render()).expect("send slow");

    // Wait until the slow request holds the executor, then fill the
    // single pending slot.
    let mut control = Client::connect(server.addr()).expect("connect");
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let resp = request_ok(
            &mut control,
            &obj(vec![("id", Json::str("h")), ("cmd", Json::str("health"))]),
        );
        let health = resp.get("health").expect("health doc");
        let running = health
            .get("counters")
            .and_then(|c| c.get("admitted"))
            .and_then(Json::as_u64)
            == Some(1)
            && health.get("queue_depth").and_then(Json::as_u64) == Some(0);
        if running {
            break;
        }
        assert!(Instant::now() < deadline, "slow request never started");
        std::thread::sleep(Duration::from_millis(5));
    }
    control
        .send_line(&slow.render())
        .expect("fill pending slot");

    let machine = machine_text();
    let mut flooder = Client::connect(server.addr()).expect("connect");
    for i in 0..flood {
        flooder
            .send_line(&op_request("check", &format!("flood{i}"), &machine).render())
            .expect("send flood");
    }
    let mut shed = 0;
    for _ in 0..flood {
        let resp = Json::parse(&flooder.recv_line().expect("flood response")).expect("JSON");
        let kind = resp
            .get("error")
            .and_then(|e| e.get("kind"))
            .and_then(Json::as_str);
        if kind == Some("overloaded") {
            shed += 1;
        }
    }
    // Disconnects cancel the saturating work; the daemon drains fast.
    drop(busy);
    drop(control);
    drop(flooder);
    server.stop();
    server.wait();
    (flood, shed)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let machine = machine_text();

    let rows: Vec<OpRow> = [
        ("check", if quick { 20 } else { 60 }),
        ("table", if quick { 20 } else { 60 }),
        ("certify", if quick { 8 } else { 25 }),
        ("inject", if quick { 8 } else { 25 }),
    ]
    .into_iter()
    .map(|(op, iters)| measure_op(op, &machine, iters))
    .collect();

    let (flooded, shed) = measure_overload(20, if quick { 120 } else { 400 });
    assert!(shed > 0, "saturation must shed at least one request");

    // Cross-bench trajectory row: the headline served latency is the
    // cold `table` request (full tensor build + response over TCP).
    let n_states = ced_fsm::kiss::parse(&machine)
        .expect("suite machine parses")
        .num_states();
    let table_cold_ms = rows
        .iter()
        .find(|r| r.op == "table")
        .map(|r| r.cold_ms)
        .expect("table op measured");
    let trajectory = vec![trajectory_row(&git_rev(), "s27", n_states, table_cold_ms)];

    let doc = Json::Object(vec![
        ("schema".into(), Json::str("ced-serve-bench/1")),
        ("quick".into(), Json::Bool(quick)),
        ("machine".into(), Json::str("s27 (scaled analogue)")),
        (
            "ops".into(),
            Json::Array(
                rows.iter()
                    .map(|r| {
                        Json::Object(vec![
                            ("op".into(), Json::str(r.op)),
                            ("cold_ms".into(), Json::Float(r.cold_ms)),
                            ("warm_p50_ms".into(), Json::Float(r.warm_p50_ms)),
                            ("warm_p99_ms".into(), Json::Float(r.warm_p99_ms)),
                            ("iters".into(), Json::UInt(r.iters as u64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "overload".into(),
            Json::Object(vec![
                ("workers".into(), Json::UInt(1)),
                ("max_pending".into(), Json::UInt(1)),
                ("flooded".into(), Json::UInt(flooded as u64)),
                ("shed".into(), Json::UInt(shed as u64)),
            ]),
        ),
        ("trajectory".into(), Json::Array(trajectory)),
    ]);
    println!("{}", doc.render());

    eprintln!("served latency over loopback TCP (s27 scaled analogue, fresh daemon per op):");
    for r in &rows {
        eprintln!(
            "  {:<8} cold {:8.2} ms   warm p50 {:7.2} ms   warm p99 {:7.2} ms   ({} warm iters)",
            r.op, r.cold_ms, r.warm_p50_ms, r.warm_p99_ms, r.iters
        );
    }
    eprintln!(
        "overload (1 executor, 1 pending slot): {shed}/{flooded} flood requests shed with \
         typed `overloaded`"
    );
}
