//! Cold-vs-warm p-sweep harness for the content-addressed artifact
//! store: runs the full pipeline on `tav` once per latency bound with
//! an empty on-disk store (cold), then repeats the identical sweep
//! against the populated store (warm). Reports wall-clock for both
//! sweeps plus per-stage hit/miss/put counters as one
//! `ced-store-bench/1` JSON line, and asserts that every warm report
//! is field-identical to its cold counterpart — the speedup must come
//! from skipped work, never from different answers.
//!
//! Usage: `cargo bench --bench store [-- --quick]` (`--quick` uses the
//! scaled tav analogue).

use ced_core::pipeline::{run_circuit_controlled, CircuitReport, PipelineControl, PipelineOptions};
use ced_fsm::suite::{paper_table1, paper_table1_scaled};
use ced_logic::gate::CellLibrary;
use ced_runtime::{Budget, Json};
use ced_store::{StageCounters, Store};
use std::time::Instant;

const LATENCIES: [usize; 4] = [1, 2, 3, 4];

fn sweep(fsm: &ced_fsm::machine::Fsm, store: &Store) -> (Vec<CircuitReport>, f64) {
    let options = PipelineOptions::paper_defaults();
    let lib = CellLibrary::new();
    let start = Instant::now();
    let reports = LATENCIES
        .iter()
        .map(|&p| {
            let budget = Budget::unlimited();
            let mut control = PipelineControl::new(&budget);
            control.store = Some(store);
            run_circuit_controlled(fsm, &[p], &options, &lib, control).expect("pipeline completes")
        })
        .collect();
    (reports, start.elapsed().as_secs_f64())
}

fn counters_json(c: &StageCounters) -> Json {
    Json::Object(vec![
        ("hits".into(), Json::UInt(c.hits)),
        ("misses".into(), Json::UInt(c.misses)),
        ("corrupt".into(), Json::UInt(c.corrupt)),
        ("puts".into(), Json::UInt(c.puts)),
    ])
}

fn delta(
    after: &[(String, StageCounters)],
    before: &[(String, StageCounters)],
) -> Vec<(String, StageCounters)> {
    after
        .iter()
        .map(|(stage, a)| {
            let b = before
                .iter()
                .find(|(s, _)| s == stage)
                .map(|(_, c)| *c)
                .unwrap_or_default();
            (
                stage.clone(),
                StageCounters {
                    hits: a.hits - b.hits,
                    misses: a.misses - b.misses,
                    corrupt: a.corrupt - b.corrupt,
                    puts: a.puts - b.puts,
                },
            )
        })
        .collect()
}

fn assert_reports_match(cold: &CircuitReport, warm: &CircuitReport, p: usize) {
    assert_eq!(cold.detect_stats, warm.detect_stats, "p={p}: detect stats");
    assert_eq!(cold.latencies.len(), warm.latencies.len(), "p={p}");
    for (x, y) in cold.latencies.iter().zip(&warm.latencies) {
        assert_eq!(x.cover.masks, y.cover.masks, "p={p}: masks differ");
        assert_eq!(x.cost, y.cost, "p={p}: cost differs");
        assert_eq!(x.lp_solves, y.lp_solves, "p={p}: lp solves differ");
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    // Criterion-compatible harness flags (`--bench`) are accepted and
    // ignored; this is a plain timing harness.
    let specs = if quick {
        paper_table1_scaled()
    } else {
        paper_table1()
    };
    let fsm = specs
        .into_iter()
        .find(|s| s.name == "tav")
        .expect("suite machine")
        .build();

    let dir = std::env::temp_dir().join(format!("ced-store-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    let (cold_reports, cold_secs, cold_counters) = {
        let store = Store::open(&dir).expect("store opens");
        let before = store.stats().stages;
        let (reports, secs) = sweep(&fsm, &store);
        store.persist().expect("index persists");
        (reports, secs, delta(&store.stats().stages, &before))
    };

    let (warm_reports, warm_secs, warm_counters) = {
        let store = Store::open(&dir).expect("store reopens");
        let before = store.stats().stages;
        let (reports, secs) = sweep(&fsm, &store);
        (reports, secs, delta(&store.stats().stages, &before))
    };
    let _ = std::fs::remove_dir_all(&dir);

    for (i, (cold, warm)) in cold_reports.iter().zip(&warm_reports).enumerate() {
        assert_reports_match(cold, warm, LATENCIES[i]);
    }
    let warm_misses: u64 = warm_counters.iter().map(|(_, c)| c.misses).sum();
    assert_eq!(warm_misses, 0, "warm sweep must be all hits");

    let speedup = cold_secs / warm_secs.max(1e-9);
    let stage_json = |counters: &[(String, StageCounters)]| {
        Json::Object(
            counters
                .iter()
                .map(|(s, c)| (s.clone(), counters_json(c)))
                .collect(),
        )
    };
    let doc = Json::Object(vec![
        ("schema".into(), Json::str("ced-store-bench/1")),
        ("machine".into(), Json::str("tav")),
        ("quick".into(), Json::Bool(quick)),
        (
            "latencies".into(),
            Json::Array(LATENCIES.iter().map(|&p| Json::UInt(p as u64)).collect()),
        ),
        ("cold_secs".into(), Json::Float(cold_secs)),
        ("warm_secs".into(), Json::Float(warm_secs)),
        ("speedup".into(), Json::Float(speedup)),
        ("cold_stages".into(), stage_json(&cold_counters)),
        ("warm_stages".into(), stage_json(&warm_counters)),
    ]);
    println!("{}", doc.render());
    eprintln!(
        "store p-sweep on tav: cold {cold_secs:.3}s, warm {warm_secs:.3}s, speedup {speedup:.1}x \
         (reports identical, warm sweep served entirely from the store)"
    );
}
