//! Criterion bench for experiment E1: the end-to-end Table-1 pipeline
//! (synthesis → fault simulation → detectability → Algorithm 1 →
//! checker costing) on representative circuits of the capped suite.

use ced_bench::bench_options;
use ced_core::pipeline::run_circuit;
use ced_fsm::suite::paper_table1_scaled;
use ced_logic::gate::CellLibrary;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_table1(c: &mut Criterion) {
    let lib = CellLibrary::new();
    let options = bench_options();
    let mut group = c.benchmark_group("table1");
    group.sample_size(10);
    for name in ["s27", "tav", "donfile"] {
        let spec = paper_table1_scaled()
            .into_iter()
            .find(|s| s.name == name)
            .expect("suite circuit");
        let fsm = spec.build();
        group.bench_function(name, |b| {
            b.iter(|| {
                let report =
                    run_circuit(black_box(&fsm), &[1, 2, 3], &options, &lib).expect("pipeline");
                black_box(report.latencies.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
