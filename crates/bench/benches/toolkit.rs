//! Criterion bench of the FSM-toolkit extensions: state minimization,
//! sequential equivalence checking, the register-upset error model and
//! fault-dictionary construction.

use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_fsm::minimize::minimize_states;
use ced_sim::diagnose::FaultDictionary;
use ced_sim::equiv::check_equivalence;
use ced_sim::models::register_upset_table;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn machine(states: usize, seed: u64) -> ced_fsm::Fsm {
    generate(&GeneratorConfig {
        name: format!("toolkit{states}"),
        num_inputs: 2,
        num_states: states,
        num_outputs: 3,
        cubes_per_state: 4,
        self_loop_bias: 0.2,
        output_dc_prob: 0.0,
        output_pool: 3,
        seed,
    })
}

fn bench_toolkit(c: &mut Criterion) {
    let options = PipelineOptions::paper_defaults();
    let fsm = machine(12, 5);
    let circuit = synthesize_circuit(&fsm, &options).expect("ok");
    let faults = fault_list(&circuit, &options);
    let masks: Vec<u64> = (0..circuit.total_bits()).map(|b| 1 << b).collect();

    let mut group = c.benchmark_group("toolkit");
    group.sample_size(10);

    group.bench_function("minimize_states_12", |b| {
        b.iter(|| black_box(minimize_states(&fsm).expect("complete").num_states()))
    });

    group.bench_function("equivalence_self", |b| {
        b.iter(|| black_box(check_equivalence(&circuit, &circuit).is_equivalent()))
    });

    group.bench_function("register_upset_table_p2", |b| {
        b.iter(|| black_box(register_upset_table(&circuit, 2).len()))
    });

    group.bench_function("fault_dictionary_build", |b| {
        b.iter(|| black_box(FaultDictionary::build(&circuit, &faults, &masks).num_faults()))
    });
    group.finish();
}

criterion_group!(benches, bench_toolkit);
criterion_main!(benches);
