//! Ablations A1/A2: solver-quality comparison.
//!
//! For each circuit and latency bound, compares the number of parity
//! functions found by
//!
//! * **LP + randomized rounding** (the paper's Algorithm 1, symmetric
//!   LP form),
//! * the **full Statement-5 LP** form (A2),
//! * the **greedy** local-search cover baseline,
//! * the **exact** minimum (small instances only),
//!
//! plus the q = n duplication-style upper bound.
//!
//! `cargo run -p ced-bench --release --bin ablation -- --quick`

use ced_bench::HarnessArgs;
use ced_core::exact::exact_minimum_cover;
use ced_core::greedy::{greedy_cover, GreedyOptions};
use ced_core::pipeline::{build_input_model, fault_list, prepare_machine, PipelineOptions};
use ced_core::relax::LpForm;
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_sim::detect::{DetectOptions, DetectabilityTable};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.latencies == vec![1, 2, 3] {
        args.latencies = vec![1, 2];
    }
    let specs = args.specs();
    let options = PipelineOptions::paper_defaults();

    println!(
        "{:<10} {:>3} {:>6} | {:>6} {:>7} {:>7} {:>6} {:>4}",
        "circuit", "p", "m", "lp+rr", "full-lp", "greedy", "exact", "n"
    );
    for spec in specs {
        let fsm = spec.build();
        let (encoded, circuit) = match prepare_machine(&fsm, &options) {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("{}: {e}", spec.name);
                continue;
            }
        };
        let input_model =
            build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
        let faults = fault_list(&circuit, &options);
        for &p in &args.latencies {
            let built = DetectabilityTable::build(
                &circuit,
                &faults,
                &DetectOptions {
                    latency: p,
                    input_model: input_model.clone(),
                    ..DetectOptions::default()
                },
            );
            let table = match built {
                Ok((t, _)) => t,
                Err(e) => {
                    eprintln!("{}: {e}", spec.name);
                    continue;
                }
            };
            let sym = minimize_parity_functions(&table, &CedOptions::default());
            // The literal Statement-5 LP is q× larger; keep its tableau
            // tractable with a tighter lazy-row cap (verification stays
            // exact against the full table).
            let full = minimize_parity_functions(
                &table,
                &CedOptions {
                    form: LpForm::Full,
                    lp_row_cap: 48,
                    iterations: 300,
                    ..CedOptions::default()
                },
            );
            let greedy = greedy_cover(&table, &GreedyOptions::default());
            let exact = if table.num_bits() <= 12 && table.len() <= 400 {
                exact_minimum_cover(&table)
                    .map(|c| c.len().to_string())
                    .unwrap_or_else(|| "-".into())
            } else {
                "-".into()
            };
            println!(
                "{:<10} {:>3} {:>6} | {:>6} {:>7} {:>7} {:>6} {:>4}",
                spec.name,
                p,
                table.len(),
                sym.q,
                full.q,
                greedy.len(),
                exact,
                table.num_bits()
            );
            assert!(table.all_covered(&sym.cover.masks));
            assert!(table.all_covered(&full.cover.masks));
            assert!(table.all_covered(&greedy.masks));
        }
    }
    println!("\nall reported covers verified against Statement 4 (exact check).");
}
