//! Experiment E7: parity CED vs the convolutional-code scheme.
//!
//! The paper (§1) notes the only prior bounded-latency method uses
//! convolutional codes (Holmquist & Kinney) but that "no indication of
//! its cost is provided", and (§2) that SEU-class faults demand its
//! memory. This harness provides both sides of that trade:
//!
//! * **cost** — checker gates/area/FFs of the paper's multi-tree parity
//!   CED at p = 1, 2 vs a memory-2 convolutional checker;
//! * **coverage** — the parity method covers the detectability table by
//!   construction; the single-parity convolutional compaction has a
//!   ceiling (even-weight discrepancies are invisible);
//! * **SEU resilience** — detection rates for 1-cycle faults, where the
//!   convolutional memory keeps working after the fault is gone.
//!
//! `cargo run -p ced-bench --release --bin conv_compare -- --quick`

use ced_bench::HarnessArgs;
use ced_core::convolutional::{simulate_convolutional_detection, ConvOutcome, ConvolutionalCed};
use ced_core::pipeline::{build_input_model, fault_list, prepare_machine, PipelineOptions};
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_core::synthesize_ced;
use ced_logic::gate::CellLibrary;
use ced_logic::MinimizeOptions;
use ced_sim::detect::{DetectOptions, DetectabilityTable};

fn main() {
    let mut args = HarnessArgs::parse();
    if args.latencies == vec![1, 2, 3] {
        args.latencies = vec![1, 2];
    }
    let options = PipelineOptions::paper_defaults();
    let lib = CellLibrary::new();
    println!(
        "{:<10} | {:>22} | {:>22} | {:>28}",
        "circuit", "parity p=2 (q, area)", "conv m=2 (area, ceil%)", "SEU detect% (parity/conv)"
    );

    for spec in args.specs() {
        let fsm = spec.build();
        let Ok((encoded, circuit)) = prepare_machine(&fsm, &options) else {
            continue;
        };
        let input_model =
            build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
        let faults = fault_list(&circuit, &options);
        let Ok((table, _)) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: 2,
                input_model,
                ..DetectOptions::default()
            },
        ) else {
            eprintln!("{}: table overflow", spec.name);
            continue;
        };

        // Paper method at p = 2.
        let outcome = minimize_parity_functions(&table, &CedOptions::default());
        let parity_hw = synthesize_ced(&circuit, &outcome.cover, 2, &MinimizeOptions::default());
        let parity_cost = parity_hw.cost(&lib);

        // Convolutional checker, memory 2 (same worst-case latency).
        let conv = ConvolutionalCed::for_circuit(&circuit, 2);
        let conv_cost = conv.cost(&circuit, &lib);
        let ceiling = conv.coverage_ceiling(&table);

        // SEU scenario: persistence-1 faults; count per-fault detection.
        let trials = 6u64;
        let mut conv_hit = 0usize;
        let mut conv_seen = 0usize;
        let mut parity_hit = 0usize;
        let mut parity_seen = 0usize;
        for (i, &fault) in faults.iter().enumerate().take(60) {
            for t in 0..trials {
                let seed = 0xE7 ^ (i as u64) << 8 ^ t;
                match simulate_convolutional_detection(
                    &circuit, &conv, fault, t as usize, 1, 300, seed,
                ) {
                    ConvOutcome::Detected { .. } => {
                        conv_seen += 1;
                        conv_hit += 1;
                    }
                    ConvOutcome::Missed => conv_seen += 1,
                    _ => {}
                }
                // Parity method under the same SEU: detection possible
                // only while the fault is alive (1 cycle).
                match ced_sim::coverage::simulate_transient_fault_detection(
                    &circuit,
                    fault,
                    &outcome.cover.masks,
                    2,
                    t as usize,
                    1,
                    300,
                    seed,
                ) {
                    ced_sim::coverage::TransientOutcome::Detected { .. } => {
                        parity_seen += 1;
                        parity_hit += 1;
                    }
                    ced_sim::coverage::TransientOutcome::Escaped => parity_seen += 1,
                    _ => {}
                }
            }
        }
        let pct = |hit: usize, seen: usize| {
            if seen == 0 {
                100.0
            } else {
                100.0 * hit as f64 / seen as f64
            }
        };
        println!(
            "{:<10} | q={:<2} area={:>9.1} | area={:>9.1} ceil={:>4.0}% | {:>10.1}% / {:>10.1}%",
            spec.name,
            outcome.q,
            parity_cost.area,
            conv_cost.area,
            100.0 * ceiling,
            pct(parity_hit, parity_seen),
            pct(conv_hit, conv_seen),
        );
    }
    println!(
        "\nceil% = fraction of erroneous cases a single-parity compaction can\n\
         ever see; SEU detect% counts persistence-1 faults whose visible\n\
         errors were flagged (parity: within its live window only)."
    );
}
