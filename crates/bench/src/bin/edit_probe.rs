//! Diagnostic probe for the incremental-edit design: where a full
//! `check`-style analysis of the `ced gen` scaling machine spends its
//! time — synthesis, per-fault table extraction, erroneous-case
//! enumeration, and the cover search — per latency bound. The split
//! decides which stages per-fault fragment reuse can actually save.
//!
//! `cargo run -p ced-bench --release --bin edit_probe -- 10 1 2 3`

use ced_core::pipeline::{build_input_model, fault_list, prepare_machine, PipelineOptions};
use ced_core::search::minimize_parity_functions;
use ced_fsm::generator::{generate, scaled_workload};
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::tables::TransitionTables;
use std::time::Instant;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (scale, latencies) = match args.split_first() {
        Some((&s, rest)) if !rest.is_empty() => (s, rest.to_vec()),
        Some((&s, _)) => (s, vec![1, 2, 3]),
        None => (10, vec![1, 2, 3]),
    };
    let options = PipelineOptions::paper_defaults();
    let fsm = generate(&scaled_workload(scale, 3));

    let start = Instant::now();
    let (encoded, circuit) = prepare_machine(&fsm, &options).expect("synthesis");
    let synth_ms = ms(start);
    let input_model =
        build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
    let faults = fault_list(&circuit, &options);
    println!(
        "gen{scale}x: {} states, {} gates, {} faults, synth {synth_ms:.1} ms",
        1 << circuit.state_bits(),
        circuit.gate_count(),
        faults.len()
    );

    let start = Instant::now();
    let mut count = 0usize;
    for &f in &faults {
        let bad = TransitionTables::faulty(&circuit, f);
        count += bad.num_outputs();
    }
    let extract_ms = ms(start);
    println!(
        "extraction of all {} fault tables: {extract_ms:.1} ms ({count})",
        faults.len()
    );

    for &p in &latencies {
        let start = Instant::now();
        let (table, stats) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p,
                input_model: input_model.clone(),
                semantics: options.semantics,
                fault_model: options.fault_model,
                ..DetectOptions::default()
            },
        )
        .expect("fits");
        let tensor_ms = ms(start);
        let start = Instant::now();
        let outcome = minimize_parity_functions(&table, &options.ced);
        let search_ms = ms(start);
        println!(
            "p={p}: tensor {tensor_ms:.1} ms ({} rows, {} raw, {} activations) search {search_ms:.1} ms (q={})",
            table.len(),
            stats.rows_raw,
            stats.activations,
            outcome.q
        );
    }
}
