//! Diagnostic probe: where the analytic core spends its time under
//! each engine, phase by phase — LP solves (dense tableau vs sparse
//! rows), rounding verification (row-major vs packed + case kernel),
//! and greedy scoring — on the `ced gen` scaling workload.
//!
//! `cargo run -p ced-bench --release --bin engine_probe -- 3 10`
//! probes the generated machines at the listed scales.

use ced_core::pipeline::{synthesize_circuit, PipelineOptions};
use ced_core::round::{round_cover_with, RoundingOptions};
use ced_core::{build_relaxation, LpForm};
use ced_fsm::generator::{generate, scaled_workload};
use ced_lp::{solve_budgeted, solve_budgeted_sparse};
use ced_runtime::Budget;
use ced_sim::detect::{DetectOptions, DetectabilityTable};
use ced_sim::fault::collapsed_faults;
use ced_sim::packed::SparseTables;
use std::time::Instant;

fn ms(start: Instant) -> f64 {
    start.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let scales: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let scales = if scales.is_empty() { vec![3] } else { scales };
    let pipeline = PipelineOptions::paper_defaults();

    for scale in scales {
        let fsm = generate(&scaled_workload(scale, 3));
        let circuit = synthesize_circuit(&fsm, &pipeline).expect("synthesis");
        let faults = collapsed_faults(circuit.netlist());
        let (table, _) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: 2,
                ..DetectOptions::default()
            },
        )
        .expect("fits");
        let reduced = table.dominance_reduced().sorted_by_difficulty();
        let start = Instant::now();
        let sparse = SparseTables::build(&reduced);
        let build_ms = ms(start);
        println!(
            "gen{scale}x: n={} cases={} reduced={} kernel={} (packed build {build_ms:.2} ms)",
            table.num_bits(),
            table.len(),
            reduced.len(),
            sparse.kernel().len()
        );

        for q in [3usize, 4, 5] {
            let rows: Vec<usize> = (0..reduced.len().min(256)).collect();
            let relax = build_relaxation(&reduced, q, LpForm::Symmetric, &rows);
            let start = Instant::now();
            let dense_lp = solve_budgeted(&relax.lp, &Budget::unlimited());
            let dense_ms = ms(start);
            let start = Instant::now();
            let sparse_lp = solve_budgeted_sparse(&relax.lp, &Budget::unlimited());
            let sparse_lp_ms = ms(start);
            let betas = match (dense_lp, sparse_lp) {
                (Ok(d), Ok(s)) => {
                    assert_eq!(d, s, "LP solutions must agree");
                    println!(
                        "  q={q}: {} constraints, {} vars, {} simplex iterations",
                        relax.lp.num_constraints(),
                        relax.lp.num_variables(),
                        d.iterations
                    );
                    relax.fractional_betas(&d.x)
                }
                _ => continue,
            };
            let opts = RoundingOptions {
                iterations: 1000,
                seed: 0,
            };
            let start = Instant::now();
            let dense_round = round_cover_with(&reduced, None, q, &betas, &opts);
            let dense_round_ms = ms(start);
            let start = Instant::now();
            let sparse_round = round_cover_with(&reduced, Some(&sparse), q, &betas, &opts);
            let sparse_round_ms = ms(start);
            assert_eq!(dense_round.is_ok(), sparse_round.is_ok());
            println!(
                "  q={q}: lp dense {dense_ms:8.2} ms sparse {sparse_lp_ms:8.2} ms ({:4.1}x) | \
                 round dense {dense_round_ms:8.2} ms sparse {sparse_round_ms:8.2} ms ({:4.1}x) \
                 feasible={}",
                dense_ms / sparse_lp_ms.max(1e-9),
                dense_round_ms / sparse_round_ms.max(1e-9),
                dense_round.is_ok()
            );
        }
    }
}
