//! Experiment E3: the latency-saturation study of the paper's §2/§5.
//!
//! Sweeps p = 1..5 per circuit, reports the parity-function count at
//! each bound next to the machine's self-loop density and the exact
//! maximum useful latency from the shortest faulty-machine loop
//! (`ced_sim::loops::max_useful_latency`). Expected shape: self-loop
//! heavy machines (donfile, s27, s386 analogues) saturate immediately;
//! loop-light ones (pma, s298, s1488 analogues) keep improving longer.
//!
//! `cargo run -p ced-bench --release --bin latency_sweep -- --quick`

use ced_bench::HarnessArgs;
use ced_core::pipeline::{fault_list, run_circuit, synthesize_circuit, PipelineOptions};
use ced_logic::gate::CellLibrary;
use ced_sim::loops::max_useful_latency;

fn main() {
    let mut args = HarnessArgs::parse();
    if args.latencies == vec![1, 2, 3] {
        args.latencies = vec![1, 2, 3, 4, 5];
    }
    let specs = args.specs();
    let options = PipelineOptions::paper_defaults();
    let lib = CellLibrary::new();

    println!(
        "{:<10} {:>9} {:>5} | {}",
        "circuit",
        "selfloop%",
        "p*",
        args.latencies
            .iter()
            .map(|p| format!("q(p={p})"))
            .collect::<Vec<_>>()
            .join("  ")
    );

    for spec in specs {
        let fsm = spec.build();
        let circuit = match synthesize_circuit(&fsm, &options) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("{}: {e}", spec.name);
                continue;
            }
        };
        let faults = fault_list(&circuit, &options);
        let p_star = max_useful_latency(&circuit, &faults);
        match run_circuit(&fsm, &args.latencies, &options, &lib) {
            Ok(report) => {
                let qs: Vec<String> = report
                    .latencies
                    .iter()
                    .map(|l| format!("{:>6}", l.cover.len()))
                    .collect();
                println!(
                    "{:<10} {:>8.0}% {:>5} | {}",
                    spec.name,
                    fsm.self_loop_fraction() * 100.0,
                    p_star,
                    qs.join("  ")
                );
            }
            Err(e) => eprintln!("{}: {e}", spec.name),
        }
    }
    println!(
        "\np* = exact maximum useful latency (max over faults of the \
         shortest faulty-machine loop). q should be non-increasing in p \
         and flat beyond p*."
    );
}
