//! Quick A/B of the LP objective variants on suite circuits.
//!
//! `cargo run -p ced-bench --release --bin objective_probe -- --quick`

use ced_bench::HarnessArgs;
use ced_core::pipeline::{build_input_model, fault_list, prepare_machine, PipelineOptions};
use ced_core::relax::LpObjective;
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_sim::detect::{DetectOptions, DetectabilityTable};

fn main() {
    let args = HarnessArgs::parse();
    let options = PipelineOptions::paper_defaults();
    println!(
        "{:<10} {:>3} | {:>10} {:>12} {:>7}",
        "circuit", "p", "sparse-β", "max-coverage", "greedy"
    );
    for spec in args.specs() {
        let fsm = spec.build();
        let Ok((encoded, circuit)) = prepare_machine(&fsm, &options) else {
            continue;
        };
        let model = build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
        let faults = fault_list(&circuit, &options);
        for p in [1usize, 2] {
            let Ok((table, _)) = DetectabilityTable::build(
                &circuit,
                &faults,
                &DetectOptions {
                    latency: p,
                    input_model: model.clone(),
                    ..DetectOptions::default()
                },
            ) else {
                continue;
            };
            let sparse = minimize_parity_functions(&table, &CedOptions::default());
            let spread = minimize_parity_functions(
                &table,
                &CedOptions {
                    objective: LpObjective::MaxCoverage,
                    ..CedOptions::default()
                },
            );
            let greedy =
                ced_core::greedy::greedy_cover(&table, &ced_core::greedy::GreedyOptions::default());
            println!(
                "{:<10} {:>3} | {:>10} {:>12} {:>7}",
                spec.name,
                p,
                sparse.q,
                spread.q,
                greedy.len()
            );
        }
    }
}
