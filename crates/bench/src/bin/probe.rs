//! Diagnostic probe: distribution of first-step difference masks per
//! circuit — how many distinct `D₁` patterns occur, their bit-weights,
//! and the implied lower bound on `q` (the dual-code argument: if all
//! weight-1 patterns occur on every bit, q = n).
//!
//! `cargo run -p ced-bench --release --bin probe -- --quick --circuit cse`

use ced_bench::HarnessArgs;
use ced_core::pipeline::{
    build_input_model, fault_list, prepare_machine, InputGranularity, PipelineOptions,
};
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};
use std::collections::HashSet;

fn main() {
    let args = HarnessArgs::parse();
    let options = PipelineOptions::paper_defaults();
    for spec in args.specs() {
        let fsm = spec.build();
        let (encoded, circuit) = prepare_machine(&fsm, &options).expect("prepare");
        let model = build_input_model(
            encoded.fsm(),
            encoded.encoding(),
            InputGranularity::TransitionCubes,
        );
        let faults = fault_list(&circuit, &options);
        let (t1, stats) = DetectabilityTable::build(
            &circuit,
            &faults,
            &DetectOptions {
                latency: 1,
                semantics: Semantics::Lockstep,
                input_model: model,
                ..DetectOptions::default()
            },
        )
        .expect("fits");
        let n = circuit.total_bits();
        let mut weights = vec![0usize; n + 1];
        let mut bits_seen: HashSet<u32> = HashSet::new();
        for row in t1.rows() {
            let d = row.steps[0];
            weights[d.count_ones() as usize] += 1;
            for b in 0..n {
                if (d >> b) & 1 == 1 {
                    bits_seen.insert(b as u32);
                }
            }
        }
        let singles = weights[1];
        println!(
            "{}: n={} gates={} faults={} distinct_D1={} (of {}) singles={} bits_touched={}",
            spec.name,
            n,
            circuit.gate_count(),
            stats.faults,
            t1.len(),
            (1u64 << n) - 1,
            singles,
            bits_seen.len()
        );
        print!("  weight histogram:");
        for (w, c) in weights.iter().enumerate() {
            if *c > 0 {
                print!(" w{w}:{c}");
            }
        }
        println!();
    }
}
