//! Regenerates the paper's §5 aggregate claims (experiment E2) and the
//! dk16-style anomaly scan (E4):
//!
//! * parity functions / cost vs duplication at p = 1
//!   (paper: 53.00% / 22.40% smaller),
//! * incremental reductions p=1→2 and p=2→3
//!   (paper: 17.0%/7.8% then 7.23%/7.08%),
//! * circuits where the tree count falls but the hardware cost does
//!   not (a single complex parity function can outweigh several simple
//!   ones).
//!
//! `cargo run -p ced-bench --release --bin summary -- --quick`

use ced_bench::HarnessArgs;
use ced_core::pipeline::PipelineOptions;
use ced_core::report::summarize;

fn main() {
    let args = HarnessArgs::parse();
    let specs = args.specs();
    let options = PipelineOptions::paper_defaults();
    let reports = ced_bench::run_suite(&specs, &args.latencies, &options);
    if reports.is_empty() {
        eprintln!("no circuits completed");
        std::process::exit(1);
    }

    let s = summarize(&reports);
    println!(
        "=== E2: §5 aggregate statistics ({} circuits) ===",
        reports.len()
    );
    print!("{s}");
    println!(
        "\npaper reference points: p=1 trees 53.00% / cost 22.40% below \
         duplication; p=1→2 −17.0% / −7.8%; p=2→3 −7.23% / −7.08%"
    );

    println!("\n=== E4: tree-count vs cost proportionality scan ===");
    let mut anomalies = 0usize;
    for r in &reports {
        for w in r.latencies.windows(2) {
            let (a, b) = (&w[0], &w[1]);
            let trees_fell = b.cover.len() < a.cover.len();
            let cost_rose = b.cost.area > a.cost.area + 1e-9;
            if trees_fell && cost_rose {
                anomalies += 1;
                println!(
                    "  {}: p={}→{}: trees {}→{} but cost {:.1}→{:.1} \
                     (complex parity function outweighs count)",
                    r.name,
                    a.latency,
                    b.latency,
                    a.cover.len(),
                    b.cover.len(),
                    a.cost.area,
                    b.cost.area
                );
            }
        }
    }
    if anomalies == 0 {
        println!(
            "  none in this run — the paper saw one (dk16); occurrence \
             depends on which parity functions the rounding samples"
        );
    }
}
