//! Regenerates the paper's **Table 1**: per MCNC-analogue circuit, the
//! original synthesis cost and — for each latency bound p — the number
//! of parity trees, the CED gate count and the CED hardware cost.
//!
//! ```text
//! cargo run -p ced-bench --release --bin table1             # full dims
//! cargo run -p ced-bench --release --bin table1 -- --quick  # capped dims
//! cargo run -p ced-bench --release --bin table1 -- --circuit s27
//! ```
//!
//! Absolute values differ from the paper (synthetic analogue machines,
//! generic cell library — DESIGN.md substitutions (a)/(b)); the shape —
//! monotone reduction with p, diminishing returns, self-loop saturation
//! — is the reproduced quantity. See EXPERIMENTS.md.

use ced_bench::HarnessArgs;
use ced_core::pipeline::PipelineOptions;
use ced_core::report::{summarize, table1_header, table1_row};

fn main() {
    let args = HarnessArgs::parse();
    let specs = args.specs();
    eprintln!(
        "running {} circuits at latencies {:?}…",
        specs.len(),
        args.latencies
    );
    let options = PipelineOptions::paper_defaults();
    let reports = ced_bench::run_suite(&specs, &args.latencies, &options);

    println!("{}", table1_header(&args.latencies));
    for r in &reports {
        println!("{}", table1_row(r));
    }
    if !reports.is_empty() {
        println!(
            "\n--- §5 summary (averages over {} circuits) ---",
            reports.len()
        );
        print!("{}", summarize(&reports));
    }
}
