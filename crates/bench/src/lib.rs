//! Shared helpers for the experiment harnesses and Criterion benches.

use ced_core::pipeline::{run_circuit, CircuitReport, PipelineOptions};
use ced_fsm::suite::{paper_table1, paper_table1_scaled, CircuitSpec};
use ced_logic::gate::CellLibrary;
use ced_runtime::Json;
use std::time::Instant;

/// The short git revision of the working tree, or `"unknown"` outside
/// a repository — stamped into every trajectory row so committed
/// `BENCH_*.json` files can be compared across history.
pub fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One row of the cross-bench performance trajectory: a stable
/// `{rev, machine, n_states, wall_ms}` record shared by every
/// `BENCH_*.json` emitter so a single `jq` query can plot any
/// harness's headline wall-clock over commits.
pub fn trajectory_row(rev: &str, machine: &str, n_states: usize, wall_ms: f64) -> Json {
    Json::Object(vec![
        ("rev".into(), Json::str(rev)),
        ("machine".into(), Json::str(machine)),
        ("n_states".into(), Json::UInt(n_states as u64)),
        ("wall_ms".into(), Json::Float(wall_ms)),
    ])
}

/// Which suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// The full Table-1 interface dimensions (slow; minutes per run).
    Full,
    /// Dimension-capped analogues (seconds; same qualitative shape).
    Quick,
}

impl Suite {
    /// The circuit specs of this suite.
    pub fn specs(self) -> Vec<CircuitSpec> {
        match self {
            Suite::Full => paper_table1(),
            Suite::Quick => paper_table1_scaled(),
        }
    }
}

/// Parses harness CLI arguments of the form
/// `[--quick] [--circuit NAME] [--latencies 1,2,3]`.
#[derive(Debug, Clone)]
pub struct HarnessArgs {
    /// The selected suite.
    pub suite: Suite,
    /// Restrict to one circuit by name.
    pub circuit: Option<String>,
    /// Latency bounds to evaluate.
    pub latencies: Vec<usize>,
}

impl HarnessArgs {
    /// Parses `std::env::args`, exiting with usage help on error.
    pub fn parse() -> HarnessArgs {
        let mut out = HarnessArgs {
            suite: Suite::Full,
            circuit: None,
            latencies: vec![1, 2, 3],
        };
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--quick" => out.suite = Suite::Quick,
                "--circuit" => out.circuit = args.next(),
                "--latencies" => {
                    let list = args.next().unwrap_or_default();
                    out.latencies = list
                        .split(',')
                        .filter_map(|t| t.trim().parse().ok())
                        .collect();
                    if out.latencies.is_empty() {
                        eprintln!("--latencies expects a comma list like 1,2,3");
                        std::process::exit(2);
                    }
                }
                "--help" | "-h" => {
                    eprintln!(
                        "usage: [--quick] [--circuit NAME] [--latencies 1,2,3]\n\
                         --quick    run the dimension-capped suite (seconds)\n\
                         --circuit  run a single Table-1 circuit by name\n\
                         --latencies  latency bounds (default 1,2,3)"
                    );
                    std::process::exit(0);
                }
                other => {
                    eprintln!("unknown argument {other}; try --help");
                    std::process::exit(2);
                }
            }
        }
        out
    }

    /// The circuit specs selected by these arguments.
    pub fn specs(&self) -> Vec<CircuitSpec> {
        let mut specs = self.suite.specs();
        if let Some(name) = &self.circuit {
            specs.retain(|s| s.name == name.as_str());
            if specs.is_empty() {
                eprintln!("no Table-1 circuit named {name}");
                std::process::exit(2);
            }
        }
        specs
    }
}

/// Runs the pipeline for every spec, printing progress to stderr.
pub fn run_suite(
    specs: &[CircuitSpec],
    latencies: &[usize],
    options: &PipelineOptions,
) -> Vec<CircuitReport> {
    let lib = CellLibrary::new();
    let mut reports = Vec::with_capacity(specs.len());
    for spec in specs {
        let start = Instant::now();
        let fsm = spec.build();
        match run_circuit(&fsm, latencies, options, &lib) {
            Ok(report) => {
                eprintln!(
                    "  {:<10} done in {:.1?} ({} erroneous cases at p_max)",
                    spec.name,
                    start.elapsed(),
                    report
                        .latencies
                        .last()
                        .map(|l| l.erroneous_cases)
                        .unwrap_or(0)
                );
                reports.push(report);
            }
            Err(e) => {
                eprintln!("  {:<10} FAILED: {e}", spec.name);
            }
        }
    }
    reports
}

/// A small deterministic pipeline configuration for benches (modest
/// rounding budget so Criterion iterations stay fast).
pub fn bench_options() -> PipelineOptions {
    let mut options = PipelineOptions::paper_defaults();
    options.ced.iterations = 200;
    options
}
