//! Cross-implementation differential check of the cover search.
//!
//! Two cheap, fully independent cross-checks against the rebuilt
//! detectability table:
//!
//! 1. **Table coverage.** The claimed masks must cover every row of a
//!    table rebuilt from scratch — the tensor-side counterpart of the
//!    BFS soundness proof (a disagreement between the two verifiers
//!    would itself expose a bug in one of them).
//! 2. **No regression vs the greedy baseline.** The deterministic
//!    greedy cover ([`ced_core::greedy::greedy_cover`]) is computed on the same
//!    table; if it verifies and needs *strictly fewer* masks than the
//!    certified `q`, the LP + rounding ladder regressed below a
//!    baseline it is supposed to dominate, and the claim "this `q` is
//!    what the method requires" is refuted.

use crate::{Certificate, Refutation, Stage, StageOutcome, Witness};
use ced_core::greedy::{greedy_cover, GreedyOptions};
use ced_runtime::{Budget, Interrupted};
use ced_sim::detect::DetectabilityTable;

/// Runs both differential checks for `masks` against `table`.
///
/// # Errors
///
/// Only budget interruption.
pub fn verify_differential(
    table: &DetectabilityTable,
    masks: &[u64],
    budget: &Budget,
) -> Result<StageOutcome, Interrupted> {
    budget.tick(table.len() as u64, "certify/differential")?;
    if let Some(row) = table.first_uncovered(masks) {
        return Ok(StageOutcome::Refuted(Refutation {
            stage: Stage::Differential,
            witness: Witness::UncoveredRow {
                row,
                steps: table.rows()[row].steps.clone(),
            },
            discrepancy: format!(
                "independently rebuilt table row {row} is detected by none of the {} \
                 claimed masks",
                masks.len()
            ),
        }));
    }

    let greedy = greedy_cover(table, &GreedyOptions::default());
    budget.check("certify/differential")?;
    if table.all_covered(&greedy.masks) && greedy.len() < masks.len() {
        return Ok(StageOutcome::Refuted(Refutation {
            stage: Stage::Differential,
            witness: Witness::CoverRegression {
                claimed_q: masks.len(),
                independent_q: greedy.len(),
            },
            discrepancy: format!(
                "the greedy baseline covers the same table with {} masks, strictly fewer \
                 than the certified {} — the primary search regressed below its baseline",
                greedy.len(),
                masks.len()
            ),
        }));
    }

    Ok(StageOutcome::Certified(Certificate {
        stage: Stage::Differential,
        checked: table.len() as u64,
        detail: format!(
            "claimed cover detects all {} rebuilt rows; independent greedy needs {} masks \
             (≥ certified {})",
            table.len(),
            greedy.len(),
            masks.len()
        ),
    }))
}
