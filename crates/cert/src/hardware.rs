//! Hardware-level certification: synthesis equivalence and checker
//! co-simulation.
//!
//! **Synthesis equivalence.** The pipeline ships one synthesis of the
//! machine (shared logic across output cones by default). The verifier
//! re-synthesizes the same encoded machine down the *other* path —
//! isolated per-output cones — and proves the two netlists sequentially
//! equivalent by the product-machine BFS of [`ced_sim::equiv`]. A bug
//! in cover minimization, sharing, or netlist construction that changes
//! observable behavior shows up as a concrete distinguishing input
//! sequence.
//!
//! **Checker co-simulation.** The synthesized Fig. 3 checker
//! ([`ced_core::synthesize_ced`]) must raise `ERROR` on a transition
//! `(state, input)` with corrupted monitored bits `actual ⊕ e` iff some
//! claimed parity mask sees an odd overlap with `e` — the behavioral
//! spec, evaluated here directly on the mask bitmasks without touching
//! the predictor logic. Reachable states × the claimed input universe ×
//! all `2ⁿ` corruptions are swept exhaustively when that fits the
//! pattern budget, else a deterministic LCG sample of the same space
//! (always including `e = 0`, the no-false-alarm case).

use crate::{Certificate, Refutation, Stage, StageOutcome, Witness};
use ced_core::pipeline::prepare_machine;
use ced_core::{synthesize_ced, ParityCover, PipelineOptions};
use ced_fsm::encoded::FsmCircuit;
use ced_fsm::machine::Fsm;
use ced_logic::MinimizeOptions;
use ced_runtime::{Budget, Interrupted};
use ced_sim::detect::InputModel;
use ced_sim::equiv::{check_equivalence, EquivalenceResult};
use ced_sim::tables::TransitionTables;

/// Proves the shipped synthesis equivalent to an independent one.
///
/// `circuit` must be the synthesis produced under `pipeline`; the
/// verifier re-prepares the machine with `isolate_output_logic`
/// flipped, yielding a structurally different netlist of the same
/// specification, and BFSes the product machine.
///
/// # Errors
///
/// Only budget interruption.
pub fn verify_synthesis(
    fsm: &Fsm,
    pipeline: &PipelineOptions,
    circuit: &FsmCircuit,
    budget: &Budget,
) -> Result<StageOutcome, Interrupted> {
    budget.check("certify/synthesis")?;
    let mut alt = pipeline.clone();
    alt.isolate_output_logic = !pipeline.isolate_output_logic;
    let other = match prepare_machine(fsm, &alt) {
        Ok((_, c)) => c,
        Err(e) => {
            return Ok(StageOutcome::Refused {
                stage: Stage::Synthesis,
                reason: format!("independent re-synthesis failed: {e}"),
            });
        }
    };
    let outcome = match check_equivalence(circuit, &other) {
        EquivalenceResult::Equivalent { explored } => {
            budget.tick(explored as u64, "certify/synthesis")?;
            StageOutcome::Certified(Certificate {
                stage: Stage::Synthesis,
                checked: explored as u64,
                detail: format!(
                    "shared-logic and isolated-cone syntheses proven sequentially equivalent \
                     ({explored} reachable product states explored)"
                ),
            })
        }
        EquivalenceResult::Inequivalent {
            counterexample,
            output_a,
            output_b,
        } => StageOutcome::Refuted(Refutation {
            stage: Stage::Synthesis,
            discrepancy: format!(
                "two syntheses of the same machine disagree after {} cycle(s): \
                 outputs {output_a:#x} vs {output_b:#x}",
                counterexample.len()
            ),
            witness: Witness::SynthesisMismatch {
                counterexample,
                output_a,
                output_b,
            },
        }),
        EquivalenceResult::InterfaceMismatch => StageOutcome::Refused {
            stage: Stage::Synthesis,
            reason: "re-synthesis produced a different interface (cannot compare)".into(),
        },
    };
    Ok(outcome)
}

/// Co-simulates the synthesized checker against the behavioral parity
/// spec.
///
/// # Errors
///
/// Only budget interruption.
#[allow(clippy::too_many_arguments)]
pub fn verify_checker(
    circuit: &FsmCircuit,
    cover: &ParityCover,
    latency: usize,
    minimize: &MinimizeOptions,
    input_model: &InputModel,
    max_patterns: u64,
    seed: u64,
    budget: &Budget,
) -> Result<StageOutcome, Interrupted> {
    budget.check("certify/checker")?;
    let hw = synthesize_ced(circuit, cover, latency, minimize);
    let good = TransitionTables::good(circuit);
    let r = good.num_inputs();
    let n = circuit.total_bits();
    let corruptions: u64 = 1u64 << n;
    let states = good.reachable_codes();
    let masks = hw.masks();

    let spec = |e: u64| masks.iter().any(|&m| (e & m).count_ones() & 1 == 1);
    let check_one = |c: u64, a: u64, e: u64| -> Option<StageOutcome> {
        let actual = good.response(c, a) ^ e;
        let observed = hw.flags(c, a, actual);
        let expected = spec(e);
        (observed != expected).then(|| {
            StageOutcome::Refuted(Refutation {
                stage: Stage::Checker,
                discrepancy: format!(
                    "checker netlist {} on state {c:#x}, input {a:#x}, corruption {e:#x} \
                     but the parity spec over the {} masks says ERROR = {expected}",
                    if observed { "flags" } else { "stays quiet" },
                    masks.len()
                ),
                witness: Witness::CheckerMismatch {
                    state: c,
                    input: a,
                    corruption: e,
                    expected,
                    observed,
                },
            })
        })
    };

    // Enumerate the (state, input) transition list once; corruptions
    // multiply it into the full pattern space.
    let mut inputs = Vec::new();
    let mut transitions: Vec<(u64, u64)> = Vec::new();
    for &c in &states {
        input_model.inputs_at(c, r, &mut inputs);
        transitions.extend(inputs.iter().map(|&a| (c, a)));
    }
    let total = transitions.len() as u64 * corruptions;

    let mut checked: u64 = 0;
    if total <= max_patterns {
        for &(c, a) in &transitions {
            budget.tick(corruptions, "certify/checker")?;
            for e in 0..corruptions {
                checked += 1;
                if let Some(refuted) = check_one(c, a, e) {
                    return Ok(refuted);
                }
            }
        }
        Ok(StageOutcome::Certified(Certificate {
            stage: Stage::Checker,
            checked,
            detail: format!(
                "exhaustive co-simulation: {} transitions × {corruptions} corruptions all \
                 match the behavioral parity spec",
                transitions.len()
            ),
        }))
    } else {
        // Deterministic LCG sweep over the same space; e = 0 first so
        // the no-false-alarm case is always exercised.
        let mut x = seed ^ 0x9E37_79B9_7F4A_7C15;
        let mut lcg = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        for sample in 0..max_patterns {
            if sample % 1024 == 0 {
                budget.tick(1024.min(max_patterns - sample), "certify/checker")?;
            }
            let (c, a) = transitions[(lcg() % transitions.len() as u64) as usize];
            let e = if sample < transitions.len() as u64 {
                0
            } else {
                lcg() & (corruptions - 1)
            };
            checked += 1;
            if let Some(refuted) = check_one(c, a, e) {
                return Ok(refuted);
            }
        }
        Ok(StageOutcome::Certified(Certificate {
            stage: Stage::Checker,
            checked,
            detail: format!(
                "sampled co-simulation: {checked} of {total} patterns (deterministic seed \
                 {seed}) match the behavioral parity spec"
            ),
        }))
    }
}
