//! # ced-cert — trust-but-verify certification of pipeline claims
//!
//! The main pipeline (`ced-core`) *produces* bounded-latency CED
//! solutions; this crate independently *re-proves* them with different
//! algorithms, so that a bug in an enumeration, a solver, or a
//! synthesis step cannot silently ship a wrong `(q, p)` claim. Each
//! pipeline stage gets a verifier that shares as little code as
//! possible with the stage it checks:
//!
//! | claim | produced by | re-proved by |
//! |---|---|---|
//! | the `q` masks detect every erroneous case within `p` | table-driven DFS ([`ced_sim::detect`]) | BFS over the good×faulty product machine ([`soundness`]) |
//! | the LP at `q` is feasible / the float optimum is real | `f64` simplex ([`ced_lp::simplex`]) | exact rational re-evaluation ([`lp_check`], [`ced_lp::rational`]) |
//! | the synthesized netlists implement the machine | two-level synthesis | sequential equivalence of two independent syntheses ([`ced_sim::equiv`]) |
//! | the checker hardware raises `ERROR` exactly per spec | predictor/comparator synthesis | co-simulation against the behavioral parity spec ([`hardware`]) |
//! | `q` is not worse than a cheap baseline would give | LP + rounding ladder | independent greedy cover ([`differential`]) |
//!
//! Every verifier returns a typed [`Certificate`] (what was checked and
//! how much of it) or a typed [`Refutation`] naming the failing stage,
//! a concrete witness — an erroneous case the cover misses, an input
//! path, an LP row — and the discrepancy. Verifiers never claim more
//! than they proved: an exact check whose arithmetic overflows, or a
//! float answer whose slack is inside the [`ced_lp::EPS`] refusal band,
//! comes back [`StageOutcome::Refused`], not certified.
//!
//! All verifiers are budget-aware ([`ced_runtime::Budget`]): a deadline
//! or cancellation interrupts cleanly with [`CertError::Interrupted`].

#![warn(missing_docs)]
// Indexed loops over bit positions and LP variables mirror the math;
// the iterator forms clippy prefers obscure the index arithmetic that
// the certification argument relies on.
#![allow(clippy::needless_range_loop)]

pub mod differential;
pub mod hardware;
pub mod lp_check;
pub mod report;
pub mod soundness;

use ced_core::pipeline::{build_input_model, fault_list, prepare_machine_stored};
use ced_core::{CircuitReport, PipelineOptions};
use ced_fsm::machine::Fsm;
use ced_par::ParExec;
use ced_runtime::{Budget, Interrupted};
use ced_sim::detect::{BuildControl, DetectError, DetectOptions, DetectabilityTable};
use ced_sim::fault::Fault;
use ced_store::Store;
use std::fmt;

/// Which pipeline claim a certificate or refutation is about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// The cover detects every erroneous case within the latency bound
    /// (re-proved by BFS over the good×faulty product machine).
    Soundness,
    /// The LP relaxation at the claimed `q` is feasible, and the float
    /// optimum that drove rounding is genuinely feasible (re-proved in
    /// exact rational arithmetic).
    Lp,
    /// Two independently synthesized netlists of the machine are
    /// sequentially equivalent (shared-logic vs isolated-cone
    /// synthesis).
    Synthesis,
    /// The synthesized checker raises `ERROR` iff some parity tree sees
    /// an odd corruption (co-simulation against the behavioral spec).
    Checker,
    /// An independent greedy cover does not beat the certified `q`, and
    /// the claimed cover covers an independently rebuilt table.
    Differential,
}

impl fmt::Display for Stage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Stage::Soundness => "solution-soundness",
            Stage::Lp => "lp-certificate",
            Stage::Synthesis => "synthesis-equivalence",
            Stage::Checker => "checker-cosim",
            Stage::Differential => "differential",
        };
        write!(f, "{s}")
    }
}

/// One transition of a counterexample path: the states the good and
/// faulty machines were in, the applied input, and the response
/// difference observed on the monitored bits.
///
/// Under [`ced_sim::detect::Semantics::FaultyTrajectory`] the predictor
/// reads the same (faulty-trajectory) present state as the actual
/// machine, so `good_state == faulty_state` on every step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessStep {
    /// Good-machine (predictor-vantage) state code.
    pub good_state: u64,
    /// Faulty-machine state code.
    pub faulty_state: u64,
    /// Applied input minterm.
    pub input: u64,
    /// Response difference mask over the monitored bits (`0` = silent).
    pub difference: u64,
}

/// The concrete evidence inside a [`Refutation`].
#[derive(Debug, Clone, PartialEq)]
pub enum Witness {
    /// An erroneous case the cover misses: a fault, an activation and
    /// `p` further steps on which every parity mask sees even overlap.
    UndetectedPath {
        /// The stuck-at fault whose effect escapes detection.
        fault: Fault,
        /// The path, starting with the activation step; every step's
        /// `difference` has even overlap with every claimed mask.
        steps: Vec<WitnessStep>,
    },
    /// An exactly-violated LP constraint row (or variable bound).
    LpRow {
        /// Constraint row index in the re-built program (or the
        /// variable index when `bound_of_var`).
        row: usize,
        /// True when the witness is a variable bound, not a row.
        bound_of_var: bool,
        /// The exact signed slack, reported as `f64` (negative =
        /// violated).
        slack: f64,
    },
    /// A table row the claimed cover leaves undetected.
    UncoveredRow {
        /// Row index in the independently rebuilt table.
        row: usize,
        /// The row's per-step difference masks.
        steps: Vec<u64>,
    },
    /// An input sequence on which two syntheses of the same machine
    /// disagree.
    SynthesisMismatch {
        /// Distinguishing input sequence, one minterm per cycle.
        counterexample: Vec<u64>,
        /// Shared-logic synthesis output on the last cycle.
        output_a: u64,
        /// Isolated-cone synthesis output on the last cycle.
        output_b: u64,
    },
    /// A transition on which the synthesized checker disagrees with the
    /// behavioral parity spec.
    CheckerMismatch {
        /// Present-state code.
        state: u64,
        /// Applied input minterm.
        input: u64,
        /// Corruption XORed onto the monitored bits.
        corruption: u64,
        /// What the parity spec says the `ERROR` flag should be.
        expected: bool,
        /// What the netlist actually produced.
        observed: bool,
    },
    /// An independent solver found a strictly smaller cover than the
    /// one certified.
    CoverRegression {
        /// The pipeline's claimed number of parity functions.
        claimed_q: usize,
        /// The independent cover's (smaller) size.
        independent_q: usize,
    },
}

/// A verified claim: which stage, how much evidence was examined, and a
/// human-readable account of the method.
#[derive(Debug, Clone, PartialEq)]
pub struct Certificate {
    /// The certified stage.
    pub stage: Stage,
    /// Units of evidence examined (activations, constraint rows,
    /// co-simulated transitions, …) — stage-specific, for scale only.
    pub checked: u64,
    /// How the claim was re-proved.
    pub detail: String,
}

/// A disproved claim: which stage, the concrete witness, and what the
/// discrepancy is.
#[derive(Debug, Clone, PartialEq)]
pub struct Refutation {
    /// The refuted stage.
    pub stage: Stage,
    /// Concrete evidence (replayable by the caller).
    pub witness: Witness,
    /// Human-readable account of the mismatch.
    pub discrepancy: String,
}

/// Outcome of one verifier.
#[derive(Debug, Clone, PartialEq)]
pub enum StageOutcome {
    /// The claim was independently re-proved.
    Certified(Certificate),
    /// The claim was disproved, with a witness.
    Refuted(Refutation),
    /// The verifier could not decide — exact arithmetic overflowed, or
    /// a float answer sat inside the refusal band. Never treated as
    /// certified.
    Refused {
        /// The stage that refused.
        stage: Stage,
        /// Why certification was withheld.
        reason: String,
    },
}

impl StageOutcome {
    /// True iff the stage certified its claim.
    pub fn is_certified(&self) -> bool {
        matches!(self, StageOutcome::Certified(_))
    }

    /// True iff the stage refuted its claim.
    pub fn is_refuted(&self) -> bool {
        matches!(self, StageOutcome::Refuted(_))
    }

    /// The stage this outcome belongs to.
    pub fn stage(&self) -> Stage {
        match self {
            StageOutcome::Certified(c) => c.stage,
            StageOutcome::Refuted(r) => r.stage,
            StageOutcome::Refused { stage, .. } => *stage,
        }
    }
}

/// Aggregate verdict over a set of stage outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every stage certified.
    Certified,
    /// No refutation, but at least one stage refused to decide.
    Refused,
    /// At least one stage refuted its claim.
    Refuted,
}

impl fmt::Display for Verdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Verdict::Certified => "certified",
            Verdict::Refused => "refused",
            Verdict::Refuted => "refuted",
        };
        write!(f, "{s}")
    }
}

fn combine_verdict<'a, I: IntoIterator<Item = &'a StageOutcome>>(outcomes: I) -> Verdict {
    let mut verdict = Verdict::Certified;
    for o in outcomes {
        match o {
            StageOutcome::Refuted(_) => return Verdict::Refuted,
            StageOutcome::Refused { .. } => verdict = Verdict::Refused,
            StageOutcome::Certified(_) => {}
        }
    }
    verdict
}

/// The certificate chain for one latency bound of one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyCertification {
    /// The latency bound `p` this chain is about.
    pub latency: usize,
    /// The pipeline's claimed number of parity functions at this bound.
    pub claimed_q: usize,
    /// Per-stage outcomes, in pipeline order: soundness, LP, checker
    /// co-simulation, differential.
    pub stages: Vec<StageOutcome>,
}

impl LatencyCertification {
    /// The aggregate verdict over this bound's stages.
    pub fn verdict(&self) -> Verdict {
        combine_verdict(&self.stages)
    }
}

/// The full certificate chain for one machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineCertification {
    /// Machine name (matches the pipeline report).
    pub name: String,
    /// The machine-level synthesis-equivalence outcome (independent of
    /// the latency bound).
    pub synthesis: StageOutcome,
    /// One chain per certified latency bound, ascending.
    pub latencies: Vec<LatencyCertification>,
}

impl MachineCertification {
    /// The aggregate verdict over every stage of every bound.
    pub fn verdict(&self) -> Verdict {
        let latency_verdict = combine_verdict(self.latencies.iter().flat_map(|l| l.stages.iter()));
        match (combine_verdict([&self.synthesis]), latency_verdict) {
            (Verdict::Refuted, _) | (_, Verdict::Refuted) => Verdict::Refuted,
            (Verdict::Refused, _) | (_, Verdict::Refused) => Verdict::Refused,
            _ => Verdict::Certified,
        }
    }

    /// Every refutation in the chain, for quarantine decisions.
    pub fn refutations(&self) -> Vec<&Refutation> {
        let mut out = Vec::new();
        for o in std::iter::once(&self.synthesis)
            .chain(self.latencies.iter().flat_map(|l| l.stages.iter()))
        {
            if let StageOutcome::Refuted(r) = o {
                out.push(r);
            }
        }
        out
    }
}

/// Knobs of the certification layer.
#[derive(Debug, Clone)]
pub struct CertifyOptions {
    /// Refusal band for exact re-checks of float LP answers: a
    /// satisfied constraint whose exact slack is inside `(0, band)` is
    /// refused, not certified (default [`ced_lp::EPS`]).
    pub band: f64,
    /// Row cap for the float-optimum re-solve (the exact integral
    /// certificate always covers every row); hardest rows first.
    pub lp_row_cap: usize,
    /// Cap on co-simulated (state, input, corruption) patterns per
    /// checker; beyond it a deterministic sample of this size is drawn.
    pub max_checker_patterns: u64,
    /// Seed for the sampled co-simulation path.
    pub seed: u64,
}

impl Default for CertifyOptions {
    fn default() -> CertifyOptions {
        CertifyOptions {
            band: ced_lp::EPS,
            lp_row_cap: 256,
            max_checker_patterns: 1 << 20,
            seed: 0,
        }
    }
}

/// Certification failure (distinct from a refutation: the layer could
/// not run, as opposed to ran and disproved the claim).
#[derive(Debug)]
pub enum CertError {
    /// The run's [`Budget`] interrupted a verifier.
    Interrupted(Interrupted),
    /// Rebuilding the detectability table failed.
    Detect(DetectError),
    /// The machine could not be prepared (validation/encoding).
    Machine(String),
}

impl fmt::Display for CertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CertError::Interrupted(i) => write!(f, "certification {i}"),
            CertError::Detect(e) => write!(f, "certification table rebuild failed: {e}"),
            CertError::Machine(e) => write!(f, "certification setup failed: {e}"),
        }
    }
}

impl std::error::Error for CertError {}

impl From<Interrupted> for CertError {
    fn from(i: Interrupted) -> CertError {
        CertError::Interrupted(i)
    }
}

/// Independently re-proves every claim of a pipeline [`CircuitReport`].
///
/// The machine is re-prepared from the source FSM with the same
/// pipeline options (every stage is deterministic, so this reproduces
/// the exact artifacts the report describes), the detectability tables
/// are rebuilt, and then each latency bound's `(q, p)` claim runs the
/// verifier chain: BFS soundness, exact-rational LP certificate,
/// checker co-simulation, and the greedy differential. One machine-wide
/// synthesis-equivalence check runs first.
///
/// A refutation does **not** error — it comes back inside the
/// [`MachineCertification`] so the caller can inspect the witness.
///
/// # Errors
///
/// [`CertError::Machine`] when the FSM cannot be prepared,
/// [`CertError::Detect`] when the table rebuild fails, and
/// [`CertError::Interrupted`] when the budget runs out.
pub fn certify_report(
    fsm: &Fsm,
    report: &CircuitReport,
    pipeline: &PipelineOptions,
    options: &CertifyOptions,
    budget: &Budget,
) -> Result<MachineCertification, CertError> {
    certify_report_pooled(fsm, report, pipeline, options, budget, &ParExec::serial())
}

/// [`certify_report`] on a worker pool. The per-claim verifiers —
/// soundness BFS, exact-rational LP certificate, checker
/// co-simulation, greedy differential, one quadruple per latency bound
/// — are mutually independent, so they run as pool tasks; the table
/// rebuild's per-fault extraction parallelizes through
/// [`BuildControl::pool`]. Stage outcomes merge in canonical
/// (latency, stage) order, so the certification — and the
/// `ced-cert-report/1` JSON rendered from it — is byte-identical to
/// the serial run at every job count, and an interrupt surfaces the
/// error of the earliest claim in that canonical order.
///
/// # Errors
///
/// As [`certify_report`].
pub fn certify_report_pooled(
    fsm: &Fsm,
    report: &CircuitReport,
    pipeline: &PipelineOptions,
    options: &CertifyOptions,
    budget: &Budget,
    pool: &ParExec,
) -> Result<MachineCertification, CertError> {
    certify_report_stored(fsm, report, pipeline, options, budget, pool, None)
}

/// [`certify_report_pooled`] with an optional content-addressed
/// artifact store: re-certification after a pipeline run reuses the
/// run's `synth` circuit and per-latency `tensor` artifacts instead of
/// re-synthesizing and re-simulating. The verifier chain itself is
/// never cached — a certification must re-prove its claims — so only
/// the deterministic machine-preparation stages hit the store, and a
/// hit is byte-identical to a recompute by construction.
///
/// # Errors
///
/// As [`certify_report`].
pub fn certify_report_stored(
    fsm: &Fsm,
    report: &CircuitReport,
    pipeline: &PipelineOptions,
    options: &CertifyOptions,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<MachineCertification, CertError> {
    let (encoded, circuit) = prepare_machine_stored(fsm, pipeline, store)
        .map_err(|e| CertError::Machine(e.to_string()))?;
    let input_model = build_input_model(
        encoded.fsm(),
        encoded.encoding(),
        pipeline.input_granularity,
    );
    let faults = fault_list(&circuit, pipeline);

    let synthesis = hardware::verify_synthesis(fsm, pipeline, &circuit, budget)?;

    let latencies: Vec<usize> = report.latencies.iter().map(|l| l.latency).collect();
    let mut chains = Vec::with_capacity(latencies.len());
    if !latencies.is_empty() {
        let max_rows = if pipeline.max_rows == 0 {
            2_000_000
        } else {
            pipeline.max_rows
        };
        let p_max = latencies.iter().copied().max().unwrap_or(1);
        let tables = DetectabilityTable::build_many_controlled(
            &circuit,
            &faults,
            &DetectOptions {
                latency: p_max,
                max_rows,
                semantics: pipeline.semantics,
                input_model: input_model.clone(),
                reduce: true,
                fault_model: pipeline.fault_model,
            },
            &latencies,
            BuildControl {
                pool: Some(pool),
                store,
                ..BuildControl::new(budget)
            },
        )
        .map_err(|e| match e {
            DetectError::Interrupted { interrupted, .. } => CertError::Interrupted(interrupted),
            other => CertError::Detect(other),
        })?;

        // Independent per-claim verifiers, one (latency, stage)
        // quadruple per bound, merged back in canonical order.
        const STAGES_PER_LATENCY: usize = 4;
        let claims: Vec<(usize, usize)> = (0..report.latencies.len())
            .flat_map(|li| (0..STAGES_PER_LATENCY).map(move |si| (li, si)))
            .collect();
        let mut outcomes = pool.try_map(&claims, |_, &(li, si)| {
            let lr = &report.latencies[li];
            let (table, _stats) = &tables[li];
            let masks = &lr.cover.masks;
            match si {
                0 => soundness::verify_solution(
                    &circuit,
                    &faults,
                    pipeline.fault_model,
                    &input_model,
                    pipeline.semantics,
                    masks,
                    lr.latency,
                    budget,
                ),
                1 => lp_check::verify_lp(table, masks, options.band, options.lp_row_cap, budget),
                2 => hardware::verify_checker(
                    &circuit,
                    &lr.cover,
                    lr.latency,
                    &pipeline.minimize,
                    &input_model,
                    options.max_checker_patterns,
                    options.seed,
                    budget,
                ),
                _ => differential::verify_differential(table, masks, budget),
            }
        })?;
        for lr in report.latencies.iter().rev() {
            let stages = outcomes.split_off(outcomes.len() - STAGES_PER_LATENCY);
            chains.push(LatencyCertification {
                latency: lr.latency,
                claimed_q: lr.cover.len(),
                stages,
            });
        }
        chains.reverse();
    }

    Ok(MachineCertification {
        name: report.name.clone(),
        synthesis,
        latencies: chains,
    })
}
