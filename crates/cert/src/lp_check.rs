//! Exact-rational certification of the LP claims behind a cover.
//!
//! Two claims are re-proved, neither trusting the `f64` simplex:
//!
//! 1. **The LP at the claimed `q` is feasible.** The claimed masks are
//!    converted into an *integral* point of the full (Statement 5,
//!    `q`-block) relaxation — `β(l)` = the bits of mask `l`, coverage
//!    variable `t(l,k)_i = 1` iff mask `l` overlaps row `i` at step `k`
//!    at all — and that point is re-evaluated with
//!    [`ced_lp::check_feasibility_exact`] at band `0`: every
//!    coefficient, bound and coordinate converts to an exact rational,
//!    so the verdict is arithmetic, not numerics. This covers **every**
//!    row of the independently rebuilt table.
//! 2. **The float optimum is not a mirage.** The symmetric relaxation
//!    is re-solved and the solver's answer re-checked exactly with the
//!    configured refusal band: a point infeasible by less than
//!    [`ced_lp::EPS`] is *refuted*, one feasible by less than the band
//!    is *refused* — never certified on float evidence alone. Large
//!    tables re-solve a hardest-rows subprogram (the integral
//!    certificate above is never capped).
//!
//! Note the LP sees only overlap counts, not parity: an integral point
//! with even overlaps is LP-feasible yet detects nothing. LP
//! feasibility is therefore a *necessary* condition certified here; the
//! parity-exact claim is the soundness verifier's job
//! ([`crate::soundness`]).

use crate::{Certificate, Refutation, Stage, StageOutcome, Witness};
use ced_core::{build_relaxation, LpForm};
use ced_lp::{check_feasibility_exact, solve_budgeted, RationalVerdict, SolveError};
use ced_runtime::{Budget, Interrupted};
use ced_sim::detect::DetectabilityTable;

/// Re-proves the LP claims for `masks` against `table`.
///
/// # Errors
///
/// Only budget interruption (propagated out of the re-solve).
pub fn verify_lp(
    table: &DetectabilityTable,
    masks: &[u64],
    band: f64,
    lp_row_cap: usize,
    budget: &Budget,
) -> Result<StageOutcome, Interrupted> {
    budget.check("certify/lp")?;
    if table.is_empty() {
        return Ok(StageOutcome::Certified(Certificate {
            stage: Stage::Lp,
            checked: 0,
            detail: "no erroneous cases: the empty relaxation is trivially feasible".into(),
        }));
    }
    if masks.is_empty() {
        return Ok(StageOutcome::Refuted(Refutation {
            stage: Stage::Lp,
            witness: Witness::UncoveredRow {
                row: 0,
                steps: table.rows()[0].steps.clone(),
            },
            discrepancy: format!(
                "the table has {} erroneous cases but the claimed cover is empty",
                table.len()
            ),
        }));
    }

    let q = masks.len();
    let n = table.num_bits();
    let p = table.latency();
    let m = table.len();

    // Claim 1: exact integral certificate over ALL rows (full form).
    let all_rows: Vec<usize> = (0..m).collect();
    let full = build_relaxation(table, q, LpForm::Full, &all_rows);
    // Variable layout of build_relaxation: the q β-blocks first
    // (q·n variables), then t[l][i_local][k] in (block, row, step)
    // lexicographic order.
    debug_assert_eq!(full.lp.num_variables(), q * n + q * m * p);
    let mut point = vec![0.0f64; full.lp.num_variables()];
    for (l, &mask) in masks.iter().enumerate() {
        for j in 0..n {
            point[full.beta_vars[l][j].0] = ((mask >> j) & 1) as f64;
        }
    }
    for l in 0..q {
        for (i_local, row) in table.rows().iter().enumerate() {
            for k in 0..p {
                // t ≤ Σ_j V(i,j,k)β_j = overlap count; 1 is admissible
                // whenever the mask touches the step at all. The row
                // demand Σ t ≥ 1 then encodes "some mask overlaps
                // somewhere" — parity-blind by design (module docs).
                if (row.steps[k] & masks[l]) != 0 {
                    point[q * n + (l * m + i_local) * p + k] = 1.0;
                }
            }
        }
    }
    budget.tick(full.lp.num_constraints() as u64, "certify/lp")?;
    match check_feasibility_exact(&full.lp, &point, 0.0) {
        RationalVerdict::Feasible { .. } => {}
        RationalVerdict::Infeasible {
            witness,
            bound_of_var,
        } => {
            return Ok(StageOutcome::Refuted(Refutation {
                stage: Stage::Lp,
                witness: Witness::LpRow {
                    row: witness.row,
                    bound_of_var: bound_of_var.is_some(),
                    slack: witness.slack.to_f64(),
                },
                discrepancy: format!(
                    "the claimed {q}-mask cover does not embed as a feasible integral point \
                     of the Statement-5 relaxation: row {} violated by exactly {}",
                    witness.row, witness.slack
                ),
            }));
        }
        RationalVerdict::Refused { witness, band } => {
            // Unreachable at band 0, but degrade honestly if that ever
            // changes rather than panicking inside a certifier.
            return Ok(StageOutcome::Refused {
                stage: Stage::Lp,
                reason: format!(
                    "integral point slack {} inside band {band:e} at row {}",
                    witness.slack, witness.row
                ),
            });
        }
        RationalVerdict::Unrepresentable { row } => {
            return Ok(StageOutcome::Refused {
                stage: Stage::Lp,
                reason: format!("exact arithmetic overflowed evaluating row {row}"),
            });
        }
    }

    // Claim 2: re-solve the symmetric form and certify the float answer
    // exactly, hardest rows first when capped.
    let (float_table, capped) = if m > lp_row_cap {
        (table.sorted_by_difficulty(), true)
    } else {
        (table.clone(), false)
    };
    let rows: Vec<usize> = (0..float_table.len().min(lp_row_cap)).collect();
    let sym = build_relaxation(&float_table, q, LpForm::Symmetric, &rows);
    let float_note = match solve_budgeted(&sym.lp, budget) {
        Ok(sol) => {
            budget.tick(sym.lp.num_constraints() as u64, "certify/lp")?;
            match check_feasibility_exact(&sym.lp, &sol.x, band) {
                RationalVerdict::Feasible { min_slack } => {
                    let slack = min_slack
                        .map(|s| format!("{:.3e}", s.slack.to_f64()))
                        .unwrap_or_else(|| "n/a".into());
                    format!(
                        "float optimum over {} row(s) re-verified exactly (min slack {slack}, \
                         refusal band {band:e})",
                        rows.len()
                    )
                }
                RationalVerdict::Infeasible {
                    witness,
                    bound_of_var,
                } => {
                    // A violation beyond the band breaks the solver's
                    // own tolerance contract: the answer is garbage,
                    // not float noise, and the stage is refuted. Inside
                    // the band it is the expected rounding of a binding
                    // row: the float answer is refused as a certificate
                    // (the exact integral point above already carries
                    // the feasibility claim) but nothing is disproved.
                    if -witness.slack.to_f64() >= band {
                        return Ok(StageOutcome::Refuted(Refutation {
                            stage: Stage::Lp,
                            witness: Witness::LpRow {
                                row: witness.row,
                                bound_of_var: bound_of_var.is_some(),
                                slack: witness.slack.to_f64(),
                            },
                            discrepancy: format!(
                                "the simplex optimum is infeasible in exact arithmetic beyond \
                                 its own tolerance: row {} violated by exactly {} ≥ {band:e}",
                                witness.row, witness.slack
                            ),
                        }));
                    }
                    format!(
                        "float optimum REFUSED as a certificate: row {} violated by exactly \
                         {} (inside the ±{band:e} band; claim rests on the integral point)",
                        witness.row, witness.slack
                    )
                }
                RationalVerdict::Refused { witness, band } => format!(
                    "float optimum REFUSED as a certificate: row {} has exact slack {} \
                     inside the ±{band:e} band (claim rests on the integral point)",
                    witness.row,
                    witness.slack.to_f64()
                ),
                RationalVerdict::Unrepresentable { row } => {
                    return Ok(StageOutcome::Refused {
                        stage: Stage::Lp,
                        reason: format!(
                            "exact arithmetic overflowed re-checking the float optimum (row {row})"
                        ),
                    });
                }
            }
        }
        Err(SolveError::Interrupted(i)) => return Err(i),
        Err(e) => {
            // The solver failing here contradicts nothing: the exact
            // integral certificate above already proved feasibility.
            format!("float re-solve returned '{e}'; certificate rests on the integral point")
        }
    };

    let cap_note = if capped {
        format!(
            " (float re-solve capped to the {} hardest rows)",
            rows.len()
        )
    } else {
        String::new()
    };
    Ok(StageOutcome::Certified(Certificate {
        stage: Stage::Lp,
        checked: full.lp.num_constraints() as u64,
        detail: format!(
            "integral point of the {q}-block Statement-5 relaxation re-evaluated in exact \
             rationals over all {m} rows ({} constraints); {float_note}{cap_note}",
            full.lp.num_constraints()
        ),
    }))
}
