//! Deterministic `ced-cert-report/1` JSON and terminal rendering.
//!
//! The JSON is byte-deterministic for fixed inputs (insertion-ordered
//! objects, no wall-clock, no floats except exact slack reports), so
//! certificate artifacts diff cleanly across runs and CI can grep them.

use crate::{LatencyCertification, MachineCertification, Refutation, Stage, StageOutcome, Witness};
use ced_runtime::Json;

fn stage_str(stage: Stage) -> String {
    stage.to_string()
}

fn witness_json(w: &Witness) -> Json {
    match w {
        Witness::UndetectedPath { fault, steps } => Json::Object(vec![
            ("kind".into(), Json::str("undetected-path")),
            ("fault".into(), Json::str(&fault.to_string())),
            (
                "steps".into(),
                Json::Array(
                    steps
                        .iter()
                        .map(|s| {
                            Json::Object(vec![
                                ("good_state".into(), Json::UInt(s.good_state)),
                                ("faulty_state".into(), Json::UInt(s.faulty_state)),
                                ("input".into(), Json::UInt(s.input)),
                                ("difference".into(), Json::UInt(s.difference)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        Witness::LpRow {
            row,
            bound_of_var,
            slack,
        } => Json::Object(vec![
            ("kind".into(), Json::str("lp-row")),
            ("row".into(), Json::UInt(*row as u64)),
            ("bound_of_var".into(), Json::Bool(*bound_of_var)),
            ("slack".into(), Json::Float(*slack)),
        ]),
        Witness::UncoveredRow { row, steps } => Json::Object(vec![
            ("kind".into(), Json::str("uncovered-row")),
            ("row".into(), Json::UInt(*row as u64)),
            (
                "steps".into(),
                Json::Array(steps.iter().map(|&d| Json::UInt(d)).collect()),
            ),
        ]),
        Witness::SynthesisMismatch {
            counterexample,
            output_a,
            output_b,
        } => Json::Object(vec![
            ("kind".into(), Json::str("synthesis-mismatch")),
            (
                "counterexample".into(),
                Json::Array(counterexample.iter().map(|&i| Json::UInt(i)).collect()),
            ),
            ("output_a".into(), Json::UInt(*output_a)),
            ("output_b".into(), Json::UInt(*output_b)),
        ]),
        Witness::CheckerMismatch {
            state,
            input,
            corruption,
            expected,
            observed,
        } => Json::Object(vec![
            ("kind".into(), Json::str("checker-mismatch")),
            ("state".into(), Json::UInt(*state)),
            ("input".into(), Json::UInt(*input)),
            ("corruption".into(), Json::UInt(*corruption)),
            ("expected".into(), Json::Bool(*expected)),
            ("observed".into(), Json::Bool(*observed)),
        ]),
        Witness::CoverRegression {
            claimed_q,
            independent_q,
        } => Json::Object(vec![
            ("kind".into(), Json::str("cover-regression")),
            ("claimed_q".into(), Json::UInt(*claimed_q as u64)),
            ("independent_q".into(), Json::UInt(*independent_q as u64)),
        ]),
    }
}

fn stage_json(o: &StageOutcome) -> Json {
    match o {
        StageOutcome::Certified(c) => Json::Object(vec![
            ("stage".into(), Json::str(&stage_str(c.stage))),
            ("outcome".into(), Json::str("certified")),
            ("checked".into(), Json::UInt(c.checked)),
            ("detail".into(), Json::str(&c.detail)),
        ]),
        StageOutcome::Refuted(r) => Json::Object(vec![
            ("stage".into(), Json::str(&stage_str(r.stage))),
            ("outcome".into(), Json::str("refuted")),
            ("discrepancy".into(), Json::str(&r.discrepancy)),
            ("witness".into(), witness_json(&r.witness)),
        ]),
        StageOutcome::Refused { stage, reason } => Json::Object(vec![
            ("stage".into(), Json::str(&stage_str(*stage))),
            ("outcome".into(), Json::str("refused")),
            ("reason".into(), Json::str(reason)),
        ]),
    }
}

fn latency_json(l: &LatencyCertification) -> Json {
    Json::Object(vec![
        ("latency".into(), Json::UInt(l.latency as u64)),
        ("q".into(), Json::UInt(l.claimed_q as u64)),
        ("verdict".into(), Json::str(&l.verdict().to_string())),
        (
            "stages".into(),
            Json::Array(l.stages.iter().map(stage_json).collect()),
        ),
    ])
}

/// One machine's certificate chain as a `Json` value (no schema key;
/// see [`cert_report_json`] for the top-level document).
pub fn machine_json(m: &MachineCertification) -> Json {
    Json::Object(vec![
        ("machine".into(), Json::str(&m.name)),
        ("verdict".into(), Json::str(&m.verdict().to_string())),
        ("synthesis".into(), stage_json(&m.synthesis)),
        (
            "latencies".into(),
            Json::Array(m.latencies.iter().map(latency_json).collect()),
        ),
    ])
}

/// The `ced-cert-report/1` document for one or more machines. The
/// `schema` key comes first so consumers can sniff the prefix.
pub fn cert_report_json(machines: &[MachineCertification]) -> Json {
    let refuted = machines
        .iter()
        .filter(|m| m.verdict() == crate::Verdict::Refuted)
        .count();
    let refused = machines
        .iter()
        .filter(|m| m.verdict() == crate::Verdict::Refused)
        .count();
    Json::Object(vec![
        ("schema".into(), Json::str("ced-cert-report/1")),
        (
            "machines".into(),
            Json::Array(machines.iter().map(machine_json).collect()),
        ),
        (
            "summary".into(),
            Json::Object(vec![
                ("total".into(), Json::UInt(machines.len() as u64)),
                (
                    "certified".into(),
                    Json::UInt((machines.len() - refuted - refused) as u64),
                ),
                ("refused".into(), Json::UInt(refused as u64)),
                ("refuted".into(), Json::UInt(refuted as u64)),
            ]),
        ),
    ])
}

fn refutation_lines(r: &Refutation, out: &mut String) {
    out.push_str(&format!("      ! {}\n", r.discrepancy));
    if let Witness::UndetectedPath { fault, steps } = &r.witness {
        out.push_str(&format!("        witness: fault {fault}, path"));
        for s in steps {
            out.push_str(&format!(
                " [g={:#x} f={:#x} in={:#x} d={:#x}]",
                s.good_state, s.faulty_state, s.input, s.difference
            ));
        }
        out.push('\n');
    }
}

/// Human-readable certificate chain for terminal output.
pub fn render_text(m: &MachineCertification) -> String {
    let mut out = String::new();
    out.push_str(&format!("{}: {}\n", m.name, m.verdict()));
    let line = |o: &StageOutcome, out: &mut String| match o {
        StageOutcome::Certified(c) => {
            out.push_str(&format!(
                "    {:<22} certified  ({} checked) {}\n",
                c.stage.to_string(),
                c.checked,
                c.detail
            ));
        }
        StageOutcome::Refused { stage, reason } => {
            out.push_str(&format!("    {stage:<22} REFUSED    {reason}\n"));
        }
        StageOutcome::Refuted(r) => {
            out.push_str(&format!("    {:<22} REFUTED\n", r.stage.to_string()));
            refutation_lines(r, out);
        }
    };
    out.push_str("  machine-level:\n");
    line(&m.synthesis, &mut out);
    for l in &m.latencies {
        out.push_str(&format!(
            "  p = {} (q = {}): {}\n",
            l.latency,
            l.claimed_q,
            l.verdict()
        ));
        for o in &l.stages {
            line(o, &mut out);
        }
    }
    out
}
