//! Independent soundness re-proof of a parity cover.
//!
//! The pipeline's claim — "the `q` masks detect every erroneous case of
//! every fault within `p` steps" — was established by the table-driven
//! DFS of [`ced_sim::detect`]: enumerate rows, dominance-reduce, check
//! coverage. This verifier re-proves the same claim by a different
//! algorithm that never materializes a table: a reachability analysis
//! of the *silent subgraph* of the good×faulty product machine.
//!
//! Call a difference mask `d` **silent** when every claimed mask sees
//! an even overlap with it (`popcount(d & mask)` even for all masks —
//! note `d = 0` is silent). An undetected erroneous case is exactly an
//! activation `(c, a₁)` with nonzero *silent* first difference `d₁`,
//! followed by `p − 1` further steps whose differences are all silent.
//! The DFS's loop cuts (a revisited state zero-fills the remaining
//! steps) do not change this: a cut corresponds to a silent cycle, and
//! a reachable silent cycle yields silent walks of *every* length — so
//! existence of an undetected case is equivalent to
//!
//! > ∃ activation with silent `d₁ ≠ 0` and a silent walk of `p − 1`
//! > edges starting at the activation's successor node.
//!
//! Silent-walk existence is computed by a per-fault level-set sweep
//! `can[ℓ][v] = ∃ silent edge v → w with can[ℓ−1][w]` (`can[0] ≡
//! true`), built lazily only for faults that survive step-1 detection.
//! On refutation the witness path is reconstructed by greedy descent
//! through the levels, giving a concrete input sequence the caller can
//! replay on the transition tables.
//!
//! Time-varying fault models generalize the sweep rather than the
//! graph: level `ℓ` (remaining steps) corresponds to the absolute
//! activation step `t = p − ℓ + 1`, and the product edge at that level
//! follows the faulty tables iff [`FaultModel::active_at`]`(t)` and
//! the fault-free tables otherwise. For the permanent model every
//! level is active, which degenerates to exactly the original
//! computation (and its loop-cut shortcut, which is only sound when
//! the edge relation is step-invariant).

use crate::{Certificate, Refutation, Stage, StageOutcome, Witness, WitnessStep};
use ced_fsm::encoded::FsmCircuit;
use ced_runtime::{Budget, Interrupted};
use ced_sim::detect::{InputModel, Semantics};
use ced_sim::fault::{Fault, FaultModel};
use ced_sim::tables::TransitionTables;

#[inline]
fn silent(masks: &[u64], d: u64) -> bool {
    masks.iter().all(|&m| (d & m).count_ones() & 1 == 0)
}

/// The product-machine node space for one fault: under
/// [`Semantics::FaultyTrajectory`] a node is the (single) faulty-
/// trajectory state; under [`Semantics::Lockstep`] it is the pair
/// `(good, faulty)` packed as `(good << s) | faulty`.
struct ProductGraph<'a> {
    good: &'a TransitionTables,
    bad: &'a TransitionTables,
    semantics: Semantics,
    state_bits: usize,
}

impl ProductGraph<'_> {
    fn num_nodes(&self) -> usize {
        match self.semantics {
            Semantics::FaultyTrajectory => 1 << self.state_bits,
            Semantics::Lockstep => 1 << (2 * self.state_bits),
        }
    }

    /// The state whose transition cubes determine which inputs the
    /// enumeration explores from this node (the good-trajectory state
    /// under lockstep; the actual present state under the hardware
    /// view).
    fn vantage(&self, node: u64) -> u64 {
        match self.semantics {
            Semantics::FaultyTrajectory => node,
            Semantics::Lockstep => node >> self.state_bits,
        }
    }

    /// One product step: the response difference and the successor
    /// node. On steps where the fault model is inactive the faulty
    /// machine follows the fault-free tables.
    fn step(&self, node: u64, input: u64, active: bool) -> (u64, u64) {
        let bad = if active { self.bad } else { self.good };
        match self.semantics {
            Semantics::FaultyTrajectory => {
                let d = self.good.response(node, input) ^ bad.response(node, input);
                (d, bad.next(node, input))
            }
            Semantics::Lockstep => {
                let s = self.state_bits;
                let g = node >> s;
                let f = node & ((1 << s) - 1);
                let d = self.good.response(g, input) ^ bad.response(f, input);
                let succ = (self.good.next(g, input) << s) | bad.next(f, input);
                (d, succ)
            }
        }
    }

    fn witness_states(&self, node: u64) -> (u64, u64) {
        match self.semantics {
            Semantics::FaultyTrajectory => (node, node),
            Semantics::Lockstep => {
                let s = self.state_bits;
                (node >> s, node & ((1 << s) - 1))
            }
        }
    }
}

/// `can[ℓ][v]` = a silent walk of `ℓ` edges starts at node `v`.
struct SilentWalks {
    can: Vec<Vec<bool>>,
}

impl SilentWalks {
    #[allow(clippy::too_many_arguments)]
    fn build(
        graph: &ProductGraph<'_>,
        model: FaultModel,
        input_model: &InputModel,
        r: usize,
        masks: &[u64],
        latency: usize,
        max_len: usize,
        budget: &Budget,
    ) -> Result<SilentWalks, Interrupted> {
        let nodes = graph.num_nodes();
        let mut can: Vec<Vec<bool>> = Vec::with_capacity(max_len + 1);
        can.push(vec![true; nodes]);
        let mut inputs = Vec::new();
        for level in 1..=max_len {
            budget.tick(nodes as u64, "certify/soundness")?;
            // A walk of `level` remaining edges that ends at the
            // latency bound takes its first edge at this absolute step.
            let active = model.active_at(latency - level + 1);
            let prev = &can[level - 1];
            let mut cur = vec![false; nodes];
            for v in 0..nodes as u64 {
                input_model.inputs_at(graph.vantage(v), r, &mut inputs);
                cur[v as usize] = inputs.iter().any(|&a| {
                    let (d, succ) = graph.step(v, a, active);
                    silent(masks, d) && prev[succ as usize]
                });
            }
            can.push(cur);
        }
        Ok(SilentWalks { can })
    }

    /// Greedy descent through the levels: a concrete silent walk of
    /// `len` edges from `node` (which `build` proved exists).
    #[allow(clippy::too_many_arguments)]
    fn reconstruct(
        &self,
        graph: &ProductGraph<'_>,
        model: FaultModel,
        input_model: &InputModel,
        r: usize,
        masks: &[u64],
        latency: usize,
        mut node: u64,
        len: usize,
    ) -> Vec<WitnessStep> {
        let mut steps = Vec::with_capacity(len);
        let mut inputs = Vec::new();
        for level in (1..=len).rev() {
            let active = model.active_at(latency - level + 1);
            input_model.inputs_at(graph.vantage(node), r, &mut inputs);
            let (a, d, succ) = inputs
                .iter()
                .find_map(|&a| {
                    let (d, succ) = graph.step(node, a, active);
                    (silent(masks, d) && self.can[level - 1][succ as usize]).then_some((a, d, succ))
                })
                .expect("silent walk existence was just proved at this level");
            let (good_state, faulty_state) = graph.witness_states(node);
            steps.push(WitnessStep {
                good_state,
                faulty_state,
                input: a,
                difference: d,
            });
            node = succ;
        }
        steps
    }
}

/// Re-proves that `masks` detect every erroneous case of every fault
/// within `latency` steps, over exactly the input universe the
/// enumeration claimed to cover ([`InputModel::inputs_at`]).
///
/// Returns [`StageOutcome::Certified`] with the number of activations
/// examined, or [`StageOutcome::Refuted`] with a concrete
/// [`Witness::UndetectedPath`] — a fault, an activation and a silent
/// input path of `latency` steps, replayable on the transition tables.
///
/// # Errors
///
/// Only budget interruption; the check itself is exact and total.
#[allow(clippy::too_many_arguments)]
pub fn verify_solution(
    circuit: &FsmCircuit,
    faults: &[Fault],
    model: FaultModel,
    input_model: &InputModel,
    semantics: Semantics,
    masks: &[u64],
    latency: usize,
    budget: &Budget,
) -> Result<StageOutcome, Interrupted> {
    let good = TransitionTables::good(circuit);
    let r = good.num_inputs();
    let s = good.state_bits();
    let activation_states = good.reachable_codes();
    let mut inputs = Vec::new();
    let mut activations: u64 = 0;

    for &fault in faults {
        budget.tick(1, "certify/soundness")?;
        let bad = match model {
            FaultModel::MultiBitCluster { .. } => TransitionTables::faulty_set_budgeted(
                circuit,
                &model.expand(fault, circuit.netlist()),
                budget,
            )?,
            _ => TransitionTables::faulty_budgeted(circuit, fault, budget)?,
        };
        let graph = ProductGraph {
            good: &good,
            bad: &bad,
            semantics,
            state_bits: s,
        };
        let mut walks: Option<SilentWalks> = None;
        for &c in &activation_states {
            budget.check("certify/soundness")?;
            input_model.inputs_at(c, r, &mut inputs);
            for idx in 0..inputs.len() {
                let a1 = inputs[idx];
                let d1 = good.response(c, a1) ^ bad.response(c, a1);
                if d1 == 0 {
                    continue;
                }
                activations += 1;
                if !silent(masks, d1) {
                    continue; // detected at the activation step
                }
                // Undetected so far; the case escapes iff p == 1 or a
                // silent walk of p − 1 edges leaves the successor node.
                let activation = WitnessStep {
                    good_state: c,
                    faulty_state: c,
                    input: a1,
                    difference: d1,
                };
                let start = match semantics {
                    Semantics::FaultyTrajectory => c,
                    Semantics::Lockstep => (c << s) | c,
                };
                // Step 1 is active under every model.
                let (_, node1) = graph.step(start, a1, true);
                let refuted = |steps: Vec<WitnessStep>| {
                    Ok(StageOutcome::Refuted(Refutation {
                        stage: Stage::Soundness,
                        discrepancy: format!(
                            "fault {fault} activated at state {c:#x} under input {a1:#x} \
                             (difference {d1:#x}) stays silent for all {q} parity masks \
                             through latency {latency}",
                            q = masks.len()
                        ),
                        witness: Witness::UndetectedPath { fault, steps },
                    }))
                };
                if latency == 1 || (model.time_invariant() && node1 == start) {
                    // The DFS cuts this row immediately (p = 1, or the
                    // path revisits its own activation node — a silent
                    // self-cycle via the activation edge); the single
                    // silent step is the whole witness. The self-cycle
                    // shortcut needs a step-invariant edge relation, so
                    // time-varying models fall through to the sweep.
                    return refuted(vec![activation]);
                }
                if walks.is_none() {
                    walks = Some(SilentWalks::build(
                        &graph,
                        model,
                        input_model,
                        r,
                        masks,
                        latency,
                        latency - 1,
                        budget,
                    )?);
                }
                let w = walks.as_ref().expect("just built");
                if w.can[latency - 1][node1 as usize] {
                    let mut steps = vec![activation];
                    steps.extend(w.reconstruct(
                        &graph,
                        model,
                        input_model,
                        r,
                        masks,
                        latency,
                        node1,
                        latency - 1,
                    ));
                    return refuted(steps);
                }
            }
        }
    }

    Ok(StageOutcome::Certified(Certificate {
        stage: Stage::Soundness,
        checked: activations,
        detail: format!(
            "product-machine BFS: all {activations} error activations across {f} faults are \
             detected within {latency} step(s) by the {q} claimed masks \
             (silent-walk analysis, no detectability table consulted)",
            f = faults.len(),
            q = masks.len()
        ),
    }))
}
