//! End-to-end certification tests: clean pipelines certify, planted
//! defects are refuted with replayable witnesses.

use ced_cert::{certify_report, CertifyOptions, Stage, StageOutcome, Verdict, Witness};
use ced_core::pipeline::{run_circuit, PipelineOptions};
use ced_fsm::suite;
use ced_logic::gate::CellLibrary;
use ced_runtime::Budget;
use ced_sim::tables::TransitionTables;

fn certify_clean(fsm: ced_fsm::machine::Fsm) {
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let report = run_circuit(&fsm, &[1, 2], &options, &lib).expect("pipeline");
    let cert = certify_report(
        &fsm,
        &report,
        &options,
        &CertifyOptions::default(),
        &Budget::unlimited(),
    )
    .expect("certification ran");
    assert_eq!(
        cert.verdict(),
        Verdict::Certified,
        "{}: {}",
        fsm.name(),
        ced_cert::report::render_text(&cert)
    );
    assert_eq!(cert.latencies.len(), 2);
    for l in &cert.latencies {
        assert_eq!(l.stages.len(), 4);
        assert!(l.stages.iter().all(StageOutcome::is_certified));
    }
}

#[test]
fn clean_pipeline_results_certify_end_to_end() {
    certify_clean(suite::sequence_detector());
}

/// The worked example at p = 2 is a live catch, not a clean pass: the
/// LP + rounding path ships 3 masks where plain greedy needs only 2, so
/// the differential stage must refute with a `CoverRegression` witness
/// naming both counts. (The cover itself is sound — every other stage
/// certifies.)
#[test]
fn worked_example_differential_catches_cover_regression() {
    let fsm = suite::worked_example();
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let report = run_circuit(&fsm, &[1, 2], &options, &lib).expect("pipeline");
    let cert = certify_report(
        &fsm,
        &report,
        &options,
        &CertifyOptions::default(),
        &Budget::unlimited(),
    )
    .expect("certification ran");

    let p2 = cert
        .latencies
        .iter()
        .find(|l| l.latency == 2)
        .expect("p=2 result");
    let differential = p2
        .stages
        .iter()
        .find(|s| s.stage() == Stage::Differential)
        .expect("differential stage present");
    let StageOutcome::Refuted(refutation) = differential else {
        panic!("expected a cover regression at p=2, got {differential:?}");
    };
    let Witness::CoverRegression {
        claimed_q,
        independent_q,
    } = refutation.witness
    else {
        panic!("wrong witness kind: {:?}", refutation.witness);
    };
    assert!(
        independent_q < claimed_q,
        "witness must show a strictly smaller independent cover \
         (claimed {claimed_q}, independent {independent_q})"
    );
    // Every stage that checks *validity* (rather than optimality) of the
    // shipped cover still certifies: the cover works, it is just not
    // minimal.
    for stage in &p2.stages {
        if stage.stage() != Stage::Differential {
            assert!(stage.is_certified(), "{stage:?}");
        }
    }
}

#[test]
fn clean_suite_machine_certifies() {
    let spec = suite::by_name("tav").expect("suite machine");
    certify_clean(spec.build());
}

/// Corrupt one bit of a known-good solution and demand a refutation
/// whose witness replays: the soundness verifier must name a fault and
/// an input path along which every (corrupted) mask stays silent.
#[test]
fn planted_defect_is_refuted_with_replayable_witness() {
    let fsm = suite::sequence_detector();
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let mut report = run_circuit(&fsm, &[1], &options, &lib).expect("pipeline");

    // Plant the defect: flip the lowest tap bit of the first mask.
    let mask = report.latencies[0].cover.masks[0];
    let corrupted = mask ^ (1 << mask.trailing_zeros());
    report.latencies[0].cover.masks[0] = corrupted;

    let cert = certify_report(
        &fsm,
        &report,
        &options,
        &CertifyOptions::default(),
        &Budget::unlimited(),
    )
    .expect("certification ran");
    assert_eq!(cert.verdict(), Verdict::Refuted);

    // The independent soundness verifier specifically must catch it…
    let soundness = cert.latencies[0]
        .stages
        .iter()
        .find(|s| s.stage() == Stage::Soundness)
        .expect("soundness stage present");
    let StageOutcome::Refuted(refutation) = soundness else {
        panic!("soundness should refute the planted defect: {soundness:?}");
    };

    // …and its witness must replay on the transition tables: the claimed
    // step differences must match a re-simulation, the first one must be
    // a real activation, and every step must be silent for the corrupted
    // cover.
    let Witness::UndetectedPath { fault, steps } = &refutation.witness else {
        panic!("wrong witness kind: {:?}", refutation.witness);
    };
    assert!(!steps.is_empty());
    let (_, circuit) = ced_core::pipeline::prepare_machine(&fsm, &options).expect("prepare");
    let good = TransitionTables::good(&circuit);
    let bad = TransitionTables::faulty(&circuit, *fault);
    let masks = &report.latencies[0].cover.masks;
    for (i, step) in steps.iter().enumerate() {
        let d = good.response(step.good_state, step.input)
            ^ bad.response(step.faulty_state, step.input);
        assert_eq!(d, step.difference, "step {i} difference does not replay");
        assert!(
            masks.iter().all(|&m| (d & m).count_ones() & 1 == 0),
            "step {i} is not silent for the corrupted cover"
        );
    }
    assert_ne!(steps[0].difference, 0, "activation step must be nonzero");
    assert_eq!(
        steps[0].good_state, steps[0].faulty_state,
        "activation starts from a synchronized state"
    );
}

/// Dropping a whole mask (q → q−1) must also refute, and the
/// differential stage must notice the rebuilt table is uncovered.
#[test]
fn dropped_mask_is_refuted() {
    let fsm = suite::worked_example();
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let mut report = run_circuit(&fsm, &[2], &options, &lib).expect("pipeline");
    let cover = &mut report.latencies[0].cover;
    if cover.masks.len() == 1 {
        // A 1-mask cover cannot drop a mask; corrupt it instead.
        cover.masks[0] ^= 1 << cover.masks[0].trailing_zeros();
    } else {
        cover.masks.pop();
    }

    let cert = certify_report(
        &fsm,
        &report,
        &options,
        &CertifyOptions::default(),
        &Budget::unlimited(),
    )
    .expect("certification ran");
    assert_eq!(cert.verdict(), Verdict::Refuted);
    assert!(!cert.refutations().is_empty());
}

/// A deadline of zero interrupts certification instead of hanging or
/// fabricating an answer.
#[test]
fn exhausted_budget_interrupts_cleanly() {
    let fsm = suite::sequence_detector();
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let report = run_circuit(&fsm, &[1], &options, &lib).expect("pipeline");
    let budget = Budget::new().with_tick_cap(1);
    let err = certify_report(&fsm, &report, &options, &CertifyOptions::default(), &budget);
    assert!(
        matches!(err, Err(ced_cert::CertError::Interrupted(_))),
        "{err:?}"
    );
}

/// The cert report JSON is schema-prefixed and deterministic.
#[test]
fn cert_report_json_is_deterministic() {
    let fsm = suite::sequence_detector();
    let lib = CellLibrary::new();
    let options = PipelineOptions::paper_defaults();
    let report = run_circuit(&fsm, &[1], &options, &lib).expect("pipeline");
    let run = || {
        let cert = certify_report(
            &fsm,
            &report,
            &options,
            &CertifyOptions::default(),
            &Budget::unlimited(),
        )
        .expect("certification ran");
        ced_cert::report::cert_report_json(&[cert]).render()
    };
    let a = run();
    let b = run();
    assert_eq!(a, b);
    assert!(a.starts_with("{\"schema\":\"ced-cert-report/1\""), "{a}");
    assert!(a.contains("\"verdict\":\"certified\""));
}
