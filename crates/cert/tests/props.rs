//! Differential oracle: on random small FSMs, the BFS product-machine
//! soundness verifier must agree exactly with the table-driven DFS of
//! `ced_sim::detect` on every covering question, under both
//! step-difference semantics. The two implementations share no
//! enumeration code, so agreement across random machines and random
//! covers is strong evidence for both.

use ced_cert::soundness::verify_solution;
use ced_core::pipeline::{build_input_model, fault_list, prepare_machine, PipelineOptions};
use ced_fsm::machine::{Fsm, OutputValue, StateId};
use ced_logic::Cube;
use ced_runtime::Budget;
use ced_sim::detect::{DetectOptions, DetectabilityTable, Semantics};
use ced_sim::fault::FaultModel;
use proptest::prelude::*;

/// A random complete deterministic FSM: ≤ 6 states, 1–2 input bits,
/// 1–2 output bits, transitions drawn from an LCG stream.
fn random_fsm(states: usize, inputs: usize, outputs: usize, seed: u64) -> Fsm {
    let mut fsm = Fsm::new("random", inputs, outputs);
    let ids: Vec<StateId> = (0..states)
        .map(|i| fsm.add_state(format!("s{i}")))
        .collect();
    let mut x = seed | 1;
    let mut next = move || {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        x >> 11
    };
    for &from in &ids {
        for a in 0..(1u64 << inputs) {
            let to = ids[(next() % states as u64) as usize];
            let bits = next();
            let out: Vec<OutputValue> = (0..outputs)
                .map(|b| {
                    if (bits >> b) & 1 == 1 {
                        OutputValue::One
                    } else {
                        OutputValue::Zero
                    }
                })
                .collect();
            fsm.add_transition(Cube::minterm(inputs, a), from, to, out)
                .expect("well-formed transition");
        }
    }
    fsm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn bfs_verifier_agrees_with_detect_tensor(
        states in 2usize..=6,
        inputs in 1usize..=2,
        outputs in 1usize..=2,
        latency in 1usize..=3,
        seed in any::<u64>(),
        mask_seed in any::<u64>(),
    ) {
        let fsm = random_fsm(states, inputs, outputs, seed);
        let base = PipelineOptions::paper_defaults();
        let (encoded, circuit) = prepare_machine(&fsm, &base).expect("prepare");
        let input_model =
            build_input_model(encoded.fsm(), encoded.encoding(), base.input_granularity);
        let n = circuit.total_bits();

        // 1–3 random nonzero masks over the monitored bits.
        let count = 1 + (mask_seed % 3) as usize;
        let masks: Vec<u64> = (0..count)
            .map(|i| {
                let m = (mask_seed >> (7 * i)) & ((1u64 << n) - 1);
                if m == 0 { 1 } else { m }
            })
            .collect();

        let models = [
            FaultModel::PermanentStuckAt,
            FaultModel::TransientSeu { duration: 1 + (seed % 2) as usize },
            FaultModel::Intermittent { period: 2 },
            FaultModel::MultiBitCluster { radius: 1 },
        ];
        for model in models {
            let mut options = base.clone();
            options.fault_model = model;
            // Multi-bit clusters force the full fault list.
            let faults = fault_list(&circuit, &options);
            for semantics in [Semantics::Lockstep, Semantics::FaultyTrajectory] {
                let (table, _stats) = DetectabilityTable::build(
                    &circuit,
                    &faults,
                    &DetectOptions {
                        latency,
                        max_rows: 2_000_000,
                        semantics,
                        input_model: input_model.clone(),
                        reduce: true,
                        fault_model: model,
                    },
                )
                .expect("table");
                let tensor_covered = table.all_covered(&masks);
                let outcome = verify_solution(
                    &circuit,
                    &faults,
                    model,
                    &input_model,
                    semantics,
                    &masks,
                    latency,
                    &Budget::unlimited(),
                )
                .expect("unlimited budget");
                prop_assert_eq!(
                    outcome.is_certified(),
                    tensor_covered,
                    "{} / {:?}: BFS verifier and detect.rs tensor disagree \
                     (states={} inputs={} outputs={} p={} masks={:?}): {:?}",
                    model, semantics, states, inputs, outputs, latency, &masks, outcome
                );
            }
        }
    }
}
