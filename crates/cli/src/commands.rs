//! The `ced` subcommands.

use crate::exit::{report_status, ExitStatus};
use crate::options::{parse, parse_suite, Parsed};
use ced_core::pipeline::{
    build_input_model, fault_list, prepare_machine, prepare_machine_stored, run_circuit_controlled,
    PipelineControl, PipelineError, TableCheckpoint, TABLE_CHECKPOINT_KIND,
};
use ced_core::report::{degradation_notes, table1_header, table1_row};
use ced_core::search::minimize_parity_functions;
use ced_core::suite::{SuiteCheckpoint, SuiteControl, SuiteError, SUITE_CHECKPOINT_KIND};
use ced_core::synthesize_ced;
use ced_fsm::analysis::FsmStats;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::{load_checkpoint, save_checkpoint, Budget, Heartbeat};
use ced_sim::coverage::{simulate_fault_detection, SimOutcome};
use ced_sim::detect::{BuildControl, DetectOptions, DetectabilityTable};
use ced_store::Store;
use std::path::Path;
use std::sync::Arc;

/// Every command resolves to a typed [`ExitStatus`]; `Err` is reserved
/// for usage and environment failures (exit code 1).
type CliResult = Result<ExitStatus, Box<dyn std::error::Error>>;

/// Loads a resume checkpoint, decoding `kind` and parsing with `parse`.
/// Corruption is *reported*, not fatal: the run falls back to a fresh
/// computation.
fn load_resume<T>(
    path: &str,
    kind: u16,
    parse: impl FnOnce(&[u8]) -> Result<T, ced_runtime::CheckpointError>,
) -> Option<T> {
    match load_checkpoint(Path::new(path), kind).and_then(|payload| parse(&payload)) {
        Ok(ckpt) => {
            eprintln!("[ced] resuming from checkpoint {path}");
            Some(ckpt)
        }
        Err(e) => {
            eprintln!("[ced] warning: checkpoint {path}: {e}; recomputing from scratch");
            None
        }
    }
}

/// Saves a checkpoint payload, downgrading failures to warnings (a
/// checkpoint that cannot be written must not kill the run it exists
/// to protect).
fn save_or_warn(path: &str, kind: u16, payload: &[u8]) {
    if let Err(e) = save_checkpoint(Path::new(path), kind, payload) {
        eprintln!("[ced] warning: cannot write checkpoint {path}: {e}");
    }
}

/// Opens the `--store` directory when one was given. Open failures are
/// fatal: a mistyped path silently recomputing everything would defeat
/// the point of asking for a store.
fn open_store(path: Option<&str>) -> Result<Option<Arc<Store>>, Box<dyn std::error::Error>> {
    match path {
        Some(dir) => Store::open(Path::new(dir))
            .map(|s| Some(Arc::new(s)))
            .map_err(|e| format!("cannot open store {dir}: {e}").into()),
        None => Ok(None),
    }
}

/// Persists the store index and reports per-stage hit/miss counters —
/// on stderr only, never stdout: the report a command emits must stay
/// byte-identical with and without a store.
fn finish_store(store: Option<&Store>, quiet: bool) {
    let Some(store) = store else { return };
    if let Err(e) = store.persist() {
        eprintln!("[ced] warning: cannot persist store index: {e}");
    }
    if quiet {
        return;
    }
    let stats = store.stats();
    let counters: Vec<String> = stats
        .stages
        .iter()
        .map(|(stage, c)| {
            format!(
                "{stage} {} hit / {} miss / {} put",
                c.hits, c.misses, c.puts
            )
        })
        .collect();
    eprintln!(
        "[ced] store: run {}, {} artifact(s), {} bytes; {}",
        stats.run,
        stats.entries,
        stats.bytes,
        if counters.is_empty() {
            "no lookups".to_string()
        } else {
            counters.join("; ")
        }
    );
}

/// Assembles the run budget from `--deadline-ms`/`--ticks` plus a
/// heartbeat observer.
fn run_budget(deadline_ms: Option<u64>, ticks: Option<u64>, heartbeat: Arc<Heartbeat>) -> Budget {
    let mut budget = Budget::new().with_observer(1024, move |done, _bytes| heartbeat.observe(done));
    if let Some(ms) = deadline_ms {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(t) = ticks {
        budget = budget.with_tick_cap(t);
    }
    budget
}

/// `ced gen` — emit a seeded synthetic scaling machine as KISS2.
///
/// The workload is dk512-shaped (`ced_fsm::generator::scaled_workload`)
/// at `--scale` × the paper machine's 15 states; `--states` overrides
/// the state count directly. Output is deterministic in the flags:
/// `--jobs` is accepted (so campaign drivers can pass it uniformly) but
/// never changes a byte.
pub fn gen(args: &[String]) -> CliResult {
    let mut scale = 10usize;
    let mut states: Option<usize> = None;
    let mut seed = 0u64;
    let mut out: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .ok_or("--scale needs a number")?
                    .parse()
                    .map_err(|_| "--scale needs a number")?;
                if scale == 0 {
                    return Err("--scale must be at least 1".into());
                }
            }
            "--states" => {
                let n: usize = it
                    .next()
                    .ok_or("--states needs a number")?
                    .parse()
                    .map_err(|_| "--states needs a number")?;
                if n == 0 {
                    return Err("--states must be at least 1".into());
                }
                states = Some(n);
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|_| "--seed needs a number")?;
            }
            "--out" => {
                out = Some(it.next().ok_or("--out needs a file path")?.clone());
            }
            "--jobs" => {
                let jobs: usize = it
                    .next()
                    .ok_or("--jobs needs a number")?
                    .parse()
                    .map_err(|_| "--jobs needs a number")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                // Generation is single-threaded and deterministic; the
                // flag exists so drivers can pass it uniformly.
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`").into());
            }
            other => {
                return Err(format!("unexpected argument `{other}`").into());
            }
        }
    }

    let mut cfg = ced_fsm::generator::scaled_workload(scale, seed);
    if let Some(n) = states {
        cfg.num_states = n;
        cfg.name = format!("gen{n}s");
        cfg.output_pool = (n / 3).clamp(2, 8);
    }
    let fsm = ced_fsm::generator::generate(&cfg);
    let text = ced_fsm::kiss::to_string(&fsm);
    match out {
        Some(path) => {
            std::fs::write(&path, &text).map_err(|e| format!("cannot write {path}: {e}"))?;
            eprintln!(
                "[ced] gen: {} states, {} inputs, {} outputs -> {path}",
                fsm.num_states(),
                fsm.num_inputs(),
                fsm.num_outputs()
            );
        }
        None => print!("{text}"),
    }
    Ok(ExitStatus::Ok)
}

/// `ced stats` — structural statistics of the machine.
pub fn stats(args: &[String]) -> CliResult {
    let Parsed { fsm, .. } = parse(args)?;
    println!("{}", FsmStats::of(&fsm));
    if fsm.check_complete().is_err() {
        println!("note: machine is partially specified; synthesis will add don't-care self-loops");
    }
    Ok(ExitStatus::Ok)
}

/// `ced synth` — synthesize and report the circuit.
pub fn synth(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let lib = CellLibrary::new();
    let (_, circuit) = prepare_machine(&parsed.fsm, &parsed.options)?;
    println!(
        "{}: r={} inputs, s={} state bits, {} outputs (n={} monitored bits)",
        circuit.name(),
        circuit.num_inputs(),
        circuit.state_bits(),
        circuit.num_outputs(),
        circuit.total_bits()
    );
    println!(
        "combinational: {} gates, area {:.1}, depth {}",
        circuit.gate_count(),
        circuit.combinational_area(&lib),
        circuit.netlist().depth()
    );
    println!(
        "sequential cost (incl. {} state FFs): {:.1}",
        circuit.state_bits(),
        circuit.sequential_area(&lib)
    );
    Ok(ExitStatus::Ok)
}

/// `ced check` — run Algorithm 1 at one latency bound.
///
/// The whole analysis lives in
/// [`ced_serve::ops::check_text_with_baseline`] — the same function the
/// `ced serve` daemon executes for both `check` and `analyze-delta` —
/// so a served payload is byte-identical to this command's stdout by
/// construction. `--baseline <file>` seeds incremental re-analysis from
/// a previous machine revision; the stdout report is unchanged and the
/// dirty-cone summary goes to stderr.
pub fn check(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let store = open_store(parsed.store.as_deref())?;
    let mut request = ced_serve::OpRequest::new(ced_serve::OpKind::Check, "");
    request.latency = parsed.latency;
    request.options = parsed.options.clone();
    request.seed = parsed.seed;
    let mut budget = Budget::new();
    if let Some(ms) = parsed.deadline_ms {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    if let Some(t) = parsed.ticks {
        budget = budget.with_tick_cap(t);
    }
    let pool = ParExec::new(parsed.jobs);
    match ced_serve::ops::check_text_with_baseline(
        &parsed.fsm,
        parsed.baseline.as_ref(),
        &request,
        &budget,
        &pool,
        store.as_deref(),
    ) {
        Ok((text, summary)) => {
            if let Some(summary) = summary {
                if !parsed.quiet {
                    eprintln!("[ced] {}", summary.render_line());
                }
            }
            print!("{text}");
            finish_store(store.as_deref(), parsed.quiet);
            Ok(ExitStatus::Ok)
        }
        Err(ced_serve::OpError::Interrupted(i)) => {
            eprintln!("[ced] check {i}");
            Ok(ExitStatus::Cancelled)
        }
        Err(e) => Err(e.to_string().into()),
    }
}

/// `ced serve` — the long-lived analysis daemon (see `ced-serve`).
pub fn serve(args: &[String]) -> CliResult {
    let mut opts = ced_serve::ServeOptions::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a number"))?
                .parse()
                .map_err(|_| format!("{flag} needs a number").into())
        };
        match a.as_str() {
            "--addr" => {
                opts.addr = it.next().ok_or("--addr needs host:port")?.clone();
            }
            "--jobs" => {
                opts.jobs = num("--jobs")? as usize;
                if opts.jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--workers" => {
                opts.workers = num("--workers")? as usize;
                if opts.workers == 0 {
                    return Err("--workers must be at least 1".into());
                }
            }
            "--max-pending" => opts.max_pending = num("--max-pending")? as usize,
            "--max-line-bytes" => opts.max_line_bytes = num("--max-line-bytes")? as usize,
            "--line-timeout-ms" => {
                opts.line_timeout = std::time::Duration::from_millis(num("--line-timeout-ms")?);
            }
            "--deadline-ms" => {
                opts.default_deadline =
                    Some(std::time::Duration::from_millis(num("--deadline-ms")?));
            }
            "--max-jobs" => opts.max_jobs = num("--max-jobs")? as usize,
            "--store" => {
                let dir = it.next().ok_or("--store needs a directory path")?;
                opts.store_dir = Some(std::path::PathBuf::from(dir));
            }
            "--debug-ops" => opts.debug_ops = true,
            other => return Err(format!("unknown serve flag `{other}`").into()),
        }
    }
    let server = ced_serve::Server::start(opts).map_err(|e| format!("cannot start daemon: {e}"))?;
    // The address line is the daemon's contract with scripts and tests:
    // first stdout line, flushed before anything else happens.
    println!("listening on {}", server.addr());
    use std::io::Write as _;
    let _ = std::io::stdout().flush();
    server.wait();
    eprintln!("[ced] serve: daemon stopped");
    Ok(ExitStatus::Ok)
}

/// `ced table` — one Table-1 row across several latency bounds, under
/// an optional budget with heartbeat progress, checkpointing and
/// resume.
pub fn table(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let lib = CellLibrary::new();

    let heartbeat = Arc::new(
        Heartbeat::new(&format!("table {}", parsed.fsm.name()), "work units").quiet(parsed.quiet),
    );
    let budget = run_budget(parsed.deadline_ms, parsed.ticks, heartbeat.clone());

    let resume = parsed
        .resume
        .as_deref()
        .and_then(|path| load_resume(path, TABLE_CHECKPOINT_KIND, TableCheckpoint::from_bytes));
    let ckpt_path = parsed.checkpoint.clone();
    let mut sink = |c: &TableCheckpoint| {
        if let Some(path) = &ckpt_path {
            save_or_warn(path, TABLE_CHECKPOINT_KIND, &c.to_bytes());
        }
    };
    let pool = ParExec::new(parsed.jobs);
    let store = open_store(parsed.store.as_deref())?;
    let mut control = PipelineControl::new(&budget);
    control.resume = resume;
    control.checkpoint_every = 4096;
    control.pool = Some(&pool);
    control.store = store.as_deref();
    if parsed.checkpoint.is_some() {
        control.on_checkpoint = Some(&mut sink);
    }

    let report = match run_circuit_controlled(
        &parsed.fsm,
        &parsed.latencies,
        &parsed.options,
        &lib,
        control,
    ) {
        Ok(report) => report,
        Err(PipelineError::Interrupted(i)) => match (&parsed.checkpoint, &i.checkpoint) {
            (Some(path), Some(ckpt)) => {
                save_or_warn(path, TABLE_CHECKPOINT_KIND, &ckpt.to_bytes());
                eprintln!(
                    "[ced] table run {}; checkpoint saved, resume with --resume {path}",
                    i.interrupted
                );
                return Ok(ExitStatus::Cancelled);
            }
            _ => {
                eprintln!("[ced] table run {}", i.interrupted);
                return Ok(ExitStatus::Cancelled);
            }
        },
        Err(e) => return Err(e.into()),
    };
    heartbeat.finish(budget.ticks());
    finish_store(store.as_deref(), parsed.quiet);

    println!("{}", table1_header(&parsed.latencies));
    println!("{}", table1_row(&report));
    println!(
        "duplication baseline: {} functions, {} gates, cost {:.1}",
        report.duplication.parity_functions, report.duplication.gates, report.duplication.area
    );
    for note in degradation_notes(&report) {
        println!("note: {note}");
    }
    if let Some(out) = &parsed.out {
        std::fs::write(out, ced_core::report_to_json(&report).render())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    Ok(ExitStatus::Ok)
}

/// `ced suite` — a survivable campaign over the built-in benchmark
/// machines: per-machine isolation and budgets, degraded retries,
/// quarantine, checkpoint/resume and a deterministic JSON report.
pub fn suite(args: &[String]) -> CliResult {
    let parsed = parse_suite(args)?;
    let lib = CellLibrary::new();
    let total = parsed.machines.len() as u64;

    let heartbeat = Arc::new(
        Heartbeat::new("suite", "machines")
            .with_total(total)
            .quiet(parsed.quiet),
    );

    let resume = parsed
        .resume
        .as_deref()
        .and_then(|path| load_resume(path, SUITE_CHECKPOINT_KIND, SuiteCheckpoint::from_bytes));
    let ckpt_path = parsed.checkpoint.clone();
    let mut sink = |c: &SuiteCheckpoint| {
        if let Some(path) = &ckpt_path {
            save_or_warn(path, SUITE_CHECKPOINT_KIND, &c.to_bytes());
        }
    };
    let hb = heartbeat.clone();
    let quiet = parsed.quiet;
    let mut progress = move |done: usize, total: usize, rec: &ced_core::MachineRecord| {
        if !quiet {
            eprintln!("[ced] suite: {} {} ({done}/{total})", rec.name, rec.status);
        }
        hb.observe(done as u64);
    };
    let pool = ParExec::new(parsed.jobs);
    let store = open_store(parsed.store.as_deref())?;
    let mut control = SuiteControl::new();
    control.resume = resume;
    control.pool = Some(&pool);
    control.store = store.clone();
    if parsed.checkpoint.is_some() {
        control.on_checkpoint = Some(&mut sink);
    }
    control.on_progress = Some(&mut progress);

    let mut report = match ced_core::run_suite(&parsed.machines, &parsed.options, &lib, control) {
        Ok(report) => report,
        Err(SuiteError::Interrupted(i)) => {
            if let Some(path) = &parsed.checkpoint {
                save_or_warn(path, SUITE_CHECKPOINT_KIND, &i.checkpoint.to_bytes());
                eprintln!(
                    "[ced] suite {}; checkpoint saved, resume with --resume {path}",
                    i.interrupted
                );
                return Ok(ExitStatus::Cancelled);
            }
            eprintln!("[ced] suite {}", i.interrupted);
            return Ok(ExitStatus::Cancelled);
        }
        Err(e) => return Err(e.into()),
    };
    heartbeat.finish(report.records.len() as u64);

    // Trust-but-verify: re-prove every finished record, quarantining
    // refuted machines, and append the certification document to the
    // report output (JSON Lines when writing to a file).
    let mut json = report.to_json();
    if parsed.certify {
        let certs = certify_suite(&mut report, &parsed, &lib, &pool, store.as_deref());
        json = format!(
            "{}\n{}",
            report.to_json(),
            ced_cert::report::cert_report_json(&certs).render()
        );
    }
    finish_store(store.as_deref(), parsed.quiet);
    match &parsed.out {
        Some(out) => std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?,
        None => println!("{json}"),
    }
    eprintln!(
        "[ced] suite: {} completed, {} degraded, {} quarantined",
        report.completed(),
        report.degraded(),
        report.quarantined()
    );
    Ok(report_status(report.quarantined(), report.degraded()))
}

/// `ced certify` — run the pipeline, then independently re-prove every
/// claim it made with the `ced-cert` verifier chain. Exits nonzero
/// unless every stage of every latency bound certifies.
pub fn certify(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let lib = CellLibrary::new();
    let heartbeat = Arc::new(
        Heartbeat::new(&format!("certify {}", parsed.fsm.name()), "work units").quiet(parsed.quiet),
    );
    let budget = run_budget(parsed.deadline_ms, parsed.ticks, heartbeat.clone());
    let pool = ParExec::new(parsed.jobs);
    let store = open_store(parsed.store.as_deref())?;
    let report = match run_circuit_controlled(
        &parsed.fsm,
        &parsed.latencies,
        &parsed.options,
        &lib,
        PipelineControl {
            pool: Some(&pool),
            store: store.as_deref(),
            ..PipelineControl::new(&budget)
        },
    ) {
        Ok(report) => report,
        Err(PipelineError::Interrupted(i)) => {
            eprintln!("[ced] certify: pipeline {}", i.interrupted);
            return Ok(ExitStatus::Cancelled);
        }
        Err(e) => return Err(e.into()),
    };
    let cert = ced_cert::certify_report_stored(
        &parsed.fsm,
        &report,
        &parsed.options,
        &ced_cert::CertifyOptions {
            seed: parsed.seed,
            ..ced_cert::CertifyOptions::default()
        },
        &budget,
        &pool,
        store.as_deref(),
    )?;
    heartbeat.finish(budget.ticks());
    finish_store(store.as_deref(), parsed.quiet);
    print!("{}", ced_cert::report::render_text(&cert));
    let verdict = cert.verdict();
    if let Some(out) = &parsed.out {
        std::fs::write(out, ced_cert::report::cert_report_json(&[cert]).render())
            .map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    match verdict {
        ced_cert::Verdict::Certified => Ok(ExitStatus::Ok),
        ced_cert::Verdict::Refuted => {
            eprintln!("[ced] certify: verdict refuted");
            Ok(ExitStatus::Refuted)
        }
        // A refusal is not a refutation: the verifier could not decide,
        // which is an environment/limits problem, not a disproof.
        v => Err(format!("certification verdict: {v}").into()),
    }
}

/// Re-proves every finished suite record with the certification layer.
/// Refuted machines are quarantined in place (status re-rendered, note
/// appended); refusals and certification errors are surfaced as notes
/// on stderr but do not quarantine — only a concrete witness does.
fn certify_suite(
    report: &mut ced_core::SuiteReport,
    parsed: &crate::options::SuiteArgs,
    lib: &CellLibrary,
    pool: &ParExec,
    store: Option<&Store>,
) -> Vec<ced_cert::MachineCertification> {
    let mut certs = Vec::new();
    for (name, fsm) in &parsed.machines {
        let Some(rec) = report.records.iter_mut().find(|r| r.name == *name) else {
            continue;
        };
        if rec.status == ced_core::MachineStatus::Quarantined {
            continue; // nothing finished, nothing to certify
        }
        // A two-attempt record ran under the degraded option set; the
        // certifier must reproduce the same deterministic artifacts.
        let pipeline = if rec.attempts > 1 {
            ced_core::suite::degraded_pipeline(&parsed.options.pipeline)
        } else {
            parsed.options.pipeline.clone()
        };
        let mut budget = Budget::new();
        if let Some(d) = parsed.options.machine_deadline {
            budget = budget.with_deadline(d);
        }
        if let Some(t) = parsed.options.machine_ticks {
            budget = budget.with_tick_cap(t);
        }
        let outcome = run_circuit_controlled(
            fsm,
            &parsed.options.latencies,
            &pipeline,
            lib,
            PipelineControl {
                pool: Some(pool),
                store,
                ..PipelineControl::new(&budget)
            },
        )
        .map_err(|e| e.to_string())
        .and_then(|pr| {
            ced_cert::certify_report_stored(
                fsm,
                &pr,
                &pipeline,
                &ced_cert::CertifyOptions::default(),
                &budget,
                pool,
                store,
            )
            .map_err(|e| e.to_string())
        });
        match outcome {
            Ok(cert) => {
                if !parsed.quiet {
                    eprintln!("[ced] certify: {name} {}", cert.verdict());
                }
                if cert.verdict() == ced_cert::Verdict::Refuted {
                    let stages: Vec<String> = cert
                        .refutations()
                        .iter()
                        .map(|r| r.stage.to_string())
                        .collect();
                    rec.quarantine(format!("certification refuted: {}", stages.join(", ")));
                }
                certs.push(cert);
            }
            Err(e) => {
                eprintln!("[ced] certify: {name}: could not certify: {e}");
            }
        }
    }
    report.certified = true;
    certs
}

/// `ced store` — inspect (`stats`) or garbage-collect (`gc`) a
/// content-addressed artifact store directory. Listings are sorted by
/// (stage, fingerprint), so the output is deterministic for a given
/// store state.
pub fn store(args: &[String]) -> CliResult {
    let Some(action) = args.first() else {
        return Err("store needs an action: `ced store stats|gc --store DIR`".into());
    };
    let mut dir: Option<String> = None;
    let mut keep_runs: u64 = 1;
    let mut json = false;
    let mut it = args[1..].iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                dir = Some(it.next().ok_or("--store needs a directory path")?.clone());
            }
            "--json" => {
                json = true;
            }
            "--keep-runs" => {
                keep_runs = it
                    .next()
                    .ok_or("--keep-runs needs a number")?
                    .parse()
                    .map_err(|_| "--keep-runs needs a number")?;
                if keep_runs == 0 {
                    return Err("--keep-runs must be at least 1".into());
                }
            }
            other => {
                return Err(format!("unknown store argument `{other}`").into());
            }
        }
    }
    let dir = dir.ok_or("store needs --store DIR")?;
    let store = Store::open(Path::new(&dir)).map_err(|e| format!("cannot open {dir}: {e}"))?;
    match action.as_str() {
        "stats" if json => {
            println!("{}", store.stats_json().render());
        }
        "stats" => {
            let stats = store.stats();
            // `open` bumped the run counter for this process; the
            // stored index still describes the previous run.
            println!(
                "store {dir}: {} artifact(s), {} bytes, last run {}",
                stats.entries,
                stats.bytes,
                stats.run.saturating_sub(1)
            );
            for e in store.entries() {
                println!(
                    "  {} {:016x}  {:>10} bytes  last used run {}",
                    e.stage, e.fingerprint, e.len, e.last_run
                );
            }
            let previous = store.previous_run_stats();
            if !previous.is_empty() {
                println!("previous run:");
                for (stage, c) in previous {
                    println!(
                        "  {stage}: {} hit, {} miss ({} corrupt), {} put",
                        c.hits, c.misses, c.corrupt, c.puts
                    );
                }
            }
        }
        "gc" => {
            // Anchor the cutoff on the newest run that actually *used*
            // an artifact, not on the run counter: admin invocations
            // (stats, gc itself) bump the counter too, and counting
            // them would make back-to-back `gc` calls age everything
            // out.
            let newest = store
                .entries()
                .iter()
                .map(|e| e.last_run)
                .max()
                .unwrap_or(0);
            let min_run = newest.saturating_sub(keep_runs - 1);
            let outcome = store.gc(min_run).map_err(|e| format!("gc on {dir}: {e}"))?;
            println!(
                "store {dir}: removed {} artifact(s) ({} bytes), kept {}",
                outcome.removed, outcome.bytes_freed, outcome.kept
            );
        }
        other => {
            return Err(format!("unknown store action `{other}` (expected stats or gc)").into());
        }
    }
    Ok(ExitStatus::Ok)
}

/// `ced export` — write the synthesized machine as BLIF or Verilog.
pub fn export(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let (_, circuit) = prepare_machine(&parsed.fsm, &parsed.options)?;
    let text = match parsed.format.as_str() {
        "verilog" => circuit.to_verilog(),
        _ => circuit.to_blif(),
    };
    print!("{text}");
    Ok(ExitStatus::Ok)
}

/// `ced minimize` — state-minimize and print the machine.
pub fn minimize(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let mut fsm = parsed.fsm.clone();
    if fsm.check_complete().is_err() {
        fsm.complete_with_self_loops();
    }
    let min = ced_fsm::minimize::minimize_states(&fsm)?;
    eprintln!(
        "{}: {} states → {} states",
        fsm.name(),
        fsm.num_states(),
        min.num_states()
    );
    print!("{}", ced_fsm::kiss::to_string(&min));
    Ok(ExitStatus::Ok)
}

/// `ced equiv` — sequential equivalence of two machines.
pub fn equiv(args: &[String]) -> CliResult {
    // Two positional files; reuse the common parser by splitting them.
    let files: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if files.len() != 2 {
        return Err("equiv needs exactly two machine files".into());
    }
    let flags: Vec<String> = args
        .iter()
        .filter(|a| a.starts_with("--"))
        .cloned()
        .collect();
    let mut args_a = vec![files[0].clone()];
    args_a.extend(flags.clone());
    let mut args_b = vec![files[1].clone()];
    args_b.extend(flags);
    let a = parse(&args_a)?;
    let b = parse(&args_b)?;
    let (_, circuit_a) = prepare_machine(&a.fsm, &a.options)?;
    let (_, circuit_b) = prepare_machine(&b.fsm, &b.options)?;
    match ced_sim::equiv::check_equivalence(&circuit_a, &circuit_b) {
        ced_sim::equiv::EquivalenceResult::Equivalent { explored } => {
            println!("equivalent ({explored} reachable product states explored)");
            Ok(ExitStatus::Ok)
        }
        ced_sim::equiv::EquivalenceResult::Inequivalent {
            counterexample,
            output_a,
            output_b,
        } => {
            println!(
                "NOT equivalent: input sequence {counterexample:?} yields outputs                  {output_a:b} vs {output_b:b}"
            );
            eprintln!("[ced] equiv: machines differ");
            Ok(ExitStatus::Refuted)
        }
        ced_sim::equiv::EquivalenceResult::InterfaceMismatch => {
            Err("machines have different input/output counts".into())
        }
    }
}

/// `ced inject` — operational fault-injection validation.
pub fn inject(args: &[String]) -> CliResult {
    let parsed = parse(args)?;
    let store = open_store(parsed.store.as_deref())?;
    if parsed.campaign {
        return inject_campaign(&parsed, store.as_deref());
    }
    if !parsed.options.fault_model.is_permanent() {
        return Err(format!(
            "the quick operational check drives permanent faults only; run \
             `ced inject --campaign --fault-model {}` for the model-aware campaign",
            parsed.options.fault_model
        )
        .into());
    }
    let (encoded, circuit) =
        prepare_machine_stored(&parsed.fsm, &parsed.options, store.as_deref())?;
    let input_model = build_input_model(
        encoded.fsm(),
        encoded.encoding(),
        parsed.options.input_granularity,
    );
    let faults = fault_list(&circuit, &parsed.options);
    let unlimited = Budget::unlimited();
    let (table, _) = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &DetectOptions {
            latency: parsed.latency,
            semantics: parsed.options.semantics,
            input_model,
            ..DetectOptions::default()
        },
        &[parsed.latency],
        BuildControl {
            store: store.as_deref(),
            ..BuildControl::new(&unlimited)
        },
    )?
    .pop()
    .expect("one latency requested");
    let outcome = minimize_parity_functions(&table, &parsed.options.ced);
    println!(
        "cover: q = {} trees, verifying operationally under {:?} semantics…",
        outcome.q, parsed.options.semantics
    );
    let mut histogram = vec![0usize; parsed.latency + 1];
    let mut quiet = 0usize;
    let mut missed = 0usize;
    // Each fault's drive is pure (its seed depends only on the fault
    // index), so the pool judges them in parallel; the ordered merge
    // keeps counts and MISS lines in fault order, byte-identical to
    // the serial loop at every job count.
    let pool = ParExec::new(parsed.jobs);
    pool.for_each_ordered(
        &faults,
        |i, &fault| {
            Ok::<_, std::convert::Infallible>(simulate_fault_detection(
                &circuit,
                fault,
                &outcome.cover.masks,
                parsed.latency,
                3000,
                parsed.seed ^ (i as u64) << 7,
                parsed.options.semantics,
            ))
        },
        |i, sim| match sim {
            SimOutcome::NoErrorObserved => quiet += 1,
            SimOutcome::DetectedInTime { latency } => histogram[latency] += 1,
            SimOutcome::Missed { at_cycle } => {
                missed += 1;
                let fault = faults[i];
                println!("  MISS: {fault} escaped its window (activation at cycle {at_cycle})");
            }
        },
    )
    .unwrap_or_else(|e| match e {});
    for (cycles, count) in histogram.iter().enumerate().skip(1) {
        println!("  detected in {cycles} cycle(s): {count} faults");
    }
    println!("  no error observed: {quiet}");
    println!("  missed: {missed}");
    finish_store(store.as_deref(), parsed.quiet);
    if missed == 0 {
        println!("bounded-latency guarantee held for every injected fault ✓");
        Ok(ExitStatus::Ok)
    } else {
        eprintln!(
            "[ced] inject: guarantee violated (expected with lockstep-verified covers judged \
             by hardware semantics at p ≥ 2; see EXPERIMENTS.md E5)"
        );
        Ok(ExitStatus::Refuted)
    }
}

/// `ced inject --campaign` — the full cross-validating campaign: cover
/// synthesis under hardware semantics, machine-fault injection judged
/// by the synthesized checker netlist, tensor cross-validation, and
/// the checker-netlist self-audit.
fn inject_campaign(parsed: &Parsed, store: Option<&Store>) -> CliResult {
    use ced_inject::{run_campaign_stored, CampaignError, CampaignOptions};
    use ced_sim::detect::{InputModel, Semantics};

    let (_, circuit) = prepare_machine_stored(&parsed.fsm, &parsed.options, store)?;
    let faults = fault_list(&circuit, &parsed.options);
    // The campaign's oracle is exact only under hardware semantics with
    // exhaustive inputs; the cover must be verified under the same
    // conditions or escapes would be expected, not disagreements.
    let unlimited = Budget::unlimited();
    let (table, dstats) = DetectabilityTable::build_many_controlled(
        &circuit,
        &faults,
        &DetectOptions {
            latency: parsed.latency,
            semantics: Semantics::FaultyTrajectory,
            input_model: InputModel::Exhaustive,
            fault_model: parsed.options.fault_model,
            ..DetectOptions::default()
        },
        &[parsed.latency],
        BuildControl {
            store,
            ..BuildControl::new(&unlimited)
        },
    )?
    .pop()
    .expect("one latency requested");
    let outcome = minimize_parity_functions(&table, &parsed.options.ced);
    if !outcome.degradation.is_empty() {
        println!("cover solved by {} after degradation:", outcome.method);
        for event in &outcome.degradation {
            println!("  {event}");
        }
    }
    let ced = synthesize_ced(
        &circuit,
        &outcome.cover,
        parsed.latency,
        &parsed.options.minimize,
    );
    println!(
        "campaign: {} machine faults ({} untestable), q = {} trees, p = {}",
        dstats.faults, dstats.untestable_faults, outcome.q, parsed.latency
    );
    let report = run_campaign_stored(
        &circuit,
        &ced,
        &faults,
        &CampaignOptions {
            steps: parsed.steps,
            seed: parsed.seed ^ 0xCA3E,
            checker_faults: parsed.checker_faults,
            fault_model: parsed.options.fault_model,
            ..CampaignOptions::default()
        },
        &Budget::unlimited(),
        &ParExec::new(parsed.jobs),
        store,
    )
    .map_err(|e| match e {
        CampaignError::Detect(d) => d.to_string(),
        CampaignError::Interrupted { .. } => {
            unreachable!("an unlimited budget cannot interrupt")
        }
    })?;
    print!("{}", report.render());
    if let Some(out) = &parsed.out {
        // Exactly the rendered campaign report — the same bytes a
        // served `inject` request returns as its payload.
        std::fs::write(out, report.render()).map_err(|e| format!("cannot write {out}: {e}"))?;
    }
    finish_store(store, parsed.quiet);
    if report.is_clean() {
        println!("campaign clean: hardware agrees with V(i,j,k) everywhere ✓");
        Ok(ExitStatus::Ok)
    } else {
        eprintln!(
            "[ced] inject: {} disagreement(s) between the hardware and the detectability tensor",
            report.machine.disagreements.len()
        );
        Ok(ExitStatus::Refuted)
    }
}

/// `ced fleet status` — a read-only live view over a fleet campaign
/// directory: pending/leased/done/poisoned counts, lease heartbeat
/// ages, per-unit attempt counts. Never claims, expires or mutates
/// anything, so it is safe to run next to a live campaign.
fn fleet_status_cmd(args: &[String]) -> CliResult {
    let mut dir: Option<String> = None;
    let mut json = false;
    let mut stale_ms = 10_000u64;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--store" => {
                dir = Some(it.next().ok_or("--store needs a directory path")?.clone());
            }
            "--json" => {
                json = true;
            }
            "--stale-ms" => {
                stale_ms = it
                    .next()
                    .ok_or("--stale-ms needs a number")?
                    .parse()
                    .map_err(|_| "--stale-ms needs a number")?;
            }
            other => return Err(format!("unknown fleet status flag `{other}`").into()),
        }
    }
    let dir = dir.ok_or("fleet status needs --store DIR (the campaign directory)")?;
    let status =
        ced_fleet::fleet_status(Path::new(&dir), std::time::Duration::from_millis(stale_ms))?;
    if json {
        println!("{}", status.to_json().render());
    } else {
        print!("{}", status.render_text());
    }
    Ok(ExitStatus::Ok)
}

/// Fleet-only flags split off before the shared suite parser runs, so
/// the corpus and campaign options are parsed by exactly the same code
/// as `ced suite` — which is what makes the fingerprint handshake
/// between coordinator and workers meaningful.
struct FleetFlags {
    heartbeat_ms: Option<u64>,
    poll_ms: Option<u64>,
    max_attempts: Option<u64>,
    worker_id: Option<String>,
    idle_timeout_ms: Option<u64>,
    manifest_wait_ms: Option<u64>,
    rest: Vec<String>,
}

fn split_fleet_flags(args: &[String]) -> Result<FleetFlags, Box<dyn std::error::Error>> {
    let mut f = FleetFlags {
        heartbeat_ms: None,
        poll_ms: None,
        max_attempts: None,
        worker_id: None,
        idle_timeout_ms: None,
        manifest_wait_ms: None,
        rest: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut num = |flag: &str| -> Result<u64, Box<dyn std::error::Error>> {
            it.next()
                .ok_or_else(|| format!("{flag} needs a number"))?
                .parse()
                .map_err(|_| format!("{flag} needs a number").into())
        };
        match a.as_str() {
            "--heartbeat-ms" => f.heartbeat_ms = Some(num("--heartbeat-ms")?),
            "--poll-ms" => f.poll_ms = Some(num("--poll-ms")?),
            "--max-attempts" => {
                let n = num("--max-attempts")?;
                if n == 0 {
                    return Err("--max-attempts must be at least 1".into());
                }
                f.max_attempts = Some(n);
            }
            "--idle-timeout-ms" => f.idle_timeout_ms = Some(num("--idle-timeout-ms")?),
            "--manifest-wait-ms" => f.manifest_wait_ms = Some(num("--manifest-wait-ms")?),
            "--worker-id" => {
                f.worker_id = Some(it.next().ok_or("--worker-id needs a name")?.clone());
            }
            // Single-process survivability flags that have a different
            // fleet-level story: rejecting them beats silently ignoring
            // them.
            "--certify" => {
                return Err(
                    "fleet does not take --certify; certify the merged report with \
                            `ced suite --certify` semantics in a follow-up run"
                        .into(),
                );
            }
            "--checkpoint" | "--resume" => {
                return Err(format!(
                    "fleet does not take {a}; the fleet directory itself is the checkpoint — \
                     re-running the coordinator on the same --store resumes the campaign"
                )
                .into());
            }
            other => f.rest.push(other.to_string()),
        }
    }
    Ok(f)
}

/// `ced fleet coordinator|worker` — crash-tolerant sharded campaigns:
/// the coordinator publishes the corpus as lease-based work units in
/// `<store>/fleet/` and merges results deterministically; workers (any
/// number of processes, possibly on other machines sharing the
/// filesystem) claim, heartbeat and execute units.
pub fn fleet(args: &[String]) -> CliResult {
    let Some(role) = args.first() else {
        return Err(
            "fleet needs a role: `ced fleet coordinator|worker|status --store DIR …`".into(),
        );
    };
    if role == "status" {
        return fleet_status_cmd(&args[1..]);
    }
    let flags = split_fleet_flags(&args[1..])?;
    let parsed = parse_suite(&flags.rest)?;
    let store_dir = parsed
        .store
        .clone()
        .ok_or("fleet needs --store DIR (the shared campaign directory)")?;
    let ms = std::time::Duration::from_millis;
    let cancel = ced_runtime::CancelToken::new();
    match role.as_str() {
        "coordinator" => {
            let mut copts = ced_fleet::CoordinatorOptions::default();
            if let Some(n) = flags.heartbeat_ms {
                copts.heartbeat_timeout = ms(n);
            }
            if let Some(n) = flags.poll_ms {
                copts.poll_interval = ms(n);
            }
            if let Some(n) = flags.max_attempts {
                copts.max_attempts = n;
            }
            if flags.worker_id.is_some() || flags.idle_timeout_ms.is_some() {
                return Err("--worker-id/--idle-timeout-ms are worker flags".into());
            }
            let outcome = ced_fleet::run_coordinator(
                Path::new(&store_dir),
                &parsed.machines,
                &parsed.options,
                &copts,
                &cancel,
            )?;
            let json = outcome.report.to_json();
            match &parsed.out {
                Some(out) => {
                    std::fs::write(out, &json).map_err(|e| format!("cannot write {out}: {e}"))?
                }
                None => println!("{json}"),
            }
            eprintln!(
                "[ced] fleet: {} completed, {} degraded, {} quarantined \
                 ({} lease(s) re-assigned, {} unit(s) poisonous)",
                outcome.report.completed(),
                outcome.report.degraded(),
                outcome.report.quarantined(),
                outcome.reassigned,
                outcome.poisoned_units,
            );
            Ok(report_status(
                outcome.report.quarantined(),
                outcome.report.degraded(),
            ))
        }
        "worker" => {
            if flags.max_attempts.is_some() {
                return Err("--max-attempts is a coordinator flag".into());
            }
            let mut wopts = ced_fleet::WorkerOptions::default();
            if let Some(id) = flags.worker_id {
                wopts.worker_id = id;
            }
            if let Some(n) = flags.heartbeat_ms {
                wopts.heartbeat_period = ms(n);
            }
            if let Some(n) = flags.poll_ms {
                wopts.poll_interval = ms(n);
            }
            if let Some(n) = flags.idle_timeout_ms {
                wopts.idle_timeout = Some(ms(n));
            }
            if let Some(n) = flags.manifest_wait_ms {
                wopts.manifest_wait = ms(n);
            }
            // Workers share the artifact store of the campaign
            // directory itself, so tensor/synthesis memoization works
            // across the whole fleet.
            let store = open_store(Some(store_dir.as_str()))?;
            let lib = CellLibrary::new();
            let outcome = ced_fleet::run_worker(
                Path::new(&store_dir),
                &parsed.options,
                &wopts,
                &lib,
                &cancel,
                store.as_ref(),
            )?;
            finish_store(store.as_deref(), parsed.quiet);
            match outcome {
                ced_fleet::WorkerOutcome::Drained { processed } => {
                    eprintln!(
                        "[ced] fleet worker {}: campaign drained ({processed} unit(s) done here)",
                        wopts.worker_id
                    );
                    Ok(ExitStatus::Ok)
                }
                ced_fleet::WorkerOutcome::IdleTimeout { processed } => {
                    eprintln!(
                        "[ced] fleet worker {}: idle timeout with campaign incomplete \
                         ({processed} unit(s) done here)",
                        wopts.worker_id
                    );
                    Ok(ExitStatus::Cancelled)
                }
            }
        }
        other => {
            Err(format!("unknown fleet role `{other}` (expected coordinator or worker)").into())
        }
    }
}
