//! Typed process exit codes.
//!
//! Fleet workers, CI legs and scripts need to distinguish *why* a
//! command exited nonzero without parsing stderr. Every `ced` command
//! maps its outcome onto this fixed, documented table:
//!
//! | code | meaning |
//! |------|---------|
//! | 0    | ok — the command finished and every guarantee held |
//! | 1    | error — bad usage, unreadable input, environment failure |
//! | 2    | quarantined — campaign finished but isolated ≥ 1 machine |
//! | 3    | refuted — a proof obligation failed (certification refuted, machines inequivalent, injected fault escaped its window, tensor disagreement) |
//! | 4    | cancelled — budget/interrupt stopped the run; a checkpoint may have been saved |
//! | 5    | degraded — campaign finished, nothing quarantined, but ≥ 1 machine needed degraded options |
//!
//! Codes 2–5 are *outcomes*, not failures: the command ran to its
//! natural end and is telling the caller what it concluded. Only code
//! 1 means the invocation itself went wrong.

/// The typed outcome a command hands back to `main` for conversion
/// into a process exit code.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitStatus {
    /// 0 — finished, every guarantee held.
    Ok,
    /// 2 — campaign quarantined at least one machine.
    Quarantined,
    /// 3 — a proof obligation was refuted.
    Refuted,
    /// 4 — the run was cancelled by a budget or interrupt.
    Cancelled,
    /// 5 — finished only by degrading options (nothing quarantined).
    Degraded,
}

impl ExitStatus {
    /// The process exit code for this outcome. Code 1 is reserved for
    /// `Err` returns (usage and environment errors) and never appears
    /// here.
    pub fn code(self) -> u8 {
        match self {
            ExitStatus::Ok => 0,
            ExitStatus::Quarantined => 2,
            ExitStatus::Refuted => 3,
            ExitStatus::Cancelled => 4,
            ExitStatus::Degraded => 5,
        }
    }
}

/// Ranks a finished campaign report: quarantine dominates degradation
/// dominates a clean pass. Shared by `ced suite` and `ced fleet
/// coordinator` so both grade identically.
pub fn report_status(quarantined: usize, degraded: usize) -> ExitStatus {
    if quarantined > 0 {
        ExitStatus::Quarantined
    } else if degraded > 0 {
        ExitStatus::Degraded
    } else {
        ExitStatus::Ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_match_the_documented_table() {
        assert_eq!(ExitStatus::Ok.code(), 0);
        assert_eq!(ExitStatus::Quarantined.code(), 2);
        assert_eq!(ExitStatus::Refuted.code(), 3);
        assert_eq!(ExitStatus::Cancelled.code(), 4);
        assert_eq!(ExitStatus::Degraded.code(), 5);
    }

    #[test]
    fn quarantine_outranks_degradation() {
        assert_eq!(report_status(0, 0), ExitStatus::Ok);
        assert_eq!(report_status(0, 2), ExitStatus::Degraded);
        assert_eq!(report_status(1, 2), ExitStatus::Quarantined);
    }
}
