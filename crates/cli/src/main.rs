//! `ced` — command-line driver for bounded-latency concurrent error
//! detection on KISS2 finite state machines.
//!
//! ```text
//! ced stats  <machine.kiss2>                  structural statistics
//! ced gen    [--scale N] [--seed S]           emit a seeded synthetic
//!                                             scaling machine as KISS2
//! ced synth  <machine.kiss2> [--encoding E]   synthesize, print gates/cost
//! ced check  <machine.kiss2> [--latency P]    run Algorithm 1, print the
//!                                             parity cover & checker cost
//! ced table  <machine.kiss2> [--latencies L]  one Table-1 style row
//! ced suite  [--machines A,B] [--scaled]      survivable campaign over the
//!                                             built-in benchmark machines
//! ced fleet  coordinator|worker --store DIR   crash-tolerant sharded campaign
//!                                             across processes/machines
//! ced certify <machine.kiss2> [--latencies L] re-prove every pipeline claim
//!                                             with the independent verifier
//!                                             chain
//! ced inject <machine.kiss2> [--latency P]    fault-injection validation
//! ced store  stats|gc --store DIR             inspect / garbage-collect the
//!                                             incremental artifact store
//! ced serve  [--addr H:P] [--store DIR]       long-lived analysis daemon:
//!                                             line-delimited JSON over TCP,
//!                                             warm store, admission control
//! ced export <machine.kiss2> --format blif|verilog
//! ced minimize <machine.kiss2>                emit the state-minimized KISS2
//! ced equiv  <a.kiss2> <b.kiss2>              gate-accurate equivalence check
//! ```

use std::process::ExitCode;

mod commands;
mod exit;
mod options;

use exit::ExitStatus;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(status) => ExitCode::from(status.code()),
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(1)
        }
    }
}

fn run(args: &[String]) -> Result<ExitStatus, Box<dyn std::error::Error>> {
    let Some(command) = args.first() else {
        print_usage();
        return Ok(ExitStatus::Ok);
    };
    match command.as_str() {
        "stats" => commands::stats(&args[1..]),
        "gen" => commands::gen(&args[1..]),
        "synth" => commands::synth(&args[1..]),
        "check" => commands::check(&args[1..]),
        "table" => commands::table(&args[1..]),
        "suite" => commands::suite(&args[1..]),
        "fleet" => commands::fleet(&args[1..]),
        "certify" => commands::certify(&args[1..]),
        "inject" => commands::inject(&args[1..]),
        "store" => commands::store(&args[1..]),
        "serve" => commands::serve(&args[1..]),
        "export" => commands::export(&args[1..]),
        "minimize" => commands::minimize(&args[1..]),
        "equiv" => commands::equiv(&args[1..]),
        "--help" | "-h" | "help" => {
            print_usage();
            Ok(ExitStatus::Ok)
        }
        other => Err(format!("unknown command `{other}`; try `ced help`").into()),
    }
}

fn print_usage() {
    eprintln!(
        "\
ced — bounded-latency concurrent error detection for FSMs
      (reproduction of Almukhaizim/Drineas/Makris, DATE 2004)

usage: ced <command> <machine.kiss2> [options]

commands:
  stats   structural statistics (states, loops, self-loop density)
  gen     emit a seeded synthetic scaling machine (dk512-shaped, --scale ×
          15 states, or --states N exactly) as KISS2 to stdout or --out;
          byte-deterministic in the flags at every --jobs value
  synth   synthesize to gates; print gate count, area, depth
  check   run Algorithm 1; print the parity cover and checker cost
  table   one Table-1 style row across several latency bounds
  suite   survivable campaign over the built-in benchmark machines:
          per-machine budgets, degraded retries, quarantine, JSON report
  fleet   the suite campaign sharded over many processes (coordinator +
          any number of workers rendezvousing on a shared --store DIR);
          workers may be killed at any point — the merged report is
          byte-identical to the single-process run
  certify run the pipeline, then independently re-prove every claim it
          made: BFS soundness, exact-rational LP certificates, synthesis
          equivalence, checker co-simulation, greedy differential
  inject  operational validation: inject every fault, report latencies
  store   inspect (`stats`, with --json for the machine-readable
          document) or garbage-collect (`gc`) an on-disk incremental
          store created with --store
  serve   long-lived analysis daemon: check/table/certify/inject over
          line-delimited JSON on TCP, sharing one warm store and worker
          pool across requests; payloads are byte-identical to the
          one-shot commands
  export  write the synthesized machine as BLIF or structural Verilog
  minimize  merge equivalent states; print the minimized KISS2
  equiv   check two machines for sequential output equivalence

common options:
  --encoding natural|gray|onehot|adjacency   state assignment (default natural)
  --latency P                                latency bound (default 1)
  --latencies A,B,C                          bounds for `table` (default 1,2,3)
  --semantics lockstep|hardware              step-difference semantics
  --exhaustive-inputs                        exact input enumeration
  --fault-model MODEL                        fault model for check, table,
                                             suite, certify and inject:
                                               permanent       (default)
                                               transient:D     SEU active for
                                                               the first D
                                                               steps, then gone
                                               intermittent:K  re-asserts every
                                                               K-th step
                                               multibit:R      permanent
                                                               cluster of nets
                                                               within index
                                                               radius R
                                             `permanent` is byte-identical to
                                             omitting the flag in every report,
                                             checkpoint and store key
  --seed N                                   rounding seed (default 0)
  --dense                                    run the dense analytic engine
                                             (row-major tensor + dense
                                             simplex tableau) instead of the
                                             default bit-packed sparse
                                             engine; results are
                                             byte-identical either way —
                                             this is the escape hatch and
                                             differential-test anchor
  --format blif|verilog                      export format (default blif)
  --jobs N                                   worker threads for table, suite,
                                             certify and inject (default:
                                             available parallelism; results
                                             are byte-identical at every N)
  --store DIR                                content-addressed incremental
                                             store for check, table, suite,
                                             certify and inject: memoizes
                                             tensor / synthesis / search
                                             artifacts so reruns and p-sweeps
                                             reuse them (results are
                                             byte-identical with or without
                                             the store; cache summary goes to
                                             stderr)

survivability options (table, suite):
  --deadline-ms N                            wall-clock budget (per machine
                                             for `suite`, whole run for `table`)
  --ticks N                                  work-tick budget (same scopes)
  --checkpoint FILE                          write checkpoints as the run
                                             progresses
  --resume FILE                              resume from a checkpoint (corrupt
                                             checkpoints are reported and the
                                             run recomputes from scratch)
  --quiet                                    suppress heartbeat progress lines
  --out FILE                                 write the JSON report to FILE

suite options:
  --machines A,B,C                           subset of the benchmark suite
                                             (default: all Table-1 machines)
  --scaled                                   use the scaled-down analogues
  --no-retry                                 quarantine immediately instead of
                                             retrying once with degraded
                                             options
  --certify                                  re-prove every finished machine
                                             with the certification layer;
                                             refuted machines are quarantined
                                             and the cert report is appended
                                             as a second JSON line

inject options:
  --campaign                                 full campaign: checker netlist in
                                             the loop, cross-validated against
                                             the detectability tensor, plus a
                                             checker-netlist self-audit
  --no-checker-faults                        skip the checker self-audit
  --steps N                                  cycles per injected fault (2000)

store options:
  --store DIR                                the store directory (required)
  --json                                     `stats`: emit the deterministic
                                             ced-store-stats/1 JSON document
  --keep-runs N                              `gc`: keep artifacts last used in
                                             the newest N runs (default 1)

serve options:
  --addr HOST:PORT                           bind address (default
                                             127.0.0.1:0 — an ephemeral port,
                                             printed as the first stdout line)
  --jobs N                                   shared analysis pool width
                                             (default 1; results identical at
                                             every N)
  --workers N                                concurrent requests (default 2)
  --max-pending N                            admission cap: queued requests
                                             beyond this are shed with a typed
                                             `overloaded` error (default 16)
  --max-line-bytes N                         longest accepted request line
                                             (default 1 MiB; larger lines get
                                             a typed `line_too_long` error)
  --line-timeout-ms N                        stall bound for partial request
                                             lines (default 10000)
  --deadline-ms N                            default per-request deadline for
                                             requests that carry none
  --max-jobs N                               detached submit/poll/fetch jobs
                                             retained (default 64)
  --store DIR                                warm incremental store shared by
                                             every request
  --debug-ops                                honor `debug-panic` requests
                                             (executor-isolation probe for
                                             tests and CI)

fleet options (plus the suite options above, which every process of a
campaign must pass identically — workers refuse a manifest whose
fingerprint does not match their own options):
  --store DIR                                shared campaign directory
                                             (required; work units live under
                                             DIR/fleet/, the merged report at
                                             DIR/fleet/report.json)
  --heartbeat-ms N                           coordinator: declare a worker
                                             dead after N ms without a lease
                                             heartbeat (default 10000);
                                             worker: heartbeat period
                                             (default 500)
  --max-attempts N                           coordinator: assignments before a
                                             unit is quarantined as poisonous
                                             (default 3)
  --worker-id NAME                           worker: identity in lease files
                                             (default w<pid>)
  --idle-timeout-ms N                        worker: exit `cancelled` after N
                                             ms with no claimable work
                                             (default: wait forever)
  --manifest-wait-ms N                       worker: how long to wait for the
                                             coordinator's manifest (30000)
  --poll-ms N                                watchdog / claim sweep period

fleet status (read-only; safe next to a live campaign):
  ced fleet status --store DIR [--json] [--stale-ms N]
                                             pending/leased/done/poisoned unit
                                             counts, lease heartbeat ages and
                                             per-unit attempt counts; --json
                                             emits ced-fleet-status/1;
                                             --stale-ms marks leases older
                                             than N ms as [STALE]
                                             (default 10000)

exit codes:
  0  ok           finished; every guarantee held
  1  error        bad usage, unreadable input, environment failure
  2  quarantined  campaign finished but isolated at least one machine
  3  refuted      a proof obligation failed (certification refuted,
                  machines inequivalent, injected fault escaped, tensor
                  disagreement)
  4  cancelled    budget or idle timeout stopped the run; checkpoints
                  or partial fleet state were left for resumption
  5  degraded     campaign finished, nothing quarantined, but at least
                  one machine needed degraded options"
    );
}
