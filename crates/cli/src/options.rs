//! Shared CLI option parsing.

use ced_core::pipeline::{InputGranularity, PipelineOptions};
use ced_core::SolverEngine;
use ced_fsm::encoding::EncodingStrategy;
use ced_fsm::machine::Fsm;
use ced_sim::detect::Semantics;
use ced_sim::fault::FaultModel;

/// Parsed common options plus the machine they apply to.
pub struct Parsed {
    /// The machine loaded from the positional KISS2 path.
    pub fsm: Fsm,
    /// Pipeline configuration assembled from the flags.
    pub options: PipelineOptions,
    /// `--latency` (default 1).
    pub latency: usize,
    /// `--latencies` (default `[1, 2, 3]`).
    pub latencies: Vec<usize>,
    /// `--seed` (default 0).
    pub seed: u64,
    /// `--format` (default "blif").
    pub format: String,
    /// `--campaign`: run the full cross-validating fault-injection
    /// campaign (machine + checker faults) instead of the quick
    /// operational check.
    pub campaign: bool,
    /// `--no-checker-faults`: skip the checker-netlist audit inside a
    /// campaign.
    pub checker_faults: bool,
    /// `--steps` (default 2000): cycles driven per injected fault.
    pub steps: usize,
    /// `--quiet`: suppress heartbeat progress lines on stderr.
    pub quiet: bool,
    /// `--resume <path>`: resume from a checkpoint file.
    pub resume: Option<String>,
    /// `--checkpoint <path>`: write checkpoints to this file as the
    /// run progresses.
    pub checkpoint: Option<String>,
    /// `--deadline-ms N`: wall-clock budget for the run.
    pub deadline_ms: Option<u64>,
    /// `--ticks N`: work-tick budget for the run.
    pub ticks: Option<u64>,
    /// `--out <path>`: write the structured report here instead of
    /// stdout.
    pub out: Option<String>,
    /// `--jobs N` (default: available parallelism): worker threads for
    /// the parallel execution layer. Never changes results — every
    /// report is byte-identical at every job count.
    pub jobs: usize,
    /// `--store DIR`: content-addressed artifact store directory;
    /// memoizes the synth, whole-table and per-fault-cone tensor
    /// (tensor/tensor-frag/tensor-comp), cover and search stages
    /// across runs. Never
    /// changes results — a cache hit is byte-identical to a recompute.
    pub store: Option<String>,
    /// `--baseline <file>` (check only): a previous revision of the
    /// machine; seeds incremental re-analysis (per-fault-cone fragment
    /// reuse) and prints a one-line dirty-cone summary on stderr. The
    /// stdout report is byte-identical with or without it.
    pub baseline: Option<Fsm>,
}

/// Parses `<file> [flags…]`.
///
/// # Errors
///
/// Reports unknown flags, missing values, bad numbers and file/parse
/// failures with user-facing messages.
pub fn parse(args: &[String]) -> Result<Parsed, Box<dyn std::error::Error>> {
    let mut file: Option<String> = None;
    let mut options = PipelineOptions::paper_defaults();
    let mut latency = 1usize;
    let mut latencies = vec![1usize, 2, 3];
    let mut seed = 0u64;
    let mut format = String::from("blif");
    let mut campaign = false;
    let mut checker_faults = true;
    let mut steps = 2000usize;
    let mut quiet = false;
    let mut resume = None;
    let mut checkpoint = None;
    let mut deadline_ms = None;
    let mut ticks = None;
    let mut out = None;
    let mut jobs = ced_par::ParExec::available().jobs();
    let mut store = None;
    let mut baseline_path: Option<String> = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--encoding" => {
                let v = it.next().ok_or("--encoding needs a value")?;
                options.encoding = match v.as_str() {
                    "natural" => EncodingStrategy::Natural,
                    "gray" => EncodingStrategy::Gray,
                    "onehot" => EncodingStrategy::OneHot,
                    "adjacency" => EncodingStrategy::Adjacency,
                    other => return Err(format!("unknown encoding `{other}`").into()),
                };
            }
            "--latency" => {
                latency = it
                    .next()
                    .ok_or("--latency needs a number")?
                    .parse()
                    .map_err(|_| "--latency needs a number")?;
                if latency == 0 {
                    return Err("latency bound must be at least 1".into());
                }
            }
            "--latencies" => {
                let list = it.next().ok_or("--latencies needs a comma list")?;
                latencies = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "--latencies needs numbers like 1,2,3")?;
                if latencies.is_empty() || latencies.contains(&0) {
                    return Err("--latencies needs positive bounds".into());
                }
            }
            "--semantics" => {
                let v = it.next().ok_or("--semantics needs a value")?;
                options.semantics = match v.as_str() {
                    "lockstep" | "paper" => Semantics::Lockstep,
                    "hardware" | "faulty-trajectory" => Semantics::FaultyTrajectory,
                    other => return Err(format!("unknown semantics `{other}`").into()),
                };
            }
            "--exhaustive-inputs" => {
                options.input_granularity = InputGranularity::Exhaustive;
            }
            "--fault-model" => {
                let v = it.next().ok_or("--fault-model needs a value")?;
                options.fault_model = FaultModel::parse(v)?;
            }
            "--isolate-cones" => {
                options.isolate_output_logic = true;
            }
            "--dense" => {
                options.ced.engine = SolverEngine::Dense;
            }
            "--format" => {
                format = it.next().ok_or("--format needs a value")?.clone();
                if !matches!(format.as_str(), "blif" | "verilog") {
                    return Err(format!("unknown format `{format}`").into());
                }
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|_| "--seed needs a number")?;
            }
            "--campaign" => {
                campaign = true;
            }
            "--no-checker-faults" => {
                checker_faults = false;
            }
            "--steps" => {
                steps = it
                    .next()
                    .ok_or("--steps needs a number")?
                    .parse()
                    .map_err(|_| "--steps needs a number")?;
                if steps == 0 {
                    return Err("--steps must be at least 1".into());
                }
            }
            "--quiet" => {
                quiet = true;
            }
            "--resume" => {
                resume = Some(it.next().ok_or("--resume needs a file path")?.clone());
            }
            "--checkpoint" => {
                checkpoint = Some(it.next().ok_or("--checkpoint needs a file path")?.clone());
            }
            "--deadline-ms" => {
                deadline_ms = Some(
                    it.next()
                        .ok_or("--deadline-ms needs a number")?
                        .parse()
                        .map_err(|_| "--deadline-ms needs a number")?,
                );
            }
            "--ticks" => {
                ticks = Some(
                    it.next()
                        .ok_or("--ticks needs a number")?
                        .parse()
                        .map_err(|_| "--ticks needs a number")?,
                );
            }
            "--out" => {
                out = Some(it.next().ok_or("--out needs a file path")?.clone());
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a number")?
                    .parse()
                    .map_err(|_| "--jobs needs a number")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--store" => {
                store = Some(it.next().ok_or("--store needs a directory path")?.clone());
            }
            "--baseline" => {
                baseline_path = Some(it.next().ok_or("--baseline needs a file path")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`").into());
            }
            path => {
                if file.replace(path.to_string()).is_some() {
                    return Err("more than one machine file given".into());
                }
            }
        }
    }
    options.ced.seed = seed;

    let path = file.ok_or("no machine file given (expected a .kiss2 path)")?;
    let text = std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let fsm = ced_fsm::kiss::parse(&text).map_err(|e| format!("{path}: {e}"))?;
    let baseline = match baseline_path {
        Some(p) => {
            let text = std::fs::read_to_string(&p).map_err(|e| format!("cannot read {p}: {e}"))?;
            Some(ced_fsm::kiss::parse(&text).map_err(|e| format!("{p}: {e}"))?)
        }
        None => None,
    };
    Ok(Parsed {
        fsm,
        options,
        latency,
        latencies,
        seed,
        format,
        campaign,
        checker_faults,
        steps,
        quiet,
        resume,
        checkpoint,
        deadline_ms,
        ticks,
        out,
        jobs,
        store,
        baseline,
    })
}

/// Parsed `ced suite` arguments (no positional machine file; machines
/// come from the built-in benchmark suite by name).
pub struct SuiteArgs {
    /// Machines to run, as `(name, fsm)` pairs in request order.
    pub machines: Vec<(String, Fsm)>,
    /// Suite configuration assembled from the flags.
    pub options: ced_core::SuiteOptions,
    /// `--certify`: re-prove every finished machine's results with the
    /// independent certification layer; refuted machines are
    /// quarantined.
    pub certify: bool,
    /// `--quiet`.
    pub quiet: bool,
    /// `--resume <path>`.
    pub resume: Option<String>,
    /// `--checkpoint <path>`.
    pub checkpoint: Option<String>,
    /// `--out <path>` for the JSON report (default stdout).
    pub out: Option<String>,
    /// `--jobs N` (default: available parallelism).
    pub jobs: usize,
    /// `--store DIR`: content-addressed artifact store directory,
    /// shared by every machine and pool worker in the campaign.
    pub store: Option<String>,
}

/// Parses `ced suite` flags.
///
/// # Errors
///
/// Reports unknown flags, unknown machine names and bad numbers.
pub fn parse_suite(args: &[String]) -> Result<SuiteArgs, Box<dyn std::error::Error>> {
    use ced_fsm::suite as bench;

    let mut names: Vec<String> = Vec::new();
    let mut scaled = false;
    let mut options = ced_core::SuiteOptions {
        latencies: vec![1, 2],
        ..ced_core::SuiteOptions::default()
    };
    let mut seed = 0u64;
    let mut certify = false;
    let mut quiet = false;
    let mut resume = None;
    let mut checkpoint = None;
    let mut out = None;
    let mut jobs = ced_par::ParExec::available().jobs();
    let mut store = None;

    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--certify" => {
                certify = true;
            }
            "--machines" => {
                let list = it.next().ok_or("--machines needs a comma list of names")?;
                names = list.split(',').map(|t| t.trim().to_string()).collect();
            }
            "--scaled" => {
                scaled = true;
            }
            "--latencies" => {
                let list = it.next().ok_or("--latencies needs a comma list")?;
                options.latencies = list
                    .split(',')
                    .map(|t| t.trim().parse::<usize>())
                    .collect::<Result<_, _>>()
                    .map_err(|_| "--latencies needs numbers like 1,2")?;
                if options.latencies.is_empty() || options.latencies.contains(&0) {
                    return Err("--latencies needs positive bounds".into());
                }
            }
            "--deadline-ms" => {
                let ms: u64 = it
                    .next()
                    .ok_or("--deadline-ms needs a number")?
                    .parse()
                    .map_err(|_| "--deadline-ms needs a number")?;
                options.machine_deadline = Some(std::time::Duration::from_millis(ms));
            }
            "--ticks" => {
                options.machine_ticks = Some(
                    it.next()
                        .ok_or("--ticks needs a number")?
                        .parse()
                        .map_err(|_| "--ticks needs a number")?,
                );
            }
            "--no-retry" => {
                options.retry_degraded = false;
            }
            "--dense" => {
                options.pipeline.ced.engine = SolverEngine::Dense;
            }
            "--fault-model" => {
                let v = it.next().ok_or("--fault-model needs a value")?;
                options.pipeline.fault_model = FaultModel::parse(v)?;
            }
            "--seed" => {
                seed = it
                    .next()
                    .ok_or("--seed needs a number")?
                    .parse()
                    .map_err(|_| "--seed needs a number")?;
            }
            "--quiet" => {
                quiet = true;
            }
            "--resume" => {
                resume = Some(it.next().ok_or("--resume needs a file path")?.clone());
            }
            "--checkpoint" => {
                checkpoint = Some(it.next().ok_or("--checkpoint needs a file path")?.clone());
            }
            "--out" => {
                out = Some(it.next().ok_or("--out needs a file path")?.clone());
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .ok_or("--jobs needs a number")?
                    .parse()
                    .map_err(|_| "--jobs needs a number")?;
                if jobs == 0 {
                    return Err("--jobs must be at least 1".into());
                }
            }
            "--store" => {
                store = Some(it.next().ok_or("--store needs a directory path")?.clone());
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown flag `{flag}`").into());
            }
            other => {
                return Err(format!(
                    "unexpected argument `{other}` (suite machines are named via --machines)"
                )
                .into());
            }
        }
    }
    options.pipeline.ced.seed = seed;

    let specs = if scaled {
        bench::paper_table1_scaled()
    } else {
        bench::paper_table1()
    };
    let machines: Vec<(String, Fsm)> = if names.is_empty() {
        specs
            .iter()
            .map(|s| (s.name.to_string(), s.build()))
            .collect()
    } else {
        let mut picked = Vec::with_capacity(names.len());
        for name in &names {
            let spec = specs
                .iter()
                .find(|s| s.name == *name)
                .ok_or_else(|| format!("unknown suite machine `{name}`"))?;
            picked.push((spec.name.to_string(), spec.build()));
        }
        picked
    };

    Ok(SuiteArgs {
        machines,
        options,
        certify,
        quiet,
        resume,
        checkpoint,
        out,
        jobs,
        store,
    })
}
