//! End-to-end tests of the `ced` binary via `CARGO_BIN_EXE`.

use std::io::Write;
use std::process::Command;

const MACHINE: &str = "\
.i 1
.o 3
.s 3
.r G
0 G G 100
1 G Y 100
- Y R 010
- R G 001
.e
";

fn write_machine() -> tempfile::TempPath {
    let mut f = tempfile::NamedTempFile::new().expect("temp file");
    f.write_all(MACHINE.as_bytes()).expect("write");
    f.into_temp_path()
}

fn ced(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ced"))
        .args(args)
        .output()
        .expect("spawn ced")
}

#[test]
fn help_prints_usage() {
    let out = ced(&["help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("usage: ced"));
}

#[test]
fn unknown_command_fails() {
    let out = ced(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = ced(&["stats", "/nonexistent/machine.kiss2"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}

#[test]
fn stats_reports_structure() {
    let path = write_machine();
    let out = ced(&["stats", path.to_str().unwrap()]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("3 states"));
    assert!(text.contains("self-loops"));
}

#[test]
fn synth_reports_gates() {
    let path = write_machine();
    let out = ced(&["synth", path.to_str().unwrap(), "--encoding", "gray"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("gates"));
    assert!(text.contains("sequential cost"));
}

#[test]
fn check_prints_cover() {
    let path = write_machine();
    let out = ced(&["check", path.to_str().unwrap(), "--latency", "2"]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("Algorithm 1"));
    assert!(text.contains("tree 1:"));
    assert!(text.contains("checker:"));
}

#[test]
fn table_prints_row() {
    let path = write_machine();
    let out = ced(&["table", path.to_str().unwrap(), "--latencies", "1,2"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("p=1"));
    assert!(text.contains("p=2"));
    assert!(text.contains("duplication baseline"));
}

#[test]
fn inject_succeeds_with_matching_semantics() {
    let path = write_machine();
    let out = ced(&[
        "inject",
        path.to_str().unwrap(),
        "--latency",
        "2",
        "--semantics",
        "hardware",
        "--exhaustive-inputs",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("guarantee held"));
    assert!(text.contains("missed: 0"));
}

#[test]
fn export_emits_blif_and_verilog() {
    let path = write_machine();
    let blif = ced(&["export", path.to_str().unwrap()]);
    assert!(blif.status.success());
    let text = String::from_utf8_lossy(&blif.stdout);
    assert!(text.contains(".latch"));
    assert!(text.contains(".names"));
    let verilog = ced(&["export", path.to_str().unwrap(), "--format", "verilog"]);
    assert!(verilog.status.success());
    let text = String::from_utf8_lossy(&verilog.stdout);
    assert!(text.contains("module"));
    assert!(text.contains("posedge clk"));
}

#[test]
fn minimize_emits_kiss() {
    let path = write_machine();
    let out = ced(&["minimize", path.to_str().unwrap()]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains(".i 1"));
    assert!(text.contains(".e"));
}

#[test]
fn equiv_detects_equal_and_different() {
    let a = write_machine();
    let b = write_machine();
    let same = ced(&["equiv", a.to_str().unwrap(), b.to_str().unwrap()]);
    assert!(
        same.status.success(),
        "{}",
        String::from_utf8_lossy(&same.stderr)
    );
    assert!(String::from_utf8_lossy(&same.stdout).contains("equivalent"));
    // Against a machine with inverted outputs.
    let mut f = tempfile::NamedTempFile::new().unwrap();
    std::io::Write::write_all(
        &mut f,
        b".i 1\n.o 3\n.s 3\n.r G\n0 G G 000\n1 G Y 100\n- Y R 010\n- R G 001\n.e\n",
    )
    .unwrap();
    let c = f.into_temp_path();
    let diff = ced(&["equiv", a.to_str().unwrap(), c.to_str().unwrap()]);
    assert!(!diff.status.success());
    assert!(String::from_utf8_lossy(&diff.stdout).contains("NOT equivalent"));
}

#[test]
fn bad_flags_rejected() {
    let path = write_machine();
    for args in [
        vec!["check", path.to_str().unwrap(), "--latency", "0"],
        vec!["check", path.to_str().unwrap(), "--encoding", "quantum"],
        vec!["check", path.to_str().unwrap(), "--bogus"],
        vec!["table", path.to_str().unwrap(), "--latencies", "a,b"],
        vec!["export", path.to_str().unwrap(), "--format", "vhdl"],
    ] {
        let out = ced(&args);
        assert!(!out.status.success(), "args {args:?} should fail");
    }
}

#[test]
fn suite_runs_and_reports_json() {
    let out = ced(&[
        "suite",
        "--scaled",
        "--machines",
        "s27",
        "--latencies",
        "1",
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("\"schema\":\"ced-suite-report/1\""));
    assert!(text.contains("\"quarantined\":0"));
}

#[test]
fn suite_quarantines_under_impossible_budget() {
    let out = ced(&[
        "suite",
        "--scaled",
        "--machines",
        "s27",
        "--latencies",
        "1",
        "--ticks",
        "1",
        "--no-retry",
        "--quiet",
    ]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("quarantined"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("\"quarantined\":1"));
}

#[test]
fn suite_unknown_machine_rejected() {
    let out = ced(&["suite", "--machines", "no-such-machine", "--quiet"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown suite machine"));
}

#[test]
fn suite_resume_from_complete_checkpoint_matches() {
    let ckpt = tempfile::NamedTempFile::new().unwrap().into_temp_path();
    let first = tempfile::NamedTempFile::new().unwrap().into_temp_path();
    let second = tempfile::NamedTempFile::new().unwrap().into_temp_path();
    let base = [
        "suite",
        "--scaled",
        "--machines",
        "s27,tav",
        "--latencies",
        "1",
        "--quiet",
    ];
    let mut clean: Vec<&str> = base.to_vec();
    clean.extend([
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--out",
        first.to_str().unwrap(),
    ]);
    let out = ced(&clean);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let mut resumed: Vec<&str> = base.to_vec();
    resumed.extend([
        "--resume",
        ckpt.to_str().unwrap(),
        "--out",
        second.to_str().unwrap(),
    ]);
    let out = ced(&resumed);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("resuming from checkpoint"));
    let a = std::fs::read(first.to_str().unwrap()).expect("first report");
    let b = std::fs::read(second.to_str().unwrap()).expect("second report");
    assert!(!a.is_empty());
    assert_eq!(a, b, "resumed report must be byte-identical");
}

#[test]
fn table_interrupt_saves_checkpoint_and_resumes() {
    let machine = write_machine();
    let ckpt = tempfile::NamedTempFile::new().unwrap().into_temp_path();
    // A 10-tick budget trips during tensor construction, which defers
    // to a fault boundary and leaves a resumable checkpoint behind.
    let out = ced(&[
        "table",
        machine.to_str().unwrap(),
        "--latencies",
        "1",
        "--ticks",
        "10",
        "--checkpoint",
        ckpt.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("checkpoint saved"), "stderr: {err}");
    let out = ced(&[
        "table",
        machine.to_str().unwrap(),
        "--latencies",
        "1",
        "--resume",
        ckpt.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stderr).contains("resuming from checkpoint"));
    assert!(String::from_utf8_lossy(&out.stdout).contains("p=1"));
}

#[test]
fn corrupt_resume_checkpoint_recomputes_with_warning() {
    let machine = write_machine();
    let mut f = tempfile::NamedTempFile::new().unwrap();
    f.write_all(b"not a checkpoint at all").unwrap();
    let garbage = f.into_temp_path();
    let out = ced(&[
        "table",
        machine.to_str().unwrap(),
        "--latencies",
        "1",
        "--resume",
        garbage.to_str().unwrap(),
        "--quiet",
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("warning: checkpoint"), "stderr: {err}");
    assert!(err.contains("recomputing from scratch"), "stderr: {err}");
}

/// Minimal stand-in for the `tempfile` crate (not in the allowed
/// dependency set): unique path in the target tmp dir, deleted on drop.
mod tempfile {
    use std::path::PathBuf;
    use std::sync::atomic::{AtomicU64, Ordering};

    static COUNTER: AtomicU64 = AtomicU64::new(0);

    pub struct NamedTempFile {
        file: std::fs::File,
        path: PathBuf,
    }

    pub struct TempPath(PathBuf);

    impl NamedTempFile {
        pub fn new() -> std::io::Result<NamedTempFile> {
            let mut path = std::env::temp_dir();
            let unique = format!(
                "ced-cli-test-{}-{}.kiss2",
                std::process::id(),
                COUNTER.fetch_add(1, Ordering::Relaxed)
            );
            path.push(unique);
            let file = std::fs::File::create(&path)?;
            Ok(NamedTempFile { file, path })
        }

        pub fn into_temp_path(self) -> TempPath {
            TempPath(self.path)
        }
    }

    impl std::io::Write for NamedTempFile {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            std::io::Write::write(&mut self.file, buf)
        }
        fn flush(&mut self) -> std::io::Result<()> {
            std::io::Write::flush(&mut self.file)
        }
    }

    impl TempPath {
        pub fn to_str(&self) -> Option<&str> {
            self.0.to_str()
        }
    }

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }
}
