//! Fleet torture tests: real `ced` subprocesses rendezvousing on a
//! shared directory, one of them killed with SIGKILL mid-campaign, and
//! typed-exit-code contracts.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

/// Seed for the kill-point jitter. Fixed so a failure reproduces; the
/// invariant under test (byte-identical convergence) must hold for
/// every value.
const KILL_SEED: u64 = 0xCED_F1EE7;

fn xorshift(mut x: u64) -> u64 {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    x
}

fn ced() -> Command {
    Command::new(env!("CARGO_BIN_EXE_ced"))
}

/// Unique scratch directory, removed on drop.
struct ScratchDir(PathBuf);

impl ScratchDir {
    fn new(tag: &str) -> ScratchDir {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "ced-fleet-test-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path).expect("scratch dir");
        ScratchDir(path)
    }

    fn path(&self) -> &Path {
        &self.0
    }

    fn join(&self, name: &str) -> PathBuf {
        self.0.join(name)
    }
}

impl Drop for ScratchDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Kills the child (SIGKILL on unix) when dropped, so a failing
/// assertion never leaks a campaign process.
struct Reaper(Child);

impl Drop for Reaper {
    fn drop(&mut self) {
        let _ = self.0.kill();
        let _ = self.0.wait();
    }
}

const CORPUS: &[&str] = &[
    "--scaled",
    "--machines",
    "s27,tav,dk512",
    "--latencies",
    "1,2",
];

fn spawn_coordinator(store: &Path) -> Reaper {
    let child = ced()
        .args(["fleet", "coordinator", "--store"])
        .arg(store)
        .args(CORPUS)
        .args([
            "--heartbeat-ms",
            "300",
            "--poll-ms",
            "10",
            "--quiet",
            "--out",
        ])
        .arg(store.join("merged.json"))
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    Reaper(child)
}

fn spawn_worker(store: &Path, id: &str) -> Reaper {
    let child = ced()
        .args(["fleet", "worker", "--store"])
        .arg(store)
        .args(CORPUS)
        .args([
            "--worker-id",
            id,
            "--heartbeat-ms",
            "30",
            "--poll-ms",
            "10",
            "--idle-timeout-ms",
            "60000",
            "--quiet",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn worker");
    Reaper(child)
}

/// Polls until `pred` holds or the deadline passes.
fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let start = Instant::now();
    while !pred() {
        assert!(start.elapsed() < timeout, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Names of lease files currently held by `worker` in `store`.
fn leases_of(store: &Path, worker: &str) -> Vec<String> {
    let needle = format!(".{worker}.lease");
    std::fs::read_dir(store.join("fleet").join("leased"))
        .map(|rd| {
            rd.filter_map(|e| e.ok())
                .filter_map(|e| e.file_name().into_string().ok())
                .filter(|n| n.ends_with(&needle))
                .collect()
        })
        .unwrap_or_default()
}

/// The torture test: a real worker process is SIGKILL'd at a seeded
/// random point after it claims a unit (usually mid-unit); the
/// coordinator must expire its lease, re-assign the unit to a
/// replacement worker started afterwards, and the merged report must be
/// byte-identical to the single-process single-shard run.
#[test]
fn sigkilled_worker_is_resumed_and_report_matches_single_shard() {
    let dir = ScratchDir::new("sigkill");

    // Ground truth: the ordinary single-process campaign.
    let baseline_path = dir.join("baseline.json");
    let out = ced()
        .args(["suite"])
        .args(CORPUS)
        .args(["--jobs", "1", "--quiet", "--out"])
        .arg(&baseline_path)
        .output()
        .expect("run suite");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let baseline = std::fs::read(&baseline_path).expect("baseline report");

    let store = dir.join("campaign");
    let mut coordinator = spawn_coordinator(&store);

    // Let the victim claim a unit, then kill it dead at a seeded jitter
    // (0–40 ms — inside the unit's execution window in most runs, but
    // every landing point must converge to the same report).
    let mut victim = spawn_worker(&store, "victim");
    wait_until(
        "the victim to claim a lease",
        Duration::from_secs(30),
        || !leases_of(&store, "victim").is_empty(),
    );
    std::thread::sleep(Duration::from_millis(xorshift(KILL_SEED) % 40));
    victim.0.kill().expect("SIGKILL the victim");
    victim.0.wait().expect("reap the victim");

    // Resume with a fresh worker; the campaign must drain.
    let mut replacement = spawn_worker(&store, "replacement");
    let coord_status = coordinator.0.wait().expect("coordinator exit");
    assert_eq!(
        coord_status.code(),
        Some(0),
        "coordinator must converge cleanly after the kill"
    );
    assert_eq!(replacement.0.wait().expect("worker exit").code(), Some(0));

    let merged = std::fs::read(store.join("fleet").join("report.json")).expect("fleet report");
    assert_eq!(
        merged, baseline,
        "fleet report after a SIGKILL'd-and-resumed worker must be \
         byte-identical to the single-shard run"
    );
    let out_copy = std::fs::read(store.join("merged.json")).expect("--out copy");
    assert_eq!(out_copy, baseline);
}

/// A worker pointed at a directory no coordinator ever touched is a
/// usage/environment error: exit 1.
#[test]
fn worker_without_a_manifest_exits_error() {
    let dir = ScratchDir::new("no-manifest");
    let out = ced()
        .args(["fleet", "worker", "--store"])
        .arg(dir.path())
        .args(CORPUS)
        .args(["--manifest-wait-ms", "100", "--quiet"])
        .output()
        .expect("run worker");
    assert_eq!(out.status.code(), Some(1));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("manifest"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// A worker that finds every unit leased to someone else and hits its
/// idle timeout exits `cancelled` (4), not success and not error.
#[test]
fn idle_worker_exits_cancelled() {
    let dir = ScratchDir::new("idle");
    let store = dir.join("campaign");
    // Long heartbeat timeout: the hog's stolen leases stay fresh for
    // the whole test, so the worker never finds claimable work.
    let child = ced()
        .args(["fleet", "coordinator", "--store"])
        .arg(&store)
        .args(CORPUS)
        .args(["--heartbeat-ms", "60000", "--poll-ms", "10", "--quiet"])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn coordinator");
    let _coordinator = Reaper(child);

    let pending = store.join("fleet").join("pending");
    let leased = store.join("fleet").join("leased");
    wait_until("all units to be published", Duration::from_secs(30), || {
        std::fs::read_dir(&pending)
            .map(|rd| rd.count())
            .unwrap_or(0)
            == 3
    });
    for entry in std::fs::read_dir(&pending).expect("pending dir") {
        let entry = entry.expect("entry");
        let name = entry.file_name().into_string().expect("unit name");
        let unit = name.strip_suffix(".ced").expect("unit file");
        std::fs::rename(entry.path(), leased.join(format!("{unit}.hog.lease")))
            .expect("steal the lease");
    }

    let out = ced()
        .args(["fleet", "worker", "--store"])
        .arg(&store)
        .args(CORPUS)
        .args(["--idle-timeout-ms", "300", "--poll-ms", "10", "--quiet"])
        .output()
        .expect("run worker");
    assert_eq!(
        out.status.code(),
        Some(4),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

/// The documented exit codes distinguish outcomes without parsing
/// stderr: quarantined (2), refuted (3), cancelled (4).
#[test]
fn typed_exit_codes_distinguish_outcomes() {
    let dir = ScratchDir::new("codes");

    // 2 — campaign finished but quarantined a machine.
    let out = ced()
        .args([
            "suite",
            "--scaled",
            "--machines",
            "s27",
            "--latencies",
            "1",
            "--ticks",
            "1",
            "--no-retry",
            "--quiet",
        ])
        .output()
        .expect("run suite");
    assert_eq!(out.status.code(), Some(2));

    // 3 — a proof obligation refuted (inequivalent machines).
    let a = dir.join("a.kiss2");
    let b = dir.join("b.kiss2");
    std::fs::write(
        &a,
        ".i 1\n.o 1\n.r s0\n0 s0 s0 0\n1 s0 s1 1\n- s1 s0 0\n.e\n",
    )
    .unwrap();
    std::fs::write(
        &b,
        ".i 1\n.o 1\n.r s0\n0 s0 s0 1\n1 s0 s1 0\n- s1 s0 1\n.e\n",
    )
    .unwrap();
    let out = ced()
        .arg("equiv")
        .arg(&a)
        .arg(&b)
        .output()
        .expect("run equiv");
    assert_eq!(out.status.code(), Some(3));

    // 4 — a budget cancelled the run (checkpoint left behind).
    let ckpt = dir.join("table.ckpt");
    let out = ced()
        .arg("table")
        .arg(&a)
        .args([
            "--latencies",
            "1",
            "--ticks",
            "10",
            "--quiet",
            "--checkpoint",
        ])
        .arg(&ckpt)
        .output()
        .expect("run table");
    assert_eq!(out.status.code(), Some(4));
    assert!(String::from_utf8_lossy(&out.stderr).contains("checkpoint saved"));
}

/// Resuming a suite checkpoint under a different `--jobs` count is a
/// hard error (exit 1) with a message naming the original count — the
/// report header must stay truthful.
#[test]
fn suite_resume_with_different_jobs_count_hard_errors() {
    let dir = ScratchDir::new("jobs-mismatch");
    let ckpt = dir.join("suite.ckpt");
    let base = [
        "suite",
        "--scaled",
        "--machines",
        "s27",
        "--latencies",
        "1",
        "--quiet",
    ];
    let out = ced()
        .args(base)
        .args(["--jobs", "1", "--checkpoint"])
        .arg(&ckpt)
        .output()
        .expect("run suite");
    assert_eq!(
        out.status.code(),
        Some(0),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let out = ced()
        .args(base)
        .args(["--jobs", "2", "--resume"])
        .arg(&ckpt)
        .output()
        .expect("resume suite");
    assert_eq!(out.status.code(), Some(1));
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("--jobs 1"), "stderr: {err}");
}
