//! The serve ≡ CLI differential: every payload the daemon returns must
//! be byte-identical to what the one-shot CLI produces for the same
//! analysis — cold store, warm store, across `--jobs` widths, under
//! concurrent clients, and for every fault model.
//!
//! This is the contract that makes the daemon trustworthy: it is a
//! *transport* around the same analysis code, never a second
//! implementation with its own drift.

use ced_runtime::Json;
use ced_serve::Client;
use std::io::{BufRead, BufReader};
use std::net::SocketAddr;
use std::path::{Path, PathBuf};
use std::process::{Child, ChildStdout, Command, Stdio};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_ced")
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ced-serve-cli-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("scratch dir");
    dir
}

/// A `ced serve` daemon running as a real subprocess, the way users
/// run it — the bound address is read from its first stdout line.
struct Daemon {
    child: Child,
    _stdout: BufReader<ChildStdout>,
    addr: SocketAddr,
}

impl Daemon {
    fn spawn(extra: &[&str]) -> Daemon {
        let mut child = Command::new(bin())
            .args(["serve", "--addr", "127.0.0.1:0"])
            .args(extra)
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn ced serve");
        let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
        let mut line = String::new();
        stdout.read_line(&mut line).expect("read listening line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected first stdout line {line:?}"))
            .parse()
            .expect("bind address parses");
        Daemon {
            child,
            _stdout: stdout,
            addr,
        }
    }

    fn client(&self) -> Client {
        Client::connect(self.addr).expect("loopback connect")
    }

    fn shutdown(mut self) {
        let mut client = self.client();
        let resp = client
            .request(&obj(vec![
                ("id", Json::str("bye")),
                ("cmd", Json::str("shutdown")),
            ]))
            .expect("shutdown round trip");
        assert_eq!(resp.get("status").and_then(Json::as_str), Some("ok"));
        let status = self.child.wait().expect("daemon exit");
        assert!(status.success(), "daemon exited {status:?}");
    }
}

impl Drop for Daemon {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn obj(fields: Vec<(&str, Json)>) -> Json {
    Json::Object(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn cli_ok(args: &[&str]) -> String {
    let out = Command::new(bin()).args(args).output().expect("run ced");
    assert!(
        out.status.success(),
        "ced {args:?} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout).expect("stdout is UTF-8")
}

fn request_payload(client: &mut Client, doc: &Json) -> String {
    let resp = client.request(doc).expect("request round trip");
    assert_eq!(
        resp.get("status").and_then(Json::as_str),
        Some("ok"),
        "response: {}",
        resp.render()
    );
    resp.get("payload")
        .and_then(Json::as_str)
        .expect("payload string")
        .to_string()
}

/// One differential case: a machine under a fault model, with the
/// one-shot CLI reference output for each of the four served analyses.
#[derive(Clone)]
struct Case {
    label: String,
    kiss2: String,
    fault_model: &'static str,
    check_ref: String,
    table_ref: String,
    certify_ref: String,
    inject_ref: String,
}

const LATENCIES: &str = "1,2";
const INJECT_STEPS: &str = "40";
const INJECT_SEED: &str = "1";

fn machine_text(name: &str) -> String {
    let spec = ced_fsm::suite::paper_table1_scaled()
        .into_iter()
        .find(|s| s.name == name)
        .unwrap_or_else(|| panic!("unknown suite machine {name}"));
    ced_fsm::kiss::to_string(&spec.build())
}

/// Runs the one-shot CLI four times to establish the reference bytes.
fn build_case(dir: &Path, name: &str, fault_model: &'static str) -> Case {
    let label = format!("{name}/{fault_model}");
    let kiss2 = machine_text(name);
    let file = dir.join(format!("{name}.kiss2"));
    std::fs::write(&file, &kiss2).expect("write machine");
    let file = file.to_str().expect("utf8 path").to_string();
    let out = |what: &str| {
        dir.join(format!(
            "{name}-{}-{what}.json",
            fault_model.replace(':', "_")
        ))
        .to_str()
        .expect("utf8 path")
        .to_string()
    };

    let check_ref = cli_ok(&["check", &file, "--fault-model", fault_model]);

    let table_out = out("table");
    cli_ok(&[
        "table",
        &file,
        "--latencies",
        LATENCIES,
        "--fault-model",
        fault_model,
        "--quiet",
        "--out",
        &table_out,
    ]);
    let table_ref = std::fs::read_to_string(&table_out).expect("table report");

    let certify_out = out("certify");
    cli_ok(&[
        "certify",
        &file,
        "--latencies",
        LATENCIES,
        "--fault-model",
        fault_model,
        "--quiet",
        "--out",
        &certify_out,
    ]);
    let certify_ref = std::fs::read_to_string(&certify_out).expect("certify report");

    let inject_out = out("inject");
    cli_ok(&[
        "inject",
        &file,
        "--campaign",
        "--steps",
        INJECT_STEPS,
        "--seed",
        INJECT_SEED,
        "--fault-model",
        fault_model,
        "--quiet",
        "--out",
        &inject_out,
    ]);
    let inject_ref = std::fs::read_to_string(&inject_out).expect("inject report");

    Case {
        label,
        kiss2,
        fault_model,
        check_ref,
        table_ref,
        certify_ref,
        inject_ref,
    }
}

/// Issues all four analyses for a case over one connection and asserts
/// each served payload equals the CLI reference byte-for-byte.
fn assert_case_identical(client: &mut Client, case: &Case, pass: &str) {
    let base = |cmd: &str| {
        vec![
            ("id", Json::str(&format!("{}-{cmd}", case.label))),
            ("cmd", Json::str(cmd)),
            ("machine", Json::str(&case.kiss2)),
            ("fault_model", Json::str(case.fault_model)),
        ]
    };
    let latencies = Json::Array(vec![Json::UInt(1), Json::UInt(2)]);

    let payload = request_payload(client, &obj(base("check")));
    assert_eq!(payload, case.check_ref, "check {} ({pass})", case.label);

    let mut fields = base("table");
    fields.push(("latencies", latencies.clone()));
    let payload = request_payload(client, &obj(fields));
    assert_eq!(payload, case.table_ref, "table {} ({pass})", case.label);

    let mut fields = base("certify");
    fields.push(("latencies", latencies));
    let payload = request_payload(client, &obj(fields));
    assert_eq!(payload, case.certify_ref, "certify {} ({pass})", case.label);

    let mut fields = base("inject");
    fields.push(("steps", Json::UInt(40)));
    fields.push(("seed", Json::UInt(1)));
    let payload = request_payload(client, &obj(fields));
    assert_eq!(payload, case.inject_ref, "inject {} ({pass})", case.label);
}

#[test]
fn served_payloads_are_byte_identical_to_the_one_shot_cli() {
    let dir = scratch("differential");
    // Two machines × two fault models; references from the one-shot CLI.
    let cases: Vec<Case> = [
        ("s27", "permanent"),
        ("s27", "transient:3"),
        ("tav", "permanent"),
        ("tav", "transient:3"),
    ]
    .into_iter()
    .map(|(name, fm)| build_case(&dir, name, fm))
    .collect();

    // Daemon A: wide pool, warm store. Every case runs on its own
    // concurrent client — twice, so the second pass hits a warm store.
    let store_dir = dir.join("store");
    let store = store_dir.to_str().expect("utf8 path");
    let daemon = Daemon::spawn(&["--jobs", "4", "--workers", "4", "--store", store]);
    for pass in ["cold store", "warm store"] {
        std::thread::scope(|scope| {
            for case in &cases {
                let mut client = daemon.client();
                scope.spawn(move || assert_case_identical(&mut client, case, pass));
            }
        });
    }
    // The warm store was actually used: the daemon's health document
    // reports live store statistics with a non-empty entry count.
    let mut client = daemon.client();
    let resp = client
        .request(&obj(vec![
            ("id", Json::str("h")),
            ("cmd", Json::str("health")),
        ]))
        .expect("health");
    let entries = resp
        .get("health")
        .and_then(|h| h.get("store"))
        .and_then(|s| s.get("entries"))
        .and_then(Json::as_u64)
        .expect("store entry count in health");
    assert!(entries > 0, "store should be warm after two passes");
    daemon.shutdown();

    // Daemon B: serial pool, no store. Same bytes regardless.
    let daemon = Daemon::spawn(&["--jobs", "1"]);
    let mut client = daemon.client();
    for case in &cases {
        assert_case_identical(&mut client, case, "jobs=1, no store");
    }
    daemon.shutdown();
}
