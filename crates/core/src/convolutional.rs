//! Convolutional-code CED — the bounded-latency alternative the paper
//! cites (Holmquist & Kinney, ITC'91) and recommends for single-event
//! upsets, "yet no indication of its cost is provided" (§1). This
//! module provides that indication.
//!
//! The scheme, reduced to its operative core: the monitored next-state/
//! output bits are compacted by one parity tree into a bit stream
//! `d_t` (`0` while the machine is healthy); the checker convolves the
//! *discrepancy* stream with a generator polynomial of memory `m`
//! (constraint length `m + 1`), i.e. the syndrome at time `t` is
//!
//! ```text
//!   s_t = ⊕_{j : g_j = 1} d_{t−j}
//! ```
//!
//! A single discrepancy pulse keeps the syndrome nonzero at every tap
//! position — up to `m + 1` cycles after the error — so detection
//! survives even if the *fault itself* has already vanished. This is
//! exactly the "form of memory" §2 says bounded-latency parity CED
//! lacks for SEUs: the parity checker's opportunity dies with the
//! fault, the convolutional checker's persists.
//!
//! The price: the compaction is a single parity, so discrepancies with
//! an even number of flipped monitored bits are invisible (coverage
//! loss the paper's multi-tree method avoids), and the checker carries
//! `m` extra flip-flops.

use crate::hardware::CedCost;
use ced_fsm::encoded::FsmCircuit;
use ced_logic::gate::CellLibrary;
use ced_sim::coverage::SimRng;
use ced_sim::fault::Fault;
use ced_sim::tables::TransitionTables;

/// A convolutional-code checker specification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConvolutionalCed {
    /// Compaction parity mask over the `n` monitored bits (usually
    /// all-ones: lossy single-parity compaction).
    pub mask: u64,
    /// Generator taps: bit `j` set means `d_{t−j}` enters the syndrome.
    /// Bit 0 must be set (otherwise the newest symbol is ignored).
    pub taps: u32,
}

impl ConvolutionalCed {
    /// The standard instance for a circuit: all-ones compaction and the
    /// dense generator `1 + D + … + D^m` (every discrepancy pulse is
    /// visible at `m + 1` consecutive cycles).
    ///
    /// # Panics
    ///
    /// Panics if `memory > 31`.
    pub fn for_circuit(circuit: &FsmCircuit, memory: usize) -> ConvolutionalCed {
        assert!(memory <= 31, "generator memory limited to 31");
        let n = circuit.total_bits();
        let mask = if n >= 64 { u64::MAX } else { (1u64 << n) - 1 };
        ConvolutionalCed {
            mask,
            taps: ((1u64 << (memory + 1)) - 1) as u32,
        }
    }

    /// The generator memory `m` (highest tap index).
    pub fn memory(&self) -> usize {
        assert!(self.taps & 1 == 1, "tap 0 must be set");
        31 - self.taps.leading_zeros() as usize
    }

    /// Hardware cost: parity tree over the masked bits, a 1-bit parity
    /// predictor (approximated by the cost of one average monitored-bit
    /// function — reported separately by [`crate::hardware`] for the
    /// paper's method; here we charge the XOR of all selected functions
    /// flat-composed, like a `q = 1` checker), `m` syndrome flip-flops,
    /// tap XORs and the comparator.
    pub fn cost(&self, circuit: &FsmCircuit, library: &CellLibrary) -> CedCost {
        // Reuse the paper-method hardware synthesizer with a single
        // mask: it builds the parity tree, predictor and comparator.
        let cover = crate::ip::ParityCover::new(vec![self.mask]);
        let base = crate::hardware::synthesize_ced(
            circuit,
            &cover,
            self.memory() + 1,
            &ced_logic::MinimizeOptions::default(),
        );
        let mut cost = base.cost(library);
        // Syndrome shift register + tap XOR tree on top.
        let m = self.memory();
        let tap_count = self.taps.count_ones() as usize;
        cost.flip_flops += m;
        cost.gates += tap_count.saturating_sub(1);
        cost.area += m as f64 * library.dff + tap_count.saturating_sub(1) as f64 * library.xor2;
        cost
    }

    /// Fraction of the detectability table's erroneous cases whose
    /// first-step discrepancy the single-parity compaction can see
    /// (odd overlap with the mask) — the coverage ceiling of the
    /// scheme, to set against its cost.
    pub fn coverage_ceiling(&self, table: &ced_sim::detect::DetectabilityTable) -> f64 {
        if table.is_empty() {
            return 1.0;
        }
        let seen = table
            .rows()
            .iter()
            .filter(|r| r.detected_by(self.mask))
            .count();
        seen as f64 / table.len() as f64
    }
}

/// Outcome of one convolutional-checker fault-injection run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvOutcome {
    /// No parity-visible error occurred.
    NoErrorObserved,
    /// The syndrome fired within `m + 1` cycles of the first
    /// parity-visible error.
    Detected {
        /// Cycles from the visible error to the syndrome firing (≥ 1).
        latency: usize,
    },
    /// A parity-visible error occurred but the syndrome never fired in
    /// its window (cannot happen with tap 0 set — kept for API
    /// completeness and generator experimentation).
    Missed,
    /// Errors occurred but none was parity-visible (even-weight
    /// discrepancies only — the compaction ceiling).
    InvisibleOnly,
}

/// Runs the convolutional checker against a fault active for
/// `persistence` cycles from `onset` (use a huge persistence for a
/// permanent fault). Detection uses the syndrome over the discrepancy
/// stream, so it can fire *after* the fault has vanished — the SEU
/// scenario plain bounded-latency parity cannot cover.
pub fn simulate_convolutional_detection(
    circuit: &FsmCircuit,
    checker: &ConvolutionalCed,
    fault: Fault,
    onset: usize,
    persistence: usize,
    total_cycles: usize,
    seed: u64,
) -> ConvOutcome {
    let good = TransitionTables::good(circuit);
    let bad = TransitionTables::faulty(circuit, fault);
    let r = circuit.num_inputs();
    let input_mask = if r >= 64 { u64::MAX } else { (1u64 << r) - 1 };
    let m = checker.memory();

    let mut rng = SimRng::new(seed);
    let mut state = circuit.reset_code();
    let mut history: u32 = 0; // d_{t}, d_{t-1}, … in low bits
    let mut any_error = false;
    let mut first_visible: Option<usize> = None;

    for cycle in 0..total_cycles {
        let input = rng.next_u64() & input_mask;
        let fault_active = cycle >= onset && cycle < onset + persistence;
        let tables = if fault_active { &bad } else { &good };
        let diff = good.response(state, input) ^ tables.response(state, input);
        if diff != 0 {
            any_error = true;
        }
        let d = (checker.mask & diff).count_ones() & 1;
        history = (history << 1) | d;
        if d == 1 && first_visible.is_none() {
            first_visible = Some(cycle);
        }
        // Syndrome: taps over the discrepancy history.
        let syndrome = (history & checker.taps).count_ones() & 1;
        if syndrome == 1 {
            if let Some(start) = first_visible {
                return ConvOutcome::Detected {
                    latency: cycle - start + 1,
                };
            }
        }
        if let Some(start) = first_visible {
            if cycle >= start + m {
                return ConvOutcome::Missed;
            }
        }
        state = tables.next(state, input);
    }
    if first_visible.is_some() {
        ConvOutcome::Missed
    } else if any_error {
        ConvOutcome::InvisibleOnly
    } else {
        ConvOutcome::NoErrorObserved
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;
    use ced_sim::detect::{DetectOptions, DetectabilityTable};
    use ced_sim::fault::collapsed_faults;

    fn circuit() -> FsmCircuit {
        let fsm = suite::traffic_light();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn standard_checker_shape() {
        let c = circuit();
        let conv = ConvolutionalCed::for_circuit(&c, 2);
        assert_eq!(conv.memory(), 2);
        assert_eq!(conv.taps, 0b111);
        assert_eq!(conv.mask.count_ones() as usize, c.total_bits());
    }

    #[test]
    fn cost_includes_memory() {
        let c = circuit();
        let lib = CellLibrary::new();
        let m0 = ConvolutionalCed::for_circuit(&c, 0).cost(&c, &lib);
        let m3 = ConvolutionalCed::for_circuit(&c, 3).cost(&c, &lib);
        assert_eq!(m3.flip_flops, m0.flip_flops + 3);
        assert!(m3.area > m0.area);
        assert_eq!(m0.parity_functions, 1);
    }

    #[test]
    fn tap_zero_detects_permanent_faults_it_can_see() {
        // With tap 0 set, any parity-visible error fires the syndrome at
        // latency 1 — regardless of memory.
        let c = circuit();
        let conv = ConvolutionalCed::for_circuit(&c, 2);
        let faults = collapsed_faults(c.netlist());
        let mut visible = 0usize;
        for (i, &f) in faults.iter().enumerate() {
            match simulate_convolutional_detection(&c, &conv, f, 0, 10_000, 800, 9 ^ i as u64) {
                ConvOutcome::Detected { latency } => {
                    visible += 1;
                    assert_eq!(latency, 1, "{f}: tap0 must fire immediately");
                }
                ConvOutcome::Missed => panic!("{f}: missed with tap 0 set"),
                _ => {}
            }
        }
        assert!(visible > 0);
    }

    #[test]
    fn syndrome_survives_seu_unlike_plain_parity() {
        // A 1-cycle fault whose discrepancy is parity-visible: the
        // syndrome at taps 1..m fires even after the fault is gone,
        // landing within the m+1 window. With tap 0 set detection is
        // immediate; with taps = D + D² only (tap0 unset is forbidden,
        // so emulate by checking history semantics directly).
        let c = circuit();
        let conv = ConvolutionalCed::for_circuit(&c, 3);
        let faults = collapsed_faults(c.netlist());
        let mut detected = 0usize;
        for (i, &f) in faults.iter().enumerate() {
            for onset in 0..8 {
                if let ConvOutcome::Detected { latency } = simulate_convolutional_detection(
                    &c,
                    &conv,
                    f,
                    onset,
                    1,
                    400,
                    0x5EED ^ (i as u64) << 5 ^ onset as u64,
                ) {
                    assert!(latency <= conv.memory() + 1);
                    detected += 1;
                }
            }
        }
        assert!(detected > 0, "no SEU ever detected");
    }

    #[test]
    fn coverage_ceiling_reflects_even_diff_blindness() {
        let c = circuit();
        let faults = collapsed_faults(c.netlist());
        let (table, _) = DetectabilityTable::build(
            &c,
            &faults,
            &DetectOptions {
                latency: 1,
                ..DetectOptions::default()
            },
        )
        .unwrap();
        let conv = ConvolutionalCed::for_circuit(&c, 2);
        let ceiling = conv.coverage_ceiling(&table);
        assert!(ceiling > 0.0 && ceiling <= 1.0);
        // The paper's multi-tree method reaches 1.0 by construction;
        // single-parity compaction usually cannot.
        let q_full =
            crate::search::minimize_parity_functions(&table, &crate::search::CedOptions::default());
        assert!(table.all_covered(&q_full.cover.masks));
        if ceiling < 1.0 {
            assert!(q_full.q >= 1);
        }
    }

    #[test]
    #[should_panic(expected = "memory limited")]
    fn oversized_memory_rejected() {
        let c = circuit();
        let _ = ConvolutionalCed::for_circuit(&c, 32);
    }
}
