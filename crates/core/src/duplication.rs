//! The duplication baseline.
//!
//! Classic duplication-with-comparison CED: replicate the whole FSM
//! (combinational core and state register), compare all `n` next-state/
//! output bits every cycle through the same hold-register discipline as
//! the parity checker. The paper's §5 reports the parity method's `q`
//! and cost as percentages of this baseline ("… smaller than the number
//! of functions (hardware cost) necessary for duplicating the
//! circuit").

use crate::hardware::CedCost;
use ced_fsm::encoded::FsmCircuit;
use ced_logic::gate::CellLibrary;

/// Costs the duplication baseline for a circuit.
///
/// Components: a full copy of the combinational core, a duplicate
/// `s`-bit state register, an `n`-bit comparator (XOR per bit + OR
/// tree) and `2n` hold registers.
pub fn duplication_cost(circuit: &FsmCircuit, library: &CellLibrary) -> CedCost {
    let n = circuit.total_bits();
    let s = circuit.state_bits();
    let copy_gates = circuit.gate_count();
    let comparator_gates = n + n.saturating_sub(1);
    let gates = copy_gates + comparator_gates;
    let area = circuit.combinational_area(library)
        + n as f64 * library.xor2
        + n.saturating_sub(1) as f64 * library.or2
        + (s + 2 * n) as f64 * library.dff;
    CedCost {
        parity_functions: n,
        gates,
        area,
        flip_flops: s + 2 * n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    #[test]
    fn duplication_costs_more_than_original() {
        let fsm = suite::sequence_detector();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        let circuit = EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default());
        let lib = CellLibrary::new();
        let dup = duplication_cost(&circuit, &lib);
        assert_eq!(dup.parity_functions, circuit.total_bits());
        assert!(dup.gates > circuit.gate_count());
        assert!(dup.area > circuit.sequential_area(&lib));
        assert_eq!(
            dup.flip_flops,
            circuit.state_bits() + 2 * circuit.total_bits()
        );
    }
}
