//! Exact minimum-parity-cover solver for small instances.
//!
//! Enumerates all `2^n − 1` candidate parity masks, reduces them to
//! distinct coverage sets, and finds a minimum cover by iterative-
//! deepening depth-first search with branch-and-bound. Exponential in
//! `n` — intended for `n ≤ 14` — and used to certify the quality of the
//! LP + randomized-rounding heuristic in tests and the A1 ablation.

use crate::ip::ParityCover;
use ced_sim::detect::DetectabilityTable;
use ced_store::{drop_dominated, RowSet};
use std::collections::HashMap;

/// Upper limit on monitored bits for the exact solver.
pub const MAX_EXACT_BITS: usize = 16;

/// Default branch-and-bound node budget for [`exact_minimum_cover`].
pub const DEFAULT_NODE_BUDGET: usize = 2_000_000;

/// Computes a provably minimum parity cover, or `None` if
/// `table.num_bits() > MAX_EXACT_BITS` (the enumeration would explode)
/// or the search exceeds [`DEFAULT_NODE_BUDGET`] nodes.
pub fn exact_minimum_cover(table: &DetectabilityTable) -> Option<ParityCover> {
    exact_minimum_cover_with_budget(table, DEFAULT_NODE_BUDGET)
}

/// [`exact_minimum_cover`] with an explicit node budget: `None` means
/// "could not certify within budget", never "no cover exists" (a cover
/// always exists for built tables).
pub fn exact_minimum_cover_with_budget(
    table: &DetectabilityTable,
    node_budget: usize,
) -> Option<ParityCover> {
    let n = table.num_bits();
    if n > MAX_EXACT_BITS {
        return None;
    }
    let m = table.len();
    if m == 0 {
        return Some(ParityCover::new(Vec::new()));
    }

    // Coverage bitset of each candidate mask, deduplicated; for equal
    // coverage keep the mask with fewest taps (cheapest XOR tree).
    let mut by_coverage: HashMap<RowSet, u64> = HashMap::new();
    for mask in 1..(1u64 << n) {
        let mut cov = RowSet::empty(m);
        for (i, row) in table.rows().iter().enumerate() {
            if row.detected_by(mask) {
                cov.insert(i);
            }
        }
        if cov.is_empty() {
            continue;
        }
        by_coverage
            .entry(cov)
            .and_modify(|best| {
                if mask.count_ones() < best.count_ones() {
                    *best = mask;
                }
            })
            .or_insert(mask);
    }

    // Drop dominated candidates (coverage ⊆ another's coverage),
    // supersets first. Full tiebreakers make the candidate order — and
    // hence the reported minimum cover — deterministic rather than an
    // accident of hash iteration.
    let mut candidates: Vec<(RowSet, u64)> = by_coverage.into_iter().collect();
    candidates.sort_by(|(ca, ma), (cb, mb)| {
        cb.count()
            .cmp(&ca.count())
            .then_with(|| ca.cmp(cb))
            .then_with(|| ma.cmp(mb))
    });
    let kept = drop_dominated(candidates);

    let full = RowSet::full(m);
    // Feasibility: union of all candidates must be full (it is, since
    // every row has a detecting singleton).
    let mut union = RowSet::empty(m);
    for (cov, _) in &kept {
        union.union_with(cov);
    }
    if union != full {
        return None; // defensive; cannot happen for built tables
    }

    // Iterative deepening with a global node budget.
    let mut budget = node_budget;
    for depth in 1..=kept.len() {
        let mut chosen = Vec::new();
        match search(
            &kept,
            &full,
            &RowSet::empty(m),
            depth,
            &mut chosen,
            &mut budget,
        ) {
            SearchResult::Found => return Some(ParityCover::new(chosen)),
            SearchResult::Exhausted => {}
            SearchResult::OutOfBudget => return None,
        }
    }
    None
}

enum SearchResult {
    Found,
    Exhausted,
    OutOfBudget,
}

/// DFS: pick candidates covering the first uncovered row.
fn search(
    candidates: &[(RowSet, u64)],
    full: &RowSet,
    covered: &RowSet,
    depth: usize,
    chosen: &mut Vec<u64>,
    budget: &mut usize,
) -> SearchResult {
    if *budget == 0 {
        return SearchResult::OutOfBudget;
    }
    *budget -= 1;
    if covered == full {
        return SearchResult::Found;
    }
    if depth == 0 {
        return SearchResult::Exhausted;
    }
    let Some(row) = covered.first_clear() else {
        return SearchResult::Found;
    };
    for (cov, mask) in candidates {
        if cov.contains(row) {
            let mut next = covered.clone();
            next.union_with(cov);
            chosen.push(*mask);
            match search(candidates, full, &next, depth - 1, chosen, budget) {
                SearchResult::Found => return SearchResult::Found,
                SearchResult::OutOfBudget => return SearchResult::OutOfBudget,
                SearchResult::Exhausted => {}
            }
            chosen.pop();
        }
    }
    SearchResult::Exhausted
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{minimize_parity_functions, CedOptions};
    use ced_sim::detect::EcRow;

    fn table(num_bits: usize, rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows.first().map_or(1, |r| r.len());
        DetectabilityTable::from_rows(
            num_bits,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    #[test]
    fn trivial_single_row() {
        let t = table(3, vec![vec![0b101]]);
        let c = exact_minimum_cover(&t).unwrap();
        assert_eq!(c.len(), 1);
        assert!(t.all_covered(&c.masks));
    }

    #[test]
    fn known_two_mask_instance() {
        let t = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        let c = exact_minimum_cover(&t).unwrap();
        assert_eq!(c.len(), 2);
        assert!(t.all_covered(&c.masks));
    }

    #[test]
    fn exact_never_beaten_by_heuristic() {
        // LP+RR and greedy can match but never beat the exact optimum.
        let cases = vec![
            table(
                4,
                vec![vec![0b0001], vec![0b0110], vec![0b1011], vec![0b1111]],
            ),
            table(
                3,
                vec![vec![0b001, 0b010], vec![0b011, 0b000], vec![0b111, 0b100]],
            ),
            table(5, (1..=20u64).map(|i| vec![i % 31 + 1]).collect()),
        ];
        for t in cases {
            let exact = exact_minimum_cover(&t).unwrap();
            let heur = minimize_parity_functions(&t, &CedOptions::default());
            assert!(t.all_covered(&exact.masks));
            assert!(
                exact.len() <= heur.q,
                "exact {} > heuristic {}",
                exact.len(),
                heur.q
            );
        }
    }

    #[test]
    fn empty_table() {
        let t = table(4, vec![]);
        let c = exact_minimum_cover(&t).unwrap();
        assert!(c.is_empty());
    }

    #[test]
    fn too_many_bits_declined() {
        let t = DetectabilityTable::from_rows(17, 1, vec![EcRow { steps: vec![1] }]);
        assert!(exact_minimum_cover(&t).is_none());
    }

    #[test]
    fn prefers_cheap_masks_among_equal_coverage() {
        // Bits 1 and 2 never discriminate: mask {0} and {0,1,2} cover the
        // same rows; the solver should report the singleton.
        let t = table(3, vec![vec![0b001]]);
        let c = exact_minimum_cover(&t).unwrap();
        assert_eq!(c.masks, vec![0b001]);
    }
}
