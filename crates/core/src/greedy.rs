//! Greedy set-cover baseline for parity selection.
//!
//! The paper notes the problem "may be modelled as an NP-complete
//! minimum cover problem, for which several heuristics exist" but that
//! explicitly materializing all `2^n` parity candidates is infeasible.
//! This baseline sidesteps materialization by *local search*: each new
//! parity mask is grown by bit flips that maximize the number of
//! still-uncovered erroneous cases it detects. It serves as the
//! comparison point for the LP + randomized-rounding ablation (A1 in
//! DESIGN.md).

use crate::ip::ParityCover;
use ced_sim::detect::DetectabilityTable;
use ced_sim::packed::PackedTable;
use ced_store::RowSet;

/// Options for the greedy baseline.
#[derive(Debug, Clone)]
pub struct GreedyOptions {
    /// Random restarts per mask (hill climbing restarts).
    pub restarts: usize,
    /// Seed for restart initialization.
    pub seed: u64,
}

impl Default for GreedyOptions {
    fn default() -> GreedyOptions {
        GreedyOptions {
            restarts: 8,
            seed: 0,
        }
    }
}

/// Builds a verified cover greedily: repeatedly add the locally best
/// parity mask until every erroneous case is covered.
///
/// Termination is guaranteed: if hill climbing stalls, the mask falls
/// back to a singleton on a detecting bit of the first uncovered row,
/// which always covers at least that row.
pub fn greedy_cover(table: &DetectabilityTable, options: &GreedyOptions) -> ParityCover {
    greedy_cover_with(table, None, options)
}

/// [`greedy_cover`] with an optional bit-packed view of `table`.
///
/// When `packed` is given (built from this exact table), the hill
/// climber's scoring query counts covered rows 64 at a time; the counts
/// are exactly equal to the filtered iteration, so mask choices and the
/// resulting cover are unchanged.
pub fn greedy_cover_with(
    table: &DetectabilityTable,
    packed: Option<&PackedTable>,
    options: &GreedyOptions,
) -> ParityCover {
    let n = table.num_bits();
    let mut masks: Vec<u64> = Vec::new();
    let mut uncovered = RowSet::full(table.len());
    let mut rng_state = options.seed ^ 0xD1B5_4A32_D192_ED03;

    while !uncovered.is_empty() {
        let best = best_mask(table, packed, &uncovered, n, options, &mut rng_state);
        let mask = if covered_count(table, packed, &uncovered, best) == 0 {
            // Fallback: singleton on the first detecting bit of the first
            // uncovered row's activation step.
            let first = uncovered.first_set().expect("nonempty uncovered set");
            let row = &table.rows()[first];
            match row.steps.iter().copied().find(|&d| d != 0) {
                Some(d) => 1u64 << d.trailing_zeros(),
                None => {
                    // The row shows no discrepancy at any step: no parity
                    // mask can ever cover it. Drop it so the loop
                    // terminates; full-table verification downstream
                    // (ip::verify_cover / the solver ladder) reports it.
                    uncovered.remove(first);
                    continue;
                }
            }
        } else {
            best
        };
        masks.push(mask);
        let newly: Vec<usize> = uncovered
            .iter()
            .filter(|&i| table.rows()[i].detected_by(mask))
            .collect();
        for i in newly {
            uncovered.remove(i);
        }
    }
    ParityCover::new(masks)
}

fn covered_count(
    table: &DetectabilityTable,
    packed: Option<&PackedTable>,
    uncovered: &RowSet,
    mask: u64,
) -> usize {
    match packed {
        Some(p) => p.covered_count(mask, uncovered),
        None => uncovered
            .iter()
            .filter(|&i| table.rows()[i].detected_by(mask))
            .count(),
    }
}

/// Hill-climbs masks by single-bit flips, over several restarts.
fn best_mask(
    table: &DetectabilityTable,
    packed: Option<&PackedTable>,
    uncovered: &RowSet,
    n: usize,
    options: &GreedyOptions,
    rng_state: &mut u64,
) -> u64 {
    let mut best = 0u64;
    let mut best_score = 0usize;
    for restart in 0..options.restarts.max(1) {
        // Start points: empty mask first, then random masks.
        let mut mask = if restart == 0 {
            0u64
        } else {
            *rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (*rng_state >> (64 - n as u32)) & ((1u64 << n) - 1)
        };
        let mut score = covered_count(table, packed, uncovered, mask);
        loop {
            let mut improved = false;
            for b in 0..n {
                let candidate = mask ^ (1u64 << b);
                let s = covered_count(table, packed, uncovered, candidate);
                if s > score {
                    mask = candidate;
                    score = s;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        if score > best_score {
            best_score = score;
            best = mask;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_sim::detect::EcRow;

    fn table(num_bits: usize, rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows.first().map_or(1, |r| r.len());
        DetectabilityTable::from_rows(
            num_bits,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    #[test]
    fn covers_simple_table_with_one_mask() {
        let t = table(4, vec![vec![0b0001], vec![0b0011], vec![0b0101]]);
        let cover = greedy_cover(&t, &GreedyOptions::default());
        assert!(t.all_covered(&cover.masks));
        assert_eq!(cover.len(), 1);
    }

    #[test]
    fn handles_parity_conflicts() {
        let t = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        let cover = greedy_cover(&t, &GreedyOptions::default());
        assert!(t.all_covered(&cover.masks));
        assert_eq!(cover.len(), 2);
    }

    #[test]
    fn empty_table_needs_nothing() {
        let t = table(3, vec![]);
        let cover = greedy_cover(&t, &GreedyOptions::default());
        assert!(cover.is_empty());
    }

    #[test]
    fn multi_step_detection_used() {
        // Only step 2 distinguishes; greedy must still cover.
        let t = table(3, vec![vec![0b011, 0b001], vec![0b011, 0b010]]);
        let cover = greedy_cover(&t, &GreedyOptions::default());
        assert!(t.all_covered(&cover.masks));
    }

    #[test]
    fn deterministic_given_seed() {
        let rows: Vec<Vec<u64>> = (0..12u64).map(|i| vec![(i % 7) + 1]).collect();
        let t = table(3, rows);
        let a = greedy_cover(&t, &GreedyOptions::default());
        let b = greedy_cover(&t, &GreedyOptions::default());
        assert_eq!(a, b);
    }

    #[test]
    fn packed_path_reproduces_dense_greedy_exactly() {
        let rows: Vec<Vec<u64>> = (0..80u64)
            .map(|i| {
                let x = i
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                vec![(x >> 17) & 0x3F | 1 << (i % 6), (x >> 40) & 0x3F]
            })
            .collect();
        let t = table(6, rows);
        let packed = PackedTable::from_table(&t);
        for seed in 0..8u64 {
            let opts = GreedyOptions {
                seed,
                ..GreedyOptions::default()
            };
            let dense = greedy_cover(&t, &opts);
            let fast = greedy_cover_with(&t, Some(&packed), &opts);
            assert_eq!(dense, fast, "seed {seed}");
        }
    }

    #[test]
    fn fallback_singleton_terminates() {
        // Adversarial: restarts = 0 → hill climbing from empty mask only.
        let t = table(4, vec![vec![0b1010], vec![0b0101]]);
        let cover = greedy_cover(
            &t,
            &GreedyOptions {
                restarts: 1,
                seed: 0,
            },
        );
        assert!(t.all_covered(&cover.masks));
    }
}
