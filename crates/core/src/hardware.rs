//! CED hardware synthesis and costing (the paper's Fig. 3).
//!
//! Given a verified [`ParityCover`], builds the checker:
//!
//! * **parity trees** — `q` XOR trees compacting the actual next-state/
//!   output bits (lossless compaction of the monitored responses);
//! * **prediction logic** — `q` Boolean functions of (input, present
//!   state) computing the expected parities; synthesized via truth
//!   tables → ISOP interval (invalid state codes as don't-cares, which
//!   is sound: invalid codes are unreachable fault-free, and any
//!   mismatch they cause post-error only *adds* detection) → gates;
//! * **comparator** — `q` XORs and an OR tree raising `ERROR`;
//! * **hold registers** — `2q` flip-flops so comparison happens one
//!   cycle later and state-register faults are also caught (after
//!   Zeng/Saxena/McCluskey, the paper's reference 16).
//!
//! The netlist takes `r + s + n` inputs (primary inputs, present state,
//! actual monitored bits) and produces the single error output; the
//! flip-flops are accounted for in the cost, not the combinational
//! netlist.

use crate::ip::ParityCover;
use ced_fsm::encoded::FsmCircuit;
use ced_logic::gate::CellLibrary;
use ced_logic::isop::isop;
use ced_logic::netlist::{NetId, Netlist, NetlistBuilder};
use ced_logic::truth::Truth;
use ced_logic::MinimizeOptions;
use ced_sim::tables::TransitionTables;

/// A synthesized bounded-latency CED checker.
#[derive(Debug, Clone)]
pub struct CedHardware {
    netlist: Netlist,
    masks: Vec<u64>,
    latency: usize,
    num_inputs: usize,
    state_bits: usize,
    monitored_bits: usize,
}

/// Cost summary of a checker (or of the duplication baseline).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CedCost {
    /// Number of parity functions `q` (`n` for duplication).
    pub parity_functions: usize,
    /// Mapped combinational gate count.
    pub gates: usize,
    /// Total area: combinational + flip-flops.
    pub area: f64,
    /// Flip-flops (hold registers; plus the duplicate state register in
    /// the duplication baseline).
    pub flip_flops: usize,
}

impl CedHardware {
    /// The checker's combinational netlist.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// The parity masks implemented.
    pub fn masks(&self) -> &[u64] {
        &self.masks
    }

    /// The latency bound the cover was proven for.
    pub fn latency(&self) -> usize {
        self.latency
    }

    /// Number of parity functions.
    pub fn num_parity_functions(&self) -> usize {
        self.masks.len()
    }

    /// Costs under a cell library.
    pub fn cost(&self, library: &CellLibrary) -> CedCost {
        let ffs = 2 * self.masks.len();
        CedCost {
            parity_functions: self.masks.len(),
            gates: self.netlist.gate_count(),
            area: self.netlist.area(library) + ffs as f64 * library.dff,
            flip_flops: ffs,
        }
    }

    /// Evaluates the checker for one transition: does the comparator
    /// flag a mismatch between the predicted parities (from `input`,
    /// `state`) and the actual monitored bits?
    ///
    /// # Panics
    ///
    /// Panics if arguments exceed their bit widths.
    pub fn flags(&self, state: u64, input: u64, actual_bits: u64) -> bool {
        let bits = self.pack_inputs(state, input, actual_bits);
        self.netlist.eval_single(&bits)[0]
    }

    /// Evaluates the checker with a stuck-at `fault` injected into its
    /// *own* netlist — the "checker of the checker": does the damaged
    /// comparator still raise `ERROR` for this transition?
    ///
    /// # Panics
    ///
    /// Panics if arguments exceed their bit widths or the fault names a
    /// net outside the checker netlist.
    pub fn flags_with_fault(
        &self,
        state: u64,
        input: u64,
        actual_bits: u64,
        fault: ced_sim::fault::Fault,
    ) -> bool {
        let bits = self.pack_inputs(state, input, actual_bits);
        ced_sim::eval::eval_single_faulty(&self.netlist, &bits, fault)[0]
    }

    /// The checker's input vector layout: primary inputs in positions
    /// `0..r`, present-state bits in `r..r+s`, monitored actual bits in
    /// `r+s..r+s+n` (the order `synthesize_ced` wires them).
    fn pack_inputs(&self, state: u64, input: u64, actual_bits: u64) -> Vec<bool> {
        assert!(state < (1u64 << self.state_bits));
        assert!(input < (1u64 << self.num_inputs) || self.num_inputs == 64);
        let mut bits = Vec::with_capacity(self.num_inputs + self.state_bits + self.monitored_bits);
        for i in 0..self.num_inputs {
            bits.push((input >> i) & 1 == 1);
        }
        for b in 0..self.state_bits {
            bits.push((state >> b) & 1 == 1);
        }
        for j in 0..self.monitored_bits {
            bits.push((actual_bits >> j) & 1 == 1);
        }
        bits
    }
}

/// Synthesizes the Fig. 3 checker for a circuit and verified cover.
///
/// # Panics
///
/// Panics if `latency == 0` or the circuit interface exceeds the
/// supported sizes (`r + s ≤ 24` truth-table variables).
pub fn synthesize_ced(
    circuit: &FsmCircuit,
    cover: &ParityCover,
    latency: usize,
    options: &MinimizeOptions,
) -> CedHardware {
    assert!(latency >= 1, "latency bound must be at least 1");
    let r = circuit.num_inputs();
    let s = circuit.state_bits();
    let n = circuit.total_bits();
    let vars = r + s;
    let good = TransitionTables::good(circuit);

    // Truth tables of the monitored-bit functions b_j(input, state).
    let bit_tables: Vec<Truth> = (0..n)
        .map(|j| {
            Truth::from_fn(vars, |m| {
                let input = m & ((1u64 << r) - 1);
                let code = m >> r;
                (good.response(code, input) >> j) & 1 == 1
            })
        })
        .collect();

    // Valid-state indicator over the r+s input space (states live in the
    // high variables).
    let valid_codes = circuit_valid_codes(circuit);
    let valid = Truth::from_fn(vars, |m| valid_codes[(m >> r) as usize]);

    let mut builder = NetlistBuilder::new(vars + n);
    let ps_inputs: Vec<NetId> = (0..vars).map(|i| builder.input(i)).collect();
    let monitored: Vec<NetId> = (0..n).map(|j| builder.input(vars + j)).collect();

    // Per-bit predictor covers (interval: exact on valid codes, free on
    // invalid ones), built lazily — the structural predictor form shares
    // them across masks through structural hashing.
    let mut bit_covers: Vec<Option<ced_logic::Cover>> = vec![None; n];
    let bit_cover = |j: usize, tables: &[Truth]| -> ced_logic::Cover {
        let lower = tables[j].and(&valid);
        let upper = tables[j].or(&valid.not());
        isop(&lower, &upper)
    };

    let mut compare_bits: Vec<NetId> = Vec::with_capacity(cover.masks.len());
    for &mask in &cover.masks {
        let taps: Vec<usize> = (0..n).filter(|j| (mask >> j) & 1 == 1).collect();

        // Predicted parity = XOR of the selected good bit-functions,
        // invalid codes as don't-cares. Two realizations:
        //  (a) flat: one minimized SOP of the XOR-composed function;
        //  (b) structural: re-derive each selected bit function and XOR
        //      them (the DATE'03 predictor shape, sharing logic with
        //      other masks).
        // Pick by estimated literal cost — a single complex parity
        // function can cost more than several simple ones, the effect
        // behind the paper's dk16 anomaly (§5).
        let selected: Vec<&Truth> = taps.iter().map(|&j| &bit_tables[j]).collect();
        let parity = Truth::parity_of(&selected);
        let lower = parity.and(&valid);
        let upper = parity.or(&valid.not());
        let flat = isop(&lower, &upper);

        for &j in &taps {
            if bit_covers[j].is_none() {
                bit_covers[j] = Some(bit_cover(j, &bit_tables));
            }
        }
        let structural_literals: usize = taps
            .iter()
            .map(|&j| bit_covers[j].as_ref().expect("built above").literal_count())
            .sum::<usize>()
            + 3 * taps.len().saturating_sub(1); // XOR tree weight

        let predicted = if flat.literal_count() <= structural_literals {
            let minimized = ced_logic::decompose::minimize_output(
                &flat,
                &ced_logic::Cover::empty(vars),
                vars,
                options,
            );
            ced_logic::decompose::sop_to_net(&mut builder, &minimized, &ps_inputs)
        } else {
            let parts: Vec<NetId> = taps
                .iter()
                .map(|&j| {
                    let c = bit_covers[j].as_ref().expect("built above");
                    ced_logic::decompose::sop_to_net(&mut builder, c, &ps_inputs)
                })
                .collect();
            builder.xor_tree(&parts)
        };

        // Actual parity: XOR tree over the monitored bits in the mask.
        let tap_nets: Vec<NetId> = taps.iter().map(|&j| monitored[j]).collect();
        let actual = builder.xor_tree(&tap_nets);

        // Comparator bit.
        compare_bits.push(builder.xor(predicted, actual));
    }
    let error = builder.or_tree(&compare_bits);
    builder.mark_output(error);

    CedHardware {
        netlist: builder.finish(),
        masks: cover.masks.clone(),
        latency,
        num_inputs: r,
        state_bits: s,
        monitored_bits: n,
    }
}

/// Which state codes are valid for this circuit. Codes are "valid" when
/// they are reachable from reset in the fault-free machine — the states
/// the register can actually hold during correct operation.
fn circuit_valid_codes(circuit: &FsmCircuit) -> Vec<bool> {
    let good = TransitionTables::good(circuit);
    let mut valid = vec![false; 1 << circuit.state_bits()];
    for c in good.reachable_codes() {
        valid[c as usize] = true;
    }
    valid
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;

    fn circuit() -> FsmCircuit {
        let fsm = suite::serial_adder();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn checker_is_silent_on_correct_operation() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let good = TransitionTables::good(&c);
        for code in good.reachable_codes() {
            for input in 0..(1u64 << c.num_inputs()) {
                let actual = good.response(code, input);
                assert!(
                    !ced.flags(code, input, actual),
                    "false alarm at state {code}, input {input}"
                );
            }
        }
    }

    #[test]
    fn checker_flags_odd_corruptions() {
        let c = circuit();
        let n = c.total_bits();
        let cover = ParityCover::singletons(n);
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let good = TransitionTables::good(&c);
        let code = c.reset_code();
        let input = 0u64;
        let actual = good.response(code, input);
        // Flip any single monitored bit: a singleton cover must notice.
        for j in 0..n {
            assert!(
                ced.flags(code, input, actual ^ (1 << j)),
                "bit {j} corruption escaped"
            );
        }
    }

    #[test]
    fn parity_cancellation_at_hardware_level() {
        let c = circuit();
        let n = c.total_bits();
        // A single mask over the two lowest bits: flipping both is even
        // parity and must NOT flag (this is exactly why several trees or
        // latency are needed).
        let cover = ParityCover::new(vec![0b11]);
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let good = TransitionTables::good(&c);
        let code = c.reset_code();
        let actual = good.response(code, 0);
        assert!(ced.flags(code, 0, actual ^ 0b01));
        assert!(!ced.flags(code, 0, actual ^ 0b11), "even flip flagged");
        assert!(n >= 2);
    }

    #[test]
    fn stuck_error_output_masks_or_forces_the_flag() {
        use ced_sim::fault::Fault;
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let good = TransitionTables::good(&c);
        let code = c.reset_code();
        let actual = good.response(code, 0);
        let error_net = ced.netlist().outputs()[0];
        // ERROR stuck-at-0: every corruption is silently swallowed.
        for j in 0..c.total_bits() {
            assert!(!ced.flags_with_fault(
                code,
                0,
                actual ^ (1 << j),
                Fault::new(error_net, false)
            ));
        }
        // ERROR stuck-at-1: even correct operation raises the alarm.
        assert!(ced.flags_with_fault(code, 0, actual, Fault::new(error_net, true)));
    }

    #[test]
    fn faulty_eval_with_silent_fault_matches_clean_eval() {
        use ced_sim::fault::Fault;
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let good = TransitionTables::good(&c);
        let code = c.reset_code();
        let actual = good.response(code, 0);
        // A fault whose stuck value coincides with the net's value on
        // this pattern cannot change the answer; check via both
        // polarities of the error net on a flagged transition.
        let error_net = ced.netlist().outputs()[0];
        let corrupted = actual ^ 1;
        assert!(ced.flags(code, 0, corrupted));
        assert_eq!(
            ced.flags_with_fault(code, 0, corrupted, Fault::new(error_net, true)),
            ced.flags(code, 0, corrupted)
        );
    }

    #[test]
    fn cost_accounts_hold_registers() {
        let c = circuit();
        let cover = ParityCover::new(vec![0b01, 0b10]);
        let ced = synthesize_ced(&c, &cover, 2, &MinimizeOptions::default());
        let lib = CellLibrary::new();
        let cost = ced.cost(&lib);
        assert_eq!(cost.parity_functions, 2);
        assert_eq!(cost.flip_flops, 4);
        assert!(cost.area > ced.netlist().area(&lib));
        assert!(cost.gates > 0);
        assert_eq!(ced.latency(), 2);
    }

    #[test]
    fn fewer_parity_functions_cost_less() {
        let c = circuit();
        let n = c.total_bits();
        let lib = CellLibrary::new();
        let small = synthesize_ced(
            &c,
            &ParityCover::new(vec![0b1]),
            1,
            &MinimizeOptions::default(),
        );
        let large = synthesize_ced(
            &c,
            &ParityCover::singletons(n),
            1,
            &MinimizeOptions::default(),
        );
        assert!(small.cost(&lib).area < large.cost(&lib).area);
    }
}
