//! The integer program of Statements 1–4 and its exact feasibility check.
//!
//! A candidate solution is a set of `q` parity masks `β(1)..β(q)` over
//! the `n` monitored bits. The paper's Statement 2 requires, for every
//! erroneous case `i`, some `l` and latency step `k ≤ p` with
//!
//! ```text
//!   Σ_{j : β(l)_j = 1} V(i, j, k)  ≡ 1  (mod 2)
//! ```
//!
//! i.e. the XOR tree over the bits of `β(l)` sees an odd number of
//! discrepant bits at step `k`. The `w`/`r` variables of Statement 4
//! only serve to express the `mod 2` linearly; for integral points the
//! condition above is checked directly on bitmasks.

use ced_sim::detect::DetectabilityTable;

/// A candidate parity-CED solution: `q = masks.len()` parity trees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParityCover {
    /// One bitmask per parity tree over the monitored bits `b_1..b_n`
    /// (bit `j` set ⇔ `b_{j+1}` feeds tree `l`).
    pub masks: Vec<u64>,
}

impl ParityCover {
    /// Creates a cover from masks, dropping empty and duplicate masks
    /// (an empty XOR tree detects nothing; duplicates add no coverage).
    pub fn new(masks: Vec<u64>) -> ParityCover {
        let mut out: Vec<u64> = Vec::with_capacity(masks.len());
        for m in masks {
            if m != 0 && !out.contains(&m) {
                out.push(m);
            }
        }
        ParityCover { masks: out }
    }

    /// The `n` singleton masks — the always-feasible `q = n` fallback
    /// (every erroneous case is caught at its activation step by the
    /// monitor on any discrepant bit).
    pub fn singletons(num_bits: usize) -> ParityCover {
        ParityCover {
            masks: (0..num_bits).map(|b| 1u64 << b).collect(),
        }
    }

    /// Number of parity functions `q`.
    pub fn len(&self) -> usize {
        self.masks.len()
    }

    /// True iff there are no parity functions.
    pub fn is_empty(&self) -> bool {
        self.masks.is_empty()
    }

    /// Total XOR-tree leaf count (Σ popcount) — a proxy for tree size.
    pub fn total_taps(&self) -> usize {
        self.masks.iter().map(|m| m.count_ones() as usize).sum()
    }
}

/// Verifies Statement 2 exactly: returns `Ok(())` when every erroneous
/// case is detected, otherwise the uncovered row indices.
///
/// # Errors
///
/// The `Err` payload lists every uncovered row (never empty).
pub fn verify_cover(table: &DetectabilityTable, cover: &ParityCover) -> Result<(), Vec<usize>> {
    let uncovered = table.uncovered_rows(&cover.masks);
    if uncovered.is_empty() {
        Ok(())
    } else {
        Err(uncovered)
    }
}

/// Per-row detection profile of a cover: for each row, the smallest
/// latency step (1-based) at which some mask detects it, or `None`.
/// Used by the reports to show how much of the latency budget is
/// actually exercised.
pub fn detection_latencies(table: &DetectabilityTable, cover: &ParityCover) -> Vec<Option<usize>> {
    table
        .rows()
        .iter()
        .map(|row| {
            for (k, &d) in row.steps.iter().enumerate() {
                if cover.masks.iter().any(|&m| (m & d).count_ones() & 1 == 1) {
                    return Some(k + 1);
                }
            }
            None
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_sim::detect::EcRow;

    fn table(rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows[0].len();
        DetectabilityTable::from_rows(
            8,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    #[test]
    fn new_drops_empty_and_duplicate_masks() {
        let c = ParityCover::new(vec![0b01, 0, 0b01, 0b10]);
        assert_eq!(c.masks, vec![0b01, 0b10]);
        assert_eq!(c.len(), 2);
        assert_eq!(c.total_taps(), 2);
    }

    #[test]
    fn singletons_cover_any_table() {
        let t = table(vec![vec![0b0001, 0], vec![0b1000, 0b0110]]);
        let c = ParityCover::singletons(8);
        assert!(verify_cover(&t, &c).is_ok());
    }

    #[test]
    fn parity_cancellation_is_respected() {
        // Row with two discrepant bits at the only step: a mask covering
        // both sees even parity → undetected.
        let t = table(vec![vec![0b11]]);
        let both = ParityCover::new(vec![0b11]);
        assert_eq!(verify_cover(&t, &both), Err(vec![0]));
        let one = ParityCover::new(vec![0b01]);
        assert!(verify_cover(&t, &one).is_ok());
    }

    #[test]
    fn later_steps_can_provide_coverage() {
        // Step 1 has an even overlap, step 2 an odd one.
        let t = table(vec![vec![0b11, 0b01]]);
        let c = ParityCover::new(vec![0b11]);
        // step2: 0b11 & 0b01 = 1 bit → odd → covered.
        assert!(verify_cover(&t, &c).is_ok());
        assert_eq!(detection_latencies(&t, &c), vec![Some(2)]);
    }

    #[test]
    fn singleton_taps_count() {
        let c = ParityCover::singletons(7);
        assert_eq!(c.len(), 7);
        assert_eq!(c.total_taps(), 7);
        assert!(!c.is_empty());
        assert!(ParityCover::new(vec![]).is_empty());
    }

    #[test]
    fn detection_latency_profile() {
        let t = table(vec![
            vec![0b001, 0b000],
            vec![0b110, 0b010],
            vec![0b110, 0b110],
        ]);
        let c = ParityCover::new(vec![0b001, 0b010]);
        let lat = detection_latencies(&t, &c);
        assert_eq!(lat[0], Some(1)); // bit0 at step 1
        assert_eq!(lat[1], Some(1)); // bit1 ∈ 0b110 odd at step 1
        assert_eq!(lat[2], Some(1));
        // An uncoverable row under this cover:
        let t2 = table(vec![vec![0b100, 0b100]]);
        assert_eq!(detection_latencies(&t2, &c), vec![None]);
        assert!(verify_cover(&t2, &c).is_err());
    }
}
