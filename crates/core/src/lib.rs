//! # ced-core — concurrent error detection with bounded latency in FSMs
//!
//! Reference implementation of *"On Concurrent Error Detection with
//! Bounded Latency in FSMs"* (Almukhaizim, Drineas, Makris — DATE
//! 2004): minimize the number of parity trees needed to detect every
//! modeled error of an FSM within a latency bound `p`, by formulating
//! parity selection as an integer program ([`ip`]), relaxing it to a
//! linear program ([`relax`]), rounding randomly ([`round`]) inside a
//! binary search on `q` ([`search`]), and synthesizing the resulting
//! checker hardware ([`hardware`]).
//!
//! Baselines for the paper's comparisons and our ablations: greedy
//! parity covering ([`greedy`]), exact small-instance optimum
//! ([`exact`]), duplication-with-comparison ([`duplication`]) and the
//! convolutional-code scheme the paper cites for SEUs
//! ([`convolutional`]).
//! [`pipeline`] strings the whole experiment together; [`report`]
//! formats Table 1 and the §5 summary.
//!
//! # Examples
//!
//! The complete flow on a small machine:
//!
//! ```
//! use ced_core::pipeline::{run_circuit, PipelineOptions};
//! use ced_fsm::suite;
//! use ced_logic::gate::CellLibrary;
//!
//! let fsm = suite::sequence_detector();
//! let report = run_circuit(
//!     &fsm,
//!     &[1, 2, 3],
//!     &PipelineOptions::paper_defaults(),
//!     &CellLibrary::new(),
//! )?;
//! // Latency never increases the number of parity functions.
//! let q: Vec<usize> = report.latencies.iter().map(|l| l.cover.len()).collect();
//! assert!(q.windows(2).all(|w| w[1] <= w[0]));
//! # Ok::<(), ced_core::pipeline::PipelineError>(())
//! ```

#![warn(missing_docs)]
// Indexed loops over bit positions are the clearest form for this
// bit-twiddling code; the iterator rewrites clippy suggests obscure it.
#![allow(clippy::needless_range_loop)]

pub mod convolutional;
pub mod duplication;
pub mod exact;
pub mod greedy;
pub mod hardware;
pub mod ip;
pub mod pipeline;
pub mod relax;
pub mod report;
pub mod round;
pub mod search;
pub mod suite;

pub use hardware::{synthesize_ced, CedCost, CedHardware};
pub use ip::{verify_cover, ParityCover};
pub use pipeline::{
    run_circuit, run_circuit_controlled, CircuitReport, LatencyResult, PipelineControl,
    PipelineError, PipelineInterrupted, PipelineOptions, TableCheckpoint,
};
pub use relax::{
    build_relaxation, build_relaxation_with_objective, LpForm, LpObjective, Relaxation,
};
pub use report::report_to_json;
pub use search::{
    minimize_interruptible, minimize_parity_functions, minimize_with_incumbent, CedOptions,
    DegradationEvent, DegradationReason, LadderRung, SearchOutcome, SolverEngine,
};
pub use suite::{
    corpus_units, poisoned_record, run_suite, run_suite_unit, suite_fingerprint, CorpusUnit,
    MachineRecord, MachineStatus, SuiteCheckpoint, SuiteControl, SuiteError, SuiteInterrupted,
    SuiteOptions, SuiteReport, SUITE_CHECKPOINT_KIND,
};
