//! End-to-end pipeline: symbolic FSM → encoded circuit → fault
//! simulation → detectability table → Algorithm 1 → CED hardware →
//! per-latency report. This is the programmatic equivalent of the
//! paper's experimental flow (§5) and the engine behind the Table-1
//! harness.

use crate::duplication::duplication_cost;
use crate::hardware::{synthesize_ced, CedCost};
use crate::ip::ParityCover;
use crate::search::{CedOptions, DegradationEvent, LadderRung};
use ced_fsm::encoded::{EncodedFsm, FsmCircuit};
use ced_fsm::encoding::StateEncoding;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::machine::{Fsm, FsmError};
use ced_logic::cube::Literal;
use ced_logic::gate::CellLibrary;
use ced_logic::MinimizeOptions;
use ced_sim::detect::{
    DetectError, DetectOptions, DetectStats, DetectabilityTable, InputModel, Semantics,
};
use ced_sim::fault::{all_faults, collapsed_faults, Fault};
use std::fmt;

/// Input-space granularity of the erroneous-case enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputGranularity {
    /// One representative input per STG transition cube — the paper's
    /// "for every transition in the FSM" granularity (default; keeps
    /// wide-input machines tractable).
    #[default]
    TransitionCubes,
    /// All `2^r` input minterms at every state — exact, and required
    /// for the operational guarantee over arbitrary input streams.
    Exhaustive,
}

/// Configuration of the whole pipeline.
#[derive(Debug, Clone, Default)]
pub struct PipelineOptions {
    /// State-assignment strategy.
    pub encoding: EncodingStrategy,
    /// Two-level minimization knobs (synthesis and CED predictor).
    pub minimize: MinimizeOptions,
    /// Algorithm-1 knobs.
    pub ced: CedOptions,
    /// Use structurally collapsed faults (default) or the full list.
    pub full_fault_list: bool,
    /// Hard cap on detectability rows (guards pathological machines).
    pub max_rows: usize,
    /// Step-difference semantics (lockstep = the paper's construction;
    /// faulty-trajectory = the Fig. 3 hardware's observable condition).
    pub semantics: Semantics,
    /// Input-space granularity of the enumeration.
    pub input_granularity: InputGranularity,
    /// Share logic across output cones during synthesis (default).
    /// `false` synthesizes PLA-per-output cones: single gate faults
    /// then perturb one cone only (input and state-register faults
    /// still straddle cones), at an area cost — kept as an ablation
    /// knob for the fault-effect-locality study.
    pub isolate_output_logic: bool,
}

impl PipelineOptions {
    /// Defaults matching the paper's setup.
    pub fn paper_defaults() -> PipelineOptions {
        PipelineOptions {
            max_rows: 2_000_000,
            ..PipelineOptions::default()
        }
    }
}

/// Per-latency experiment record (one group of Table-1 columns).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// The latency bound `p`.
    pub latency: usize,
    /// Rows in the (truncated) detectability table.
    pub erroneous_cases: usize,
    /// The verified parity cover.
    pub cover: ParityCover,
    /// CED checker cost.
    pub cost: CedCost,
    /// LP solves used by the search.
    pub lp_solves: usize,
    /// Rounding attempts used by the search.
    pub rounding_attempts: usize,
    /// The solver-ladder rung that produced `cover`.
    pub method: LadderRung,
    /// Solver-ladder degradation trail; empty when the primary
    /// LP + rounding method ran cleanly.
    pub degradation: Vec<DegradationEvent>,
}

/// Full per-circuit experiment record (one Table-1 row).
#[derive(Debug, Clone)]
pub struct CircuitReport {
    /// Circuit name.
    pub name: String,
    /// Input bits `r`.
    pub inputs: usize,
    /// State bits `s`.
    pub state_bits: usize,
    /// Output bits.
    pub outputs: usize,
    /// Original circuit gate count.
    pub original_gates: usize,
    /// Original circuit cost (area incl. state register).
    pub original_cost: f64,
    /// Fault statistics from table construction at `p_max`.
    pub detect_stats: DetectStats,
    /// Duplication baseline cost.
    pub duplication: CedCost,
    /// One record per requested latency bound (ascending).
    pub latencies: Vec<LatencyResult>,
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The machine is not complete/deterministic or encoding failed.
    Fsm(FsmError),
    /// Detectability construction overflowed.
    Detect(DetectError),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Fsm(e) => write!(f, "fsm error: {e}"),
            PipelineError::Detect(e) => write!(f, "detectability error: {e}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<FsmError> for PipelineError {
    fn from(e: FsmError) -> PipelineError {
        PipelineError::Fsm(e)
    }
}

impl From<DetectError> for PipelineError {
    fn from(e: DetectError) -> PipelineError {
        PipelineError::Detect(e)
    }
}

/// Synthesizes a symbolic machine with the pipeline's settings.
///
/// Incomplete machines are completed with don't-care self-loops first
/// (the usual convention for partially specified MCNC benchmarks).
///
/// # Errors
///
/// Propagates FSM validation failures.
pub fn synthesize_circuit(
    fsm: &Fsm,
    options: &PipelineOptions,
) -> Result<FsmCircuit, PipelineError> {
    Ok(prepare_machine(fsm, options)?.1)
}

/// Completes, encodes and synthesizes a machine, returning both the
/// encoded symbolic form (needed e.g. for the transition-cube input
/// model) and the gate-level circuit.
///
/// # Errors
///
/// Propagates FSM validation failures.
pub fn prepare_machine(
    fsm: &Fsm,
    options: &PipelineOptions,
) -> Result<(EncodedFsm, FsmCircuit), PipelineError> {
    let mut fsm = fsm.clone();
    if fsm.check_complete().is_err() {
        fsm.complete_with_self_loops();
    }
    let enc = assign(&fsm, options.encoding);
    let encoded = EncodedFsm::new(fsm, enc)?;
    let circuit = encoded.synthesize_with_sharing(&options.minimize, !options.isolate_output_logic);
    Ok((encoded, circuit))
}

/// Builds the [`InputModel`] for a machine under the chosen granularity.
///
/// For [`InputGranularity::TransitionCubes`], each state contributes
/// one representative minterm per transition cube (the cube's smallest
/// covered input); codes without a symbolic state fall back to the
/// union of all representatives.
pub fn build_input_model(
    fsm: &Fsm,
    encoding: &StateEncoding,
    granularity: InputGranularity,
) -> InputModel {
    match granularity {
        InputGranularity::Exhaustive => InputModel::Exhaustive,
        InputGranularity::TransitionCubes => {
            let s = encoding.bits();
            let mut by_state: Vec<Vec<u64>> = vec![Vec::new(); 1 << s];
            let mut fallback: Vec<u64> = Vec::new();
            for t in fsm.transitions() {
                let mut rep = 0u64;
                for v in 0..t.input.width() {
                    if t.input.literal(v) == Literal::Positive {
                        rep |= 1 << v;
                    }
                }
                let code = encoding.code(t.from) as usize;
                by_state[code].push(rep);
                fallback.push(rep);
            }
            for v in by_state.iter_mut() {
                v.sort_unstable();
                v.dedup();
            }
            fallback.sort_unstable();
            fallback.dedup();
            if fallback.is_empty() {
                fallback.push(0);
            }
            InputModel::Restricted { by_state, fallback }
        }
    }
}

/// The circuit's fault list under the pipeline's settings.
pub fn fault_list(circuit: &FsmCircuit, options: &PipelineOptions) -> Vec<Fault> {
    if options.full_fault_list {
        all_faults(circuit.netlist())
    } else {
        collapsed_faults(circuit.netlist())
    }
}

/// Runs the complete experiment for one machine over several latency
/// bounds (ascending order recommended; the detectability table is
/// built once at the maximum and truncated for the rest).
///
/// # Errors
///
/// Propagates FSM validation and table-construction failures.
pub fn run_circuit(
    fsm: &Fsm,
    latencies: &[usize],
    options: &PipelineOptions,
    library: &CellLibrary,
) -> Result<CircuitReport, PipelineError> {
    let (encoded, circuit) = prepare_machine(fsm, options)?;
    let input_model =
        build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
    let faults = fault_list(&circuit, options);
    let p_max = latencies.iter().copied().max().unwrap_or(1);

    // One dominance-reduced table per latency bound (reduction depends
    // on the bound, so the p_max table cannot be reused by truncation).
    let max_rows = if options.max_rows == 0 {
        2_000_000
    } else {
        options.max_rows
    };
    let mut stats = DetectStats::default();
    let mut latency_results = Vec::with_capacity(latencies.len());
    let mut incumbent: Option<ParityCover> = None;
    // One shared enumeration pass for all bounds: the per-fault table
    // extraction dominates on large circuits.
    let built = DetectabilityTable::build_many(
        &circuit,
        &faults,
        &DetectOptions {
            latency: p_max,
            max_rows,
            semantics: options.semantics,
            input_model,
            reduce: true,
        },
        latencies,
    )?;
    for (&p, (table, p_stats)) in latencies.iter().zip(built) {
        if p == p_max {
            stats = p_stats;
        }
        let outcome =
            crate::search::minimize_with_incumbent(&table, &options.ced, incumbent.as_ref());
        incumbent = Some(outcome.cover.clone());
        debug_assert!(table.all_covered(&outcome.cover.masks));
        let ced = synthesize_ced(&circuit, &outcome.cover, p, &options.minimize);
        latency_results.push(LatencyResult {
            latency: p,
            erroneous_cases: table.len(),
            cover: outcome.cover,
            cost: ced.cost(library),
            lp_solves: outcome.lp_solves,
            rounding_attempts: outcome.rounding_attempts,
            method: outcome.method,
            degradation: outcome.degradation,
        });
    }

    Ok(CircuitReport {
        name: circuit.name().to_string(),
        inputs: circuit.num_inputs(),
        state_bits: circuit.state_bits(),
        outputs: circuit.num_outputs(),
        original_gates: circuit.gate_count(),
        original_cost: circuit.sequential_area(library),
        detect_stats: stats,
        duplication: duplication_cost(&circuit, library),
        latencies: latency_results,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::suite;

    #[test]
    fn full_pipeline_on_small_machine() {
        let fsm = suite::sequence_detector();
        let report = run_circuit(
            &fsm,
            &[1, 2],
            &PipelineOptions::paper_defaults(),
            &CellLibrary::new(),
        )
        .unwrap();
        assert_eq!(report.latencies.len(), 2);
        assert!(report.original_gates > 0);
        assert!(report.original_cost > 0.0);
        let p1 = &report.latencies[0];
        let p2 = &report.latencies[1];
        assert!(!p1.cover.is_empty());
        // Latency can only help (or tie) the parity-function count.
        assert!(p2.cover.len() <= p1.cover.len());
        // And the parity method uses at most as many functions as
        // duplication.
        assert!(p1.cover.len() <= report.duplication.parity_functions);
    }

    #[test]
    fn incomplete_machines_are_completed() {
        let mut fsm = ced_fsm::Fsm::new("partial", 1, 1);
        let a = fsm.add_state("a");
        let b = fsm.add_state("b");
        fsm.add_transition("1".parse().unwrap(), a, b, vec![ced_fsm::OutputValue::One])
            .unwrap();
        fsm.add_transition("1".parse().unwrap(), b, a, vec![ced_fsm::OutputValue::Zero])
            .unwrap();
        let report = run_circuit(
            &fsm,
            &[1],
            &PipelineOptions::paper_defaults(),
            &CellLibrary::new(),
        )
        .unwrap();
        assert_eq!(report.inputs, 1);
    }

    #[test]
    fn transition_cube_input_model_has_per_state_representatives() {
        let fsm = suite::worked_example();
        let options = PipelineOptions::paper_defaults();
        let (encoded, _) = prepare_machine(&fsm, &options).unwrap();
        let model = build_input_model(
            encoded.fsm(),
            encoded.encoding(),
            InputGranularity::TransitionCubes,
        );
        match model {
            InputModel::Restricted { by_state, fallback } => {
                // Every symbolic state code has representatives; the
                // worked example has 2 transitions per state.
                for state in 0..encoded.fsm().num_states() {
                    let code = encoded.encoding().code(ced_fsm::StateId(state as u32));
                    assert_eq!(by_state[code as usize].len(), 2, "state {state}");
                }
                assert!(!fallback.is_empty());
            }
            InputModel::Exhaustive => panic!("expected restricted model"),
        }
    }

    #[test]
    fn exhaustive_granularity_produces_exhaustive_model() {
        let fsm = suite::serial_adder();
        let options = PipelineOptions::paper_defaults();
        let (encoded, _) = prepare_machine(&fsm, &options).unwrap();
        let model = build_input_model(
            encoded.fsm(),
            encoded.encoding(),
            InputGranularity::Exhaustive,
        );
        assert!(matches!(model, InputModel::Exhaustive));
    }

    #[test]
    fn q_is_monotone_in_latency_thanks_to_incumbents() {
        // Even with a tiny rounding budget (weak oracle), the incumbent
        // threading guarantees non-increasing q.
        let fsm = suite::worked_example();
        let mut opts = PipelineOptions::paper_defaults();
        opts.ced.iterations = 5;
        let report = run_circuit(&fsm, &[1, 2, 3], &opts, &CellLibrary::new()).unwrap();
        let q: Vec<usize> = report.latencies.iter().map(|l| l.cover.len()).collect();
        assert!(q.windows(2).all(|w| w[1] <= w[0]), "q not monotone: {q:?}");
    }

    #[test]
    fn isolated_cones_cost_at_least_as_much() {
        let fsm = suite::sequence_detector();
        let shared = PipelineOptions::paper_defaults();
        let mut isolated = PipelineOptions::paper_defaults();
        isolated.isolate_output_logic = true;
        let a = synthesize_circuit(&fsm, &shared).unwrap();
        let b = synthesize_circuit(&fsm, &isolated).unwrap();
        assert!(b.gate_count() >= a.gate_count());
        // Functionally identical.
        for state in 0..(1u64 << a.state_bits()) {
            for input in 0..(1u64 << a.num_inputs()) {
                assert_eq!(a.step(state, input), b.step(state, input));
            }
        }
    }

    #[test]
    fn row_cap_surfaces_as_error() {
        let fsm = suite::worked_example();
        let mut opts = PipelineOptions::paper_defaults();
        opts.max_rows = 1;
        let err = run_circuit(&fsm, &[2], &opts, &CellLibrary::new()).unwrap_err();
        assert!(matches!(err, PipelineError::Detect(_)));
    }
}
