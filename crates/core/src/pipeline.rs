//! End-to-end pipeline: symbolic FSM → encoded circuit → fault
//! simulation → detectability table → Algorithm 1 → CED hardware →
//! per-latency report. This is the programmatic equivalent of the
//! paper's experimental flow (§5) and the engine behind the Table-1
//! harness.

use crate::duplication::duplication_cost;
use crate::hardware::{synthesize_ced, CedCost};
use crate::ip::ParityCover;
use crate::search::{
    minimize_parity_functions, CedOptions, DegradationEvent, DegradationReason, LadderRung,
    SearchOutcome,
};
use ced_fsm::encoded::{EncodedFsm, FsmCircuit};
use ced_fsm::encoding::StateEncoding;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::machine::{Fsm, FsmError};
use ced_logic::cube::Literal;
use ced_logic::gate::{CellLibrary, GateKind};
use ced_logic::netlist::{Gate, NetId, Netlist};
use ced_logic::MinimizeOptions;
use ced_par::ParExec;
use ced_runtime::{fnv1a64, Budget, ByteReader, ByteWriter, CheckpointError, Interrupted};
use ced_sim::detect::{
    fragment_context_bytes, BuildCheckpoint, BuildControl, DeltaSeed, DetectError, DetectOptions,
    DetectStats, DetectabilityTable, InputModel, Semantics,
};
use ced_sim::fault::{all_faults, collapsed_faults, Fault, FaultModel};
use ced_sim::tables::TransitionTables;
use ced_store::Store;
use std::fmt;

/// Input-space granularity of the erroneous-case enumeration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InputGranularity {
    /// One representative input per STG transition cube — the paper's
    /// "for every transition in the FSM" granularity (default; keeps
    /// wide-input machines tractable).
    #[default]
    TransitionCubes,
    /// All `2^r` input minterms at every state — exact, and required
    /// for the operational guarantee over arbitrary input streams.
    Exhaustive,
}

/// Configuration of the whole pipeline.
#[derive(Clone, Default)]
pub struct PipelineOptions {
    /// State-assignment strategy.
    pub encoding: EncodingStrategy,
    /// Two-level minimization knobs (synthesis and CED predictor).
    pub minimize: MinimizeOptions,
    /// Algorithm-1 knobs.
    pub ced: CedOptions,
    /// Use structurally collapsed faults (default) or the full list.
    pub full_fault_list: bool,
    /// Hard cap on detectability rows (guards pathological machines).
    pub max_rows: usize,
    /// Step-difference semantics (lockstep = the paper's construction;
    /// faulty-trajectory = the Fig. 3 hardware's observable condition).
    pub semantics: Semantics,
    /// Input-space granularity of the enumeration.
    pub input_granularity: InputGranularity,
    /// Share logic across output cones during synthesis (default).
    /// `false` synthesizes PLA-per-output cones: single gate faults
    /// then perturb one cone only (input and state-register faults
    /// still straddle cones), at an area cost — kept as an ablation
    /// knob for the fault-effect-locality study.
    pub isolate_output_logic: bool,
    /// Temporal/spatial fault model assumed by the tensor enumeration
    /// (default: the paper's permanent single stuck-at model).
    pub fault_model: FaultModel,
}

// Hand-rolled so the permanent default renders exactly like the old
// derived output: `suite_fingerprint` and the stage fingerprints hash
// `format!("{options:?}")`, so the derived form with a `fault_model`
// field would silently invalidate every pre-model store artifact,
// checkpoint and fleet manifest. Non-permanent models append the extra
// field and get distinct fingerprints, which is exactly the hygiene we
// want.
impl fmt::Debug for PipelineOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("PipelineOptions");
        d.field("encoding", &self.encoding)
            .field("minimize", &self.minimize)
            .field("ced", &self.ced)
            .field("full_fault_list", &self.full_fault_list)
            .field("max_rows", &self.max_rows)
            .field("semantics", &self.semantics)
            .field("input_granularity", &self.input_granularity)
            .field("isolate_output_logic", &self.isolate_output_logic);
        if self.fault_model != FaultModel::PermanentStuckAt {
            d.field("fault_model", &self.fault_model);
        }
        d.finish()
    }
}

impl PipelineOptions {
    /// Defaults matching the paper's setup.
    pub fn paper_defaults() -> PipelineOptions {
        PipelineOptions {
            max_rows: 2_000_000,
            ..PipelineOptions::default()
        }
    }
}

/// Per-latency experiment record (one group of Table-1 columns).
#[derive(Debug, Clone)]
pub struct LatencyResult {
    /// The latency bound `p`.
    pub latency: usize,
    /// Rows in the (truncated) detectability table.
    pub erroneous_cases: usize,
    /// The verified parity cover.
    pub cover: ParityCover,
    /// CED checker cost.
    pub cost: CedCost,
    /// LP solves used by the search.
    pub lp_solves: usize,
    /// Rounding attempts used by the search.
    pub rounding_attempts: usize,
    /// The solver-ladder rung that produced `cover`.
    pub method: LadderRung,
    /// Solver-ladder degradation trail; empty when the primary
    /// LP + rounding method ran cleanly.
    pub degradation: Vec<DegradationEvent>,
}

/// Full per-circuit experiment record (one Table-1 row).
#[derive(Debug, Clone)]
pub struct CircuitReport {
    /// Circuit name.
    pub name: String,
    /// Input bits `r`.
    pub inputs: usize,
    /// State bits `s`.
    pub state_bits: usize,
    /// Output bits.
    pub outputs: usize,
    /// Original circuit gate count.
    pub original_gates: usize,
    /// Original circuit cost (area incl. state register).
    pub original_cost: f64,
    /// Fault statistics from table construction at `p_max`.
    pub detect_stats: DetectStats,
    /// Duplication baseline cost.
    pub duplication: CedCost,
    /// One record per requested latency bound (ascending).
    pub latencies: Vec<LatencyResult>,
}

/// Pipeline failure.
#[derive(Debug)]
pub enum PipelineError {
    /// The machine is not complete/deterministic or encoding failed.
    Fsm(FsmError),
    /// Detectability construction overflowed.
    Detect(DetectError),
    /// The run's [`Budget`] interrupted the pipeline; the payload says
    /// where, and carries a resume checkpoint when one exists.
    Interrupted(Box<PipelineInterrupted>),
    /// A resume checkpoint was built from a different machine, fault
    /// list, option set or latency list.
    CheckpointMismatch,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Fsm(e) => write!(f, "fsm error: {e}"),
            PipelineError::Detect(e) => write!(f, "detectability error: {e}"),
            PipelineError::Interrupted(i) => {
                write!(f, "pipeline {}", i.interrupted)?;
                if i.checkpoint.is_some() {
                    write!(f, " (resume checkpoint available)")?;
                }
                Ok(())
            }
            PipelineError::CheckpointMismatch => write!(
                f,
                "resume checkpoint does not match this machine/options/latency list"
            ),
        }
    }
}

/// Payload of [`PipelineError::Interrupted`].
#[derive(Debug)]
pub struct PipelineInterrupted {
    /// The budget interruption that stopped the pipeline.
    pub interrupted: Interrupted,
    /// Resume state, when the pipeline stopped at a clean boundary
    /// (fault boundary during the build, latency boundary during the
    /// search). `None` when the interrupt landed mid-fault.
    pub checkpoint: Option<TableCheckpoint>,
}

impl std::error::Error for PipelineError {}

impl From<FsmError> for PipelineError {
    fn from(e: FsmError) -> PipelineError {
        PipelineError::Fsm(e)
    }
}

impl From<DetectError> for PipelineError {
    fn from(e: DetectError) -> PipelineError {
        PipelineError::Detect(e)
    }
}

/// Checkpoint-container kind tag for pipeline/table checkpoints (see
/// [`ced_runtime::encode_checkpoint`]).
pub const TABLE_CHECKPOINT_KIND: u16 = 1;

/// Resumable state of an interrupted [`run_circuit_controlled`] call.
///
/// Captures whichever phase boundary the run reached: a mid-build
/// fault-boundary checkpoint (`build`), the finished detectability
/// tables (`tables`), and the per-latency search results completed so
/// far (`completed`, with the incumbent cover threaded between
/// bounds). Resuming replays only the remaining work; because every
/// stage is deterministic given its inputs and the serialized state is
/// bit-exact, a resumed run's report equals an uninterrupted one's.
#[derive(Debug, Clone)]
pub struct TableCheckpoint {
    /// Fingerprint of (machine, options, fault list, latencies).
    fingerprint: u64,
    /// Mid-build checkpoint; `None` once the build finished.
    build: Option<BuildCheckpoint>,
    /// Finished tables + stats, one per latency (empty during build).
    tables: Vec<(DetectabilityTable, DetectStats)>,
    /// Per-latency results already searched/synthesized.
    completed: Vec<LatencyResult>,
    /// Best cover threaded into the next latency's search.
    incumbent: Option<ParityCover>,
}

impl TableCheckpoint {
    /// The input fingerprint this checkpoint binds to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Latency bounds already fully processed.
    pub fn completed_latencies(&self) -> usize {
        self.completed.len()
    }

    /// Faults already simulated by an unfinished build (`None` when
    /// the build phase is complete).
    pub fn build_progress(&self) -> Option<usize> {
        self.build.as_ref().map(|b| b.next_fault())
    }

    /// Serializes to a checkpoint payload (wrap with
    /// [`ced_runtime::encode_checkpoint`] using
    /// [`TABLE_CHECKPOINT_KIND`] before writing to disk).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.fingerprint);
        match &self.build {
            Some(b) => {
                w.bool(true);
                b.write(&mut w);
            }
            None => w.bool(false),
        }
        w.usize(self.tables.len());
        for (t, s) in &self.tables {
            t.write(&mut w);
            s.write(&mut w);
        }
        w.usize(self.completed.len());
        for l in &self.completed {
            write_latency_result(l, &mut w);
        }
        match &self.incumbent {
            Some(c) => {
                w.bool(true);
                w.u64_slice(&c.masks);
            }
            None => w.bool(false),
        }
        w.finish()
    }

    /// Deserializes a payload produced by [`TableCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on truncated or structurally invalid bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<TableCheckpoint, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let fingerprint = r.u64()?;
        let build = if r.bool()? {
            Some(BuildCheckpoint::read(&mut r)?)
        } else {
            None
        };
        let n_tables = r.usize()?;
        if n_tables > 4096 {
            return Err(CheckpointError::Corrupt("implausible table count".into()));
        }
        let mut tables = Vec::with_capacity(n_tables);
        for _ in 0..n_tables {
            let t = DetectabilityTable::read(&mut r)?;
            let s = DetectStats::read(&mut r)?;
            tables.push((t, s));
        }
        let n_completed = r.usize()?;
        if n_completed > 4096 {
            return Err(CheckpointError::Corrupt("implausible result count".into()));
        }
        let mut completed = Vec::with_capacity(n_completed);
        for _ in 0..n_completed {
            completed.push(read_latency_result(&mut r)?);
        }
        let incumbent = if r.bool()? {
            Some(ParityCover::new(r.u64_slice()?))
        } else {
            None
        };
        r.expect_end()?;
        Ok(TableCheckpoint {
            fingerprint,
            build,
            tables,
            completed,
            incumbent,
        })
    }
}

fn write_latency_result(l: &LatencyResult, w: &mut ByteWriter) {
    w.usize(l.latency);
    w.usize(l.erroneous_cases);
    w.u64_slice(&l.cover.masks);
    w.usize(l.cost.parity_functions);
    w.usize(l.cost.gates);
    w.f64(l.cost.area);
    w.usize(l.cost.flip_flops);
    w.usize(l.lp_solves);
    w.usize(l.rounding_attempts);
    w.u8(rung_tag(l.method));
    write_degradation(&l.degradation, w);
}

fn write_degradation(events: &[DegradationEvent], w: &mut ByteWriter) {
    w.usize(events.len());
    for e in events {
        w.u8(rung_tag(e.from));
        w.u8(rung_tag(e.to));
        match &e.reason {
            DegradationReason::RoundingExhausted { queries } => {
                w.u8(0);
                w.usize(*queries);
            }
            DegradationReason::LpNumericalFailure { queries } => {
                w.u8(1);
                w.usize(*queries);
            }
            DegradationReason::BudgetExceeded => w.u8(2),
            DegradationReason::RoundingDisabled => w.u8(3),
            DegradationReason::CoverUnverified { uncovered_rows } => {
                w.u8(4);
                w.usize(*uncovered_rows);
            }
        }
        w.str(&e.detail);
    }
}

fn read_degradation(r: &mut ByteReader<'_>) -> Result<Vec<DegradationEvent>, CheckpointError> {
    let n_events = r.usize()?;
    if n_events > 65_536 {
        return Err(CheckpointError::Corrupt("implausible event count".into()));
    }
    let mut degradation = Vec::with_capacity(n_events);
    for _ in 0..n_events {
        let from = rung_from_tag(r.u8()?)?;
        let to = rung_from_tag(r.u8()?)?;
        let reason = match r.u8()? {
            0 => DegradationReason::RoundingExhausted {
                queries: r.usize()?,
            },
            1 => DegradationReason::LpNumericalFailure {
                queries: r.usize()?,
            },
            2 => DegradationReason::BudgetExceeded,
            3 => DegradationReason::RoundingDisabled,
            4 => DegradationReason::CoverUnverified {
                uncovered_rows: r.usize()?,
            },
            t => {
                return Err(CheckpointError::Corrupt(format!(
                    "unknown degradation reason tag {t}"
                )))
            }
        };
        let detail = r.str()?.to_string();
        degradation.push(DegradationEvent {
            from,
            to,
            reason,
            detail,
        });
    }
    Ok(degradation)
}

fn read_latency_result(r: &mut ByteReader<'_>) -> Result<LatencyResult, CheckpointError> {
    let latency = r.usize()?;
    let erroneous_cases = r.usize()?;
    let cover = ParityCover::new(r.u64_slice()?);
    let cost = CedCost {
        parity_functions: r.usize()?,
        gates: r.usize()?,
        area: r.f64()?,
        flip_flops: r.usize()?,
    };
    let lp_solves = r.usize()?;
    let rounding_attempts = r.usize()?;
    let method = rung_from_tag(r.u8()?)?;
    let degradation = read_degradation(r)?;
    Ok(LatencyResult {
        latency,
        erroneous_cases,
        cover,
        cost,
        lp_solves,
        rounding_attempts,
        method,
        degradation,
    })
}

fn rung_tag(r: LadderRung) -> u8 {
    match r {
        LadderRung::LpRounding => 0,
        LadderRung::ReseededRetry => 1,
        LadderRung::GreedyCover => 2,
        LadderRung::Duplication => 3,
        LadderRung::Incumbent => 4,
    }
}

fn rung_from_tag(tag: u8) -> Result<LadderRung, CheckpointError> {
    Ok(match tag {
        0 => LadderRung::LpRounding,
        1 => LadderRung::ReseededRetry,
        2 => LadderRung::GreedyCover,
        3 => LadderRung::Duplication,
        4 => LadderRung::Incumbent,
        t => {
            return Err(CheckpointError::Corrupt(format!(
                "unknown ladder rung tag {t}"
            )))
        }
    })
}

/// Artifact-store stage name for synthesized circuits (see
/// [`prepare_machine_stored`]).
pub const SYNTH_STAGE: &str = "synth";

/// Artifact-store stage name for per-latency search results (cover +
/// CED cost); keyed per latency bound so a prior sweep serves any
/// subset of its bounds. Per-machine, unlike [`COVER_STAGE`], because
/// the stored [`LatencyResult`] embeds circuit-derived CED costs.
pub const SEARCH_STAGE: &str = "search";

/// Artifact-store stage name for circuit-*independent* parity-cover
/// search results ([`minimize_parity_functions_stored`]), keyed by the
/// detectability-table bytes plus the search options alone. Two
/// machines (or two edits of one machine) whose tables come out
/// byte-identical share the entry — the stage that makes an
/// incremental `ced check --baseline` skip Algorithm 1 outright when
/// an edit turns out not to change the table.
pub const COVER_STAGE: &str = "cover";

fn write_search_outcome(o: &SearchOutcome, w: &mut ByteWriter) {
    w.u64_slice(&o.cover.masks);
    w.usize(o.lp_solves);
    w.usize(o.rounding_attempts);
    w.usize(o.feasibility_trace.len());
    for &(q, feasible) in &o.feasibility_trace {
        w.usize(q);
        w.bool(feasible);
    }
    w.u8(rung_tag(o.method));
    write_degradation(&o.degradation, w);
}

fn read_search_outcome(r: &mut ByteReader<'_>) -> Result<SearchOutcome, CheckpointError> {
    let cover = ParityCover::new(r.u64_slice()?);
    let lp_solves = r.usize()?;
    let rounding_attempts = r.usize()?;
    let n_trace = r.usize()?;
    if n_trace > 1_000_000 {
        return Err(CheckpointError::Corrupt("implausible trace length".into()));
    }
    let mut feasibility_trace = Vec::with_capacity(n_trace);
    for _ in 0..n_trace {
        let q = r.usize()?;
        let feasible = r.bool()?;
        feasibility_trace.push((q, feasible));
    }
    let method = rung_from_tag(r.u8()?)?;
    let degradation = read_degradation(r)?;
    let q = cover.masks.len();
    Ok(SearchOutcome {
        cover,
        q,
        lp_solves,
        rounding_attempts,
        feasibility_trace,
        method,
        degradation,
    })
}

/// [`minimize_parity_functions`] with [`COVER_STAGE`] memoization.
///
/// The search is deterministic given the table and options (the
/// rounding RNG is seeded from `ced.seed`), so a hit is byte-identical
/// to a recompute; belt-and-braces, a cached cover that fails
/// [`DetectabilityTable::all_covered`] is dropped as corrupt and
/// recomputed. Searches under a wall-clock budget are *not* memoized —
/// their degradation depends on machine load, and caching a
/// timing-dependent outcome would let store warmth change results.
pub fn minimize_parity_functions_stored(
    table: &DetectabilityTable,
    ced: &CedOptions,
    store: Option<&Store>,
) -> SearchOutcome {
    let Some(store) = store else {
        return minimize_parity_functions(table, ced);
    };
    if ced.time_budget.is_some() {
        return minimize_parity_functions(table, ced);
    }
    let fp = {
        let mut bytes = table.to_bytes();
        bytes.extend_from_slice(b"cover");
        bytes.extend_from_slice(format!("{ced:?}").as_bytes());
        fnv1a64(&bytes)
    };
    if let Some(outcome) = store.get_typed(COVER_STAGE, fp, |bytes| {
        let mut r = ByteReader::new(bytes);
        let o = read_search_outcome(&mut r)?;
        r.expect_end()?;
        Ok(o)
    }) {
        if table.all_covered(&outcome.cover.masks) {
            return outcome;
        }
        store.note_corrupt(COVER_STAGE, fp);
    }
    let outcome = minimize_parity_functions(table, ced);
    let mut w = ByteWriter::new();
    write_search_outcome(&outcome, &mut w);
    store.put_artifact(COVER_STAGE, fp, &w.finish());
    outcome
}

/// Serializes a synthesized circuit bit-exactly (interface dimensions
/// plus the full netlist, including unused fanin slots) for the
/// `synth`-stage artifact.
pub fn write_circuit(circuit: &FsmCircuit, w: &mut ByteWriter) {
    w.str(circuit.name());
    w.usize(circuit.num_inputs());
    w.usize(circuit.state_bits());
    w.usize(circuit.num_outputs());
    w.u64(circuit.reset_code());
    let netlist = circuit.netlist();
    let gates = netlist.gates();
    w.usize(netlist.num_inputs());
    w.usize(gates.len());
    for g in gates {
        w.u8(g.kind.tag());
        w.u32(g.fanin[0].0);
        w.u32(g.fanin[1].0);
    }
    w.usize(netlist.outputs().len());
    for o in netlist.outputs() {
        w.u32(o.0);
    }
}

/// Deserializes a circuit written by [`write_circuit`].
///
/// Every structural invariant [`FsmCircuit::from_parts`] would assert
/// is pre-validated here, so corrupt artifacts surface as typed
/// [`CheckpointError::Corrupt`] values — never panics.
///
/// # Errors
///
/// [`CheckpointError`] on truncated or structurally invalid bytes.
pub fn read_circuit(r: &mut ByteReader<'_>) -> Result<FsmCircuit, CheckpointError> {
    let name = r.str()?.to_string();
    let num_inputs = r.usize()?;
    let state_bits = r.usize()?;
    let num_outputs = r.usize()?;
    let reset_code = r.u64()?;
    let net_inputs = r.usize()?;
    let n_gates = r.usize()?;
    if n_gates > 16_000_000 {
        return Err(CheckpointError::Corrupt("implausible gate count".into()));
    }
    let mut gates = Vec::with_capacity(n_gates);
    for _ in 0..n_gates {
        let tag = r.u8()?;
        let kind = GateKind::from_tag(tag)
            .ok_or_else(|| CheckpointError::Corrupt(format!("unknown gate kind tag {tag}")))?;
        let a = NetId(r.u32()?);
        let b = NetId(r.u32()?);
        gates.push(Gate {
            kind,
            fanin: [a, b],
        });
    }
    let n_outputs = r.usize()?;
    if n_outputs > 16_000_000 {
        return Err(CheckpointError::Corrupt("implausible output count".into()));
    }
    let mut outputs = Vec::with_capacity(n_outputs);
    for _ in 0..n_outputs {
        outputs.push(NetId(r.u32()?));
    }
    let netlist =
        Netlist::from_parts(net_inputs, gates, outputs).map_err(CheckpointError::Corrupt)?;
    if netlist.num_inputs() != num_inputs + state_bits
        || netlist.num_outputs() != state_bits + num_outputs
        || state_bits >= 64
        || reset_code >= (1u64 << state_bits)
    {
        return Err(CheckpointError::Corrupt(
            "circuit interface does not match its netlist".into(),
        ));
    }
    Ok(FsmCircuit::from_parts(
        netlist,
        num_inputs,
        state_bits,
        num_outputs,
        reset_code,
        name,
    ))
}

/// Budget, resume state and checkpoint hooks for a controlled pipeline
/// run (the pipeline-level analogue of
/// [`ced_sim::detect::BuildControl`]).
pub struct PipelineControl<'a> {
    /// The budget charged across the build and every search.
    pub budget: &'a Budget,
    /// Resume from a previous run's checkpoint.
    pub resume: Option<TableCheckpoint>,
    /// Emit a checkpoint every this many completed faults during the
    /// build phase (0 = only at phase boundaries).
    pub checkpoint_every: usize,
    /// Checkpoint sink (e.g. write-to-disk); also invoked at each
    /// phase boundary (build finished, each latency finished).
    pub on_checkpoint: Option<&'a mut dyn FnMut(&TableCheckpoint)>,
    /// Worker pool handed to the build phase's table extraction (see
    /// [`ced_sim::detect::BuildControl::pool`]); `None` runs strictly
    /// serial. Never part of the pipeline fingerprint: job counts
    /// change wall-clock, not results.
    pub pool: Option<&'a ParExec>,
    /// Content-addressed artifact store memoizing the `synth`, `tensor`
    /// (whole tables plus per-fault-cone `tensor-frag`/`tensor-comp`
    /// records) and `search` stages. Like `pool`, never part of any
    /// fingerprint: a cache hit returns bytes a prior run proved
    /// identical to a recompute, so presence or absence of the store
    /// cannot change results.
    pub store: Option<&'a Store>,
    /// Machine-diff seed from [`delta_seed`]: lets the tensor build
    /// serve unchanged fault cones from the *baseline* machine's
    /// fragments. Never part of any fingerprint — a promoted fragment
    /// is provably byte-identical to a rebuild.
    pub delta: Option<DeltaSeed>,
}

impl<'a> PipelineControl<'a> {
    /// A control with the given budget and no resume/checkpoint hooks.
    pub fn new(budget: &'a Budget) -> PipelineControl<'a> {
        PipelineControl {
            budget,
            resume: None,
            checkpoint_every: 0,
            on_checkpoint: None,
            pool: None,
            store: None,
            delta: None,
        }
    }
}

/// Synthesizes a symbolic machine with the pipeline's settings.
///
/// Incomplete machines are completed with don't-care self-loops first
/// (the usual convention for partially specified MCNC benchmarks).
///
/// # Errors
///
/// Propagates FSM validation failures.
pub fn synthesize_circuit(
    fsm: &Fsm,
    options: &PipelineOptions,
) -> Result<FsmCircuit, PipelineError> {
    Ok(prepare_machine(fsm, options)?.1)
}

/// Completes, encodes and synthesizes a machine, returning both the
/// encoded symbolic form (needed e.g. for the transition-cube input
/// model) and the gate-level circuit.
///
/// # Errors
///
/// Propagates FSM validation failures.
pub fn prepare_machine(
    fsm: &Fsm,
    options: &PipelineOptions,
) -> Result<(EncodedFsm, FsmCircuit), PipelineError> {
    prepare_machine_stored(fsm, options, None)
}

/// [`prepare_machine`] with `synth`-stage memoization: the synthesized
/// circuit is keyed by the completed machine's canonical KISS2 text
/// plus every synthesis-affecting option, so repeat runs skip the
/// two-level minimization entirely. A hit is byte-identical to a
/// recompute because synthesis is deterministic and [`write_circuit`]
/// round-trips the netlist bit-exactly.
///
/// # Errors
///
/// Propagates FSM validation failures.
pub fn prepare_machine_stored(
    fsm: &Fsm,
    options: &PipelineOptions,
    store: Option<&Store>,
) -> Result<(EncodedFsm, FsmCircuit), PipelineError> {
    let mut fsm = fsm.clone();
    if fsm.check_complete().is_err() {
        fsm.complete_with_self_loops();
    }
    let enc = assign(&fsm, options.encoding);
    let Some(store) = store else {
        let encoded = EncodedFsm::new(fsm, enc)?;
        let circuit =
            encoded.synthesize_with_sharing(&options.minimize, !options.isolate_output_logic);
        return Ok((encoded, circuit));
    };
    let fp = {
        let mut w = ByteWriter::new();
        w.str(fsm.name());
        w.str(&ced_fsm::kiss::to_string(&fsm));
        w.str(&format!("{:?}", options.encoding));
        w.str(&format!("{:?}", options.minimize));
        w.bool(options.isolate_output_logic);
        fnv1a64(&w.finish())
    };
    let encoded = EncodedFsm::new(fsm, enc)?;
    if let Some(circuit) = store.get_typed(SYNTH_STAGE, fp, |bytes| {
        let mut r = ByteReader::new(bytes);
        let c = read_circuit(&mut r)?;
        r.expect_end()?;
        Ok(c)
    }) {
        // Belt-and-braces against a mis-filed artifact that decoded
        // cleanly: the cached interface must match this machine.
        if circuit.num_inputs() == encoded.num_inputs()
            && circuit.state_bits() == encoded.state_bits()
            && circuit.num_outputs() == encoded.num_outputs()
            && circuit.reset_code() == encoded.reset_code()
        {
            return Ok((encoded, circuit));
        }
        store.note_corrupt(SYNTH_STAGE, fp);
    }
    let circuit = encoded.synthesize_with_sharing(&options.minimize, !options.isolate_output_logic);
    let mut w = ByteWriter::new();
    write_circuit(&circuit, &mut w);
    store.put_artifact(SYNTH_STAGE, fp, &w.finish());
    Ok((encoded, circuit))
}

/// Builds the [`InputModel`] for a machine under the chosen granularity.
///
/// For [`InputGranularity::TransitionCubes`], each state contributes
/// one representative minterm per transition cube (the cube's smallest
/// covered input); codes without a symbolic state fall back to the
/// union of all representatives.
pub fn build_input_model(
    fsm: &Fsm,
    encoding: &StateEncoding,
    granularity: InputGranularity,
) -> InputModel {
    match granularity {
        InputGranularity::Exhaustive => InputModel::Exhaustive,
        InputGranularity::TransitionCubes => {
            let s = encoding.bits();
            let mut by_state: Vec<Vec<u64>> = vec![Vec::new(); 1 << s];
            let mut fallback: Vec<u64> = Vec::new();
            for t in fsm.transitions() {
                let mut rep = 0u64;
                for v in 0..t.input.width() {
                    if t.input.literal(v) == Literal::Positive {
                        rep |= 1 << v;
                    }
                }
                let code = encoding.code(t.from) as usize;
                by_state[code].push(rep);
                fallback.push(rep);
            }
            for v in by_state.iter_mut() {
                v.sort_unstable();
                v.dedup();
            }
            fallback.sort_unstable();
            fallback.dedup();
            if fallback.is_empty() {
                fallback.push(0);
            }
            InputModel::Restricted { by_state, fallback }
        }
    }
}

/// The circuit's fault list under the pipeline's settings.
///
/// Multi-bit cluster models always use the full (uncollapsed) list:
/// structural collapsing merges faults whose *single-fault* behaviour
/// coincides, but each net seeds a different spatial neighbourhood, so
/// a collapsed representative would silently drop distinct clusters.
pub fn fault_list(circuit: &FsmCircuit, options: &PipelineOptions) -> Vec<Fault> {
    let multibit = matches!(options.fault_model, FaultModel::MultiBitCluster { .. });
    if options.full_fault_list || multibit {
        all_faults(circuit.netlist())
    } else {
        collapsed_faults(circuit.netlist())
    }
}

/// Classification of an edit between two parsed KISS2 machines — the
/// front-end of the incremental re-analysis loop. Computed on the
/// *completed* machines (don't-care self-loops added), i.e. exactly
/// what synthesis sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineDelta {
    /// The completed machines are identical transition-for-transition.
    Identical,
    /// Only output values changed, on these transition indices (into
    /// the new machine's completed transition list). State set, reset,
    /// input cubes and next-states all agree — the class of edits whose
    /// fault cones can be diffed precisely.
    OutputOnly {
        /// Indices of the transitions whose outputs changed.
        transitions: Vec<usize>,
    },
    /// The edit touches synthesis structure (interface, state set,
    /// reset, transition connectivity): per-cone diffing falls back to
    /// the whole-stage path.
    Structural {
        /// Human-readable reason, for the dirty-cone summary line.
        reason: String,
    },
}

/// Classifies the edit from `old` to `new` (see [`MachineDelta`]).
pub fn machine_delta(old: &Fsm, new: &Fsm) -> MachineDelta {
    let structural = |reason: &str| MachineDelta::Structural {
        reason: reason.to_string(),
    };
    if old.num_inputs() != new.num_inputs() || old.num_outputs() != new.num_outputs() {
        return structural("interface width changed");
    }
    if old.state_names() != new.state_names() {
        return structural("state set changed");
    }
    let mut old = old.clone();
    let mut new = new.clone();
    if old.check_complete().is_err() {
        old.complete_with_self_loops();
    }
    if new.check_complete().is_err() {
        new.complete_with_self_loops();
    }
    if old.reset_state() != new.reset_state() {
        return structural("reset state changed");
    }
    if old.transitions().len() != new.transitions().len() {
        return structural("transition count changed");
    }
    let mut transitions = Vec::new();
    for (i, (t, u)) in old.transitions().iter().zip(new.transitions()).enumerate() {
        if t.input != u.input || t.from != u.from || t.to != u.to {
            return structural("transition connectivity changed");
        }
        if t.output != u.output {
            transitions.push(i);
        }
    }
    if transitions.is_empty() {
        MachineDelta::Identical
    } else {
        MachineDelta::OutputOnly { transitions }
    }
}

/// Builds the [`DeltaSeed`] that lets a tensor build over `new` promote
/// per-fault-cone fragments stored by a build over `old`, or `None`
/// when the edit's effect on the synthesized machines puts promotion
/// out of reach (the build then runs the ordinary whole-stage path).
///
/// Soundness gate, checked on the *synthesized* machines rather than
/// the symbolic ones (resynthesis may reshape logic even for edits
/// [`machine_delta`] calls output-only):
///
/// * identical interface dimensions and reset code;
/// * identical next-state maps at every code and input — so the two
///   machines reach the same codes and every trajectory the old
///   enumeration walked exists verbatim in the new machine;
/// * byte-identical input models — so the enumeration explores the
///   same inputs at every state.
///
/// What may differ is the good *response* map; the seed records the
/// codes where it does ([`DeltaSeed::changed_codes`]), and the build
/// only promotes a fragment whose recorded good-state footprint avoids
/// all of them. `detect` is the new build's option set (its latency is
/// irrelevant here; contexts are latency-free).
pub fn delta_seed(
    old: &EncodedFsm,
    old_circuit: &FsmCircuit,
    new_circuit: &FsmCircuit,
    detect: &DetectOptions,
    granularity: InputGranularity,
) -> Option<DeltaSeed> {
    if old_circuit.num_inputs() != new_circuit.num_inputs()
        || old_circuit.state_bits() != new_circuit.state_bits()
        || old_circuit.num_outputs() != new_circuit.num_outputs()
        || old_circuit.reset_code() != new_circuit.reset_code()
    {
        return None;
    }
    let old_model = build_input_model(old.fsm(), old.encoding(), granularity);
    if old_model != detect.input_model {
        return None;
    }
    let old_good = TransitionTables::good(old_circuit);
    let new_good = TransitionTables::good(new_circuit);
    let mut changed_codes: Vec<u64> = Vec::new();
    for code in 0..(1u64 << old_circuit.state_bits()) {
        let mut changed = false;
        for input in 0..(1u64 << old_circuit.num_inputs()) {
            if old_good.next(code, input) != new_good.next(code, input) {
                return None;
            }
            changed |= old_good.response(code, input) != new_good.response(code, input);
        }
        if changed {
            changed_codes.push(code);
        }
    }
    Some(DeltaSeed {
        old_context: fragment_context_bytes(&old_good, detect),
        changed_codes,
    })
}

/// Runs the complete experiment for one machine over several latency
/// bounds (ascending order recommended; the detectability table is
/// built once at the maximum and truncated for the rest).
///
/// # Errors
///
/// Propagates FSM validation and table-construction failures.
pub fn run_circuit(
    fsm: &Fsm,
    latencies: &[usize],
    options: &PipelineOptions,
    library: &CellLibrary,
) -> Result<CircuitReport, PipelineError> {
    let budget = Budget::unlimited();
    run_circuit_controlled(
        fsm,
        latencies,
        options,
        library,
        PipelineControl::new(&budget),
    )
}

/// [`run_circuit`] under a [`Budget`], with optional resume from and
/// emission of [`TableCheckpoint`]s.
///
/// Checkpoints are emitted at every phase boundary (build finished,
/// each latency's search finished) and — when
/// [`PipelineControl::checkpoint_every`] is nonzero — every that many
/// faults during the build. A resumed run replays only the remaining
/// faults and latency bounds; every stage is deterministic given its
/// inputs, so the final report is bit-identical to an uninterrupted
/// run with the same options and seed.
///
/// # Errors
///
/// As [`run_circuit`], plus [`PipelineError::Interrupted`] (budget
/// exhausted or token cancelled; carries a resume checkpoint when the
/// interrupt landed on a clean boundary) and
/// [`PipelineError::CheckpointMismatch`] (resume checkpoint built from
/// different inputs).
pub fn run_circuit_controlled(
    fsm: &Fsm,
    latencies: &[usize],
    options: &PipelineOptions,
    library: &CellLibrary,
    mut control: PipelineControl<'_>,
) -> Result<CircuitReport, PipelineError> {
    let (encoded, circuit) = prepare_machine_stored(fsm, options, control.store)?;
    let input_model =
        build_input_model(encoded.fsm(), encoded.encoding(), options.input_granularity);
    let faults = fault_list(&circuit, options);
    let p_max = latencies.iter().copied().max().unwrap_or(1);
    let max_rows = if options.max_rows == 0 {
        2_000_000
    } else {
        options.max_rows
    };
    let fingerprint = pipeline_fingerprint(&circuit, &faults, options, latencies);

    let mut resume_build: Option<BuildCheckpoint> = None;
    let mut tables: Vec<(DetectabilityTable, DetectStats)> = Vec::new();
    let mut completed: Vec<LatencyResult> = Vec::new();
    let mut incumbent: Option<ParityCover> = None;
    if let Some(ckpt) = control.resume.take() {
        let prefix_ok = ckpt
            .completed
            .iter()
            .zip(latencies)
            .all(|(l, &p)| l.latency == p);
        if ckpt.fingerprint != fingerprint
            || (!ckpt.tables.is_empty() && ckpt.tables.len() != latencies.len())
            || ckpt.completed.len() > latencies.len()
            || !prefix_ok
            || (ckpt.tables.is_empty() && !ckpt.completed.is_empty())
        {
            return Err(PipelineError::CheckpointMismatch);
        }
        resume_build = ckpt.build;
        tables = ckpt.tables;
        completed = ckpt.completed;
        incumbent = ckpt.incumbent;
    }

    // Phase 1: one shared enumeration pass for all bounds (the
    // per-fault table extraction dominates on large circuits; one
    // dominance-reduced table per bound, since reduction depends on
    // the bound).
    if tables.is_empty() && !latencies.is_empty() {
        let build_result = {
            let sink = &mut control.on_checkpoint;
            let mut wrap = |b: &BuildCheckpoint| {
                if let Some(cb) = sink.as_mut() {
                    cb(&TableCheckpoint {
                        fingerprint,
                        build: Some(b.clone()),
                        tables: Vec::new(),
                        completed: Vec::new(),
                        incumbent: None,
                    });
                }
            };
            DetectabilityTable::build_many_controlled(
                &circuit,
                &faults,
                &DetectOptions {
                    latency: p_max,
                    max_rows,
                    semantics: options.semantics,
                    input_model,
                    reduce: true,
                    fault_model: options.fault_model,
                },
                latencies,
                BuildControl {
                    budget: control.budget,
                    resume: resume_build.take(),
                    checkpoint_every: control.checkpoint_every,
                    on_checkpoint: Some(&mut wrap),
                    pool: control.pool,
                    store: control.store,
                    delta: control.delta.take(),
                },
            )
        };
        match build_result {
            Ok(built) => tables = built,
            Err(DetectError::Interrupted {
                interrupted,
                checkpoint,
            }) => {
                return Err(PipelineError::Interrupted(Box::new(PipelineInterrupted {
                    interrupted,
                    checkpoint: checkpoint.map(|b| TableCheckpoint {
                        fingerprint,
                        build: Some(*b),
                        tables: Vec::new(),
                        completed: Vec::new(),
                        incumbent: None,
                    }),
                })));
            }
            Err(DetectError::CheckpointMismatch) => return Err(PipelineError::CheckpointMismatch),
            Err(e) => return Err(PipelineError::Detect(e)),
        }
        if let Some(cb) = control.on_checkpoint.as_mut() {
            cb(&TableCheckpoint {
                fingerprint,
                build: None,
                tables: tables.clone(),
                completed: completed.clone(),
                incumbent: incumbent.clone(),
            });
        }
    }

    // Phase 2: Algorithm 1 + hardware synthesis per latency bound,
    // skipping bounds a resumed checkpoint already finished.
    //
    // Everything search-affecting except the per-latency inputs: the
    // exact circuit (the CED predictor is resynthesized from it), the
    // solver and synthesis knobs, and the cell library the cost is
    // priced against. The table bytes and incumbent are appended per
    // bound, so each latency gets its own store key.
    let search_base: Option<Vec<u8>> = control.store.map(|_| {
        let mut w = ByteWriter::new();
        write_circuit(&circuit, &mut w);
        w.str(&format!("{:?}", options.minimize));
        let ced = &options.ced;
        w.usize(ced.iterations);
        w.str(&format!("{:?}", ced.form));
        w.u64(ced.seed);
        w.usize(ced.lp_row_cap);
        w.usize(ced.refinement_rounds);
        w.str(&format!("{:?}", ced.objective));
        match ced.max_lp_solves {
            Some(v) => {
                w.bool(true);
                w.usize(v);
            }
            None => w.bool(false),
        }
        w.str(&format!("{library:?}"));
        w.finish()
    });
    let mut stats = DetectStats::default();
    let mut latency_results = completed;
    for i in 0..latencies.len().min(tables.len()) {
        let p = latencies[i];
        if p == p_max {
            stats = tables[i].1;
        }
        if i < latency_results.len() {
            continue;
        }
        let search_fp = search_base.as_ref().map(|base| {
            let mut w = ByteWriter::new();
            w.bytes(base);
            w.usize(p);
            tables[i].0.write(&mut w);
            match &incumbent {
                Some(c) => {
                    w.bool(true);
                    w.u64_slice(&c.masks);
                }
                None => w.bool(false),
            }
            fnv1a64(&w.finish())
        });
        if let (Some(store), Some(fp)) = (control.store, search_fp) {
            let cached = store.get_typed(SEARCH_STAGE, fp, |bytes| {
                let mut r = ByteReader::new(bytes);
                let result = read_latency_result(&mut r)?;
                r.expect_end()?;
                if result.latency != p {
                    return Err(CheckpointError::Corrupt(
                        "search artifact is for a different latency bound".into(),
                    ));
                }
                Ok(result)
            });
            if let Some(result) = cached {
                // A decoded artifact whose cover fails verification
                // against *this* table cannot be a replay of this
                // search — treat it as corruption, not as a result.
                if tables[i].0.all_covered(&result.cover.masks) {
                    incumbent = Some(result.cover.clone());
                    latency_results.push(result);
                    if let Some(cb) = control.on_checkpoint.as_mut() {
                        cb(&TableCheckpoint {
                            fingerprint,
                            build: None,
                            tables: tables.clone(),
                            completed: latency_results.clone(),
                            incumbent: incumbent.clone(),
                        });
                    }
                    continue;
                }
                store.note_corrupt(SEARCH_STAGE, fp);
            }
        }
        let outcome = match crate::search::minimize_interruptible(
            &tables[i].0,
            &options.ced,
            incumbent.as_ref(),
            control.budget,
        ) {
            Ok(o) => o,
            Err(interrupted) => {
                return Err(PipelineError::Interrupted(Box::new(PipelineInterrupted {
                    interrupted,
                    checkpoint: Some(TableCheckpoint {
                        fingerprint,
                        build: None,
                        tables,
                        completed: latency_results,
                        incumbent,
                    }),
                })));
            }
        };
        incumbent = Some(outcome.cover.clone());
        debug_assert!(tables[i].0.all_covered(&outcome.cover.masks));
        let ced = synthesize_ced(&circuit, &outcome.cover, p, &options.minimize);
        latency_results.push(LatencyResult {
            latency: p,
            erroneous_cases: tables[i].0.len(),
            cover: outcome.cover,
            cost: ced.cost(library),
            lp_solves: outcome.lp_solves,
            rounding_attempts: outcome.rounding_attempts,
            method: outcome.method,
            degradation: outcome.degradation,
        });
        if let (Some(store), Some(fp)) = (control.store, search_fp) {
            let result = latency_results.last().expect("just pushed");
            // A result degraded by budget exhaustion depends on
            // wall-clock, not just the fingerprinted inputs; caching it
            // would replay the degradation into untimed reruns.
            let budget_free = result
                .degradation
                .iter()
                .all(|e| !matches!(e.reason, DegradationReason::BudgetExceeded));
            if budget_free {
                let mut w = ByteWriter::new();
                write_latency_result(result, &mut w);
                store.put_artifact(SEARCH_STAGE, fp, &w.finish());
            }
        }
        if let Some(cb) = control.on_checkpoint.as_mut() {
            cb(&TableCheckpoint {
                fingerprint,
                build: None,
                tables: tables.clone(),
                completed: latency_results.clone(),
                incumbent: incumbent.clone(),
            });
        }
    }

    Ok(CircuitReport {
        name: circuit.name().to_string(),
        inputs: circuit.num_inputs(),
        state_bits: circuit.state_bits(),
        outputs: circuit.num_outputs(),
        original_gates: circuit.gate_count(),
        original_cost: circuit.sequential_area(library),
        detect_stats: stats,
        duplication: duplication_cost(&circuit, library),
        latencies: latency_results,
    })
}

/// Fingerprint of everything that determines a pipeline run's results:
/// the synthesized circuit (structure, not just name), the fault list,
/// the deterministic option knobs and the latency list. Wall-clock
/// budgets are deliberately excluded — they change when a run resumes
/// without changing what any completed stage produced.
fn pipeline_fingerprint(
    circuit: &FsmCircuit,
    faults: &[Fault],
    options: &PipelineOptions,
    latencies: &[usize],
) -> u64 {
    let mut w = ByteWriter::new();
    w.str(circuit.name());
    w.usize(circuit.num_inputs());
    w.usize(circuit.state_bits());
    w.usize(circuit.num_outputs());
    let netlist = circuit.netlist();
    let gates = netlist.gates();
    w.usize(gates.len());
    for g in gates {
        w.str(&format!("{:?}", g.kind));
        for k in 0..g.kind.arity() {
            w.usize(g.fanin[k].index());
        }
    }
    for o in netlist.outputs() {
        w.usize(o.index());
    }
    w.usize(faults.len());
    for f in faults {
        w.usize(f.net.index());
        w.bool(f.stuck_at);
    }
    w.bool(options.full_fault_list);
    w.usize(options.max_rows);
    w.bool(options.isolate_output_logic);
    w.str(&format!("{:?}", options.semantics));
    w.str(&format!("{:?}", options.input_granularity));
    w.str(&format!("{:?}", options.encoding));
    w.str(&format!("{:?}", options.minimize));
    let ced = &options.ced;
    w.usize(ced.iterations);
    w.str(&format!("{:?}", ced.form));
    w.u64(ced.seed);
    w.usize(ced.lp_row_cap);
    w.usize(ced.refinement_rounds);
    w.str(&format!("{:?}", ced.objective));
    match ced.max_lp_solves {
        Some(v) => {
            w.bool(true);
            w.usize(v);
        }
        None => w.bool(false),
    }
    w.usize(latencies.len());
    for &p in latencies {
        w.usize(p);
    }
    // Appended only for non-permanent models so every pre-model
    // checkpoint fingerprint stays valid (byte-identity guarantee).
    if options.fault_model != FaultModel::PermanentStuckAt {
        w.str("fault-model");
        options.fault_model.write(&mut w);
    }
    fnv1a64(&w.finish())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::suite;

    #[test]
    fn permanent_debug_rendering_is_model_free() {
        // The stage fingerprints and the fleet handshake hash this
        // Debug output; the permanent default must render exactly as it
        // did before the fault-model field existed.
        let opts = PipelineOptions::paper_defaults();
        assert!(!format!("{opts:?}").contains("fault_model"));
        let mut transient = opts.clone();
        transient.fault_model = FaultModel::TransientSeu { duration: 4 };
        assert!(format!("{transient:?}").contains("fault_model"));
        let mut intermittent = opts.clone();
        intermittent.fault_model = FaultModel::Intermittent { period: 3 };
        assert_ne!(format!("{transient:?}"), format!("{intermittent:?}"));
    }

    #[test]
    fn multibit_model_forces_full_fault_list() {
        let fsm = suite::sequence_detector();
        let opts = PipelineOptions::paper_defaults();
        let (_, circuit) = prepare_machine(&fsm, &opts).unwrap();
        let collapsed = fault_list(&circuit, &opts);
        let mut multibit = opts.clone();
        multibit.fault_model = FaultModel::MultiBitCluster { radius: 1 };
        let full = fault_list(&circuit, &multibit);
        assert_eq!(full, all_faults(circuit.netlist()));
        assert!(full.len() >= collapsed.len());
    }

    #[test]
    fn full_pipeline_on_small_machine() {
        let fsm = suite::sequence_detector();
        let report = run_circuit(
            &fsm,
            &[1, 2],
            &PipelineOptions::paper_defaults(),
            &CellLibrary::new(),
        )
        .unwrap();
        assert_eq!(report.latencies.len(), 2);
        assert!(report.original_gates > 0);
        assert!(report.original_cost > 0.0);
        let p1 = &report.latencies[0];
        let p2 = &report.latencies[1];
        assert!(!p1.cover.is_empty());
        // Latency can only help (or tie) the parity-function count.
        assert!(p2.cover.len() <= p1.cover.len());
        // And the parity method uses at most as many functions as
        // duplication.
        assert!(p1.cover.len() <= report.duplication.parity_functions);
    }

    #[test]
    fn incomplete_machines_are_completed() {
        let mut fsm = ced_fsm::Fsm::new("partial", 1, 1);
        let a = fsm.add_state("a");
        let b = fsm.add_state("b");
        fsm.add_transition("1".parse().unwrap(), a, b, vec![ced_fsm::OutputValue::One])
            .unwrap();
        fsm.add_transition("1".parse().unwrap(), b, a, vec![ced_fsm::OutputValue::Zero])
            .unwrap();
        let report = run_circuit(
            &fsm,
            &[1],
            &PipelineOptions::paper_defaults(),
            &CellLibrary::new(),
        )
        .unwrap();
        assert_eq!(report.inputs, 1);
    }

    #[test]
    fn transition_cube_input_model_has_per_state_representatives() {
        let fsm = suite::worked_example();
        let options = PipelineOptions::paper_defaults();
        let (encoded, _) = prepare_machine(&fsm, &options).unwrap();
        let model = build_input_model(
            encoded.fsm(),
            encoded.encoding(),
            InputGranularity::TransitionCubes,
        );
        match model {
            InputModel::Restricted { by_state, fallback } => {
                // Every symbolic state code has representatives; the
                // worked example has 2 transitions per state.
                for state in 0..encoded.fsm().num_states() {
                    let code = encoded.encoding().code(ced_fsm::StateId(state as u32));
                    assert_eq!(by_state[code as usize].len(), 2, "state {state}");
                }
                assert!(!fallback.is_empty());
            }
            InputModel::Exhaustive => panic!("expected restricted model"),
        }
    }

    #[test]
    fn exhaustive_granularity_produces_exhaustive_model() {
        let fsm = suite::serial_adder();
        let options = PipelineOptions::paper_defaults();
        let (encoded, _) = prepare_machine(&fsm, &options).unwrap();
        let model = build_input_model(
            encoded.fsm(),
            encoded.encoding(),
            InputGranularity::Exhaustive,
        );
        assert!(matches!(model, InputModel::Exhaustive));
    }

    #[test]
    fn q_is_monotone_in_latency_thanks_to_incumbents() {
        // Even with a tiny rounding budget (weak oracle), the incumbent
        // threading guarantees non-increasing q.
        let fsm = suite::worked_example();
        let mut opts = PipelineOptions::paper_defaults();
        opts.ced.iterations = 5;
        let report = run_circuit(&fsm, &[1, 2, 3], &opts, &CellLibrary::new()).unwrap();
        let q: Vec<usize> = report.latencies.iter().map(|l| l.cover.len()).collect();
        assert!(q.windows(2).all(|w| w[1] <= w[0]), "q not monotone: {q:?}");
    }

    #[test]
    fn isolated_cones_cost_at_least_as_much() {
        let fsm = suite::sequence_detector();
        let shared = PipelineOptions::paper_defaults();
        let mut isolated = PipelineOptions::paper_defaults();
        isolated.isolate_output_logic = true;
        let a = synthesize_circuit(&fsm, &shared).unwrap();
        let b = synthesize_circuit(&fsm, &isolated).unwrap();
        assert!(b.gate_count() >= a.gate_count());
        // Functionally identical.
        for state in 0..(1u64 << a.state_bits()) {
            for input in 0..(1u64 << a.num_inputs()) {
                assert_eq!(a.step(state, input), b.step(state, input));
            }
        }
    }

    #[test]
    fn row_cap_surfaces_as_error() {
        let fsm = suite::worked_example();
        let mut opts = PipelineOptions::paper_defaults();
        opts.max_rows = 1;
        let err = run_circuit(&fsm, &[2], &opts, &CellLibrary::new()).unwrap_err();
        assert!(matches!(err, PipelineError::Detect(_)));
    }

    fn reports_equal(a: &CircuitReport, b: &CircuitReport) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.original_gates, b.original_gates);
        assert_eq!(a.detect_stats, b.detect_stats);
        assert_eq!(a.latencies.len(), b.latencies.len());
        for (x, y) in a.latencies.iter().zip(&b.latencies) {
            assert_eq!(x.latency, y.latency);
            assert_eq!(x.erroneous_cases, y.erroneous_cases);
            assert_eq!(x.cover.masks, y.cover.masks);
            assert_eq!(x.cost, y.cost);
            assert_eq!(x.lp_solves, y.lp_solves);
            assert_eq!(x.rounding_attempts, y.rounding_attempts);
            assert_eq!(x.method, y.method);
        }
    }

    #[test]
    fn cancelled_pipeline_is_a_typed_interrupt() {
        let fsm = suite::sequence_detector();
        let budget = Budget::new();
        budget.cancel_token().cancel();
        let err = run_circuit_controlled(
            &fsm,
            &[1],
            &PipelineOptions::paper_defaults(),
            &CellLibrary::new(),
            PipelineControl::new(&budget),
        )
        .unwrap_err();
        match err {
            PipelineError::Interrupted(i) => {
                assert_eq!(i.interrupted.kind, ced_runtime::InterruptKind::Cancelled);
            }
            other => panic!("{other:?}"),
        }
    }

    /// Interrupts a run during the build phase (a tiny tick cap trips
    /// before the build can finish; the quantity cap defers to the
    /// next fault boundary, so the interrupt carries a checkpoint).
    fn build_phase_checkpoint(fsm: &Fsm, latencies: &[usize]) -> TableCheckpoint {
        let opts = PipelineOptions::paper_defaults();
        let lib = CellLibrary::new();
        let budget = Budget::new().with_tick_cap(10);
        let err =
            run_circuit_controlled(fsm, latencies, &opts, &lib, PipelineControl::new(&budget))
                .unwrap_err();
        let PipelineError::Interrupted(i) = err else {
            panic!("expected interrupt, got {err:?}");
        };
        assert!(i.interrupted.resumable);
        i.checkpoint
            .expect("fault-boundary interrupts carry checkpoints")
    }

    #[test]
    fn table_checkpoint_round_trips_bit_exactly() {
        let ckpt = build_phase_checkpoint(&suite::sequence_detector(), &[1, 2]);
        assert!(ckpt.build_progress().is_some());
        let bytes = ckpt.to_bytes();
        let back = TableCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.fingerprint(), ckpt.fingerprint());
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn resumed_pipeline_matches_uninterrupted_run() {
        let fsm = suite::worked_example();
        let opts = PipelineOptions::paper_defaults();
        let lib = CellLibrary::new();
        let latencies = [1, 2];

        let clean = run_circuit(&fsm, &latencies, &opts, &lib).unwrap();

        // Interrupt mid-build, then resume without a cap: the resumed
        // run replays only the remaining faults and bounds yet must
        // reproduce the uninterrupted report exactly.
        let ckpt = build_phase_checkpoint(&fsm, &latencies);
        let unlimited = Budget::unlimited();
        let mut control = PipelineControl::new(&unlimited);
        control.resume = Some(ckpt);
        let report = run_circuit_controlled(&fsm, &latencies, &opts, &lib, control).unwrap();
        reports_equal(&report, &clean);
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let opts = PipelineOptions::paper_defaults();
        let lib = CellLibrary::new();
        let ckpt = build_phase_checkpoint(&suite::sequence_detector(), &[1, 2]);
        // Same options, different machine.
        let unlimited = Budget::unlimited();
        let mut control = PipelineControl::new(&unlimited);
        control.resume = Some(ckpt);
        let err = run_circuit_controlled(&suite::serial_adder(), &[1, 2], &opts, &lib, control)
            .unwrap_err();
        assert!(matches!(err, PipelineError::CheckpointMismatch));
    }

    #[test]
    fn circuit_serialization_round_trips_bit_exactly() {
        let fsm = suite::worked_example();
        let circuit = synthesize_circuit(&fsm, &PipelineOptions::paper_defaults()).unwrap();
        let mut w = ByteWriter::new();
        write_circuit(&circuit, &mut w);
        let bytes = w.finish();
        let mut r = ByteReader::new(&bytes);
        let back = read_circuit(&mut r).unwrap();
        r.expect_end().unwrap();
        assert_eq!(back.name(), circuit.name());
        assert_eq!(back.netlist(), circuit.netlist());
        assert_eq!(back.reset_code(), circuit.reset_code());
        let mut w2 = ByteWriter::new();
        write_circuit(&back, &mut w2);
        assert_eq!(w2.finish(), bytes);
    }

    #[test]
    fn corrupt_circuit_bytes_are_typed_errors() {
        let fsm = suite::sequence_detector();
        let circuit = synthesize_circuit(&fsm, &PipelineOptions::paper_defaults()).unwrap();
        let mut w = ByteWriter::new();
        write_circuit(&circuit, &mut w);
        let bytes = w.finish();
        // Truncations at every prefix length and single-byte flips must
        // surface as errors or decode to *something* — never panic.
        for cut in 0..bytes.len() {
            let mut r = ByteReader::new(&bytes[..cut]);
            let _ = read_circuit(&mut r);
        }
        for i in 0..bytes.len() {
            let mut flipped = bytes.clone();
            flipped[i] ^= 0x41;
            let mut r = ByteReader::new(&flipped);
            let _ = read_circuit(&mut r);
        }
    }

    #[test]
    fn stored_pipeline_replay_is_byte_identical_with_stage_hits() {
        let fsm = suite::worked_example();
        let opts = PipelineOptions::paper_defaults();
        let lib = CellLibrary::new();
        let latencies = [1, 2];
        let budget = Budget::unlimited();

        let plain = run_circuit(&fsm, &latencies, &opts, &lib).unwrap();

        let store = ced_store::Store::in_memory();
        let mut cold_control = PipelineControl::new(&budget);
        cold_control.store = Some(&store);
        let cold = run_circuit_controlled(&fsm, &latencies, &opts, &lib, cold_control).unwrap();
        let mut warm_control = PipelineControl::new(&budget);
        warm_control.store = Some(&store);
        let warm = run_circuit_controlled(&fsm, &latencies, &opts, &lib, warm_control).unwrap();

        reports_equal(&plain, &cold);
        reports_equal(&plain, &warm);

        let by_stage = |name: &str| {
            store
                .stats()
                .stages
                .iter()
                .find(|(s, _)| s == name)
                .map(|(_, c)| *c)
                .unwrap_or_default()
        };
        // Cold run populates, warm run replays every stage.
        assert_eq!(by_stage(SYNTH_STAGE).puts, 1);
        assert!(by_stage(SYNTH_STAGE).hits >= 1);
        assert_eq!(by_stage(SEARCH_STAGE).puts, latencies.len() as u64);
        assert_eq!(by_stage(SEARCH_STAGE).hits, latencies.len() as u64);
        assert!(by_stage(ced_sim::detect::TENSOR_STAGE).hits >= latencies.len() as u64);
    }

    #[test]
    fn checkpoint_sink_sees_monotone_progress() {
        let fsm = suite::sequence_detector();
        let opts = PipelineOptions::paper_defaults();
        let lib = CellLibrary::new();
        let budget = Budget::unlimited();
        let mut completed = Vec::new();
        let mut sink = |c: &TableCheckpoint| completed.push(c.completed_latencies());
        let mut control = PipelineControl::new(&budget);
        control.checkpoint_every = 1;
        control.on_checkpoint = Some(&mut sink);
        run_circuit_controlled(&fsm, &[1, 2], &opts, &lib, control).unwrap();
        assert!(!completed.is_empty());
        assert!(completed.windows(2).all(|w| w[0] <= w[1]), "{completed:?}");
        assert_eq!(*completed.last().unwrap(), 2);
    }
}
