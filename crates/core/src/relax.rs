//! The LP relaxation of Statement 5, in two equivalent forms.
//!
//! **Full form** (the paper's Statement 5, with the parity-slack
//! variables `w` eliminated analytically): for each of the `q` blocks
//! `l`, variables `β(l) ∈ [0,1]^n` and `r(l,k) ∈ [0,1]^m` with
//!
//! ```text
//!   r(l,k)_i ≤ Σ_j V(i,j,k) β(l)_j      ∀ l, k, i
//!   Σ_{l,k} r(l,k)_i ≥ 1                ∀ i
//! ```
//!
//! (The equality `V β = 2w + r` with `w ∈ [0, ⌊n/2⌋]` free is exactly
//! `0 ≤ Vβ − r` and `Vβ − r` even-capped — after relaxing integrality,
//! `w` absorbs any slack, leaving the inequality above.)
//!
//! **Symmetric form**: the `q` blocks are interchangeable, and
//! `x ↦ min(1, x)` is concave, so averaging the blocks of any feasible
//! point yields a feasible point with all blocks equal (Jensen). The LP
//! over a single `β ∈ [0,1]^n` and `t(k) ∈ [0,1]^m` with
//!
//! ```text
//!   t(k)_i ≤ Σ_j V(i,j,k) β_j           ∀ k, i
//!   Σ_k t(k)_i ≥ 1/q                    ∀ i
//! ```
//!
//! is feasible **iff** the full form is, at a `q`-fold smaller tableau.
//! Randomized rounding then draws the `q` masks i.i.d. from `β`.
//!
//! Both forms minimize `Σ β` — among feasible points, prefer sparse
//! fractional masks, which round to small parity trees.

use ced_lp::problem::{ConstraintOp, LinearProgram, Sense, VarId};
use ced_sim::detect::DetectabilityTable;

/// Which LP formulation to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpForm {
    /// One shared `β`; `q` enters the row constraints (recommended).
    #[default]
    Symmetric,
    /// The literal Statement 5 with `q` independent blocks.
    Full,
}

/// Which objective guides the choice among feasible LP points (the
/// paper's Statement 5 is a pure feasibility problem; the objective is
/// an implementation degree of freedom that shapes the rounding
/// probabilities).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LpObjective {
    /// Minimize `Σ β` — sparse fractional masks, small XOR trees.
    #[default]
    SparseBeta,
    /// Maximize `Σ t − ε Σ β` — spread coverage mass across rows and
    /// steps, improving the odds that independent rounds cover the
    /// stubborn rows of dense tables.
    MaxCoverage,
}

/// A built relaxation, remembering where the `β` variables live.
#[derive(Debug, Clone)]
pub struct Relaxation {
    /// The LP, ready for [`ced_lp::solve`].
    pub lp: LinearProgram,
    /// `beta_vars[l][j]` = the LP variable of `β(l)_j`. The symmetric
    /// form has a single block (`l = 0`).
    pub beta_vars: Vec<Vec<VarId>>,
    /// Number of parity functions the relaxation was built for.
    pub q: usize,
    /// Row indices of `table` included in the LP (lazy subsets possible).
    pub row_indices: Vec<usize>,
}

impl Relaxation {
    /// Extracts the fractional `β` block(s) from a solved point.
    pub fn fractional_betas(&self, x: &[f64]) -> Vec<Vec<f64>> {
        self.beta_vars
            .iter()
            .map(|block| block.iter().map(|v| x[v.0]).collect())
            .collect()
    }
}

/// Builds the relaxation for the given rows of the table (`row_indices`;
/// pass `0..m` for all rows).
///
/// # Panics
///
/// Panics if `q == 0` or any row index is out of range.
pub fn build_relaxation(
    table: &DetectabilityTable,
    q: usize,
    form: LpForm,
    row_indices: &[usize],
) -> Relaxation {
    build_relaxation_with_objective(table, q, form, row_indices, LpObjective::default())
}

/// [`build_relaxation`] with an explicit objective (see [`LpObjective`]).
///
/// # Panics
///
/// Panics if `q == 0` or any row index is out of range.
pub fn build_relaxation_with_objective(
    table: &DetectabilityTable,
    q: usize,
    form: LpForm,
    row_indices: &[usize],
    objective: LpObjective,
) -> Relaxation {
    assert!(q >= 1, "need at least one parity function");
    let n = table.num_bits();
    let p = table.latency();
    let blocks = match form {
        LpForm::Symmetric => 1,
        LpForm::Full => q,
    };
    let mut lp = LinearProgram::new(Sense::Minimize);
    let (beta_cost, t_cost) = match objective {
        LpObjective::SparseBeta => (1.0, 0.0),
        LpObjective::MaxCoverage => (0.05, -1.0), // minimize ε·Σβ − Σt
    };

    // β variables.
    let beta_vars: Vec<Vec<VarId>> = (0..blocks)
        .map(|_| {
            (0..n)
                .map(|_| lp.add_variable(0.0, 1.0, beta_cost))
                .collect()
        })
        .collect();

    // Coverage variables.
    // t[l][i_local][k]
    let t_vars: Vec<Vec<Vec<VarId>>> = (0..blocks)
        .map(|_| {
            row_indices
                .iter()
                .map(|_| (0..p).map(|_| lp.add_variable(0.0, 1.0, t_cost)).collect())
                .collect()
        })
        .collect();

    // t(l,k)_i ≤ Σ_j V(i,j,k) β(l)_j.
    for (l, block) in beta_vars.iter().enumerate() {
        for (i_local, &i) in row_indices.iter().enumerate() {
            let row = &table.rows()[i];
            for k in 0..p {
                let d = row.steps[k];
                let mut terms: Vec<(VarId, f64)> = vec![(t_vars[l][i_local][k], 1.0)];
                for j in 0..n {
                    if (d >> j) & 1 == 1 {
                        terms.push((block[j], -1.0));
                    }
                }
                lp.add_constraint(terms, ConstraintOp::Le, 0.0);
            }
        }
    }

    // Coverage demand per row.
    let demand = match form {
        LpForm::Symmetric => 1.0 / q as f64,
        LpForm::Full => 1.0,
    };
    for (i_local, _) in row_indices.iter().enumerate() {
        let mut terms = Vec::with_capacity(blocks * p);
        for block_t in &t_vars {
            for k in 0..p {
                terms.push((block_t[i_local][k], 1.0));
            }
        }
        lp.add_constraint(terms, ConstraintOp::Ge, demand);
    }

    Relaxation {
        lp,
        beta_vars,
        q,
        row_indices: row_indices.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_lp::solve;
    use ced_sim::detect::EcRow;

    fn table(rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows[0].len();
        DetectabilityTable::from_rows(
            6,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    fn all_rows(t: &DetectabilityTable) -> Vec<usize> {
        (0..t.len()).collect()
    }

    #[test]
    fn symmetric_relaxation_feasible_for_simple_table() {
        let t = table(vec![vec![0b000001], vec![0b000010]]);
        let relax = build_relaxation(&t, 2, LpForm::Symmetric, &all_rows(&t));
        let sol = solve(&relax.lp).expect("feasible");
        let betas = relax.fractional_betas(&sol.x);
        assert_eq!(betas.len(), 1);
        assert_eq!(betas[0].len(), 6);
        // Coverage demands force some β mass on bits 0 and 1.
        assert!(betas[0][0] > 0.2);
        assert!(betas[0][1] > 0.2);
    }

    #[test]
    fn full_relaxation_matches_symmetric_feasibility() {
        let t = table(vec![vec![0b01, 0b10], vec![0b10, 0b00], vec![0b11, 0b01]]);
        for q in 1..=3 {
            let sym = build_relaxation(&t, q, LpForm::Symmetric, &all_rows(&t));
            let full = build_relaxation(&t, q, LpForm::Full, &all_rows(&t));
            let sym_ok = solve(&sym.lp).is_ok();
            let full_ok = solve(&full.lp).is_ok();
            assert_eq!(sym_ok, full_ok, "q={q}: forms disagree on feasibility");
        }
    }

    #[test]
    fn relaxation_objective_prefers_sparse_beta() {
        // Single row detectable by bit 3 only: β should concentrate there.
        let t = table(vec![vec![0b001000]]);
        let relax = build_relaxation(&t, 1, LpForm::Symmetric, &all_rows(&t));
        let sol = solve(&relax.lp).unwrap();
        let beta = &relax.fractional_betas(&sol.x)[0];
        assert!(beta[3] > 0.99, "beta = {beta:?}");
        let total: f64 = beta.iter().sum();
        assert!(total < 1.01, "objective failed to sparsify: {beta:?}");
    }

    #[test]
    fn lp_always_feasible_with_enough_q() {
        // Every row has some detecting bit; q = n with singleton-capable
        // β must be LP-feasible.
        let t = table(vec![
            vec![0b000011, 0],
            vec![0b000110, 0b000001],
            vec![0b110000, 0b110000],
        ]);
        let relax = build_relaxation(&t, 6, LpForm::Symmetric, &all_rows(&t));
        assert!(solve(&relax.lp).is_ok());
    }

    #[test]
    fn lazy_row_subset_builds() {
        let t = table(vec![vec![0b01], vec![0b10], vec![0b11]]);
        let relax = build_relaxation(&t, 2, LpForm::Symmetric, &[0, 2]);
        assert_eq!(relax.row_indices, vec![0, 2]);
        assert!(solve(&relax.lp).is_ok());
    }

    #[test]
    fn full_form_has_q_blocks() {
        let t = table(vec![vec![0b01]]);
        let relax = build_relaxation(&t, 3, LpForm::Full, &all_rows(&t));
        assert_eq!(relax.beta_vars.len(), 3);
        let sol = solve(&relax.lp).unwrap();
        assert_eq!(relax.fractional_betas(&sol.x).len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one parity function")]
    fn zero_q_rejected() {
        let t = table(vec![vec![0b1]]);
        let _ = build_relaxation(&t, 0, LpForm::Symmetric, &[0]);
    }
}
