//! Report formatting: Table-1 rows, the §5 summary statistics, and a
//! deterministic JSON rendering for campaign reports.

use crate::hardware::CedCost;
use crate::pipeline::{CircuitReport, LatencyResult};
use ced_runtime::Json;

/// Renders the header of the paper's Table 1 for the given latency
/// bounds.
pub fn table1_header(latencies: &[usize]) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<10} {:>3} {:>5} {:>3} | {:>6} {:>9}",
        "Circuit", "In", "State", "Out", "Gates", "Cost"
    );
    for &p in latencies {
        let _ = write!(out, " | p={p}: {:>5} {:>6} {:>9}", "Trees", "Gates", "Cost");
    }
    out
}

/// Renders one Table-1 row.
pub fn table1_row(report: &CircuitReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = write!(
        out,
        "{:<10} {:>3} {:>5} {:>3} | {:>6} {:>9.1}",
        report.name,
        report.inputs,
        report.state_bits,
        report.outputs,
        report.original_gates,
        report.original_cost
    );
    for lr in &report.latencies {
        let _ = write!(
            out,
            " |      {:>5} {:>6} {:>9.1}",
            lr.cover.len(),
            lr.cost.gates,
            lr.cost.area
        );
    }
    out
}

/// Renders the solver-ladder degradation trail of a report, one line
/// per latency bound that did not complete cleanly under the primary
/// LP + rounding method. An empty result means every bound was solved
/// by the paper's method as-is.
pub fn degradation_notes(report: &CircuitReport) -> Vec<String> {
    let mut notes = Vec::new();
    for lr in &report.latencies {
        if lr.degradation.is_empty() {
            continue;
        }
        let trail: Vec<String> = lr.degradation.iter().map(|e| e.to_string()).collect();
        notes.push(format!(
            "{} p={}: solved by {} after degradation [{}]",
            report.name,
            lr.latency,
            lr.method,
            trail.join("; ")
        ));
    }
    notes
}

fn cost_json(c: &CedCost) -> Json {
    Json::Object(vec![
        (
            "parity_functions".into(),
            Json::UInt(c.parity_functions as u64),
        ),
        ("gates".into(), Json::UInt(c.gates as u64)),
        ("area".into(), Json::Float(c.area)),
        ("flip_flops".into(), Json::UInt(c.flip_flops as u64)),
    ])
}

fn latency_json(l: &LatencyResult) -> Json {
    let degradation = l
        .degradation
        .iter()
        .map(|e| {
            Json::Object(vec![
                ("from".into(), Json::Str(e.from.to_string())),
                ("to".into(), Json::Str(e.to.to_string())),
                ("reason".into(), Json::Str(e.reason.to_string())),
                ("detail".into(), Json::str(&e.detail)),
            ])
        })
        .collect();
    Json::Object(vec![
        ("latency".into(), Json::UInt(l.latency as u64)),
        (
            "erroneous_cases".into(),
            Json::UInt(l.erroneous_cases as u64),
        ),
        (
            "masks".into(),
            Json::Array(l.cover.masks.iter().map(|&m| Json::UInt(m)).collect()),
        ),
        ("cost".into(), cost_json(&l.cost)),
        ("lp_solves".into(), Json::UInt(l.lp_solves as u64)),
        (
            "rounding_attempts".into(),
            Json::UInt(l.rounding_attempts as u64),
        ),
        ("method".into(), Json::Str(l.method.to_string())),
        ("degradation".into(), Json::Array(degradation)),
    ])
}

/// Renders a [`CircuitReport`] as a deterministic JSON value.
///
/// Only run-invariant data is included (no wall-clock timings), so the
/// rendering of a deterministic pipeline run is byte-identical across
/// repeats — the property the suite runner's checkpoint-resume
/// guarantee rests on.
pub fn report_to_json(r: &CircuitReport) -> Json {
    Json::Object(vec![
        ("name".into(), Json::str(&r.name)),
        ("inputs".into(), Json::UInt(r.inputs as u64)),
        ("state_bits".into(), Json::UInt(r.state_bits as u64)),
        ("outputs".into(), Json::UInt(r.outputs as u64)),
        ("original_gates".into(), Json::UInt(r.original_gates as u64)),
        ("original_cost".into(), Json::Float(r.original_cost)),
        (
            "detect_stats".into(),
            Json::Object(vec![
                ("faults".into(), Json::UInt(r.detect_stats.faults as u64)),
                (
                    "untestable_faults".into(),
                    Json::UInt(r.detect_stats.untestable_faults as u64),
                ),
                (
                    "activations".into(),
                    Json::UInt(r.detect_stats.activations as u64),
                ),
                (
                    "rows_raw".into(),
                    Json::UInt(r.detect_stats.rows_raw as u64),
                ),
                ("rows".into(), Json::UInt(r.detect_stats.rows as u64)),
            ]),
        ),
        ("duplication".into(), cost_json(&r.duplication)),
        (
            "latencies".into(),
            Json::Array(r.latencies.iter().map(latency_json).collect()),
        ),
    ])
}

/// The §5 aggregate statistics over a set of circuit reports.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Latency bounds the reports cover (ascending).
    pub latencies: Vec<usize>,
    /// Average % by which p=1 parity-function counts undercut
    /// duplication (`n` functions). Paper: 53.00%.
    pub trees_vs_duplication_pct: f64,
    /// Average % by which p=1 CED cost undercuts duplication cost.
    /// Paper: 22.40%.
    pub cost_vs_duplication_pct: f64,
    /// Average % reduction in parity functions from each latency bound
    /// to the next (`reduction[i]` = p(i) → p(i+1)). Paper: 17.0% then
    /// 7.23%.
    pub tree_reduction_pct: Vec<f64>,
    /// Average % reduction in CED cost from each latency bound to the
    /// next. Paper: 7.8% then 7.08%.
    pub cost_reduction_pct: Vec<f64>,
}

/// Computes the summary over per-circuit reports (all must share the
/// same latency list).
///
/// # Panics
///
/// Panics if `reports` is empty or the latency lists differ.
pub fn summarize(reports: &[CircuitReport]) -> Summary {
    assert!(!reports.is_empty(), "no reports to summarize");
    let latencies: Vec<usize> = reports[0].latencies.iter().map(|l| l.latency).collect();
    for r in reports {
        let ls: Vec<usize> = r.latencies.iter().map(|l| l.latency).collect();
        assert_eq!(ls, latencies, "reports cover different latency sets");
    }

    let pct = |reduced: f64, base: f64| -> f64 {
        if base <= 0.0 {
            0.0
        } else {
            100.0 * (base - reduced) / base
        }
    };

    let mut trees_vs_dup = 0.0;
    let mut cost_vs_dup = 0.0;
    for r in reports {
        let p1 = &r.latencies[0];
        trees_vs_dup += pct(p1.cover.len() as f64, r.duplication.parity_functions as f64);
        cost_vs_dup += pct(p1.cost.area, r.duplication.area);
    }
    trees_vs_dup /= reports.len() as f64;
    cost_vs_dup /= reports.len() as f64;

    let steps = latencies.len().saturating_sub(1);
    let mut tree_red = vec![0.0; steps];
    let mut cost_red = vec![0.0; steps];
    for r in reports {
        for i in 0..steps {
            let a = &r.latencies[i];
            let b = &r.latencies[i + 1];
            tree_red[i] += pct(b.cover.len() as f64, a.cover.len() as f64);
            cost_red[i] += pct(b.cost.area, a.cost.area);
        }
    }
    for v in tree_red.iter_mut().chain(cost_red.iter_mut()) {
        *v /= reports.len() as f64;
    }

    Summary {
        latencies,
        trees_vs_duplication_pct: trees_vs_dup,
        cost_vs_duplication_pct: cost_vs_dup,
        tree_reduction_pct: tree_red,
        cost_reduction_pct: cost_red,
    }
}

impl std::fmt::Display for Summary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "p={}: parity functions {:.2}% fewer than duplication; cost {:.2}% lower",
            self.latencies.first().copied().unwrap_or(1),
            self.trees_vs_duplication_pct,
            self.cost_vs_duplication_pct
        )?;
        for (i, (t, c)) in self
            .tree_reduction_pct
            .iter()
            .zip(&self.cost_reduction_pct)
            .enumerate()
        {
            writeln!(
                f,
                "p={} → p={}: parity functions −{:.2}%, cost −{:.2}%",
                self.latencies[i],
                self.latencies[i + 1],
                t,
                c
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{run_circuit, PipelineOptions};
    use ced_fsm::suite;
    use ced_logic::gate::CellLibrary;

    fn reports() -> Vec<CircuitReport> {
        let lib = CellLibrary::new();
        let opts = PipelineOptions::paper_defaults();
        vec![
            run_circuit(&suite::sequence_detector(), &[1, 2], &opts, &lib).unwrap(),
            run_circuit(&suite::serial_adder(), &[1, 2], &opts, &lib).unwrap(),
        ]
    }

    #[test]
    fn rows_and_header_align() {
        let rs = reports();
        let header = table1_header(&[1, 2]);
        assert!(header.contains("p=1"));
        assert!(header.contains("p=2"));
        for r in &rs {
            let row = table1_row(r);
            assert!(row.contains(&r.name));
        }
    }

    #[test]
    fn summary_is_sane() {
        let rs = reports();
        let s = summarize(&rs);
        assert_eq!(s.latencies, vec![1, 2]);
        // Parity CED never needs more trees than duplication.
        assert!(s.trees_vs_duplication_pct >= 0.0);
        // Latency can only reduce (or hold) the tree count.
        assert!(s.tree_reduction_pct[0] >= 0.0);
        let text = s.to_string();
        assert!(text.contains("duplication"));
    }

    #[test]
    #[should_panic(expected = "no reports")]
    fn empty_summary_panics() {
        let _ = summarize(&[]);
    }

    #[test]
    fn header_width_tracks_latency_count() {
        let short = table1_header(&[1]);
        let long = table1_header(&[1, 2, 3, 4]);
        assert!(long.len() > short.len());
        assert_eq!(long.matches("p=").count(), 4);
    }

    #[test]
    fn clean_runs_have_no_degradation_notes() {
        for r in &reports() {
            assert!(
                degradation_notes(r).is_empty(),
                "{:?}",
                degradation_notes(r)
            );
        }
    }

    #[test]
    fn degraded_runs_are_reported() {
        let lib = CellLibrary::new();
        let mut opts = PipelineOptions::paper_defaults();
        opts.ced.iterations = 0; // force the ladder down to greedy
        let r = run_circuit(&suite::sequence_detector(), &[1], &opts, &lib).unwrap();
        let notes = degradation_notes(&r);
        assert_eq!(notes.len(), 1, "{notes:?}");
        assert!(notes[0].contains("greedy-cover"), "{notes:?}");
    }

    #[test]
    fn json_rendering_is_deterministic_and_complete() {
        let rs = reports();
        for r in &rs {
            let a = report_to_json(r).render();
            let b = report_to_json(&r.clone()).render();
            assert_eq!(a, b);
            assert!(a.contains(&format!("\"name\":\"{}\"", r.name)));
            assert!(a.contains("\"latencies\":["));
            assert!(a.contains("\"method\":"));
            // No wall-clock data sneaks into the report.
            assert!(!a.contains("seconds") && !a.contains("elapsed"));
        }
    }

    #[test]
    fn json_rendering_includes_degradation_trail() {
        let lib = CellLibrary::new();
        let mut opts = PipelineOptions::paper_defaults();
        opts.ced.iterations = 0;
        let r = run_circuit(&suite::sequence_detector(), &[1], &opts, &lib).unwrap();
        let text = report_to_json(&r).render();
        assert!(text.contains("\"degradation\":[{"), "{text}");
        assert!(text.contains("greedy-cover"), "{text}");
    }

    #[test]
    fn summary_display_mentions_every_step() {
        let rs = reports();
        let text = summarize(&rs).to_string();
        assert!(text.contains("p=1 → p=2"));
    }
}
