//! Randomized rounding of the LP relaxation (paper §4).
//!
//! Samples integral parity masks from the fractional `β` — each bit
//! independently 1 with its fractional probability (Raghavan–Thompson)
//! — and keeps the first sample set that satisfies the exact integer
//! program (Statement 4, checked on the **full** detectability table,
//! even when the LP was built on a lazy row subset).

use crate::ip::ParityCover;
use ced_lp::rounding::round_to_mask;
use ced_sim::detect::DetectabilityTable;
use ced_sim::packed::SparseTables;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Rounding configuration (the paper's `ITER` plus a seed).
#[derive(Debug, Clone)]
pub struct RoundingOptions {
    /// Maximum rounding attempts per feasibility query (`ITER`; the
    /// paper uses 10³).
    pub iterations: usize,
    /// RNG seed; runs are deterministic in it.
    pub seed: u64,
}

impl Default for RoundingOptions {
    fn default() -> RoundingOptions {
        RoundingOptions {
            iterations: 1000,
            seed: 0,
        }
    }
}

/// Result of a successful rounding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rounded {
    /// The verified cover (deduplicated; may hold fewer than `q` masks).
    pub cover: ParityCover,
    /// Attempts consumed (1-based).
    pub attempts: usize,
}

/// Tracks the best failure for lazy-row refinement.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RoundingFailure {
    /// Uncovered row indices of the attempt that came closest.
    pub best_uncovered: Vec<usize>,
}

/// Draws `q` masks from the fractional blocks and verifies them.
///
/// With one block (symmetric LP), all `q` masks are sampled i.i.d. from
/// it; with `q` blocks (full Statement 5), one mask per block.
///
/// # Panics
///
/// Panics if `betas` is empty or any block's length differs from the
/// table's bit count.
pub fn round_cover(
    table: &DetectabilityTable,
    q: usize,
    betas: &[Vec<f64>],
    options: &RoundingOptions,
) -> Result<Rounded, RoundingFailure> {
    round_cover_with(table, None, q, betas, options)
}

/// [`round_cover`] with an optional bit-packed view of `table`.
///
/// When `sparse` is given (it must be built from this exact table), the
/// per-attempt success check runs on the packed case kernel and the
/// final failure enumeration on the packed full table — both exactly
/// equal to the row-major queries, so attempt counts, the RNG stream
/// and the reported uncovered rows are unchanged.
pub fn round_cover_with(
    table: &DetectabilityTable,
    sparse: Option<&SparseTables>,
    q: usize,
    betas: &[Vec<f64>],
    options: &RoundingOptions,
) -> Result<Rounded, RoundingFailure> {
    assert!(!betas.is_empty(), "no fractional blocks");
    for b in betas {
        assert_eq!(b.len(), table.num_bits(), "block arity mismatch");
    }
    let mut rng = StdRng::seed_from_u64(options.seed);
    let mut last_masks: Vec<u64> = Vec::new();

    // Probability scaling schedule (Raghavan–Thompson is often applied
    // to a scaled fractional point): cycle a few amplification factors
    // so that sparse LP optima still produce occasionally-richer masks.
    const SCALES: [f64; 4] = [1.0, 1.35, 1.7, 2.2];
    let mut scaled: Vec<Vec<Vec<f64>>> = Vec::with_capacity(SCALES.len());
    for &alpha in &SCALES {
        scaled.push(
            betas
                .iter()
                .map(|b| b.iter().map(|&x| (alpha * x).clamp(0.0, 1.0)).collect())
                .collect(),
        );
    }

    for attempt in 1..=options.iterations {
        let betas = &scaled[(attempt - 1) % SCALES.len()];
        let masks: Vec<u64> = if betas.len() == 1 {
            (0..q).map(|_| round_to_mask(&betas[0], &mut rng)).collect()
        } else {
            betas.iter().map(|b| round_to_mask(b, &mut rng)).collect()
        };
        let cover = ParityCover::new(masks);
        // Early-exit check keeps failed attempts cheap; the full
        // uncovered list is only materialized once, on final failure.
        let covered = match sparse {
            Some(s) => s.all_covered(&cover.masks),
            None => table.first_uncovered(&cover.masks).is_none(),
        };
        if covered {
            return Ok(Rounded {
                cover,
                attempts: attempt,
            });
        }
        last_masks = cover.masks;
    }
    Err(RoundingFailure {
        // Row generation feeds these into the LP, so they must come
        // from the full table, never the kernel.
        best_uncovered: match sparse {
            Some(s) => s.full().uncovered_rows(&last_masks),
            None => table.uncovered_rows(&last_masks),
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_sim::detect::EcRow;

    fn table(rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows[0].len();
        DetectabilityTable::from_rows(
            4,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    #[test]
    fn integral_beta_rounds_deterministically() {
        let t = table(vec![vec![0b0001], vec![0b0010]]);
        let beta = vec![vec![1.0, 1.0, 0.0, 0.0]];
        let r = round_cover(&t, 1, &beta, &RoundingOptions::default()).unwrap();
        // Mask 0b0011 covers row 0 (bit0 odd) and row 1 (bit1 odd).
        assert_eq!(r.cover.masks, vec![0b0011]);
        assert_eq!(r.attempts, 1);
    }

    #[test]
    fn fractional_beta_succeeds_with_retries() {
        let t = table(vec![vec![0b0001], vec![0b0010], vec![0b0100]]);
        let beta = vec![vec![0.6, 0.6, 0.6, 0.0]];
        let r = round_cover(
            &t,
            3,
            &beta,
            &RoundingOptions {
                iterations: 500,
                seed: 3,
            },
        )
        .expect("should find a cover within 500 tries");
        assert!(t.all_covered(&r.cover.masks));
    }

    #[test]
    fn impossible_rounding_reports_best_failure() {
        // Row detectable only by bit 3, but β gives it probability 0.
        let t = table(vec![vec![0b1000], vec![0b0001]]);
        let beta = vec![vec![1.0, 0.0, 0.0, 0.0]];
        let err = round_cover(
            &t,
            2,
            &beta,
            &RoundingOptions {
                iterations: 50,
                seed: 0,
            },
        )
        .unwrap_err();
        assert_eq!(err.best_uncovered, vec![0]);
    }

    #[test]
    fn per_block_sampling_for_full_form() {
        let t = table(vec![vec![0b0001], vec![0b0010]]);
        let betas = vec![vec![1.0, 0.0, 0.0, 0.0], vec![0.0, 1.0, 0.0, 0.0]];
        let r = round_cover(&t, 2, &betas, &RoundingOptions::default()).unwrap();
        assert_eq!(r.cover.masks, vec![0b0001, 0b0010]);
    }

    #[test]
    fn packed_path_reproduces_dense_rounding_exactly() {
        // Success, failure and attempt counts must be identical with
        // and without the packed tables — including on a table whose
        // kernel is a strict subset of the rows.
        // Row 1's step span {0001, 0010} strictly contains row 0's
        // {0001}, so the kernel drops it with row 0 as witness.
        let t = table(vec![
            vec![0b0001, 0b0000],
            vec![0b0001, 0b0010],
            vec![0b0010, 0b0000],
            vec![0b1000, 0b0000],
        ]);
        let sparse = SparseTables::build(&t);
        assert!(sparse.kernel().len() < t.len(), "kernel should shrink");
        let beta = vec![vec![0.5, 0.5, 0.1, 0.4]];
        for seed in 0..16u64 {
            let opts = RoundingOptions {
                iterations: 12,
                seed,
            };
            let dense = round_cover(&t, 2, &beta, &opts);
            let packed = round_cover_with(&t, Some(&sparse), 2, &beta, &opts);
            assert_eq!(dense, packed, "seed {seed}");
        }
    }

    #[test]
    fn duplicate_masks_deduplicated_in_cover() {
        let t = table(vec![vec![0b0001]]);
        let beta = vec![vec![1.0, 0.0, 0.0, 0.0]];
        let r = round_cover(&t, 3, &beta, &RoundingOptions::default()).unwrap();
        assert_eq!(r.cover.len(), 1, "identical samples must merge");
    }
}
