//! Algorithm 1: binary search for the minimum number of parity
//! functions, with LP relaxation + randomized rounding as the
//! feasibility oracle — wrapped in a graceful-degradation solver
//! ladder.
//!
//! Two engineering refinements over the paper's pseudocode, both
//! documented in DESIGN.md:
//!
//! * **Lazy rows** — when the detectability table is large, the LP is
//!   built over a subset of the hardest rows; rounding always verifies
//!   against the *full* table, and verification failures feed violated
//!   rows back into the LP (row generation). Infeasibility of a subset
//!   LP soundly implies infeasibility of the full LP.
//! * **Guaranteed incumbent** — the `q = n` singleton cover is always
//!   feasible (every erroneous case differs in some bit at its
//!   activation step), so the search never returns empty-handed even if
//!   rounding is unlucky near the top of the range.
//!
//! # The solver ladder
//!
//! The stochastic oracle can fail for reasons that have nothing to do
//! with true infeasibility: rounding exhausts its `ITER` budget,
//! simplex hits numerical trouble, or the caller's wall-clock budget
//! runs out. Instead of silently reporting a weak bound, the search
//! escalates through a ladder of increasingly robust (and increasingly
//! conservative) methods, recording each step as a
//! [`DegradationEvent`]:
//!
//! 1. [`LadderRung::LpRounding`] — the paper's LP + randomized
//!    rounding, as-is.
//! 2. [`LadderRung::ReseededRetry`] — the same oracle, reseeded, with
//!    an `ITER` budget several times larger, restarted above the
//!    largest `q` the LP *proved* infeasible.
//! 3. [`LadderRung::GreedyCover`] — the deterministic greedy baseline
//!    ([`crate::greedy`]), which always terminates with a cover when
//!    one exists.
//! 4. [`LadderRung::Duplication`] — the singleton cover (one monitor
//!    per bit), the structural equivalent of duplication-with-compare;
//!    never fails on well-formed tables.
//!
//! A clean run (no soft failures) produces an empty degradation trail,
//! so downstream reports can distinguish "optimal under the paper's
//! method" from "best effort under degradation".

use crate::greedy::{greedy_cover_with, GreedyOptions};
use crate::ip::ParityCover;
use crate::relax::{build_relaxation_with_objective, LpForm, LpObjective};
use crate::round::{round_cover_with, RoundingOptions};
use ced_lp::simplex::{solve_budgeted, SolveError};
use ced_lp::sparse::solve_budgeted_sparse;
use ced_runtime::{Budget as RtBudget, InterruptKind, Interrupted};
use ced_sim::detect::DetectabilityTable;
use ced_sim::packed::SparseTables;
use std::fmt;
use std::time::{Duration, Instant};

/// `ITER` multiplier applied by the reseeded-retry rung.
const RETRY_ITER_FACTOR: usize = 8;
/// Seed rotation applied by the reseeded-retry rung.
const RETRY_SEED_SALT: u64 = 0x9E37_79B9_7F4A_7C15;

/// Which analytic engine executes the search's inner loops.
///
/// The engines are bit-for-bit equivalent: every boolean, index, count
/// and floating-point value the search observes is identical under
/// either, so reports, store keys and degradation trails do not depend
/// on the choice. `Sparse` is the default; `Dense` is the escape hatch
/// that keeps the original row-major/dense-tableau code paths live (and
/// is faster on very small tables, where packing overhead dominates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SolverEngine {
    /// Bit-packed tensor columns, GF(2) case-kernel cover checks, and
    /// the sparse-row simplex.
    #[default]
    Sparse,
    /// Row-major tensor queries and the dense tableau simplex.
    Dense,
}

/// Configuration of the parity-minimization search.
#[derive(Clone)]
pub struct CedOptions {
    /// Rounding attempts per feasibility query (the paper's `ITER`).
    pub iterations: usize,
    /// LP formulation (symmetric by default).
    pub form: LpForm,
    /// RNG seed for rounding.
    pub seed: u64,
    /// Maximum table rows placed in the LP before lazy row generation
    /// kicks in.
    pub lp_row_cap: usize,
    /// Rounds of violated-row refinement per feasibility query.
    pub refinement_rounds: usize,
    /// Objective steering the LP among feasible points.
    pub objective: LpObjective,
    /// Wall-clock budget for one minimization call. On breach the
    /// search stops issuing feasibility queries and degrades to the
    /// greedy rung. `None` = unbounded.
    pub time_budget: Option<Duration>,
    /// Cap on LP solves per minimization call (an effort/allocation
    /// budget: each solve allocates a dense tableau). `None` =
    /// unbounded.
    pub max_lp_solves: Option<usize>,
    /// Analytic engine for the inner loops. Excluded from the `Debug`
    /// rendering below on purpose: fingerprints and store keys hash
    /// `format!("{opts:?}")`, and the engines produce identical bytes,
    /// so the same analysis must map to the same cache entry under
    /// either engine.
    pub engine: SolverEngine,
}

impl fmt::Debug for CedOptions {
    // Hand-rolled to render exactly like the pre-`engine` derived
    // output: `engine` must stay invisible to everything that hashes
    // this text (suite fingerprints, store keys).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CedOptions")
            .field("iterations", &self.iterations)
            .field("form", &self.form)
            .field("seed", &self.seed)
            .field("lp_row_cap", &self.lp_row_cap)
            .field("refinement_rounds", &self.refinement_rounds)
            .field("objective", &self.objective)
            .field("time_budget", &self.time_budget)
            .field("max_lp_solves", &self.max_lp_solves)
            .finish()
    }
}

impl Default for CedOptions {
    fn default() -> CedOptions {
        CedOptions {
            iterations: 1000,
            form: LpForm::Symmetric,
            seed: 0,
            lp_row_cap: 256,
            refinement_rounds: 3,
            objective: LpObjective::default(),
            time_budget: None,
            max_lp_solves: None,
            engine: SolverEngine::Sparse,
        }
    }
}

/// A rung of the solver ladder (see the module docs). Ordered from the
/// preferred method to the unconditional fallback.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LadderRung {
    /// LP relaxation + randomized rounding (the paper's method).
    LpRounding,
    /// LP + rounding retried with a reseeded RNG and a larger `ITER`.
    ReseededRetry,
    /// Deterministic greedy set cover.
    GreedyCover,
    /// Singleton masks — structurally equivalent to duplication.
    Duplication,
    /// A cover inherited from a previous (smaller-latency) search.
    Incumbent,
}

impl fmt::Display for LadderRung {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LadderRung::LpRounding => "lp-rounding",
            LadderRung::ReseededRetry => "reseeded-retry",
            LadderRung::GreedyCover => "greedy-cover",
            LadderRung::Duplication => "duplication",
            LadderRung::Incumbent => "incumbent",
        };
        f.write_str(s)
    }
}

/// Why the ladder stepped down a rung.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegradationReason {
    /// Randomized rounding exhausted `ITER` on queries the LP did not
    /// prove infeasible.
    RoundingExhausted {
        /// Feasibility queries lost to exhaustion on this rung.
        queries: usize,
    },
    /// The simplex solver reported unboundedness or hit its iteration
    /// limit — numerical trouble, not a feasibility verdict.
    LpNumericalFailure {
        /// Feasibility queries lost to numerical failure on this rung.
        queries: usize,
    },
    /// The wall-clock or LP-solve budget ran out mid-search.
    BudgetExceeded,
    /// Rounding was disabled outright (`ITER = 0`), so the stochastic
    /// rungs cannot certify anything.
    RoundingDisabled,
    /// The rung produced a cover that failed full-table verification
    /// (possible only on tables with undetectable rows).
    CoverUnverified {
        /// Rows no parity mask can ever cover.
        uncovered_rows: usize,
    },
}

impl fmt::Display for DegradationReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DegradationReason::RoundingExhausted { queries } => {
                write!(
                    f,
                    "rounding exhausted ITER on {queries} feasibility queries"
                )
            }
            DegradationReason::LpNumericalFailure { queries } => {
                write!(
                    f,
                    "simplex numerical failure on {queries} feasibility queries"
                )
            }
            DegradationReason::BudgetExceeded => write!(f, "search budget exceeded"),
            DegradationReason::RoundingDisabled => write!(f, "rounding disabled (ITER = 0)"),
            DegradationReason::CoverUnverified { uncovered_rows } => {
                write!(f, "cover left {uncovered_rows} rows uncovered")
            }
        }
    }
}

/// One step down the solver ladder, kept in the outcome (and threaded
/// into [`crate::pipeline::CircuitReport`]) so results stay honest
/// about how they were obtained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DegradationEvent {
    /// The rung that failed.
    pub from: LadderRung,
    /// The rung escalated to.
    pub to: LadderRung,
    /// Why the step was taken.
    pub reason: DegradationReason,
    /// Human-readable context (query counts, budgets, cover sizes).
    pub detail: String,
}

impl fmt::Display for DegradationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} → {}: {}", self.from, self.to, self.reason)?;
        if !self.detail.is_empty() {
            write!(f, " ({})", self.detail)?;
        }
        Ok(())
    }
}

/// The result of Algorithm 1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchOutcome {
    /// The best verified cover found.
    pub cover: ParityCover,
    /// `cover.len()` — the minimized number of parity functions.
    pub q: usize,
    /// LP solves performed across the search.
    pub lp_solves: usize,
    /// Total rounding attempts across the search.
    pub rounding_attempts: usize,
    /// `(q, feasible)` pairs in query order, for reporting.
    pub feasibility_trace: Vec<(usize, bool)>,
    /// The ladder rung that produced `cover`.
    pub method: LadderRung,
    /// Ladder steps taken; empty when the primary method ran cleanly.
    pub degradation: Vec<DegradationEvent>,
}

/// Runs Algorithm 1 on a detectability table.
///
/// Returns the minimal `q` the LP + randomized-rounding oracle could
/// certify, together with the verified masks. An empty table yields an
/// empty cover (`q = 0`). On oracle failure the solver ladder (module
/// docs) guarantees a verified cover is still returned, with the
/// degradation trail recorded in the outcome.
pub fn minimize_parity_functions(
    table: &DetectabilityTable,
    options: &CedOptions,
) -> SearchOutcome {
    minimize_with_incumbent(table, options, None)
}

/// [`minimize_parity_functions`] seeded with a known-good cover.
///
/// A cover verified for latency `p` remains valid at any larger bound
/// (every longer row's prefix options are a superset), so the
/// per-latency sweep threads each bound's result into the next —
/// guaranteeing the reported `q` is non-increasing in `p` even though
/// the rounding oracle is stochastic. An incumbent that fails
/// verification is ignored.
pub fn minimize_with_incumbent(
    table: &DetectabilityTable,
    options: &CedOptions,
    incumbent: Option<&ParityCover>,
) -> SearchOutcome {
    match minimize_interruptible(table, options, incumbent, &RtBudget::unlimited()) {
        Ok(outcome) => outcome,
        Err(_) => unreachable!("an unlimited budget cannot interrupt"),
    }
}

/// [`minimize_with_incumbent`] under a runtime [`RtBudget`].
///
/// The two budget families compose rather than compete:
///
/// * the runtime budget's **deadline and quantity caps** behave exactly
///   like [`CedOptions::time_budget`]: the search stops issuing
///   feasibility queries and steps down the ladder (PR 1's
///   `BudgetExceeded` path), so an over-deadline machine still returns
///   a verified cover with an honest degradation trail;
/// * the runtime budget's **cancellation token** is a hard stop: the
///   search returns `Err(`[`Interrupted`]`)` promptly without running
///   the fallback rungs, because a cancelled campaign does not want any
///   more work done on this machine.
///
/// One work unit is charged per feasibility query, plus the simplex
/// solver's per-pivot charges (the budget is threaded into every LP
/// solve).
///
/// # Errors
///
/// [`Interrupted`] with [`InterruptKind::Cancelled`] only; every other
/// bound degrades instead of erroring.
pub fn minimize_interruptible(
    table: &DetectabilityTable,
    options: &CedOptions,
    incumbent: Option<&ParityCover>,
    runtime: &RtBudget,
) -> Result<SearchOutcome, Interrupted> {
    // Rows with no detecting (bit, step) anywhere are invisible to
    // every parity mask — and silently dropped by dominance reduction.
    // Check for them on the unreduced input so the outcome can honestly
    // report that parity CED cannot meet the bound (built tables never
    // contain such rows; hand-built ones may).
    let undetectable = table
        .rows()
        .iter()
        .filter(|r| r.steps.iter().all(|&d| d == 0))
        .count();

    // Work on the dominance-reduced table (same feasible covers,
    // typically orders of magnitude fewer rows), hardest rows first so
    // that failed rounding attempts are rejected quickly.
    let table = &table.dominance_reduced().sorted_by_difficulty();
    // The sparse engine packs the reduced table once (column-major
    // bitvectors + GF(2) case kernel) and reuses it across every
    // feasibility query and ladder rung.
    let sparse = match options.engine {
        SolverEngine::Sparse => Some(SparseTables::build(table)),
        SolverEngine::Dense => None,
    };
    let sparse = sparse.as_ref();
    let n = table.num_bits();
    let mut outcome = SearchOutcome {
        cover: ParityCover::singletons(n),
        q: n,
        lp_solves: 0,
        rounding_attempts: 0,
        feasibility_trace: Vec::new(),
        method: LadderRung::Duplication,
        degradation: Vec::new(),
    };
    if undetectable > 0 {
        outcome.degradation.push(DegradationEvent {
            from: LadderRung::LpRounding,
            to: LadderRung::Duplication,
            reason: DegradationReason::CoverUnverified {
                uncovered_rows: undetectable,
            },
            detail: "erroneous cases with no detecting (bit, step): parity CED cannot meet \
                     the bound; monitoring every bit is the best available protection"
                .to_string(),
        });
        return Ok(outcome);
    }
    if table.is_empty() {
        outcome.cover = ParityCover::new(Vec::new());
        outcome.q = 0;
        outcome.method = LadderRung::LpRounding;
        return Ok(outcome);
    }
    if let Some(seed_cover) = incumbent {
        if seed_cover.len() < outcome.q && fully_covered(table, sparse, &seed_cover.masks) {
            outcome.cover = seed_cover.clone();
            outcome.q = seed_cover.len();
            outcome.method = LadderRung::Incumbent;
        }
    }

    let budget = SearchBudget::new(options, runtime);
    let mut proved_lo = 1usize;
    let mut query = 0u64;

    // Rung 1: the paper's method.
    let s0 = run_binary_search(
        table,
        sparse,
        options,
        LadderRung::LpRounding,
        &mut outcome,
        &budget,
        &mut proved_lo,
        &mut query,
    );
    if let Some(i) = s0.interrupted {
        return Err(i);
    }
    // Escalation policy: rounding exhaustion at individual `q` values
    // is the paper's normal negative oracle answer (the integrality
    // gap makes LP-feasible-but-unroundable points expected), so it
    // does NOT by itself trigger the ladder. The ladder steps down
    // when the whole rung failed to certify anything beyond the
    // unconditional fallback (`stuck`), when rounding is disabled
    // outright, or when the budget ran out.
    //
    // Events are staged in `pending` and committed only if degradation
    // actually mattered: a lower rung changed the outcome, rounding was
    // disabled, or the budget cut the search short. Otherwise the soft
    // failures were just the oracle's way of saying "infeasible" and
    // the trail stays empty (the paper's own behavior).
    let rounding_disabled = options.iterations == 0;
    let s0_stuck =
        s0.soft_failures() > 0 && (outcome.method == LadderRung::Duplication || rounding_disabled);
    if !s0.budget_hit && !s0_stuck {
        return Ok(outcome);
    }

    let mut pending: Vec<DegradationEvent> = Vec::new();
    let mut forced = false; // commit the trail regardless of improvement
    if s0.budget_hit {
        forced = true;
        pending.push(DegradationEvent {
            from: LadderRung::LpRounding,
            to: LadderRung::GreedyCover,
            reason: DegradationReason::BudgetExceeded,
            detail: format!(
                "stopped after {} lp solves / {} rounding attempts; skipping reseeded retry",
                outcome.lp_solves, outcome.rounding_attempts
            ),
        });
    } else if rounding_disabled {
        forced = true;
        pending.push(DegradationEvent {
            from: LadderRung::LpRounding,
            to: LadderRung::GreedyCover,
            reason: DegradationReason::RoundingDisabled,
            detail: "stochastic rungs cannot certify with ITER = 0".to_string(),
        });
    } else {
        // Rung 2: reseeded retry with a larger ITER, above the proved
        // infeasibility floor.
        pending.push(DegradationEvent {
            from: LadderRung::LpRounding,
            to: LadderRung::ReseededRetry,
            reason: s0.reason(),
            detail: format!(
                "retrying q ∈ [{proved_lo}, {}) with ITER × {RETRY_ITER_FACTOR}",
                outcome.q
            ),
        });
        let boosted = CedOptions {
            iterations: options.iterations.saturating_mul(RETRY_ITER_FACTOR),
            seed: options.seed ^ RETRY_SEED_SALT,
            ..options.clone()
        };
        let s1 = run_binary_search(
            table,
            sparse,
            &boosted,
            LadderRung::ReseededRetry,
            &mut outcome,
            &budget,
            &mut proved_lo,
            &mut query,
        );
        if let Some(i) = s1.interrupted {
            return Err(i);
        }
        if outcome.method == LadderRung::ReseededRetry {
            // The retry certified a cover the primary rung could not:
            // real recovery, worth recording.
            outcome.degradation.append(&mut pending);
            return Ok(outcome);
        }
        let s1_stuck = s1.soft_failures() > 0 && outcome.method == LadderRung::Duplication;
        if !s1.budget_hit && !s1_stuck {
            // Retry resolved the remaining range by proofs — the
            // primary method's verdict stands; nothing degraded.
            return Ok(outcome);
        }
        if s1.budget_hit {
            forced = true;
        }
        pending.push(DegradationEvent {
            from: LadderRung::ReseededRetry,
            to: LadderRung::GreedyCover,
            reason: if s1.budget_hit {
                DegradationReason::BudgetExceeded
            } else {
                s1.reason()
            },
            detail: String::new(),
        });
    }

    // Rung 3: deterministic greedy cover. Always terminates; verified
    // against the full table before adoption. A cancelled campaign
    // skips even this — it asked for no more work, not cheaper work.
    if let Some(i) = budget.cancelled("search:greedy") {
        return Err(i);
    }
    let greedy = greedy_cover_with(
        table,
        sparse.map(SparseTables::full),
        &GreedyOptions {
            seed: options.seed,
            ..GreedyOptions::default()
        },
    );
    let verified = fully_covered(table, sparse, &greedy.masks);
    debug_assert!(verified, "reduced tables have no undetectable rows");
    if verified && greedy.len() < outcome.q {
        outcome.q = greedy.len().max(1);
        outcome.cover = greedy;
        outcome.method = LadderRung::GreedyCover;
        outcome.degradation.append(&mut pending);
        return Ok(outcome);
    }
    if forced {
        // Nothing improved, but the run was genuinely cut short
        // (budget) or crippled (ITER = 0): keep the trail so the
        // result is honest about its provenance.
        outcome.degradation.append(&mut pending);
    }
    // Otherwise: soft failures were the oracle's infeasibility verdict
    // and the greedy cross-check agreed with the fallback — report the
    // run as a clean conclusion of the primary method.
    if outcome.degradation.is_empty() && outcome.method == LadderRung::Duplication {
        outcome.method = LadderRung::LpRounding;
    }
    Ok(outcome)
}

/// Search budgets, shared across ladder rungs (the ladder as a whole
/// honors one budget; degraded rungs do not get fresh allowances).
/// Wraps both the per-call option limits and the caller's runtime
/// budget: the runtime deadline/caps count as soft exhaustion (degrade
/// path), the runtime token as hard cancellation.
struct SearchBudget<'a> {
    deadline: Option<Instant>,
    max_lp_solves: Option<usize>,
    runtime: &'a RtBudget,
}

impl<'a> SearchBudget<'a> {
    fn new(options: &CedOptions, runtime: &'a RtBudget) -> SearchBudget<'a> {
        SearchBudget {
            deadline: options
                .time_budget
                .and_then(|d| Instant::now().checked_add(d)),
            max_lp_solves: options.max_lp_solves,
            runtime,
        }
    }

    /// Soft exhaustion: stop querying, degrade down the ladder.
    fn exhausted(&self, lp_solves: usize) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
            || self.max_lp_solves.is_some_and(|cap| lp_solves >= cap)
            || matches!(self.runtime.check("search:query"),
                        Err(i) if i.kind != InterruptKind::Cancelled)
    }

    /// Hard cancellation: abandon the search with a typed error.
    fn cancelled(&self, stage: &str) -> Option<Interrupted> {
        match self.runtime.check(stage) {
            Err(i) if i.kind == InterruptKind::Cancelled => Some(i),
            _ => None,
        }
    }
}

/// Boolean full-cover check, on the case kernel when the sparse engine
/// is active — exactly equal to `table.all_covered` by the kernel's
/// witness map.
fn fully_covered(table: &DetectabilityTable, sparse: Option<&SparseTables>, masks: &[u64]) -> bool {
    match sparse {
        Some(s) => s.all_covered(masks),
        None => table.all_covered(masks),
    }
}

/// Soft-failure tally of one binary-search rung.
#[derive(Debug, Default)]
struct RungStats {
    rounding_exhausted: usize,
    numeric_failures: usize,
    budget_hit: bool,
    /// Hard cancellation observed mid-rung; propagated by the caller.
    interrupted: Option<Interrupted>,
}

impl RungStats {
    fn soft_failures(&self) -> usize {
        self.rounding_exhausted + self.numeric_failures
    }

    fn reason(&self) -> DegradationReason {
        if self.budget_hit {
            DegradationReason::BudgetExceeded
        } else if self.rounding_exhausted >= self.numeric_failures {
            DegradationReason::RoundingExhausted {
                queries: self.rounding_exhausted,
            }
        } else {
            DegradationReason::LpNumericalFailure {
                queries: self.numeric_failures,
            }
        }
    }
}

/// Verdict of one feasibility query, distinguishing proofs from
/// soft failures (the pre-ladder code conflated all of these).
enum QueryVerdict {
    /// A verified cover at the queried `q`.
    Feasible(ParityCover),
    /// The LP itself is infeasible — a sound proof for the full table.
    ProvedInfeasible,
    /// The LP is feasible but rounding never produced a verified cover.
    RoundingExhausted,
    /// Simplex reported unboundedness or an iteration limit.
    NumericalFailure,
    /// The shared search budget ran out mid-query.
    BudgetExceeded,
    /// The runtime cancellation token fired mid-query.
    Interrupted(Interrupted),
}

/// One rung's binary search over `q`. Adopts improving covers into
/// `outcome` (tagging them with `rung`), advances the proved-infeasible
/// floor, and tallies soft failures.
#[allow(clippy::too_many_arguments)]
fn run_binary_search(
    table: &DetectabilityTable,
    sparse: Option<&SparseTables>,
    options: &CedOptions,
    rung: LadderRung,
    outcome: &mut SearchOutcome,
    budget: &SearchBudget<'_>,
    proved_lo: &mut usize,
    query: &mut u64,
) -> RungStats {
    let mut stats = RungStats::default();
    let mut lo = *proved_lo;
    let mut hi = outcome.q;
    while lo < hi {
        if let Some(i) = budget.cancelled("search:query") {
            stats.interrupted = Some(i);
            break;
        }
        if budget.exhausted(outcome.lp_solves) {
            stats.budget_hit = true;
            break;
        }
        let mid = lo + (hi - lo) / 2;
        *query += 1;
        match try_feasible(table, sparse, mid, options, *query, budget, outcome) {
            QueryVerdict::Feasible(cover) => {
                let found_q = cover.len().max(1);
                outcome.cover = cover;
                outcome.q = found_q;
                outcome.method = rung;
                outcome.feasibility_trace.push((mid, true));
                hi = found_q.min(mid);
                // `hi` is known-feasible; keep searching strictly below.
                if hi == lo {
                    break;
                }
            }
            QueryVerdict::ProvedInfeasible => {
                outcome.feasibility_trace.push((mid, false));
                lo = mid + 1;
                *proved_lo = lo;
            }
            QueryVerdict::RoundingExhausted => {
                stats.rounding_exhausted += 1;
                outcome.feasibility_trace.push((mid, false));
                lo = mid + 1;
            }
            QueryVerdict::NumericalFailure => {
                stats.numeric_failures += 1;
                outcome.feasibility_trace.push((mid, false));
                lo = mid + 1;
            }
            QueryVerdict::BudgetExceeded => {
                stats.budget_hit = true;
                break;
            }
            QueryVerdict::Interrupted(i) => {
                stats.interrupted = Some(i);
                break;
            }
        }
    }
    stats
}

/// One feasibility query: LP (with lazy rows) + randomized rounding.
fn try_feasible(
    table: &DetectabilityTable,
    sparse: Option<&SparseTables>,
    q: usize,
    options: &CedOptions,
    query: u64,
    budget: &SearchBudget<'_>,
    outcome: &mut SearchOutcome,
) -> QueryVerdict {
    let m = table.len();
    let mut rows: Vec<usize> = if m <= options.lp_row_cap {
        (0..m).collect()
    } else {
        hardest_rows(table, options.lp_row_cap)
    };

    budget.runtime.charge(1);
    let mut last_failure = QueryVerdict::RoundingExhausted;
    for round in 0..=options.refinement_rounds {
        if budget.exhausted(outcome.lp_solves) {
            return QueryVerdict::BudgetExceeded;
        }
        let relax =
            build_relaxation_with_objective(table, q, options.form, &rows, options.objective);
        outcome.lp_solves += 1;
        let solved = match options.engine {
            SolverEngine::Sparse => solve_budgeted_sparse(&relax.lp, budget.runtime),
            SolverEngine::Dense => solve_budgeted(&relax.lp, budget.runtime),
        };
        let sol = match solved {
            Ok(sol) => sol,
            // Subset infeasible ⇒ full infeasible: a sound proof.
            Err(SolveError::Infeasible) => return QueryVerdict::ProvedInfeasible,
            // Unbounded/iteration-limit: numerical trouble, NOT a
            // feasibility verdict — surfaced so the ladder can react.
            Err(SolveError::Unbounded) | Err(SolveError::IterationLimit) => {
                return QueryVerdict::NumericalFailure
            }
            // A cancelled token aborts the query; any other runtime
            // bound is the soft degrade path.
            Err(SolveError::Interrupted(i)) => {
                return if i.kind == InterruptKind::Cancelled {
                    QueryVerdict::Interrupted(i)
                } else {
                    QueryVerdict::BudgetExceeded
                }
            }
        };
        let betas = relax.fractional_betas(&sol.x);
        let ropts = RoundingOptions {
            iterations: options.iterations,
            seed: options
                .seed
                .wrapping_add(query.wrapping_mul(0x9E37_79B9))
                .wrapping_add(round as u64),
        };
        match round_cover_with(table, sparse, q, &betas, &ropts) {
            Ok(r) => {
                outcome.rounding_attempts += r.attempts;
                return QueryVerdict::Feasible(r.cover);
            }
            Err(failure) => {
                outcome.rounding_attempts += options.iterations;
                last_failure = QueryVerdict::RoundingExhausted;
                if rows.len() >= m || failure.best_uncovered.is_empty() {
                    return last_failure;
                }
                // Row generation: feed the stubborn rows into the LP.
                let budget_rows = options.lp_row_cap.max(16);
                for &i in failure.best_uncovered.iter().take(budget_rows) {
                    if !rows.contains(&i) {
                        rows.push(i);
                    }
                }
            }
        }
    }
    last_failure
}

/// Picks the `cap` rows hardest to cover: fewest detecting `(bit, step)`
/// opportunities first (ties broken by index for determinism).
fn hardest_rows(table: &DetectabilityTable, cap: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, usize)> = table
        .rows()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let opportunities: usize = r.steps.iter().map(|d| d.count_ones() as usize).sum();
            (opportunities, i)
        })
        .collect();
    scored.sort_unstable();
    scored.into_iter().take(cap).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_sim::detect::EcRow;

    fn table(num_bits: usize, rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows[0].len();
        DetectabilityTable::from_rows(
            num_bits,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    #[test]
    fn single_bit_rows_need_one_tree() {
        // All rows detectable by bit 0 alone.
        let t = table(4, vec![vec![0b0001], vec![0b0011], vec![0b0101]]);
        // Masks {0b0001} covers: row0 odd, row1 bit0 odd (0b0011&0b0001=1),
        // row2 odd. One tree suffices; the search should find q = 1.
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.q, 1, "trace: {:?}", out.feasibility_trace);
        assert!(t.all_covered(&out.cover.masks));
        assert!(out.degradation.is_empty(), "clean run must not degrade");
        assert_eq!(out.method, LadderRung::LpRounding);
    }

    #[test]
    fn conflicting_rows_need_two_trees() {
        // Rows {bit0}, {bit1}, {bit0,bit1}: any single mask fails one of
        // them (mask must contain exactly one of bits 0,1 to catch row 3
        // … but then misses one singleton row unless it has the other).
        // mask 0b01: row0 ✓, row1 ✗. mask 0b10: row0 ✗. mask 0b11:
        // row2 even ✗. So q = 2.
        let t = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.q, 2);
        assert!(t.all_covered(&out.cover.masks));
    }

    #[test]
    fn empty_table_requires_nothing() {
        let t = DetectabilityTable::from_rows(4, 1, vec![]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.q, 0);
        assert!(out.cover.is_empty());
        assert!(out.degradation.is_empty());
    }

    #[test]
    fn latency_enables_smaller_q() {
        // At p=1 the three rows conflict (see previous test, q = 2); at
        // p=2 the rows that were missed by a single mask expose bit 0
        // alone at step 2, so one tree on bit 0 covers everything.
        let p1 = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        let p2 = table(
            2,
            vec![vec![0b01, 0b00], vec![0b10, 0b01], vec![0b11, 0b01]],
        );
        let out1 = minimize_parity_functions(&p1, &CedOptions::default());
        let out2 = minimize_parity_functions(&p2, &CedOptions::default());
        assert_eq!(out1.q, 2);
        assert_eq!(out2.q, 1);
    }

    #[test]
    fn full_form_agrees_with_symmetric() {
        let t = table(
            3,
            vec![vec![0b001, 0b010], vec![0b110, 0b000], vec![0b011, 0b100]],
        );
        let sym = minimize_parity_functions(
            &t,
            &CedOptions {
                form: LpForm::Symmetric,
                ..CedOptions::default()
            },
        );
        let full = minimize_parity_functions(
            &t,
            &CedOptions {
                form: LpForm::Full,
                ..CedOptions::default()
            },
        );
        assert_eq!(sym.q, full.q);
    }

    #[test]
    fn lazy_rows_still_produce_verified_cover() {
        // 40 rows, tiny LP cap: force row generation.
        let rows: Vec<Vec<u64>> = (0..40u64).map(|i| vec![1 << (i % 5)]).collect();
        let t = table(5, rows);
        let out = minimize_parity_functions(
            &t,
            &CedOptions {
                lp_row_cap: 4,
                ..CedOptions::default()
            },
        );
        assert!(t.all_covered(&out.cover.masks));
        // All five bits needed (each singleton row class needs its bit
        // odd, and any mask with ≥2 of the bits still covers each row it
        // overlaps oddly … q can be < 5; just require a verified cover).
        assert!(out.q >= 1 && out.q <= 5);
    }

    #[test]
    fn outcome_trace_is_populated() {
        let t = table(3, vec![vec![0b001], vec![0b010]]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert!(!out.feasibility_trace.is_empty());
        assert!(out.lp_solves >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = table(
            4,
            vec![vec![0b0011], vec![0b0110], vec![0b1100], vec![0b1001]],
        );
        let a = minimize_parity_functions(&t, &CedOptions::default());
        let b = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.q, b.q);
        assert_eq!(a.degradation, b.degradation);
    }

    #[test]
    fn disabled_rounding_degrades_to_greedy() {
        // All rows detectable by bit 0 (q_opt = 1 < n = 4), so the
        // greedy rung improves on the singleton fallback.
        let t = table(4, vec![vec![0b0001], vec![0b0011], vec![0b0101]]);
        let out = minimize_parity_functions(
            &t,
            &CedOptions {
                iterations: 0,
                ..CedOptions::default()
            },
        );
        assert!(t.all_covered(&out.cover.masks), "ladder must still cover");
        assert_eq!(out.method, LadderRung::GreedyCover);
        assert!(
            out.degradation
                .iter()
                .any(|e| e.to == LadderRung::GreedyCover
                    && e.reason == DegradationReason::RoundingDisabled),
            "trail: {:?}",
            out.degradation
        );
    }

    #[test]
    fn zero_lp_budget_degrades_to_greedy() {
        let t = table(3, vec![vec![0b001], vec![0b011], vec![0b101]]);
        let out = minimize_parity_functions(
            &t,
            &CedOptions {
                max_lp_solves: Some(0),
                ..CedOptions::default()
            },
        );
        assert!(t.all_covered(&out.cover.masks));
        assert_eq!(out.lp_solves, 0, "budget of zero must forbid LP solves");
        assert_eq!(out.method, LadderRung::GreedyCover);
        assert!(out
            .degradation
            .iter()
            .any(|e| e.reason == DegradationReason::BudgetExceeded));
    }

    #[test]
    fn zero_time_budget_degrades_to_greedy() {
        let t = table(3, vec![vec![0b001], vec![0b011], vec![0b101]]);
        let out = minimize_parity_functions(
            &t,
            &CedOptions {
                time_budget: Some(Duration::ZERO),
                ..CedOptions::default()
            },
        );
        assert!(t.all_covered(&out.cover.masks));
        assert_eq!(out.method, LadderRung::GreedyCover);
    }

    #[test]
    fn undetectable_rows_fall_to_duplication_rung() {
        // Second row has no detecting (bit, step) at all — nothing can
        // cover it (dominance reduction would silently drop it). The
        // ladder must terminate with the singleton fallback and record
        // the step down to the duplication rung.
        let t = table(2, vec![vec![0b01, 0b00], vec![0b00, 0b00]]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.method, LadderRung::Duplication);
        assert!(out
            .degradation
            .iter()
            .any(|e| matches!(e.reason, DegradationReason::CoverUnverified { .. })));
    }

    #[test]
    fn incumbent_is_kept_when_optimal() {
        let t = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        // Feed the known optimum as incumbent; the search should keep
        // (or re-derive) a q=2 cover.
        let inc = ParityCover::new(vec![0b01, 0b10]);
        let out = minimize_with_incumbent(&t, &CedOptions::default(), Some(&inc));
        assert_eq!(out.q, 2);
        assert!(t.all_covered(&out.cover.masks));
    }

    #[test]
    fn cancelled_search_is_a_hard_error() {
        let t = table(3, vec![vec![0b001], vec![0b011], vec![0b101]]);
        let runtime = RtBudget::new();
        runtime.cancel_token().cancel();
        let err = minimize_interruptible(&t, &CedOptions::default(), None, &runtime).unwrap_err();
        assert_eq!(err.kind, InterruptKind::Cancelled);
        // Cancellation skips even the greedy fallback: no cover at all.
    }

    #[test]
    fn runtime_tick_cap_degrades_instead_of_erroring() {
        // A quantity cap is soft exhaustion: the ladder steps down to
        // greedy (PR-1 BudgetExceeded path) and still returns a
        // verified cover — only cancellation is a hard stop.
        let t = table(3, vec![vec![0b001], vec![0b011], vec![0b101]]);
        let runtime = RtBudget::new().with_tick_cap(1);
        let out = minimize_interruptible(&t, &CedOptions::default(), None, &runtime).unwrap();
        assert!(t.all_covered(&out.cover.masks));
        assert!(
            out.degradation
                .iter()
                .any(|e| e.reason == DegradationReason::BudgetExceeded),
            "trail: {:?}",
            out.degradation
        );
    }

    #[test]
    fn unlimited_runtime_budget_changes_nothing() {
        let t = table(
            4,
            vec![vec![0b0011], vec![0b0110], vec![0b1100], vec![0b1001]],
        );
        let plain = minimize_parity_functions(&t, &CedOptions::default());
        let budgeted =
            minimize_interruptible(&t, &CedOptions::default(), None, &RtBudget::unlimited())
                .unwrap();
        assert_eq!(plain.cover, budgeted.cover);
        assert_eq!(plain.method, budgeted.method);
        assert_eq!(plain.lp_solves, budgeted.lp_solves);
    }

    #[test]
    fn options_debug_never_reveals_the_engine() {
        // Fingerprints and store keys hash `format!("{opts:?}")`; the
        // engine choice must not perturb cache identity.
        let sparse = CedOptions::default();
        let dense = CedOptions {
            engine: SolverEngine::Dense,
            ..CedOptions::default()
        };
        let rendered = format!("{sparse:?}");
        assert_eq!(rendered, format!("{dense:?}"));
        assert!(!rendered.to_lowercase().contains("engine"), "{rendered}");
        assert!(rendered.starts_with("CedOptions {"), "{rendered}");
        assert!(rendered.contains("iterations: 1000"), "{rendered}");
        assert!(rendered.contains("max_lp_solves: None"), "{rendered}");
    }

    #[test]
    fn dense_engine_reproduces_sparse_outcome_exactly() {
        // Seeded pseudo-random tables, both engines, full outcome
        // equality: cover, q, solve counts, trace and trail.
        for seed in 1..6u64 {
            let mut x = seed;
            let mut next = || {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                x >> 20
            };
            let rows: Vec<Vec<u64>> = (0..60)
                .map(|_| vec![next() & 0x7F, next() & 0x7F])
                .filter(|r| r.iter().any(|&d| d != 0))
                .collect();
            let t = table(7, rows);
            let sparse = minimize_parity_functions(&t, &CedOptions::default());
            let dense = minimize_parity_functions(
                &t,
                &CedOptions {
                    engine: SolverEngine::Dense,
                    ..CedOptions::default()
                },
            );
            assert_eq!(sparse.cover, dense.cover, "seed {seed}");
            assert_eq!(sparse.q, dense.q, "seed {seed}");
            assert_eq!(sparse.lp_solves, dense.lp_solves, "seed {seed}");
            assert_eq!(sparse.rounding_attempts, dense.rounding_attempts);
            assert_eq!(sparse.feasibility_trace, dense.feasibility_trace);
            assert_eq!(sparse.method, dense.method, "seed {seed}");
            assert_eq!(sparse.degradation, dense.degradation, "seed {seed}");
        }
    }

    #[test]
    fn dense_engine_reproduces_degraded_outcomes_exactly() {
        // Force the ladder down (ITER = 0) and under a tiny LP budget:
        // the degradation trail must be engine-independent too.
        let t = table(4, vec![vec![0b0001], vec![0b0011], vec![0b0101]]);
        for opts in [
            CedOptions {
                iterations: 0,
                ..CedOptions::default()
            },
            CedOptions {
                max_lp_solves: Some(1),
                ..CedOptions::default()
            },
        ] {
            let sparse = minimize_parity_functions(&t, &opts);
            let dense = minimize_parity_functions(
                &t,
                &CedOptions {
                    engine: SolverEngine::Dense,
                    ..opts
                },
            );
            assert_eq!(sparse.cover, dense.cover);
            assert_eq!(sparse.method, dense.method);
            assert_eq!(sparse.degradation, dense.degradation);
        }
    }

    #[test]
    fn degradation_events_render() {
        let e = DegradationEvent {
            from: LadderRung::LpRounding,
            to: LadderRung::ReseededRetry,
            reason: DegradationReason::RoundingExhausted { queries: 3 },
            detail: "retrying".to_string(),
        };
        let text = e.to_string();
        assert!(text.contains("lp-rounding"));
        assert!(text.contains("reseeded-retry"));
        assert!(text.contains("3 feasibility queries"));
    }
}
