//! Algorithm 1: binary search for the minimum number of parity
//! functions, with LP relaxation + randomized rounding as the
//! feasibility oracle.
//!
//! Two engineering refinements over the paper's pseudocode, both
//! documented in DESIGN.md:
//!
//! * **Lazy rows** — when the detectability table is large, the LP is
//!   built over a subset of the hardest rows; rounding always verifies
//!   against the *full* table, and verification failures feed violated
//!   rows back into the LP (row generation). Infeasibility of a subset
//!   LP soundly implies infeasibility of the full LP.
//! * **Guaranteed incumbent** — the `q = n` singleton cover is always
//!   feasible (every erroneous case differs in some bit at its
//!   activation step), so the search never returns empty-handed even if
//!   rounding is unlucky near the top of the range.

use crate::ip::ParityCover;
use crate::relax::{build_relaxation_with_objective, LpForm, LpObjective};
use crate::round::{round_cover, RoundingOptions};
use ced_lp::simplex::{solve, SolveError};
use ced_sim::detect::DetectabilityTable;

/// Configuration of the parity-minimization search.
#[derive(Debug, Clone)]
pub struct CedOptions {
    /// Rounding attempts per feasibility query (the paper's `ITER`).
    pub iterations: usize,
    /// LP formulation (symmetric by default).
    pub form: LpForm,
    /// RNG seed for rounding.
    pub seed: u64,
    /// Maximum table rows placed in the LP before lazy row generation
    /// kicks in.
    pub lp_row_cap: usize,
    /// Rounds of violated-row refinement per feasibility query.
    pub refinement_rounds: usize,
    /// Objective steering the LP among feasible points.
    pub objective: LpObjective,
}

impl Default for CedOptions {
    fn default() -> CedOptions {
        CedOptions {
            iterations: 1000,
            form: LpForm::Symmetric,
            seed: 0,
            lp_row_cap: 256,
            refinement_rounds: 3,
            objective: LpObjective::default(),
        }
    }
}

/// The result of Algorithm 1.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best verified cover found.
    pub cover: ParityCover,
    /// `cover.len()` — the minimized number of parity functions.
    pub q: usize,
    /// LP solves performed across the search.
    pub lp_solves: usize,
    /// Total rounding attempts across the search.
    pub rounding_attempts: usize,
    /// `(q, feasible)` pairs in query order, for reporting.
    pub feasibility_trace: Vec<(usize, bool)>,
}

/// Runs Algorithm 1 on a detectability table.
///
/// Returns the minimal `q` the LP + randomized-rounding oracle could
/// certify, together with the verified masks. An empty table yields an
/// empty cover (`q = 0`).
pub fn minimize_parity_functions(
    table: &DetectabilityTable,
    options: &CedOptions,
) -> SearchOutcome {
    minimize_with_incumbent(table, options, None)
}

/// [`minimize_parity_functions`] seeded with a known-good cover.
///
/// A cover verified for latency `p` remains valid at any larger bound
/// (every longer row's prefix options are a superset), so the
/// per-latency sweep threads each bound's result into the next —
/// guaranteeing the reported `q` is non-increasing in `p` even though
/// the rounding oracle is stochastic. An incumbent that fails
/// verification is ignored.
pub fn minimize_with_incumbent(
    table: &DetectabilityTable,
    options: &CedOptions,
    incumbent: Option<&ParityCover>,
) -> SearchOutcome {
    // Work on the dominance-reduced table (same feasible covers,
    // typically orders of magnitude fewer rows), hardest rows first so
    // that failed rounding attempts are rejected quickly.
    let table = &table.dominance_reduced().sorted_by_difficulty();
    let n = table.num_bits();
    let mut outcome = SearchOutcome {
        cover: ParityCover::singletons(n),
        q: n,
        lp_solves: 0,
        rounding_attempts: 0,
        feasibility_trace: Vec::new(),
    };
    if table.is_empty() {
        outcome.cover = ParityCover::new(Vec::new());
        outcome.q = 0;
        return outcome;
    }
    debug_assert!(
        table.all_covered(&outcome.cover.masks),
        "singleton fallback must cover (activation steps are nonzero)"
    );
    if let Some(seed_cover) = incumbent {
        if seed_cover.len() < outcome.q && table.all_covered(&seed_cover.masks) {
            outcome.cover = seed_cover.clone();
            outcome.q = seed_cover.len();
        }
    }

    let mut lo = 1usize;
    let mut hi = outcome.q;
    let mut query = 0u64;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        query += 1;
        match try_feasible(table, mid, options, query, &mut outcome) {
            Some(cover) => {
                let found_q = cover.len().max(1);
                outcome.cover = cover;
                outcome.q = found_q;
                outcome.feasibility_trace.push((mid, true));
                hi = found_q.min(mid);
                // `hi` is known-feasible; keep searching strictly below.
                if hi == lo {
                    break;
                }
            }
            None => {
                outcome.feasibility_trace.push((mid, false));
                lo = mid + 1;
            }
        }
    }
    outcome
}

/// One feasibility query: LP (with lazy rows) + randomized rounding.
fn try_feasible(
    table: &DetectabilityTable,
    q: usize,
    options: &CedOptions,
    query: u64,
    outcome: &mut SearchOutcome,
) -> Option<ParityCover> {
    let m = table.len();
    let mut rows: Vec<usize> = if m <= options.lp_row_cap {
        (0..m).collect()
    } else {
        hardest_rows(table, options.lp_row_cap)
    };

    for round in 0..=options.refinement_rounds {
        let relax =
            build_relaxation_with_objective(table, q, options.form, &rows, options.objective);
        outcome.lp_solves += 1;
        let sol = match solve(&relax.lp) {
            Ok(sol) => sol,
            Err(SolveError::Infeasible) => return None, // subset infeasible ⇒ full infeasible
            Err(_) => return None, // numerical trouble: treat as infeasible (search stays sound)
        };
        let betas = relax.fractional_betas(&sol.x);
        let ropts = RoundingOptions {
            iterations: options.iterations,
            seed: options
                .seed
                .wrapping_add(query.wrapping_mul(0x9E37_79B9))
                .wrapping_add(round as u64),
        };
        match round_cover(table, q, &betas, &ropts) {
            Ok(r) => {
                outcome.rounding_attempts += r.attempts;
                return Some(r.cover);
            }
            Err(failure) => {
                outcome.rounding_attempts += options.iterations;
                if rows.len() >= m || failure.best_uncovered.is_empty() {
                    return None;
                }
                // Row generation: feed the stubborn rows into the LP.
                let budget = options.lp_row_cap.max(16);
                for &i in failure.best_uncovered.iter().take(budget) {
                    if !rows.contains(&i) {
                        rows.push(i);
                    }
                }
            }
        }
    }
    None
}

/// Picks the `cap` rows hardest to cover: fewest detecting `(bit, step)`
/// opportunities first (ties broken by index for determinism).
fn hardest_rows(table: &DetectabilityTable, cap: usize) -> Vec<usize> {
    let mut scored: Vec<(usize, usize)> = table
        .rows()
        .iter()
        .enumerate()
        .map(|(i, r)| {
            let opportunities: usize = r.steps.iter().map(|d| d.count_ones() as usize).sum();
            (opportunities, i)
        })
        .collect();
    scored.sort_unstable();
    scored.into_iter().take(cap).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_sim::detect::EcRow;

    fn table(num_bits: usize, rows: Vec<Vec<u64>>) -> DetectabilityTable {
        let p = rows[0].len();
        DetectabilityTable::from_rows(
            num_bits,
            p,
            rows.into_iter().map(|steps| EcRow { steps }).collect(),
        )
    }

    #[test]
    fn single_bit_rows_need_one_tree() {
        // All rows detectable by bit 0 alone.
        let t = table(4, vec![vec![0b0001], vec![0b0011], vec![0b0101]]);
        // Masks {0b0001} covers: row0 odd, row1 bit0 odd (0b0011&0b0001=1),
        // row2 odd. One tree suffices; the search should find q = 1.
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.q, 1, "trace: {:?}", out.feasibility_trace);
        assert!(t.all_covered(&out.cover.masks));
    }

    #[test]
    fn conflicting_rows_need_two_trees() {
        // Rows {bit0}, {bit1}, {bit0,bit1}: any single mask fails one of
        // them (mask must contain exactly one of bits 0,1 to catch row 3
        // … but then misses one singleton row unless it has the other).
        // mask 0b01: row0 ✓, row1 ✗. mask 0b10: row0 ✗. mask 0b11:
        // row2 even ✗. So q = 2.
        let t = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.q, 2);
        assert!(t.all_covered(&out.cover.masks));
    }

    #[test]
    fn empty_table_requires_nothing() {
        let t = DetectabilityTable::from_rows(4, 1, vec![]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(out.q, 0);
        assert!(out.cover.is_empty());
    }

    #[test]
    fn latency_enables_smaller_q() {
        // At p=1 the three rows conflict (see previous test, q = 2); at
        // p=2 the rows that were missed by a single mask expose bit 0
        // alone at step 2, so one tree on bit 0 covers everything.
        let p1 = table(2, vec![vec![0b01], vec![0b10], vec![0b11]]);
        let p2 = table(
            2,
            vec![vec![0b01, 0b00], vec![0b10, 0b01], vec![0b11, 0b01]],
        );
        let out1 = minimize_parity_functions(&p1, &CedOptions::default());
        let out2 = minimize_parity_functions(&p2, &CedOptions::default());
        assert_eq!(out1.q, 2);
        assert_eq!(out2.q, 1);
    }

    #[test]
    fn full_form_agrees_with_symmetric() {
        let t = table(
            3,
            vec![vec![0b001, 0b010], vec![0b110, 0b000], vec![0b011, 0b100]],
        );
        let sym = minimize_parity_functions(
            &t,
            &CedOptions {
                form: LpForm::Symmetric,
                ..CedOptions::default()
            },
        );
        let full = minimize_parity_functions(
            &t,
            &CedOptions {
                form: LpForm::Full,
                ..CedOptions::default()
            },
        );
        assert_eq!(sym.q, full.q);
    }

    #[test]
    fn lazy_rows_still_produce_verified_cover() {
        // 40 rows, tiny LP cap: force row generation.
        let rows: Vec<Vec<u64>> = (0..40u64).map(|i| vec![1 << (i % 5)]).collect();
        let t = table(5, rows);
        let out = minimize_parity_functions(
            &t,
            &CedOptions {
                lp_row_cap: 4,
                ..CedOptions::default()
            },
        );
        assert!(t.all_covered(&out.cover.masks));
        // All five bits needed (each singleton row class needs its bit
        // odd, and any mask with ≥2 of the bits still covers each row it
        // overlaps oddly … q can be < 5; just require a verified cover).
        assert!(out.q >= 1 && out.q <= 5);
    }

    #[test]
    fn outcome_trace_is_populated() {
        let t = table(3, vec![vec![0b001], vec![0b010]]);
        let out = minimize_parity_functions(&t, &CedOptions::default());
        assert!(!out.feasibility_trace.is_empty());
        assert!(out.lp_solves >= 1);
    }

    #[test]
    fn deterministic_given_seed() {
        let t = table(
            4,
            vec![vec![0b0011], vec![0b0110], vec![0b1100], vec![0b1001]],
        );
        let a = minimize_parity_functions(&t, &CedOptions::default());
        let b = minimize_parity_functions(&t, &CedOptions::default());
        assert_eq!(a.cover, b.cover);
        assert_eq!(a.q, b.q);
    }
}
