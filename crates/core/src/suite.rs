//! Survivable suite campaigns over a set of machines.
//!
//! `run_suite` drives the full pipeline across many FSMs the way the
//! paper's §5 experiment runs Table 1 — but built to survive the
//! machines it cannot finish. Each machine runs in its own worker
//! thread (panics are captured, not fatal), under its own [`Budget`]
//! (per-machine deadline and/or tick cap). A machine that fails or
//! exhausts its budget is retried once with degraded pipeline options
//! — transition-cube input granularity and collapsed faults, the same
//! accuracy/cost trade the PR-1 solver ladder makes — before being
//! quarantined with whatever partial progress it reached. The suite
//! checkpoint records every finished machine (as its rendered JSON,
//! spliced back verbatim on resume), so a cancelled campaign resumed
//! with `--resume` produces a byte-identical final report.

use crate::pipeline::{
    run_circuit_controlled, CircuitReport, InputGranularity, PipelineControl, PipelineError,
    PipelineOptions,
};
use crate::report::{degradation_notes, report_to_json};
use ced_fsm::machine::Fsm;
use ced_logic::gate::CellLibrary;
use ced_par::ParExec;
use ced_runtime::{
    fnv1a64, Budget, ByteReader, ByteWriter, CancelToken, CheckpointError, InterruptKind,
    Interrupted, Json,
};
use ced_sim::fault::FaultModel;
use ced_store::Store;
use std::fmt;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Once};
use std::time::Duration;

/// Checkpoint-container kind tag for suite checkpoints (see
/// [`ced_runtime::encode_checkpoint`]).
pub const SUITE_CHECKPOINT_KIND: u16 = 2;

/// Name given to per-machine worker threads; the suite panic hook uses
/// it to keep captured worker panics off stderr.
const WORKER_THREAD_NAME: &str = "ced-suite";

/// Configuration of a suite campaign.
#[derive(Debug, Clone)]
pub struct SuiteOptions {
    /// Latency bounds to evaluate on every machine (ascending).
    pub latencies: Vec<usize>,
    /// Pipeline options for the first (full-fidelity) attempt.
    pub pipeline: PipelineOptions,
    /// Wall-clock deadline per machine attempt (`None` = unlimited).
    pub machine_deadline: Option<Duration>,
    /// Work-tick cap per machine attempt (`None` = unlimited).
    pub machine_ticks: Option<u64>,
    /// Retry a failed machine once with degraded options before
    /// quarantining it (default `true`).
    pub retry_degraded: bool,
}

impl Default for SuiteOptions {
    fn default() -> SuiteOptions {
        SuiteOptions {
            latencies: vec![1, 2],
            pipeline: PipelineOptions::paper_defaults(),
            machine_deadline: None,
            machine_ticks: None,
            retry_degraded: true,
        }
    }
}

/// How a machine's campaign ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineStatus {
    /// Finished at full fidelity with a clean solver ladder.
    Completed,
    /// Finished, but only after solver-ladder degradation or a
    /// degraded-options retry.
    Degraded,
    /// Did not finish even degraded; the record keeps the failure
    /// trail and any partial progress.
    Quarantined,
}

impl fmt::Display for MachineStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MachineStatus::Completed => "completed",
            MachineStatus::Degraded => "degraded",
            MachineStatus::Quarantined => "quarantined",
        })
    }
}

impl MachineStatus {
    fn tag(self) -> u8 {
        match self {
            MachineStatus::Completed => 0,
            MachineStatus::Degraded => 1,
            MachineStatus::Quarantined => 2,
        }
    }

    fn from_tag(tag: u8) -> Result<MachineStatus, CheckpointError> {
        match tag {
            0 => Ok(MachineStatus::Completed),
            1 => Ok(MachineStatus::Degraded),
            2 => Ok(MachineStatus::Quarantined),
            t => Err(CheckpointError::Corrupt(format!("bad status tag {t}"))),
        }
    }
}

/// One machine's finished record.
///
/// `json` is the machine's rendered report fragment; it is the unit
/// the suite checkpoint stores, so a resumed campaign splices finished
/// machines back into the final report byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineRecord {
    /// Machine name.
    pub name: String,
    /// Final status.
    pub status: MachineStatus,
    /// Pipeline attempts spent (1, or 2 after a degraded retry).
    pub attempts: usize,
    /// Failure/degradation trail (empty for clean completions).
    pub notes: Vec<String>,
    /// The rendered JSON record (deterministic; spliced on resume).
    pub json: String,
}

impl MachineRecord {
    /// Serializes the record into `w` (the shared wire form used by
    /// suite checkpoints and fleet result envelopes).
    pub fn write_to(&self, w: &mut ByteWriter) {
        w.str(&self.name);
        w.u8(self.status.tag());
        w.usize(self.attempts);
        w.usize(self.notes.len());
        for n in &self.notes {
            w.str(n);
        }
        w.str(&self.json);
    }

    /// Deserializes a record written by [`MachineRecord::write_to`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any structural inconsistency.
    pub fn read_from(r: &mut ByteReader<'_>) -> Result<MachineRecord, CheckpointError> {
        let name = r.str()?;
        let status = MachineStatus::from_tag(r.u8()?)?;
        let attempts = r.usize()?;
        let n_notes = r.usize()?;
        if n_notes > 65_536 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible note count {n_notes}"
            )));
        }
        let mut notes = Vec::with_capacity(n_notes);
        for _ in 0..n_notes {
            notes.push(r.str()?);
        }
        let json = r.str()?;
        Ok(MachineRecord {
            name,
            status,
            attempts,
            notes,
            json,
        })
    }

    /// Serializes the record to a standalone payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        self.write_to(&mut w);
        w.finish()
    }

    /// Deserializes a payload produced by [`MachineRecord::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<MachineRecord, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let record = MachineRecord::read_from(&mut r)?;
        r.expect_end()?;
        Ok(record)
    }

    /// Downgrades a finished record to [`MachineStatus::Quarantined`]
    /// after an external audit (e.g. the `ced-cert` certification
    /// layer) refutes its results, appending `note` to the trail and
    /// re-rendering the stored JSON fragment with the new status. The
    /// embedded pipeline report is kept: the point of a post-hoc
    /// quarantine is that the results exist but must not be trusted.
    pub fn quarantine(&mut self, note: String) {
        self.status = MachineStatus::Quarantined;
        self.notes.push(note);
        // The fragment was rendered by `render_record`, whose only
        // unescaped `,"report":` is the top-level key (inside note
        // strings the quotes are escaped), so splitting on it recovers
        // the report fragment verbatim.
        let report = self
            .json
            .find(",\"report\":")
            .map(|i| self.json[i + ",\"report\":".len()..self.json.len() - 1].to_string());
        self.json = Json::Object(vec![
            ("name".into(), Json::str(&self.name)),
            ("status".into(), Json::Str(self.status.to_string())),
            ("attempts".into(), Json::UInt(self.attempts as u64)),
            (
                "notes".into(),
                Json::Array(self.notes.iter().map(|n| Json::str(n)).collect()),
            ),
            ("report".into(), report.map_or(Json::Null, Json::Raw)),
        ])
        .render();
    }
}

/// The finished (or partial) campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Latency bounds the campaign evaluated.
    pub latencies: Vec<usize>,
    /// One record per machine processed, in input order.
    pub records: Vec<MachineRecord>,
    /// Whether the campaign's results were re-proved by the
    /// certification layer (`ced suite --certify`); recorded in the
    /// report header so downstream readers know which trust level the
    /// numbers carry.
    pub certified: bool,
    /// Worker threads the campaign ran with (1 when serial). Header
    /// metadata only: job counts change wall-clock, never the payload,
    /// so differential comparisons normalize this one token.
    pub jobs: usize,
    /// Fault model the campaign assumed. Rendered into the report
    /// header only when non-permanent, so permanent reports stay
    /// byte-identical to pre-model ones.
    pub fault_model: FaultModel,
}

impl SuiteReport {
    fn count(&self, status: MachineStatus) -> usize {
        self.records.iter().filter(|r| r.status == status).count()
    }

    /// Machines that finished at full fidelity.
    pub fn completed(&self) -> usize {
        self.count(MachineStatus::Completed)
    }

    /// Machines that finished degraded.
    pub fn degraded(&self) -> usize {
        self.count(MachineStatus::Degraded)
    }

    /// Machines that did not finish.
    pub fn quarantined(&self) -> usize {
        self.count(MachineStatus::Quarantined)
    }

    /// Assembles a report from records merged outside [`run_suite`] (the
    /// fleet coordinator's cross-process merge). The header is pinned
    /// to `jobs: 1` / `certified: false` — per-worker job counts are a
    /// fleet-ledger detail, and certification is a separate post-hoc
    /// pass — so a fleet merge renders byte-identically to the serial
    /// single-process campaign over the same corpus.
    pub fn from_records(latencies: Vec<usize>, records: Vec<MachineRecord>) -> SuiteReport {
        SuiteReport {
            latencies,
            records,
            certified: false,
            jobs: 1,
            fault_model: FaultModel::default(),
        }
    }

    /// Renders the structured campaign report.
    ///
    /// Deterministic: no wall-clock data, insertion-ordered keys, and
    /// finished machines splice their stored fragments verbatim — an
    /// interrupted-then-resumed campaign renders byte-identically to
    /// an uninterrupted one.
    pub fn to_json(&self) -> String {
        let mut fields = vec![
            ("schema".into(), Json::str("ced-suite-report/1")),
            ("version".into(), Json::str(env!("CARGO_PKG_VERSION"))),
            ("jobs".into(), Json::UInt(self.jobs as u64)),
            ("certified".into(), Json::Bool(self.certified)),
        ];
        // Emitted only for non-permanent models: permanent reports must
        // render byte-identically to reports from before the field
        // existed (the differential suite pins this).
        if self.fault_model != FaultModel::PermanentStuckAt {
            fields.push(("fault_model".into(), Json::Str(self.fault_model.label())));
        }
        fields.extend(vec![
            (
                "latencies".into(),
                Json::Array(
                    self.latencies
                        .iter()
                        .map(|&p| Json::UInt(p as u64))
                        .collect(),
                ),
            ),
            (
                "machines".into(),
                Json::Array(
                    self.records
                        .iter()
                        .map(|r| Json::Raw(r.json.clone()))
                        .collect(),
                ),
            ),
            (
                "summary".into(),
                Json::Object(vec![
                    ("total".into(), Json::UInt(self.records.len() as u64)),
                    ("completed".into(), Json::UInt(self.completed() as u64)),
                    ("degraded".into(), Json::UInt(self.degraded() as u64)),
                    ("quarantined".into(), Json::UInt(self.quarantined() as u64)),
                ]),
            ),
        ]);
        Json::Object(fields).render()
    }
}

/// Machine-granularity resume state of an interrupted campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteCheckpoint {
    /// Report version (`CARGO_PKG_VERSION`) of the build that wrote
    /// the checkpoint. Records splice their rendered JSON verbatim on
    /// resume, so a checkpoint from another version must never merge
    /// silently into a report claiming this version.
    version: String,
    /// `--jobs` count the interrupted campaign ran with; the resumed
    /// campaign must match, or the final report header would claim a
    /// job count half the records never saw.
    jobs: u64,
    /// Fingerprint of (machine list, latencies, pipeline options).
    fingerprint: u64,
    /// Records of machines finished before the interruption.
    records: Vec<MachineRecord>,
}

impl SuiteCheckpoint {
    fn new(fingerprint: u64, jobs: usize, records: Vec<MachineRecord>) -> SuiteCheckpoint {
        SuiteCheckpoint {
            version: env!("CARGO_PKG_VERSION").to_string(),
            jobs: jobs as u64,
            fingerprint,
            records,
        }
    }

    /// The input fingerprint this checkpoint binds to.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The report version the checkpoint was written under.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The `--jobs` count the checkpointed campaign ran with.
    pub fn jobs(&self) -> u64 {
        self.jobs
    }

    /// Machines already processed.
    pub fn machines_done(&self) -> usize {
        self.records.len()
    }

    /// Serializes to a checkpoint payload (wrap with
    /// [`ced_runtime::encode_checkpoint`] using
    /// [`SUITE_CHECKPOINT_KIND`] before writing to disk).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.str(&self.version);
        w.u64(self.jobs);
        w.u64(self.fingerprint);
        w.usize(self.records.len());
        for r in &self.records {
            r.write_to(&mut w);
        }
        w.finish()
    }

    /// Deserializes a payload produced by [`SuiteCheckpoint::to_bytes`].
    ///
    /// # Errors
    ///
    /// Any structural inconsistency is a [`CheckpointError`]; nothing
    /// panics on malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<SuiteCheckpoint, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let version = r.str()?;
        let jobs = r.u64()?;
        let fingerprint = r.u64()?;
        let n = r.usize()?;
        if n > 65_536 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible machine count {n}"
            )));
        }
        let mut records = Vec::with_capacity(n);
        for _ in 0..n {
            records.push(MachineRecord::read_from(&mut r)?);
        }
        r.expect_end()?;
        Ok(SuiteCheckpoint {
            version,
            jobs,
            fingerprint,
            records,
        })
    }
}

/// Payload of [`SuiteError::Interrupted`]: where the campaign stopped
/// and everything needed to resume or report it.
#[derive(Debug)]
pub struct SuiteInterrupted {
    /// The cancellation that stopped the campaign.
    pub interrupted: Interrupted,
    /// Resume state covering every machine finished so far.
    pub checkpoint: SuiteCheckpoint,
    /// The partial report over finished machines.
    pub partial: SuiteReport,
}

/// Suite campaign failure.
#[derive(Debug)]
pub enum SuiteError {
    /// The campaign's [`CancelToken`] fired; the payload carries the
    /// resume checkpoint and the partial report.
    Interrupted(Box<SuiteInterrupted>),
    /// A resume checkpoint was built from a different machine list,
    /// latency list or option set.
    CheckpointMismatch,
    /// A resume checkpoint was written by a different report version;
    /// its spliced fragments would misrepresent this build's output.
    CheckpointVersionMismatch {
        /// Version recorded in the checkpoint.
        found: String,
        /// This build's version.
        expected: String,
    },
    /// A resume checkpoint was written under a different `--jobs`
    /// count; merging would stamp a job count half the records never
    /// ran under into the report header.
    CheckpointJobsMismatch {
        /// `--jobs` recorded in the checkpoint.
        found: u64,
        /// `--jobs` of the resuming campaign.
        expected: u64,
    },
}

impl fmt::Display for SuiteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuiteError::Interrupted(i) => write!(
                f,
                "suite {} ({} machines checkpointed)",
                i.interrupted,
                i.checkpoint.machines_done()
            ),
            SuiteError::CheckpointMismatch => write!(
                f,
                "suite resume checkpoint does not match this machine/option/latency list"
            ),
            SuiteError::CheckpointVersionMismatch { found, expected } => write!(
                f,
                "suite resume checkpoint was written by report version {found}, but this \
                 build is {expected}; rerun the campaign from scratch (or with the \
                 matching build) instead of merging records across versions"
            ),
            SuiteError::CheckpointJobsMismatch { found, expected } => write!(
                f,
                "suite resume checkpoint was written with --jobs {found}, but this run \
                 asked for --jobs {expected}; resume with --jobs {found} so the report \
                 header stays truthful"
            ),
        }
    }
}

impl std::error::Error for SuiteError {}

/// Progress callback: `(machines done, machines total, just-finished
/// record)` — the heartbeat hook.
pub type ProgressSink<'a> = &'a mut dyn FnMut(usize, usize, &MachineRecord);

/// External control of a [`run_suite`] call.
pub struct SuiteControl<'a> {
    /// Cooperative cancellation; shared with every worker budget.
    pub cancel: CancelToken,
    /// Resume from an earlier campaign's checkpoint.
    pub resume: Option<SuiteCheckpoint>,
    /// Called with the growing checkpoint after every finished machine.
    pub on_checkpoint: Option<&'a mut dyn FnMut(&SuiteCheckpoint)>,
    /// Called after every finished machine.
    pub on_progress: Option<ProgressSink<'a>>,
    /// Worker pool for the machine loop: machines run as pool tasks
    /// (attempt isolation by per-item panic capture instead of a
    /// dedicated thread per attempt), their records merged in input
    /// order, so the report is byte-identical to the serial loop at
    /// every job count. `None` keeps the serial
    /// thread-per-attempt loop. Machine-level parallelism deliberately
    /// does not nest: pooled suite workers run their pipelines with a
    /// serial build, so the thread count stays bounded by the pool.
    pub pool: Option<&'a ParExec>,
    /// Content-addressed artifact store shared by every attempt (and
    /// every pool worker — `Arc` because attempts run on their own
    /// threads). First-writer-wins puts keyed by content fingerprints
    /// make concurrent workers order-insensitive, so the report stays
    /// byte-identical at every job count, warm or cold.
    pub store: Option<Arc<Store>>,
}

impl<'a> SuiteControl<'a> {
    /// A control block with a fresh cancel token and no callbacks.
    pub fn new() -> SuiteControl<'a> {
        SuiteControl {
            cancel: CancelToken::new(),
            resume: None,
            on_checkpoint: None,
            on_progress: None,
            pool: None,
            store: None,
        }
    }
}

impl Default for SuiteControl<'static> {
    fn default() -> SuiteControl<'static> {
        SuiteControl::new()
    }
}

/// How one worker attempt ended.
enum AttemptOutcome {
    Done(CircuitReport),
    Interrupted(Interrupted, Vec<String>),
    Failed(String),
}

/// Installs (once, process-wide) a forwarding panic hook that keeps
/// captured worker-thread panics off stderr; every other thread's
/// panics still reach the previous hook.
fn install_suite_panic_hook() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if std::thread::current().name() == Some(WORKER_THREAD_NAME) {
                return;
            }
            prev(info);
        }));
    });
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The degraded-retry option set: transition-cube inputs and collapsed
/// faults — the cheapest fidelity the paper's experiment still
/// supports. Public so post-hoc auditors (the certification layer) can
/// reproduce exactly the options a two-attempt record ran under.
pub fn degraded_pipeline(p: &PipelineOptions) -> PipelineOptions {
    let mut d = p.clone();
    d.input_granularity = InputGranularity::TransitionCubes;
    d.full_fault_list = false;
    d
}

/// Fingerprint binding a checkpoint to (machines, latencies, pipeline
/// options). Per-attempt budgets (`machine_deadline`, `machine_ticks`)
/// are deliberately excluded: a resume may legitimately retune them.
///
/// Public because fleet workers re-derive it from the coordinator's
/// manifest and refuse units whose fingerprint disagrees with the
/// options they were launched with.
pub fn suite_fingerprint(machines: &[(String, Fsm)], options: &SuiteOptions) -> u64 {
    let mut w = ByteWriter::new();
    w.usize(machines.len());
    for (name, fsm) in machines {
        w.str(name);
        // KISS2 text is a canonical, process-stable serialization;
        // `Debug` is not (state lookup tables hash-order their entries).
        w.str(&ced_fsm::kiss::to_string(fsm));
    }
    w.usize(options.latencies.len());
    for &p in &options.latencies {
        w.usize(p);
    }
    let mut opts = options.pipeline.clone();
    // Wall-clock search budgets don't change deterministic results.
    opts.ced.time_budget = None;
    w.str(&format!("{opts:?}"));
    w.bool(options.retry_degraded);
    fnv1a64(&w.finish())
}

/// The pipeline attempt body: per-attempt budget assembly plus the
/// run itself, with no isolation — callers wrap it in a dedicated
/// thread ([`run_attempt`]) or a per-item panic net
/// ([`run_attempt_pooled`]).
fn attempt_body(
    fsm: &Fsm,
    latencies: &[usize],
    pipeline: &PipelineOptions,
    library: &CellLibrary,
    options: &SuiteOptions,
    cancel: &CancelToken,
    store: Option<&Store>,
) -> Result<CircuitReport, PipelineError> {
    let mut budget = Budget::new().with_cancel(cancel.clone());
    if let Some(d) = options.machine_deadline {
        budget = budget.with_deadline(d);
    }
    if let Some(t) = options.machine_ticks {
        budget = budget.with_tick_cap(t);
    }
    let mut control = PipelineControl::new(&budget);
    control.store = store;
    run_circuit_controlled(fsm, latencies, pipeline, library, control)
}

/// Classifies a joined/caught attempt result into an outcome record.
fn classify_attempt(
    joined: Result<Result<CircuitReport, PipelineError>, Box<dyn std::any::Any + Send>>,
) -> AttemptOutcome {
    match joined {
        Ok(Ok(report)) => AttemptOutcome::Done(report),
        Ok(Err(PipelineError::Interrupted(pi))) => {
            let mut progress = Vec::new();
            if let Some(ckpt) = &pi.checkpoint {
                if let Some(faults) = ckpt.build_progress() {
                    progress.push(format!("build reached fault {faults}"));
                }
                progress.push(format!(
                    "{} latency bounds completed",
                    ckpt.completed_latencies()
                ));
            }
            AttemptOutcome::Interrupted(pi.interrupted, progress)
        }
        Ok(Err(e)) => AttemptOutcome::Failed(e.to_string()),
        Err(payload) => AttemptOutcome::Failed(format!("panic: {}", panic_message(&*payload))),
    }
}

/// Runs one pipeline attempt in a named worker thread, capturing
/// panics and budget interrupts.
#[allow(clippy::too_many_arguments)]
fn run_attempt(
    name: &str,
    fsm: &Fsm,
    latencies: &[usize],
    pipeline: &PipelineOptions,
    library: &CellLibrary,
    options: &SuiteOptions,
    cancel: &CancelToken,
    store: Option<&Arc<Store>>,
) -> AttemptOutcome {
    let fsm = fsm.clone();
    let latencies = latencies.to_vec();
    let pipeline = pipeline.clone();
    let library = library.clone();
    let options = options.clone();
    let cancel = cancel.clone();
    let store = store.cloned();
    let handle = std::thread::Builder::new()
        .name(WORKER_THREAD_NAME.into())
        .spawn(move || {
            attempt_body(
                &fsm,
                &latencies,
                &pipeline,
                &library,
                &options,
                &cancel,
                store.as_deref(),
            )
        })
        .unwrap_or_else(|e| panic!("spawning worker for {name}: {e}"));
    classify_attempt(handle.join())
}

/// Runs one pipeline attempt inline on the current (pool) thread,
/// catching panics per attempt instead of spending a thread on the
/// isolation. Panic quarantine semantics are identical to
/// [`run_attempt`]: the pool's workers carry [`WORKER_THREAD_NAME`],
/// so the suite panic hook keeps captured panics off stderr, and a
/// panicking attempt poisons nothing — the worker resumes with the
/// next machine.
fn run_attempt_pooled(
    fsm: &Fsm,
    latencies: &[usize],
    pipeline: &PipelineOptions,
    library: &CellLibrary,
    options: &SuiteOptions,
    cancel: &CancelToken,
    store: Option<&Store>,
) -> AttemptOutcome {
    classify_attempt(std::panic::catch_unwind(AssertUnwindSafe(|| {
        attempt_body(fsm, latencies, pipeline, library, options, cancel, store)
    })))
}

fn render_record(
    name: &str,
    status: MachineStatus,
    attempts: usize,
    notes: &[String],
    report: Option<&CircuitReport>,
) -> String {
    Json::Object(vec![
        ("name".into(), Json::str(name)),
        ("status".into(), Json::Str(status.to_string())),
        ("attempts".into(), Json::UInt(attempts as u64)),
        (
            "notes".into(),
            Json::Array(notes.iter().map(|n| Json::str(n)).collect()),
        ),
        ("report".into(), report.map_or(Json::Null, report_to_json)),
    ])
    .render()
}

fn finish_record(
    name: &str,
    status: MachineStatus,
    attempts: usize,
    notes: Vec<String>,
    report: Option<&CircuitReport>,
) -> MachineRecord {
    let json = render_record(name, status, attempts, &notes, report);
    MachineRecord {
        name: name.to_string(),
        status,
        attempts,
        notes,
        json,
    }
}

/// Runs one machine to a final record, or returns the cancellation
/// that aborted it. Budget exhaustion (deadline/tick cap) degrades and
/// then quarantines; only cancellation stops the campaign.
fn run_machine(
    name: &str,
    fsm: &Fsm,
    options: &SuiteOptions,
    library: &CellLibrary,
    cancel: &CancelToken,
    pooled: bool,
    store: Option<&Arc<Store>>,
) -> Result<MachineRecord, Interrupted> {
    let attempt = |pipeline: &PipelineOptions| {
        if pooled {
            run_attempt_pooled(
                fsm,
                &options.latencies,
                pipeline,
                library,
                options,
                cancel,
                store.map(Arc::as_ref),
            )
        } else {
            run_attempt(
                name,
                fsm,
                &options.latencies,
                pipeline,
                library,
                options,
                cancel,
                store,
            )
        }
    };
    let mut notes = Vec::new();
    let mut attempts = 1;
    match attempt(&options.pipeline) {
        AttemptOutcome::Done(report) => {
            let ladder = degradation_notes(&report);
            let status = if ladder.is_empty() {
                MachineStatus::Completed
            } else {
                MachineStatus::Degraded
            };
            notes.extend(ladder);
            return Ok(finish_record(name, status, attempts, notes, Some(&report)));
        }
        AttemptOutcome::Interrupted(i, progress) => {
            if i.kind == InterruptKind::Cancelled {
                return Err(i);
            }
            let mut note = format!(
                "attempt 1: interrupted by budget ({:?} at {})",
                i.kind, i.progress.stage
            );
            if !progress.is_empty() {
                note.push_str(&format!("; {}", progress.join(", ")));
            }
            notes.push(note);
        }
        AttemptOutcome::Failed(msg) => {
            if cancel.is_cancelled() {
                // A panic racing the cancel: honor the cancellation.
                return Err(cancel_interrupt(cancel));
            }
            notes.push(format!("attempt 1: {msg}"));
        }
    }

    let degraded = degraded_pipeline(&options.pipeline);
    let already_degraded = degraded.input_granularity == options.pipeline.input_granularity
        && degraded.full_fault_list == options.pipeline.full_fault_list;
    if options.retry_degraded && !already_degraded {
        attempts = 2;
        notes.push(
            "retrying with degraded options (transition-cube inputs, collapsed faults)".into(),
        );
        match attempt(&degraded) {
            AttemptOutcome::Done(report) => {
                notes.extend(degradation_notes(&report));
                return Ok(finish_record(
                    name,
                    MachineStatus::Degraded,
                    attempts,
                    notes,
                    Some(&report),
                ));
            }
            AttemptOutcome::Interrupted(i, progress) => {
                if i.kind == InterruptKind::Cancelled {
                    return Err(i);
                }
                let mut note = format!(
                    "attempt 2: interrupted by budget ({:?} at {})",
                    i.kind, i.progress.stage
                );
                if !progress.is_empty() {
                    note.push_str(&format!("; {}", progress.join(", ")));
                }
                notes.push(note);
            }
            AttemptOutcome::Failed(msg) => {
                if cancel.is_cancelled() {
                    return Err(cancel_interrupt(cancel));
                }
                notes.push(format!("attempt 2: {msg}"));
            }
        }
    } else if options.retry_degraded {
        notes.push("degraded options identical to requested options; no retry".into());
    }

    Ok(finish_record(
        name,
        MachineStatus::Quarantined,
        attempts,
        notes,
        None,
    ))
}

/// A typed cancellation interrupt for suite-level control flow (e.g.
/// the token fired between machines).
fn cancel_interrupt(cancel: &CancelToken) -> Interrupted {
    Budget::new()
        .with_cancel(cancel.clone())
        .check("suite:machine")
        .expect_err("token is cancelled")
}

/// Runs the campaign: every machine in order, isolated, budgeted,
/// degraded-retried and checkpointed.
///
/// # Errors
///
/// [`SuiteError::Interrupted`] when the campaign's [`CancelToken`]
/// fires (budget exhaustion on a machine is *not* a campaign error —
/// it degrades, then quarantines that machine);
/// [`SuiteError::CheckpointMismatch`] when a resume checkpoint came
/// from different inputs.
pub fn run_suite(
    machines: &[(String, Fsm)],
    options: &SuiteOptions,
    library: &CellLibrary,
    mut control: SuiteControl<'_>,
) -> Result<SuiteReport, SuiteError> {
    install_suite_panic_hook();
    let fingerprint = suite_fingerprint(machines, options);
    let jobs = control.pool.map_or(1, ParExec::jobs);
    let mut records: Vec<MachineRecord> = Vec::new();
    if let Some(ckpt) = control.resume.take() {
        if ckpt.version != env!("CARGO_PKG_VERSION") {
            return Err(SuiteError::CheckpointVersionMismatch {
                found: ckpt.version,
                expected: env!("CARGO_PKG_VERSION").to_string(),
            });
        }
        if ckpt.jobs != jobs as u64 {
            return Err(SuiteError::CheckpointJobsMismatch {
                found: ckpt.jobs,
                expected: jobs as u64,
            });
        }
        if ckpt.fingerprint != fingerprint || ckpt.records.len() > machines.len() {
            return Err(SuiteError::CheckpointMismatch);
        }
        for (rec, (name, _)) in ckpt.records.iter().zip(machines) {
            if rec.name != *name {
                return Err(SuiteError::CheckpointMismatch);
            }
        }
        records = ckpt.records;
    }

    let total = machines.len();
    let remaining = &machines[records.len()..];
    let cancel = control.cancel.clone();
    let mut on_checkpoint = control.on_checkpoint.take();
    let mut on_progress = control.on_progress.take();
    // The pool runs machines as tasks; its streaming ordered merge
    // consumes finished records in input order as soon as their prefix
    // is complete, so per-machine checkpoints and progress heartbeats
    // fire mid-campaign exactly like the serial loop's. Pool workers
    // carry the suite worker thread name (panic-hook quarantine), and
    // `None` preserves the serial thread-per-attempt loop verbatim.
    let suite_pool = control
        .pool
        .map(|p| p.clone().with_thread_name(WORKER_THREAD_NAME));
    let mut consume = |record: MachineRecord| {
        records.push(record);
        let checkpoint = SuiteCheckpoint::new(fingerprint, jobs, records.clone());
        if let Some(sink) = on_checkpoint.as_mut() {
            sink(&checkpoint);
        }
        if let Some(progress) = on_progress.as_mut() {
            progress(records.len(), total, records.last().unwrap());
        }
    };
    let store = control.store.take();
    let outcome: Result<(), Interrupted> = match &suite_pool {
        Some(pool) => pool.for_each_ordered(
            remaining,
            |_, (name, fsm)| {
                if cancel.is_cancelled() {
                    return Err(cancel_interrupt(&cancel));
                }
                run_machine(name, fsm, options, library, &cancel, true, store.as_ref())
            },
            |_, record| consume(record),
        ),
        None => remaining.iter().try_for_each(|(name, fsm)| {
            if cancel.is_cancelled() {
                return Err(cancel_interrupt(&cancel));
            }
            let record = run_machine(name, fsm, options, library, &cancel, false, store.as_ref())?;
            consume(record);
            Ok(())
        }),
    };

    match outcome {
        Ok(()) => Ok(SuiteReport {
            latencies: options.latencies.clone(),
            records,
            certified: false,
            jobs,
            fault_model: options.pipeline.fault_model,
        }),
        Err(interrupted) => {
            let checkpoint = SuiteCheckpoint::new(fingerprint, jobs, records.clone());
            let partial = SuiteReport {
                latencies: options.latencies.clone(),
                records,
                certified: false,
                jobs,
                fault_model: options.pipeline.fault_model,
            };
            Err(SuiteError::Interrupted(Box::new(SuiteInterrupted {
                interrupted,
                checkpoint,
                partial,
            })))
        }
    }
}

/// One shard-addressable unit of a suite corpus: a machine, its
/// position in the canonical corpus order, and its canonical KISS2
/// serialization (the process-stable wire form fleet manifests carry,
/// the same text [`suite_fingerprint`] hashes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusUnit {
    /// Position in the corpus; the cross-process merge restores this
    /// order, which is what makes the fleet report byte-identical to
    /// the serial campaign's.
    pub index: usize,
    /// Machine name.
    pub name: String,
    /// Canonical KISS2 text of the machine.
    pub kiss2: String,
}

/// Splits a suite corpus into shard-addressable units, one per
/// machine, in canonical (input) order.
pub fn corpus_units(machines: &[(String, Fsm)]) -> Vec<CorpusUnit> {
    machines
        .iter()
        .enumerate()
        .map(|(index, (name, fsm))| CorpusUnit {
            index,
            name: name.clone(),
            kiss2: ced_fsm::kiss::to_string(fsm),
        })
        .collect()
}

/// Runs a single corpus unit to its final record — the fleet worker's
/// inner loop. Identical semantics to one iteration of the serial
/// [`run_suite`] machine loop (dedicated worker thread, panic capture,
/// budget, degraded retry, quarantine), so records produced by
/// separate worker processes merge byte-identically with a
/// single-process campaign.
///
/// # Errors
///
/// The [`Interrupted`] cancellation when `cancel` fires; budget
/// exhaustion is not an error (it degrades, then quarantines).
pub fn run_suite_unit(
    name: &str,
    fsm: &Fsm,
    options: &SuiteOptions,
    library: &CellLibrary,
    cancel: &CancelToken,
    store: Option<&Arc<Store>>,
) -> Result<MachineRecord, Interrupted> {
    install_suite_panic_hook();
    run_machine(name, fsm, options, library, cancel, false, store)
}

/// Builds a quarantined record for a unit no worker survived — the
/// fleet coordinator's poisonous-unit verdict. Rendered through the
/// same path as in-process quarantines (`report: null`, trail in
/// `notes`), so it splices into reports indistinguishably.
pub fn poisoned_record(name: &str, attempts: usize, notes: Vec<String>) -> MachineRecord {
    finish_record(name, MachineStatus::Quarantined, attempts, notes, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_fsm::suite as machines;

    fn small_suite() -> Vec<(String, Fsm)> {
        vec![
            ("seq".to_string(), machines::sequence_detector()),
            ("adder".to_string(), machines::serial_adder()),
        ]
    }

    fn fast_options() -> SuiteOptions {
        SuiteOptions {
            latencies: vec![1],
            ..SuiteOptions::default()
        }
    }

    #[test]
    fn clean_suite_completes_every_machine() {
        let report = run_suite(
            &small_suite(),
            &fast_options(),
            &CellLibrary::new(),
            SuiteControl::new(),
        )
        .unwrap();
        assert_eq!(report.completed(), 2);
        assert_eq!(report.quarantined(), 0);
        let json = report.to_json();
        assert!(json.starts_with("{\"schema\":\"ced-suite-report/1\""));
        assert!(json.contains("\"name\":\"seq\""));
        assert!(json.contains("\"total\":2"));
    }

    #[test]
    fn report_header_records_version_and_certify_flag() {
        let mut report = run_suite(
            &small_suite()[..1],
            &fast_options(),
            &CellLibrary::new(),
            SuiteControl::new(),
        )
        .unwrap();
        let json = report.to_json();
        assert!(
            json.starts_with(&format!(
                "{{\"schema\":\"ced-suite-report/1\",\"version\":\"{}\",\"jobs\":1,\"certified\":false",
                env!("CARGO_PKG_VERSION")
            )),
            "{json}"
        );
        report.certified = true;
        assert!(report.to_json().contains("\"certified\":true"));
    }

    #[test]
    fn post_hoc_quarantine_rerenders_the_record() {
        let report = run_suite(
            &small_suite()[..1],
            &fast_options(),
            &CellLibrary::new(),
            SuiteControl::new(),
        )
        .unwrap();
        let mut rec = report.records[0].clone();
        assert_eq!(rec.status, MachineStatus::Completed);
        assert!(rec.json.contains("\"masks\""), "{}", rec.json);
        rec.quarantine("certification refuted q at p=1".into());
        assert_eq!(rec.status, MachineStatus::Quarantined);
        assert!(
            rec.json.contains("\"status\":\"quarantined\""),
            "{}",
            rec.json
        );
        assert!(rec.json.contains("certification refuted q"), "{}", rec.json);
        // The pipeline report fragment survives the re-render verbatim.
        let original = &report.records[0].json;
        let frag_at = |j: &str| {
            j.find(",\"report\":")
                .map(|i| j[i..j.len() - 1].to_string())
        };
        assert_eq!(frag_at(original), frag_at(&rec.json));
        assert!(frag_at(&rec.json).unwrap().contains("\"masks\""));
    }

    #[test]
    fn suite_json_is_deterministic() {
        let lib = CellLibrary::new();
        let opts = fast_options();
        let a = run_suite(&small_suite(), &opts, &lib, SuiteControl::new()).unwrap();
        let b = run_suite(&small_suite(), &opts, &lib, SuiteControl::new()).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn shared_store_keeps_suite_json_byte_identical_warm_and_cold() {
        let lib = CellLibrary::new();
        let opts = fast_options();
        let plain = run_suite(&small_suite(), &opts, &lib, SuiteControl::new()).unwrap();

        let store = Arc::new(Store::in_memory());
        let mut cold = SuiteControl::new();
        cold.store = Some(Arc::clone(&store));
        let cold_report = run_suite(&small_suite(), &opts, &lib, cold).unwrap();
        let puts: u64 = store.stats().stages.iter().map(|(_, c)| c.puts).sum();
        assert!(puts > 0, "cold suite run must populate the store");

        let mut warm = SuiteControl::new();
        warm.store = Some(Arc::clone(&store));
        let warm_report = run_suite(&small_suite(), &opts, &lib, warm).unwrap();
        let hits: u64 = store.stats().stages.iter().map(|(_, c)| c.hits).sum();
        assert!(hits > 0, "warm suite run must hit the store");

        assert_eq!(plain.to_json(), cold_report.to_json());
        assert_eq!(plain.to_json(), warm_report.to_json());
    }

    #[test]
    fn tight_tick_cap_quarantines_without_panicking() {
        let opts = SuiteOptions {
            machine_ticks: Some(1),
            retry_degraded: false,
            ..fast_options()
        };
        let report = run_suite(
            &small_suite(),
            &opts,
            &CellLibrary::new(),
            SuiteControl::new(),
        )
        .unwrap();
        assert_eq!(report.quarantined(), 2);
        for r in &report.records {
            assert_eq!(r.attempts, 1);
            assert!(
                r.notes.iter().any(|n| n.contains("interrupted by budget")),
                "{:?}",
                r.notes
            );
            assert!(r.json.contains("\"report\":null"));
        }
    }

    #[test]
    fn degraded_retry_is_recorded() {
        // Exhaustive granularity + full faults on attempt 1 under an
        // impossible tick cap; the degraded retry also fails, so both
        // attempts land in the notes.
        let mut opts = SuiteOptions {
            machine_ticks: Some(1),
            ..fast_options()
        };
        opts.pipeline.input_granularity = InputGranularity::Exhaustive;
        opts.pipeline.full_fault_list = true;
        let report = run_suite(
            &small_suite()[..1],
            &opts,
            &CellLibrary::new(),
            SuiteControl::new(),
        )
        .unwrap();
        let rec = &report.records[0];
        assert_eq!(rec.status, MachineStatus::Quarantined);
        assert_eq!(rec.attempts, 2);
        assert!(
            rec.notes
                .iter()
                .any(|n| n.contains("retrying with degraded options")),
            "{:?}",
            rec.notes
        );
    }

    #[test]
    fn pre_cancelled_suite_interrupts_with_empty_checkpoint() {
        let control = SuiteControl::new();
        control.cancel.cancel();
        let err = run_suite(
            &small_suite(),
            &fast_options(),
            &CellLibrary::new(),
            control,
        )
        .unwrap_err();
        match err {
            SuiteError::Interrupted(i) => {
                assert_eq!(i.interrupted.kind, InterruptKind::Cancelled);
                assert_eq!(i.checkpoint.machines_done(), 0);
                assert!(i.partial.records.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checkpoint_round_trips_bit_exactly() {
        let mut captured = None;
        let mut control = SuiteControl::new();
        let mut sink = |c: &SuiteCheckpoint| captured = Some(c.clone());
        control.on_checkpoint = Some(&mut sink);
        run_suite(
            &small_suite(),
            &fast_options(),
            &CellLibrary::new(),
            control,
        )
        .unwrap();
        let ckpt = captured.unwrap();
        assert_eq!(ckpt.machines_done(), 2);
        let bytes = ckpt.to_bytes();
        let back = SuiteCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back, ckpt);
        assert_eq!(back.to_bytes(), bytes);
    }

    #[test]
    fn foreign_checkpoint_is_rejected() {
        let machines = small_suite();
        let opts = fast_options();
        let lib = CellLibrary::new();
        let mut captured = None;
        let mut control = SuiteControl::new();
        let mut sink = |c: &SuiteCheckpoint| captured = Some(c.clone());
        control.on_checkpoint = Some(&mut sink);
        run_suite(&machines, &opts, &lib, control).unwrap();
        // Same checkpoint, different latency list → different fingerprint.
        let mut other = opts.clone();
        other.latencies = vec![1, 2];
        let mut control = SuiteControl::new();
        control.resume = captured;
        match run_suite(&machines, &other, &lib, control) {
            Err(SuiteError::CheckpointMismatch) => {}
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn resumed_suite_report_is_byte_identical() {
        let machines = small_suite();
        let opts = fast_options();
        let lib = CellLibrary::new();

        let uninterrupted = run_suite(&machines, &opts, &lib, SuiteControl::new()).unwrap();

        // Cancel after the first machine finishes.
        let control = SuiteControl::new();
        let cancel = control.cancel.clone();
        let mut control = control;
        let mut checkpoint = None;
        let mut sink = |c: &SuiteCheckpoint| {
            checkpoint = Some(c.clone());
            cancel.cancel();
        };
        control.on_checkpoint = Some(&mut sink);
        let err = run_suite(&machines, &opts, &lib, control).unwrap_err();
        let SuiteError::Interrupted(i) = err else {
            panic!("expected interruption");
        };
        assert_eq!(i.checkpoint.machines_done(), 1);

        let mut control = SuiteControl::new();
        control.resume = checkpoint;
        let resumed = run_suite(&machines, &opts, &lib, control).unwrap();
        assert_eq!(resumed.to_json(), uninterrupted.to_json());
    }

    #[test]
    fn corrupted_checkpoint_payload_is_typed() {
        let ckpt = SuiteCheckpoint::new(
            7,
            1,
            vec![MachineRecord {
                name: "m".into(),
                status: MachineStatus::Completed,
                attempts: 1,
                notes: vec![],
                json: "{}".into(),
            }],
        );
        let mut bytes = ckpt.to_bytes();
        // Layout: version (8-byte len + text), jobs u64, fingerprint
        // u64, machine count usize, name (8-byte len + "m"), status tag.
        let tag_at = 8 + env!("CARGO_PKG_VERSION").len() + 8 + 8 + 8 + 8 + 1;
        assert_eq!(bytes[tag_at], MachineStatus::Completed.tag());
        bytes[tag_at] = 0xFF;
        assert!(SuiteCheckpoint::from_bytes(&bytes).is_err());
        assert!(SuiteCheckpoint::from_bytes(&bytes[..4]).is_err());
    }

    /// Re-serializes a checkpoint with a forged version/jobs header —
    /// standing in for a checkpoint written by another build.
    fn forged_checkpoint(version: &str, jobs: u64, ckpt: &SuiteCheckpoint) -> SuiteCheckpoint {
        let mut w = ByteWriter::new();
        w.str(version);
        w.u64(jobs);
        w.u64(ckpt.fingerprint);
        w.usize(ckpt.records.len());
        for r in &ckpt.records {
            r.write_to(&mut w);
        }
        SuiteCheckpoint::from_bytes(&w.finish()).unwrap()
    }

    fn first_checkpoint(machines: &[(String, Fsm)], opts: &SuiteOptions) -> SuiteCheckpoint {
        let mut captured = None;
        let mut control = SuiteControl::new();
        let mut sink = |c: &SuiteCheckpoint| captured = Some(c.clone());
        control.on_checkpoint = Some(&mut sink);
        run_suite(machines, opts, &CellLibrary::new(), control).unwrap();
        captured.unwrap()
    }

    #[test]
    fn checkpoint_from_other_version_hard_errors() {
        let machines = small_suite();
        let opts = fast_options();
        let ckpt = first_checkpoint(&machines, &opts);
        let mut control = SuiteControl::new();
        control.resume = Some(forged_checkpoint("0.0.0-other", 1, &ckpt));
        match run_suite(&machines, &opts, &CellLibrary::new(), control) {
            Err(SuiteError::CheckpointVersionMismatch { found, expected }) => {
                assert_eq!(found, "0.0.0-other");
                assert_eq!(expected, env!("CARGO_PKG_VERSION"));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn checkpoint_from_other_jobs_count_hard_errors() {
        let machines = small_suite();
        let opts = fast_options();
        let ckpt = first_checkpoint(&machines, &opts);
        assert_eq!(ckpt.jobs(), 1);
        let mut control = SuiteControl::new();
        control.resume = Some(forged_checkpoint(env!("CARGO_PKG_VERSION"), 4, &ckpt));
        let err = run_suite(&machines, &opts, &CellLibrary::new(), control).unwrap_err();
        assert!(err.to_string().contains("--jobs 4"), "{err}");
        match err {
            SuiteError::CheckpointJobsMismatch { found, expected } => {
                assert_eq!((found, expected), (4, 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn corpus_units_are_canonical_and_ordered() {
        let machines = small_suite();
        let units = corpus_units(&machines);
        assert_eq!(units.len(), 2);
        assert_eq!(units[0].index, 0);
        assert_eq!(units[0].name, "seq");
        assert_eq!(units[1].index, 1);
        // The KISS2 text round-trips to an identical canonical form
        // (the property the fleet manifest relies on).
        let back = ced_fsm::kiss::parse(&units[0].kiss2).unwrap();
        assert_eq!(ced_fsm::kiss::to_string(&back), units[0].kiss2);
    }

    #[test]
    fn unit_records_match_serial_suite_records() {
        let machines = small_suite();
        let opts = fast_options();
        let lib = CellLibrary::new();
        let serial = run_suite(&machines, &opts, &lib, SuiteControl::new()).unwrap();
        let cancel = CancelToken::new();
        for (i, (name, fsm)) in machines.iter().enumerate() {
            let rec = run_suite_unit(name, fsm, &opts, &lib, &cancel, None).unwrap();
            assert_eq!(rec, serial.records[i]);
        }
        let merged = SuiteReport::from_records(opts.latencies.clone(), serial.records.clone());
        assert_eq!(merged.to_json(), serial.to_json());
    }

    #[test]
    fn poisoned_record_renders_like_a_quarantine() {
        let rec = poisoned_record("dk512", 3, vec!["killed 3 workers".into()]);
        assert_eq!(rec.status, MachineStatus::Quarantined);
        assert_eq!(rec.attempts, 3);
        assert!(rec.json.contains("\"status\":\"quarantined\""));
        assert!(rec.json.contains("\"report\":null"));
        assert!(rec.json.contains("killed 3 workers"));
        assert_eq!(MachineRecord::from_bytes(&rec.to_bytes()).unwrap(), rec);
    }
}
