//! Property-based tests for the optimization core: every solver output
//! must satisfy Statement 4 exactly; the LP relaxation must never call
//! a feasible instance infeasible; the binary search must respect the
//! singleton upper bound and exact lower bound.

use ced_core::exact::exact_minimum_cover;
use ced_core::greedy::{greedy_cover, GreedyOptions};
use ced_core::ip::{verify_cover, ParityCover};
use ced_core::relax::{build_relaxation, LpForm};
use ced_core::search::{minimize_parity_functions, CedOptions};
use ced_lp::solve;
use ced_sim::detect::{DetectabilityTable, EcRow};
use proptest::prelude::*;

/// Strategy: a random detectability table over `n ≤ 8` bits, latency
/// ≤ 3, with nonzero first steps (the structural invariant of built
/// tables).
fn table_strategy() -> impl Strategy<Value = DetectabilityTable> {
    (2usize..=8, 1usize..=3).prop_flat_map(|(n, p)| {
        let mask = (1u64 << n) - 1;
        proptest::collection::vec(proptest::collection::vec(0..=mask, p), 1..20).prop_map(
            move |mut rows| {
                for row in rows.iter_mut() {
                    if row[0] == 0 {
                        row[0] = 1;
                    }
                }
                DetectabilityTable::from_rows(
                    n,
                    p,
                    rows.into_iter().map(|steps| EcRow { steps }).collect(),
                )
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn search_output_always_verifies(table in table_strategy()) {
        let out = minimize_parity_functions(&table, &CedOptions {
            iterations: 300,
            ..CedOptions::default()
        });
        prop_assert!(verify_cover(&table, &out.cover).is_ok());
        prop_assert!(out.q <= table.num_bits());
        prop_assert_eq!(out.q, out.cover.len());
    }

    #[test]
    fn greedy_output_always_verifies(table in table_strategy()) {
        let cover = greedy_cover(&table, &GreedyOptions::default());
        prop_assert!(verify_cover(&table, &cover).is_ok());
    }

    #[test]
    fn exact_is_a_true_lower_bound(table in table_strategy()) {
        let exact = exact_minimum_cover(&table).expect("n ≤ 8");
        prop_assert!(verify_cover(&table, &exact).is_ok());
        let heur = minimize_parity_functions(&table, &CedOptions::default());
        prop_assert!(exact.len() <= heur.q,
            "exact {} beats heuristic {}", exact.len(), heur.q);
        let greedy = greedy_cover(&table, &GreedyOptions::default());
        prop_assert!(exact.len() <= greedy.len());
    }

    #[test]
    fn lp_feasible_whenever_integral_cover_exists(table in table_strategy()) {
        // The singleton cover always exists with q = n; the LP relaxation
        // at q = n must therefore be feasible (it contains that point).
        let n = table.num_bits();
        let rows: Vec<usize> = (0..table.len()).collect();
        let relax = build_relaxation(&table, n, LpForm::Symmetric, &rows);
        prop_assert!(solve(&relax.lp).is_ok(), "LP infeasible at q = n");
    }

    #[test]
    fn lp_relaxation_lower_bounds_integral_q(table in table_strategy()) {
        // If the LP is infeasible at some q, no integral cover of size q
        // exists; cross-check against the exact solver.
        let exact = exact_minimum_cover(&table).expect("n ≤ 8").len();
        for q in 1..exact {
            let rows: Vec<usize> = (0..table.len()).collect();
            let relax = build_relaxation(&table, q, LpForm::Symmetric, &rows);
            // The LP may be feasible (fractional) below the integral
            // optimum — but if it is INfeasible, q must be < exact.
            if solve(&relax.lp).is_err() {
                prop_assert!(q < exact);
            }
        }
        // And at q = exact it must be feasible.
        let rows: Vec<usize> = (0..table.len()).collect();
        let relax = build_relaxation(&table, exact.max(1), LpForm::Symmetric, &rows);
        prop_assert!(solve(&relax.lp).is_ok());
    }

    #[test]
    fn detection_latency_profile_is_consistent(table in table_strategy()) {
        let out = minimize_parity_functions(&table, &CedOptions::default());
        let profile = ced_core::ip::detection_latencies(&table, &out.cover);
        prop_assert_eq!(profile.len(), table.len());
        for (i, lat) in profile.iter().enumerate() {
            match lat {
                Some(k) => prop_assert!(*k >= 1 && *k <= table.latency(),
                    "row {i} latency {k} out of range"),
                None => prop_assert!(false, "row {i} uncovered by verified cover"),
            }
        }
    }

    #[test]
    fn parity_cover_dedup_invariants(masks in proptest::collection::vec(0u64..256, 0..10)) {
        let cover = ParityCover::new(masks.clone());
        // No zeros, no duplicates, order of first occurrence preserved.
        prop_assert!(!cover.masks.contains(&0));
        let mut seen = std::collections::HashSet::new();
        for m in &cover.masks {
            prop_assert!(seen.insert(*m), "duplicate {m}");
            prop_assert!(masks.contains(m));
        }
    }
}
