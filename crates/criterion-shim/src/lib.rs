//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach crates.io, so the workspace
//! vendors the small slice of criterion's API its benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], and the `criterion_group!`/`criterion_main!`
//! macros. Instead of criterion's statistical engine, each benchmark
//! runs a short warm-up followed by a fixed number of timed samples
//! and prints median/min per-iteration wall-clock times. `--bench`
//! and benchmark-name filter arguments are accepted and the filter is
//! honored, so `cargo bench <name>` behaves as expected.

use std::time::{Duration, Instant};

/// Measures one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Times `routine`, keeping its output alive so the optimizer
    /// cannot delete the work.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: one untimed call (fills caches, triggers lazy init).
        std::hint::black_box(routine());
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

/// Identifies a parameterized benchmark, mirroring
/// `criterion::BenchmarkId`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    /// An id rendered as `name/parameter`.
    pub fn new(name: impl std::fmt::Display, parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: format!("{name}/{parameter}"),
        }
    }

    /// An id consisting of the parameter alone.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            full: parameter.to_string(),
        }
    }
}

/// Anything usable as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The rendered benchmark name.
    fn into_name(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_name(self) -> String {
        self.full
    }
}

impl IntoBenchmarkId for &str {
    fn into_name(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_name(self) -> String {
        self
    }
}

/// Top-level harness state, mirroring `criterion::Criterion`.
#[derive(Debug)]
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // cargo bench passes `--bench` plus an optional name filter;
        // honor the filter, ignore harness tuning flags.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_count: 10,
        }
    }

    /// Runs a standalone benchmark (no group).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Criterion {
        run_benchmark(self, id.to_string(), 10, f);
        self
    }

    fn matches(&self, name: &str) -> bool {
        match &self.filter {
            Some(f) => name.contains(f.as_str()),
            None => true,
        }
    }
}

/// A named group of benchmarks with shared sampling settings.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim's cost is governed by
    /// `sample_size` alone.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into_name());
        run_benchmark(self.criterion, full, self.sample_count, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: impl IntoBenchmarkId, input: &I, f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut f = f;
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (report output already happened per benchmark).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(
    criterion: &Criterion,
    name: String,
    sample_count: usize,
    mut f: F,
) {
    if !criterion.matches(&name) {
        return;
    }
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut bencher);
    let mut sorted = bencher.samples.clone();
    sorted.sort();
    let median = sorted.get(sorted.len() / 2).copied().unwrap_or_default();
    let min = sorted.first().copied().unwrap_or_default();
    println!("bench {name:<48} median {median:>12.3?}  min {min:>12.3?}");
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bench_squares(c: &mut Criterion) {
        let mut group = c.benchmark_group("squares");
        group.sample_size(3);
        group.bench_function("sum", |b| {
            b.iter(|| (0u64..100).map(|x| x * x).sum::<u64>())
        });
        group.bench_with_input(BenchmarkId::new("upto", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).map(|x| x * x).sum::<u64>())
        });
        group.finish();
    }

    criterion_group!(benches, bench_squares);

    #[test]
    fn harness_runs_group() {
        benches();
    }

    #[test]
    fn benchmark_id_rendering() {
        assert_eq!(BenchmarkId::new("a", 3).into_name(), "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").into_name(), "x");
    }
}
