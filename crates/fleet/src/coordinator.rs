//! The fleet coordinator: shards the corpus, watches leases, expires
//! dead workers, quarantines poisonous units, merges deterministically.

use crate::error::FleetError;
use crate::proto::{
    FleetDir, FleetLedger, FleetManifest, LedgerAction, LedgerEvent, UnitResult, UnitToken,
    FLEET_LEDGER_KIND, FLEET_MANIFEST_KIND, FLEET_RESULT_KIND, FLEET_UNIT_KIND,
};
use ced_core::{corpus_units, poisoned_record, suite_fingerprint, SuiteOptions, SuiteReport};
use ced_fsm::machine::Fsm;
use ced_runtime::{load_checkpoint, mtime_age, publish_envelope, CancelToken};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

/// Tag coordinator-published envelopes carry in their temp-file names.
const COORD_TAG: &str = "coordinator";

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordinatorOptions {
    /// A lease whose mtime is older than this is a dead worker's.
    pub heartbeat_timeout: Duration,
    /// Sleep between watchdog sweeps.
    pub poll_interval: Duration,
    /// Assignments a unit gets before it is quarantined as poisonous
    /// (counting the first); the fleet analogue of the suite's
    /// retry-then-quarantine policy.
    pub max_attempts: u64,
    /// Base of the capped exponential re-assignment backoff.
    pub backoff_base: Duration,
    /// Cap of the re-assignment backoff.
    pub backoff_cap: Duration,
}

impl Default for CoordinatorOptions {
    fn default() -> CoordinatorOptions {
        CoordinatorOptions {
            heartbeat_timeout: Duration::from_secs(10),
            poll_interval: Duration::from_millis(50),
            max_attempts: 3,
            backoff_base: Duration::from_millis(100),
            backoff_cap: Duration::from_secs(5),
        }
    }
}

/// What a finished campaign produced.
#[derive(Debug)]
pub struct FleetOutcome {
    /// The merged report (also written to `fleet/report.json`).
    pub report: SuiteReport,
    /// The full lease ledger (also written to `fleet/ledger.ced`).
    pub ledger: FleetLedger,
    /// Units quarantined as poisonous (killed every assigned worker).
    pub poisoned_units: usize,
    /// Lease expiries (dead workers whose unit was re-assigned).
    pub reassigned: usize,
}

/// Capped exponential backoff before re-assigning attempt `n`'s
/// replacement (so a unit that keeps killing workers drains slowly
/// instead of hot-looping the fleet).
fn backoff(opts: &CoordinatorOptions, attempt: u64) -> Duration {
    let factor = 1u32 << attempt.saturating_sub(1).min(16) as u32;
    opts.backoff_base
        .saturating_mul(factor)
        .min(opts.backoff_cap)
}

/// A lease file's `(unit index, worker id)` parsed from its name
/// (`unit-NNNN.<worker>.lease`); `None` for foreign files.
fn parse_lease_name(name: &str) -> Option<(usize, String)> {
    let rest = name.strip_prefix("unit-")?;
    let mut parts = rest.split('.');
    let index: usize = parts.next()?.parse().ok()?;
    let worker = parts.next()?.to_string();
    match (parts.next(), parts.next()) {
        (Some("lease"), None) => Some((index, worker)),
        _ => None,
    }
}

/// Runs a fleet campaign to completion as its coordinator.
///
/// Publishes the manifest and one work unit per machine under
/// `<store>/fleet/`, then watches: completed units are collected from
/// `done/`, stale leases (heartbeat older than
/// [`CoordinatorOptions::heartbeat_timeout`]) are expired and their
/// units re-queued with capped exponential backoff, and a unit that
/// exhausts [`CoordinatorOptions::max_attempts`] assignments is
/// quarantined as poisonous with a coordinator-written record. When
/// every unit is accounted for, the results are merged in corpus order
/// into a `ced-suite-report/1` that is byte-identical to a serial
/// single-process [`ced_core::run_suite`] over the same corpus (as
/// long as no unit was poisoned), written to `fleet/report.json`.
///
/// Re-running a crashed coordinator over the same directory resumes:
/// finished units stay finished, pending and leased units proceed.
///
/// # Errors
///
/// [`FleetError::FingerprintMismatch`] / [`FleetError::VersionMismatch`]
/// when the directory already holds a different campaign;
/// [`FleetError::Interrupted`] when `cancel` fires;
/// [`FleetError::LedgerAccounting`] when the final ledger fails its
/// own audit (a bug, not an environment failure).
pub fn run_coordinator(
    store_dir: &Path,
    machines: &[(String, Fsm)],
    options: &SuiteOptions,
    copts: &CoordinatorOptions,
    cancel: &CancelToken,
) -> Result<FleetOutcome, FleetError> {
    let dir = FleetDir::new(store_dir);
    for d in [dir.root(), &dir.pending(), &dir.leased(), &dir.done()] {
        fs::create_dir_all(d).map_err(|e| FleetError::io(d, &e))?;
    }

    let fingerprint = suite_fingerprint(machines, options);
    let units = corpus_units(machines);
    let manifest = FleetManifest {
        version: env!("CARGO_PKG_VERSION").to_string(),
        fingerprint,
        latencies: options.latencies.clone(),
        units: units
            .iter()
            .map(|u| (u.name.clone(), u.kiss2.clone()))
            .collect(),
    };
    match load_checkpoint(&dir.manifest(), FLEET_MANIFEST_KIND) {
        Ok(payload) => {
            // Resuming: the directory's campaign must be this one.
            let existing = FleetManifest::from_bytes(&payload)?;
            if existing.version != manifest.version {
                return Err(FleetError::VersionMismatch {
                    found: existing.version,
                    expected: manifest.version,
                });
            }
            if existing.fingerprint != fingerprint {
                return Err(FleetError::FingerprintMismatch {
                    found: existing.fingerprint,
                    expected: fingerprint,
                });
            }
        }
        Err(_) => {
            publish_envelope(
                &dir.manifest(),
                FLEET_MANIFEST_KIND,
                &manifest.to_bytes(),
                COORD_TAG,
            )?;
        }
    }

    let total = units.len();
    // A restarted coordinator adopts the ledger its predecessor
    // persisted, so accounting spans coordinator crashes too.
    let mut ledger = load_checkpoint(&dir.ledger(), FLEET_LEDGER_KIND)
        .ok()
        .and_then(|p| FleetLedger::from_bytes(&p).ok())
        .unwrap_or_default();
    // Current assignment number per unit (grows on every re-assign).
    let mut attempts: Vec<u64> = (0..total as u64)
        .map(|unit| {
            ledger
                .events
                .iter()
                .filter(|e| e.unit == unit)
                .map(|e| e.attempt)
                .max()
                .unwrap_or(1)
        })
        .collect();
    let mut done: BTreeSet<usize> = BTreeSet::new();
    // Units waiting out their re-assignment backoff.
    let mut requeue: Vec<(Instant, UnitToken)> = Vec::new();
    let mut poisoned_units = 0usize;
    let mut reassigned = 0usize;

    let publish_token = |index: usize, attempt: u64| -> Result<(), FleetError> {
        publish_envelope(
            &dir.pending_unit(index),
            FLEET_UNIT_KIND,
            &UnitToken {
                index: index as u64,
                attempt,
            }
            .to_bytes(),
            COORD_TAG,
        )
        .map_err(FleetError::from)
    };

    while done.len() < total {
        if cancel.is_cancelled() {
            return Err(FleetError::Interrupted);
        }

        // Collect newly finished units.
        for (index, &attempt_now) in attempts.iter().enumerate() {
            if done.contains(&index) {
                continue;
            }
            let path = dir.done_unit(index);
            if !path.exists() {
                continue;
            }
            let decoded = load_checkpoint(&path, FLEET_RESULT_KIND)
                .ok()
                .and_then(|p| UnitResult::from_bytes(&p).ok())
                .filter(|r| r.index as usize == index);
            match decoded {
                Some(result) => {
                    done.insert(index);
                    // An adopted (resume) ledger may already hold the
                    // terminal event for this unit.
                    if ledger.terminal(index as u64).is_none() {
                        ledger.events.push(LedgerEvent {
                            unit: index as u64,
                            action: if result.poisoned {
                                LedgerAction::Quarantined
                            } else {
                                LedgerAction::Completed
                            },
                            attempt: attempt_now,
                            worker: String::new(),
                        });
                    }
                }
                // Corrupt, truncated or mis-indexed result: drop it
                // and let the orphan sweep republish the unit.
                None => {
                    let _ = fs::remove_file(&path);
                }
            }
        }

        // Expire stale leases (dead workers).
        let leases = fs::read_dir(dir.leased()).map_err(|e| FleetError::io(&dir.leased(), &e))?;
        for entry in leases.flatten() {
            let name = entry.file_name().to_string_lossy().into_owned();
            let Some((index, worker)) = parse_lease_name(&name) else {
                continue;
            };
            let path = entry.path();
            if done.contains(&index) {
                // Finished but the worker died before tidying its
                // lease (or published late after an expiry).
                let _ = fs::remove_file(&path);
                continue;
            }
            let stale = mtime_age(&path).is_none_or(|age| age > copts.heartbeat_timeout);
            if !stale {
                continue;
            }
            let attempt = load_checkpoint(&path, FLEET_UNIT_KIND)
                .ok()
                .and_then(|p| UnitToken::from_bytes(&p).ok())
                .map_or(attempts[index], |t| t.attempt);
            let _ = fs::remove_file(&path);
            if attempt >= copts.max_attempts {
                // Poisonous: this unit has now killed max_attempts
                // workers. Quarantine it with a coordinator record.
                let notes = vec![format!(
                    "fleet: unit killed {attempt} workers (last: {worker}); \
                     quarantined as poisonous"
                )];
                let record = poisoned_record(&units[index].name, attempt as usize, notes);
                publish_envelope(
                    &dir.done_unit(index),
                    FLEET_RESULT_KIND,
                    &UnitResult {
                        index: index as u64,
                        poisoned: true,
                        record,
                    }
                    .to_bytes(),
                    COORD_TAG,
                )?;
                done.insert(index);
                poisoned_units += 1;
                attempts[index] = attempt;
                ledger.events.push(LedgerEvent {
                    unit: index as u64,
                    action: LedgerAction::Quarantined,
                    attempt,
                    worker,
                });
            } else {
                let next = attempt + 1;
                attempts[index] = next;
                reassigned += 1;
                ledger.events.push(LedgerEvent {
                    unit: index as u64,
                    action: LedgerAction::Reassigned,
                    attempt,
                    worker,
                });
                requeue.push((
                    Instant::now() + backoff(copts, attempt),
                    UnitToken {
                        index: index as u64,
                        attempt: next,
                    },
                ));
            }
        }

        // Publish re-assignments whose backoff elapsed.
        let now = Instant::now();
        let mut still_waiting = Vec::new();
        for (due, token) in requeue.drain(..) {
            if done.contains(&(token.index as usize)) {
                continue;
            }
            if due <= now {
                publish_token(token.index as usize, token.attempt)?;
            } else {
                still_waiting.push((due, token));
            }
        }
        requeue = still_waiting;

        // Orphan sweep: a unit that is nowhere (no done result, no
        // pending token, no lease, no scheduled re-queue) gets its
        // token (re)published. On a fresh campaign this is the initial
        // publish; later it heals lost or corrupted token files.
        for (index, unit) in units.iter().enumerate() {
            if done.contains(&index)
                || dir.pending_unit(index).exists()
                || requeue.iter().any(|(_, t)| t.index as usize == index)
            {
                continue;
            }
            let leased = fs::read_dir(dir.leased())
                .map_err(|e| FleetError::io(&dir.leased(), &e))?
                .flatten()
                .any(|e| {
                    parse_lease_name(&e.file_name().to_string_lossy())
                        .is_some_and(|(i, _)| i == index)
                });
            if leased {
                continue;
            }
            publish_token(index, attempts[index])?;
            ledger.events.push(LedgerEvent {
                unit: index as u64,
                action: LedgerAction::Published,
                attempt: attempts[index],
                worker: String::new(),
            });
            debug_assert_eq!(units[index].index, unit.index);
        }

        publish_envelope(
            &dir.ledger(),
            FLEET_LEDGER_KIND,
            &ledger.to_bytes(),
            COORD_TAG,
        )?;
        if done.len() < total {
            std::thread::sleep(copts.poll_interval);
        }
    }

    // Deterministic merge: results in corpus order, reassembled into
    // the same report the serial single-process campaign renders.
    let mut records = Vec::with_capacity(total);
    for (index, unit) in units.iter().enumerate() {
        let payload = load_checkpoint(&dir.done_unit(index), FLEET_RESULT_KIND)?;
        let result = UnitResult::from_bytes(&payload)?;
        if result.record.name != unit.name {
            return Err(FleetError::Corrupt(format!(
                "done unit {index} carries record for {}, expected {}",
                result.record.name, unit.name
            )));
        }
        records.push(result.record);
    }
    let mut report = SuiteReport::from_records(options.latencies.clone(), records);
    // The merged report must render the fault model the shards ran
    // under (the manifest fingerprint already rejected mismatched
    // workers, so every record used this model).
    report.fault_model = options.pipeline.fault_model;
    write_report_atomic(&dir, &report.to_json())?;

    publish_envelope(
        &dir.ledger(),
        FLEET_LEDGER_KIND,
        &ledger.to_bytes(),
        COORD_TAG,
    )?;
    if let Err(unit) = ledger.check_accounting(total) {
        return Err(FleetError::LedgerAccounting(unit));
    }
    Ok(FleetOutcome {
        report,
        ledger,
        poisoned_units,
        reassigned,
    })
}

/// Writes `fleet/report.json` via a temp sibling + rename. No
/// trailing newline — byte-identical to what `ced suite --out` writes
/// for the same corpus.
fn write_report_atomic(dir: &FleetDir, json: &str) -> Result<(), FleetError> {
    let path = dir.report();
    let tmp = dir.root().join(".report.json.tmp-coordinator");
    fs::write(&tmp, json).map_err(|e| FleetError::io(&tmp, &e))?;
    fs::rename(&tmp, &path).map_err(|e| FleetError::io(&path, &e))
}
