//! Typed fleet failures.

use ced_runtime::CheckpointError;
use std::fmt;
use std::path::Path;

/// Why a coordinator or worker gave up.
#[derive(Debug)]
pub enum FleetError {
    /// An envelope failed to read, decode or write.
    Checkpoint(CheckpointError),
    /// The campaign directory belongs to a different report version.
    VersionMismatch {
        /// Version in the existing manifest.
        found: String,
        /// This build's version.
        expected: String,
    },
    /// The campaign's options fingerprint disagrees with the one this
    /// process derives from its own machines and options.
    FingerprintMismatch {
        /// Fingerprint in the existing manifest.
        found: u64,
        /// Fingerprint this process derived.
        expected: u64,
    },
    /// No manifest appeared within the worker's wait window.
    ManifestMissing,
    /// The process's [`ced_runtime::CancelToken`] fired.
    Interrupted,
    /// The final ledger failed its own audit for this unit — a
    /// coordinator bug, never an environment failure.
    LedgerAccounting(u64),
    /// Structurally impossible on-disk state that self-healing could
    /// not absorb.
    Corrupt(String),
}

impl FleetError {
    /// Wraps an I/O failure with the path it happened on.
    pub fn io(path: &Path, e: &std::io::Error) -> FleetError {
        FleetError::Checkpoint(CheckpointError::Io(format!("{}: {e}", path.display())))
    }
}

impl From<CheckpointError> for FleetError {
    fn from(e: CheckpointError) -> FleetError {
        FleetError::Checkpoint(e)
    }
}

impl fmt::Display for FleetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FleetError::Checkpoint(e) => write!(f, "fleet: {e}"),
            FleetError::VersionMismatch { found, expected } => write!(
                f,
                "fleet campaign was created by report version {found}, but this build \
                 is {expected}; every fleet process must run the same build"
            ),
            FleetError::FingerprintMismatch { found, expected } => write!(
                f,
                "fleet campaign fingerprint {found:016x} does not match this process's \
                 {expected:016x}; machines, latencies and pipeline options must be \
                 identical across the whole fleet"
            ),
            FleetError::ManifestMissing => write!(
                f,
                "no fleet manifest appeared in the shared store; is the coordinator \
                 running against the same --store?"
            ),
            FleetError::Interrupted => write!(f, "fleet: interrupted by cancellation"),
            FleetError::LedgerAccounting(unit) => write!(
                f,
                "fleet ledger failed its accounting audit at unit {unit} (missing or \
                 duplicate terminal event) — this is a coordinator bug"
            ),
            FleetError::Corrupt(msg) => write!(f, "fleet: {msg}"),
        }
    }
}

impl std::error::Error for FleetError {}
