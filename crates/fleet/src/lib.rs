//! # ced-fleet — crash-tolerant sharded multi-process campaigns
//!
//! Scales the single-process suite campaign (`ced_core::run_suite`)
//! across processes — and machines sharing a filesystem — **built for
//! failure as the normal case**: any worker may be SIGKILL'd mid-unit
//! at any moment and the campaign still converges to a report that is
//! byte-identical to the serial single-process run.
//!
//! The design composes three existing layers instead of inventing new
//! machinery:
//!
//! * **Work units are checkpoint-envelope files** (`ced-runtime`):
//!   checksummed, versioned, atomically published. A unit is one
//!   machine of the corpus in canonical order.
//! * **Claiming is an atomic rename** (`ced_runtime::lease`): exactly
//!   one worker wins `pending/unit-N.ced → leased/unit-N.<w>.lease`;
//!   liveness is the lease file's mtime, refreshed by a heartbeat
//!   thread. A killed worker simply stops heartbeating.
//! * **Merging is deterministic order restoration**: results are
//!   merged in corpus index order — the multi-process analogue of
//!   `ced-par`'s ordered merge — and each record is produced by the
//!   same serial code path a 1-shard run uses, so the merged
//!   `ced-suite-report/1` is byte-identical for 1, 4 or 8 shards, with
//!   or without crashes.
//!
//! The coordinator ([`run_coordinator`]) expires stale leases with
//! capped exponential backoff and quarantines a unit that has killed
//! [`CoordinatorOptions::max_attempts`] workers as *poisonous* —
//! extending the suite's retry-then-quarantine policy across process
//! boundaries. Its [`FleetLedger`] accounts for every lease ever
//! issued: published, re-assigned, completed or quarantined.

#![warn(missing_docs)]

pub mod coordinator;
pub mod error;
pub mod proto;
pub mod status;
pub mod worker;

pub use coordinator::{run_coordinator, CoordinatorOptions, FleetOutcome};
pub use error::FleetError;
pub use proto::{
    FleetDir, FleetLedger, FleetManifest, LedgerAction, LedgerEvent, UnitResult, UnitToken,
    FLEET_LEDGER_KIND, FLEET_MANIFEST_KIND, FLEET_RESULT_KIND, FLEET_UNIT_KIND,
};
pub use status::{fleet_status, FleetStatus, LeaseView, ManifestView};
pub use worker::{run_worker, WorkerOptions, WorkerOutcome};
