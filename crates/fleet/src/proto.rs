//! Wire format and on-disk layout of a fleet campaign.
//!
//! Everything a fleet exchanges lives as checkpoint-envelope files
//! (magic, version, kind, length, checksum — see
//! [`ced_runtime::checkpoint`]) inside `<store>/fleet/`:
//!
//! ```text
//! fleet/
//!   manifest.ced              campaign binding (kind 6)
//!   pending/unit-0003.ced     unclaimed work token (kind 7)
//!   leased/unit-0003.w1.lease claimed token; mtime = heartbeat
//!   done/unit-0003.ced        finished unit result (kind 8)
//!   ledger.ced                coordinator's accounting (kind 9)
//!   report.json               merged ced-suite-report/1
//! ```
//!
//! A unit moves `pending → leased → done`; the only transitions are a
//! worker's atomic claim rename, a worker's atomic result publish, and
//! the coordinator expiring a stale lease back to `pending` (or, after
//! too many deaths, writing a quarantined result itself).

use ced_core::MachineRecord;
use ced_runtime::{ByteReader, ByteWriter, CheckpointError};
use std::path::{Path, PathBuf};

/// Checkpoint kind tag for the fleet campaign manifest.
pub const FLEET_MANIFEST_KIND: u16 = 6;

/// Checkpoint kind tag for a pending/leased work-unit token.
pub const FLEET_UNIT_KIND: u16 = 7;

/// Checkpoint kind tag for a finished unit result.
pub const FLEET_RESULT_KIND: u16 = 8;

/// Checkpoint kind tag for the coordinator's lease ledger.
pub const FLEET_LEDGER_KIND: u16 = 9;

/// Paths of a fleet campaign rooted in a shared store directory.
#[derive(Debug, Clone)]
pub struct FleetDir {
    root: PathBuf,
}

impl FleetDir {
    /// The fleet layout under `store_dir` (the directory both
    /// coordinator and workers were given as `--store`).
    pub fn new(store_dir: &Path) -> FleetDir {
        FleetDir {
            root: store_dir.join("fleet"),
        }
    }

    /// The fleet root directory itself.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The campaign manifest file.
    pub fn manifest(&self) -> PathBuf {
        self.root.join("manifest.ced")
    }

    /// Directory of unclaimed unit tokens.
    pub fn pending(&self) -> PathBuf {
        self.root.join("pending")
    }

    /// Directory of claimed (leased) unit tokens.
    pub fn leased(&self) -> PathBuf {
        self.root.join("leased")
    }

    /// Directory of finished unit results.
    pub fn done(&self) -> PathBuf {
        self.root.join("done")
    }

    /// The coordinator's accounting ledger.
    pub fn ledger(&self) -> PathBuf {
        self.root.join("ledger.ced")
    }

    /// The merged `ced-suite-report/1` JSON.
    pub fn report(&self) -> PathBuf {
        self.root.join("report.json")
    }

    /// A pending token path for unit `index`.
    pub fn pending_unit(&self, index: usize) -> PathBuf {
        self.pending().join(format!("unit-{index:04}.ced"))
    }

    /// The lease path a claim by `worker` renames unit `index` to.
    pub fn lease_unit(&self, index: usize, worker: &str) -> PathBuf {
        self.leased()
            .join(format!("unit-{index:04}.{worker}.lease"))
    }

    /// A done result path for unit `index`.
    pub fn done_unit(&self, index: usize) -> PathBuf {
        self.done().join(format!("unit-{index:04}.ced"))
    }
}

/// The campaign manifest: the coordinator's binding of corpus, order,
/// options fingerprint and report version. Workers parse their
/// machines out of it and refuse campaigns whose fingerprint they
/// cannot re-derive from their own command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FleetManifest {
    /// Report version (`CARGO_PKG_VERSION`) of the coordinator build.
    pub version: String,
    /// [`ced_core::suite_fingerprint`] over (machines, options).
    pub fingerprint: u64,
    /// Latency bounds every unit evaluates.
    pub latencies: Vec<usize>,
    /// Units in canonical corpus order: `(name, KISS2 text)`.
    pub units: Vec<(String, String)>,
}

impl FleetManifest {
    /// Serializes the manifest payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.str(&self.version);
        w.u64(self.fingerprint);
        w.usize(self.latencies.len());
        for &p in &self.latencies {
            w.usize(p);
        }
        w.usize(self.units.len());
        for (name, kiss2) in &self.units {
            w.str(name);
            w.str(kiss2);
        }
        w.finish()
    }

    /// Deserializes a payload produced by [`FleetManifest::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<FleetManifest, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let version = r.str()?;
        let fingerprint = r.u64()?;
        let n_lat = r.usize()?;
        if n_lat > 4096 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible latency count {n_lat}"
            )));
        }
        let mut latencies = Vec::with_capacity(n_lat);
        for _ in 0..n_lat {
            latencies.push(r.usize()?);
        }
        let n = r.usize()?;
        if n > 65_536 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible unit count {n}"
            )));
        }
        let mut units = Vec::with_capacity(n);
        for _ in 0..n {
            let name = r.str()?;
            let kiss2 = r.str()?;
            units.push((name, kiss2));
        }
        r.expect_end()?;
        Ok(FleetManifest {
            version,
            fingerprint,
            latencies,
            units,
        })
    }
}

/// A work-unit token: the payload of a pending (and, after the claim
/// rename, leased) unit file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitToken {
    /// Corpus index of the unit.
    pub index: u64,
    /// Which assignment this is (1 on first publish; the coordinator
    /// increments it each time it expires a dead worker's lease).
    pub attempt: u64,
}

impl UnitToken {
    /// Serializes the token payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.index);
        w.u64(self.attempt);
        w.finish()
    }

    /// Deserializes a payload produced by [`UnitToken::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<UnitToken, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let token = UnitToken {
            index: r.u64()?,
            attempt: r.u64()?,
        };
        r.expect_end()?;
        Ok(token)
    }
}

/// A finished unit: the payload of a done file.
#[derive(Debug, Clone, PartialEq)]
pub struct UnitResult {
    /// Corpus index of the unit.
    pub index: u64,
    /// `true` when the coordinator quarantined the unit as poisonous
    /// (it killed every worker it was assigned to) rather than a
    /// worker finishing it.
    pub poisoned: bool,
    /// The unit's machine record (a poisoned unit carries the
    /// coordinator's quarantine record).
    pub record: MachineRecord,
}

impl UnitResult {
    /// Serializes the result payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.u64(self.index);
        w.bool(self.poisoned);
        self.record.write_to(&mut w);
        w.finish()
    }

    /// Deserializes a payload produced by [`UnitResult::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<UnitResult, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let index = r.u64()?;
        let poisoned = r.bool()?;
        let record = MachineRecord::read_from(&mut r)?;
        r.expect_end()?;
        Ok(UnitResult {
            index,
            poisoned,
            record,
        })
    }
}

/// What happened to a lease, as the coordinator saw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LedgerAction {
    /// Token published to `pending/`.
    Published,
    /// A worker's result landed in `done/`.
    Completed,
    /// A stale lease was expired and the token re-queued.
    Reassigned,
    /// The unit exhausted its assignments and the coordinator wrote a
    /// quarantined result for it.
    Quarantined,
}

impl LedgerAction {
    fn tag(self) -> u8 {
        match self {
            LedgerAction::Published => 0,
            LedgerAction::Completed => 1,
            LedgerAction::Reassigned => 2,
            LedgerAction::Quarantined => 3,
        }
    }

    fn from_tag(tag: u8) -> Result<LedgerAction, CheckpointError> {
        match tag {
            0 => Ok(LedgerAction::Published),
            1 => Ok(LedgerAction::Completed),
            2 => Ok(LedgerAction::Reassigned),
            3 => Ok(LedgerAction::Quarantined),
            t => Err(CheckpointError::Corrupt(format!("bad ledger tag {t}"))),
        }
    }
}

impl std::fmt::Display for LedgerAction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            LedgerAction::Published => "published",
            LedgerAction::Completed => "completed",
            LedgerAction::Reassigned => "reassigned",
            LedgerAction::Quarantined => "quarantined",
        })
    }
}

/// One ledger entry: unit, what happened, which assignment, and the
/// worker involved (empty when none — e.g. the initial publish).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LedgerEvent {
    /// Corpus index of the unit.
    pub unit: u64,
    /// What happened.
    pub action: LedgerAction,
    /// Assignment number the event refers to.
    pub attempt: u64,
    /// Worker id parsed from the lease file name (empty when the event
    /// has no worker).
    pub worker: String,
}

/// The coordinator's full accounting of a campaign: every unit's
/// trail from publish to completion or quarantine. The invariant the
/// differential tests assert: every unit has exactly one terminal
/// event ([`LedgerAction::Completed`] or [`LedgerAction::Quarantined`])
/// and `published + reassigned` events account for every lease ever
/// issued.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetLedger {
    /// Events in the order the coordinator observed them.
    pub events: Vec<LedgerEvent>,
}

impl FleetLedger {
    /// Serializes the ledger payload.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.usize(self.events.len());
        for e in &self.events {
            w.u64(e.unit);
            w.u8(e.action.tag());
            w.u64(e.attempt);
            w.str(&e.worker);
        }
        w.finish()
    }

    /// Deserializes a payload produced by [`FleetLedger::to_bytes`].
    ///
    /// # Errors
    ///
    /// [`CheckpointError`] on any structural inconsistency.
    pub fn from_bytes(bytes: &[u8]) -> Result<FleetLedger, CheckpointError> {
        let mut r = ByteReader::new(bytes);
        let n = r.usize()?;
        if n > 1_048_576 {
            return Err(CheckpointError::Corrupt(format!(
                "implausible event count {n}"
            )));
        }
        let mut events = Vec::with_capacity(n);
        for _ in 0..n {
            events.push(LedgerEvent {
                unit: r.u64()?,
                action: LedgerAction::from_tag(r.u8()?)?,
                attempt: r.u64()?,
                worker: r.str()?,
            });
        }
        r.expect_end()?;
        Ok(FleetLedger { events })
    }

    /// The terminal event for `unit`, if any.
    pub fn terminal(&self, unit: u64) -> Option<&LedgerEvent> {
        self.events.iter().find(|e| {
            e.unit == unit
                && matches!(
                    e.action,
                    LedgerAction::Completed | LedgerAction::Quarantined
                )
        })
    }

    /// Checks the accounting invariant over `total` units: every unit
    /// has exactly one terminal event, and every non-terminal event
    /// precedes it. Returns the offending unit on violation.
    pub fn check_accounting(&self, total: usize) -> Result<(), u64> {
        for unit in 0..total as u64 {
            let terminals = self
                .events
                .iter()
                .filter(|e| {
                    e.unit == unit
                        && matches!(
                            e.action,
                            LedgerAction::Completed | LedgerAction::Quarantined
                        )
                })
                .count();
            if terminals != 1 {
                return Err(unit);
            }
            let published = self
                .events
                .iter()
                .any(|e| e.unit == unit && e.action == LedgerAction::Published);
            if !published {
                return Err(unit);
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_core::MachineStatus;

    #[test]
    fn manifest_round_trips() {
        let m = FleetManifest {
            version: "0.1.0".into(),
            fingerprint: 0xDEAD_BEEF,
            latencies: vec![1, 2],
            units: vec![
                ("s27".into(), ".i 4\n".into()),
                ("tav".into(), ".i 4\n".into()),
            ],
        };
        let back = FleetManifest::from_bytes(&m.to_bytes()).unwrap();
        assert_eq!(back, m);
        assert!(FleetManifest::from_bytes(&m.to_bytes()[..5]).is_err());
    }

    #[test]
    fn token_and_result_round_trip() {
        let t = UnitToken {
            index: 3,
            attempt: 2,
        };
        assert_eq!(UnitToken::from_bytes(&t.to_bytes()).unwrap(), t);
        let r = UnitResult {
            index: 3,
            poisoned: false,
            record: MachineRecord {
                name: "s27".into(),
                status: MachineStatus::Completed,
                attempts: 1,
                notes: vec![],
                json: "{\"name\":\"s27\"}".into(),
            },
        };
        assert_eq!(UnitResult::from_bytes(&r.to_bytes()).unwrap(), r);
    }

    #[test]
    fn ledger_round_trips_and_checks_accounting() {
        let mut ledger = FleetLedger::default();
        ledger.events.push(LedgerEvent {
            unit: 0,
            action: LedgerAction::Published,
            attempt: 1,
            worker: String::new(),
        });
        // Unit 0 published but never finished: accounting fails.
        assert_eq!(ledger.check_accounting(1), Err(0));
        ledger.events.push(LedgerEvent {
            unit: 0,
            action: LedgerAction::Reassigned,
            attempt: 2,
            worker: "w1".into(),
        });
        ledger.events.push(LedgerEvent {
            unit: 0,
            action: LedgerAction::Quarantined,
            attempt: 2,
            worker: String::new(),
        });
        assert_eq!(ledger.check_accounting(1), Ok(()));
        let back = FleetLedger::from_bytes(&ledger.to_bytes()).unwrap();
        assert_eq!(back, ledger);
        assert_eq!(back.terminal(0).unwrap().action, LedgerAction::Quarantined);
    }

    #[test]
    fn layout_paths_are_stable() {
        let d = FleetDir::new(Path::new("/tmp/s"));
        assert_eq!(d.manifest(), Path::new("/tmp/s/fleet/manifest.ced"));
        assert_eq!(
            d.pending_unit(3),
            Path::new("/tmp/s/fleet/pending/unit-0003.ced")
        );
        assert_eq!(
            d.lease_unit(3, "w1"),
            Path::new("/tmp/s/fleet/leased/unit-0003.w1.lease")
        );
        assert_eq!(d.done_unit(3), Path::new("/tmp/s/fleet/done/unit-0003.ced"));
    }
}
