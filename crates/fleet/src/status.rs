//! Read-only live view over a fleet campaign directory.
//!
//! `ced fleet status` (and the `ced serve` health endpoint) answer
//! "how is the campaign doing?" by scanning the same on-disk state the
//! coordinator's watchdog scans — pending/leased/done unit files, the
//! ledger, the manifest — without claiming, expiring or mutating
//! anything. The view is inherently a snapshot of a moving target
//! (units migrate between directories while we read), so the scanner
//! tolerates every transient it can race with: a file that vanishes
//! mid-scan is simply absent from the snapshot, and a corrupt ledger
//! degrades to "no attempt history" rather than an error. Output
//! ordering is deterministic for a given snapshot: units sort by
//! index, leases by `(unit, worker)`.

use crate::error::FleetError;
use crate::proto::{FleetDir, FleetLedger, FleetManifest, FLEET_LEDGER_KIND, FLEET_MANIFEST_KIND};
use ced_runtime::{load_checkpoint, mtime_age, Json};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::time::Duration;

/// One live lease, as seen by the scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LeaseView {
    /// Corpus index of the leased unit.
    pub unit: u64,
    /// Worker id parsed from the lease file name.
    pub worker: String,
    /// Milliseconds since the lease's last heartbeat (mtime).
    pub age_ms: u128,
    /// Whether the age exceeds the caller's staleness threshold — the
    /// coordinator would treat such a lease as a dead worker's.
    pub stale: bool,
}

/// Summary of the campaign manifest, when one exists and decodes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestView {
    /// Report version of the coordinator build.
    pub version: String,
    /// Options fingerprint every worker must re-derive.
    pub fingerprint: u64,
    /// Total units in the corpus.
    pub total_units: usize,
    /// Latency bounds under evaluation.
    pub latencies: Vec<usize>,
}

/// A point-in-time, read-only snapshot of a fleet campaign.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FleetStatus {
    /// The decoded manifest, if present and intact.
    pub manifest: Option<ManifestView>,
    /// Unit indices with unclaimed pending tokens, sorted.
    pub pending: Vec<u64>,
    /// Live leases, sorted by `(unit, worker)`.
    pub leased: Vec<LeaseView>,
    /// Unit indices with published results, sorted.
    pub done: Vec<u64>,
    /// Units the ledger records as quarantined-poisonous, sorted.
    pub poisoned: Vec<u64>,
    /// Per-unit assignment counts from the ledger (`(unit, attempts)`,
    /// sorted by unit). Empty when no ledger has been written yet.
    pub attempts: Vec<(u64, u64)>,
    /// Whether the merged `fleet/report.json` exists (campaign ended).
    pub report_written: bool,
}

impl FleetStatus {
    /// Leases older than the staleness threshold.
    pub fn stale_leases(&self) -> impl Iterator<Item = &LeaseView> {
        self.leased.iter().filter(|l| l.stale)
    }

    /// Renders the deterministic JSON document
    /// (`ced-fleet-status/1`). Lease ages are wall-clock measurements
    /// and vary run to run; everything else is a pure function of the
    /// snapshot.
    pub fn to_json(&self) -> Json {
        let units = |v: &[u64]| Json::Array(v.iter().map(|&u| Json::UInt(u)).collect());
        let mut fields = vec![("schema".to_string(), Json::str("ced-fleet-status/1"))];
        match &self.manifest {
            Some(m) => {
                fields.push(("version".into(), Json::Str(m.version.clone())));
                fields.push((
                    "fingerprint".into(),
                    Json::Str(format!("{:016x}", m.fingerprint)),
                ));
                fields.push(("total_units".into(), Json::UInt(m.total_units as u64)));
                fields.push((
                    "latencies".into(),
                    Json::Array(m.latencies.iter().map(|&p| Json::UInt(p as u64)).collect()),
                ));
            }
            None => fields.push(("manifest".into(), Json::Null)),
        }
        fields.push(("pending".into(), units(&self.pending)));
        fields.push((
            "leased".into(),
            Json::Array(
                self.leased
                    .iter()
                    .map(|l| {
                        Json::Object(vec![
                            ("unit".into(), Json::UInt(l.unit)),
                            ("worker".into(), Json::Str(l.worker.clone())),
                            (
                                "age_ms".into(),
                                Json::UInt(l.age_ms.min(u64::MAX as u128) as u64),
                            ),
                            ("stale".into(), Json::Bool(l.stale)),
                        ])
                    })
                    .collect(),
            ),
        ));
        fields.push(("done".into(), units(&self.done)));
        fields.push(("poisoned".into(), units(&self.poisoned)));
        fields.push((
            "attempts".into(),
            Json::Object(
                self.attempts
                    .iter()
                    .map(|&(unit, n)| (unit.to_string(), Json::UInt(n)))
                    .collect(),
            ),
        ));
        fields.push(("report_written".into(), Json::Bool(self.report_written)));
        Json::Object(fields)
    }

    /// Renders the human table.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        match &self.manifest {
            Some(m) => {
                let _ = writeln!(
                    out,
                    "campaign: {} unit(s), latencies {:?}, version {}, fingerprint {:016x}",
                    m.total_units, m.latencies, m.version, m.fingerprint
                );
            }
            None => {
                let _ = writeln!(out, "campaign: no manifest (coordinator not started yet?)");
            }
        }
        let _ = writeln!(
            out,
            "units: {} pending, {} leased, {} done, {} poisoned{}",
            self.pending.len(),
            self.leased.len(),
            self.done.len(),
            self.poisoned.len(),
            if self.report_written {
                "; merged report written"
            } else {
                ""
            }
        );
        let attempts: BTreeMap<u64, u64> = self.attempts.iter().copied().collect();
        for l in &self.leased {
            let _ = writeln!(
                out,
                "  unit {:>4} leased by {:<12} heartbeat {:>6} ms ago{}{}",
                l.unit,
                l.worker,
                l.age_ms,
                match attempts.get(&l.unit) {
                    Some(n) if *n > 1 => format!(" (attempt {n})"),
                    _ => String::new(),
                },
                if l.stale { "  [STALE]" } else { "" }
            );
        }
        for &u in &self.poisoned {
            let _ = writeln!(
                out,
                "  unit {u:>4} poisonous (quarantined after {} attempt(s))",
                attempts.get(&u).copied().unwrap_or(0)
            );
        }
        out
    }
}

/// Unit index from a `unit-NNNN…` file stem; `None` for foreign files.
fn unit_index(stem: &str) -> Option<u64> {
    stem.strip_prefix("unit-")?.parse().ok()
}

/// Sorted unit indices of the `unit-NNNN.ced` files in `dir`. A
/// missing directory is an empty listing: the campaign may not have
/// started, and a status probe must not invent structure.
fn scan_units(dir: &Path) -> Vec<u64> {
    let mut units: Vec<u64> = std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    unit_index(name.strip_suffix(".ced")?)
                })
                .collect()
        })
        .unwrap_or_default();
    units.sort_unstable();
    units
}

/// Scans a fleet campaign directory without mutating it.
///
/// `stale_after` is the caller's staleness threshold for lease
/// heartbeats — pass the campaign's `--heartbeat-ms` to see exactly
/// what the coordinator's watchdog sees.
///
/// # Errors
///
/// Only when `store_dir` contains no `fleet/` directory at all —
/// everything else (absent manifest, corrupt ledger, racing renames)
/// degrades to a partial snapshot, because a live view must work
/// mid-campaign.
pub fn fleet_status(store_dir: &Path, stale_after: Duration) -> Result<FleetStatus, FleetError> {
    let dir = FleetDir::new(store_dir);
    if !dir.root().is_dir() {
        return Err(FleetError::Corrupt(format!(
            "no fleet campaign under {} (expected {})",
            store_dir.display(),
            dir.root().display()
        )));
    }

    let manifest = load_checkpoint(&dir.manifest(), FLEET_MANIFEST_KIND)
        .ok()
        .and_then(|payload| FleetManifest::from_bytes(&payload).ok())
        .map(|m| ManifestView {
            version: m.version,
            fingerprint: m.fingerprint,
            total_units: m.units.len(),
            latencies: m.latencies,
        });

    let mut leased: Vec<LeaseView> = std::fs::read_dir(dir.leased())
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    let stem = name.strip_suffix(".lease")?;
                    let (unit_part, worker) = stem.split_once('.')?;
                    let unit = unit_index(unit_part)?;
                    // A lease that vanishes between listing and stat
                    // was completed or expired mid-scan; skip it.
                    let age = mtime_age(&e.path())?;
                    Some(LeaseView {
                        unit,
                        worker: worker.to_string(),
                        age_ms: age.as_millis(),
                        stale: age >= stale_after,
                    })
                })
                .collect()
        })
        .unwrap_or_default();
    leased.sort_by(|a, b| (a.unit, &a.worker).cmp(&(b.unit, &b.worker)));

    // The ledger is the coordinator's private accounting; status reads
    // it opportunistically. Mid-write or corrupt = no history, not an
    // error.
    let ledger = load_checkpoint(&dir.ledger(), FLEET_LEDGER_KIND)
        .ok()
        .and_then(|payload| FleetLedger::from_bytes(&payload).ok())
        .unwrap_or_default();
    let mut attempts: BTreeMap<u64, u64> = BTreeMap::new();
    let mut poisoned: Vec<u64> = Vec::new();
    for event in &ledger.events {
        let slot = attempts.entry(event.unit).or_insert(0);
        *slot = (*slot).max(event.attempt);
        if event.action == crate::proto::LedgerAction::Quarantined {
            poisoned.push(event.unit);
        }
    }
    poisoned.sort_unstable();
    poisoned.dedup();

    Ok(FleetStatus {
        manifest,
        pending: scan_units(&dir.pending()),
        leased,
        done: scan_units(&dir.done()),
        poisoned,
        attempts: attempts.into_iter().collect(),
        report_written: dir.report().is_file(),
    })
}
