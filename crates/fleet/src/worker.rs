//! The fleet worker: claim a unit by atomic rename, heartbeat the
//! lease while computing, publish the result, repeat until the
//! campaign drains.

use crate::error::FleetError;
use crate::proto::{
    FleetDir, FleetManifest, UnitResult, UnitToken, FLEET_MANIFEST_KIND, FLEET_RESULT_KIND,
    FLEET_UNIT_KIND,
};
use ced_core::{run_suite_unit, suite_fingerprint, SuiteOptions};
use ced_fsm::machine::Fsm;
use ced_logic::gate::CellLibrary;
use ced_runtime::{claim_by_rename, load_checkpoint, publish_envelope, touch, CancelToken};
use ced_store::Store;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Worker tuning knobs.
#[derive(Debug, Clone)]
pub struct WorkerOptions {
    /// Identity embedded in lease file names and publish temp tags.
    /// Letters, digits, `-` and `_` only (it lives inside file names
    /// that are parsed on `.` boundaries).
    pub worker_id: String,
    /// How often the lease heartbeat thread bumps the lease mtime.
    /// Must be well under the coordinator's heartbeat timeout.
    pub heartbeat_period: Duration,
    /// Sleep between claim sweeps when nothing is claimable.
    pub poll_interval: Duration,
    /// Give up waiting for claimable work after this long with neither
    /// a claim nor campaign completion (`None` = wait forever).
    pub idle_timeout: Option<Duration>,
    /// How long to wait for the coordinator's manifest to appear.
    pub manifest_wait: Duration,
}

impl Default for WorkerOptions {
    fn default() -> WorkerOptions {
        WorkerOptions {
            worker_id: format!("w{}", std::process::id()),
            heartbeat_period: Duration::from_millis(500),
            poll_interval: Duration::from_millis(50),
            idle_timeout: None,
            manifest_wait: Duration::from_secs(30),
        }
    }
}

/// How a worker's run ended (both are success exits).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerOutcome {
    /// The campaign drained: every unit has a result in `done/`.
    Drained {
        /// Units this worker completed.
        processed: usize,
    },
    /// [`WorkerOptions::idle_timeout`] elapsed with no claimable work
    /// and the campaign still incomplete (e.g. everything is leased to
    /// other workers).
    IdleTimeout {
        /// Units this worker completed.
        processed: usize,
    },
}

/// Keeps a lease fresh from a background thread until dropped (or the
/// lease disappears — expiry by the coordinator stops the heartbeat).
struct HeartbeatGuard {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl HeartbeatGuard {
    fn start(lease: PathBuf, period: Duration) -> HeartbeatGuard {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let handle = std::thread::spawn(move || {
            while !flag.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                if flag.load(Ordering::Relaxed) {
                    break;
                }
                // Lease gone: the coordinator expired us; the unit is
                // someone else's now. Nothing left to keep alive.
                if !touch(&lease).unwrap_or(false) {
                    break;
                }
            }
        });
        HeartbeatGuard {
            stop,
            handle: Some(handle),
        }
    }
}

impl Drop for HeartbeatGuard {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// Validates a worker id for embedding in lease file names.
fn check_worker_id(id: &str) -> Result<(), FleetError> {
    let ok = !id.is_empty()
        && id
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_');
    if ok {
        Ok(())
    } else {
        Err(FleetError::Corrupt(format!(
            "worker id {id:?} must be non-empty [A-Za-z0-9_-]"
        )))
    }
}

/// Loads the manifest (waiting for the coordinator to publish it),
/// rebuilds the corpus from its KISS2 texts, and cross-checks version
/// and options fingerprint.
fn load_corpus(
    dir: &FleetDir,
    options: &SuiteOptions,
    wopts: &WorkerOptions,
    cancel: &CancelToken,
) -> Result<(FleetManifest, Vec<(String, Fsm)>), FleetError> {
    let deadline = Instant::now() + wopts.manifest_wait;
    let payload = loop {
        if cancel.is_cancelled() {
            return Err(FleetError::Interrupted);
        }
        if dir.manifest().exists() {
            if let Ok(p) = load_checkpoint(&dir.manifest(), FLEET_MANIFEST_KIND) {
                break p;
            }
        }
        if Instant::now() >= deadline {
            return Err(FleetError::ManifestMissing);
        }
        std::thread::sleep(wopts.poll_interval);
    };
    let manifest = FleetManifest::from_bytes(&payload)?;
    if manifest.version != env!("CARGO_PKG_VERSION") {
        return Err(FleetError::VersionMismatch {
            found: manifest.version,
            expected: env!("CARGO_PKG_VERSION").to_string(),
        });
    }
    let mut machines = Vec::with_capacity(manifest.units.len());
    for (name, kiss2) in &manifest.units {
        let fsm = ced_fsm::kiss::parse(kiss2)
            .map_err(|e| FleetError::Corrupt(format!("manifest unit {name}: {e}")))?;
        machines.push((name.clone(), fsm));
    }
    // The fingerprint binds machines AND options: a worker launched
    // with different latencies or pipeline options than the
    // coordinator's must refuse, or its records would silently diverge
    // from the campaign's.
    let fingerprint = suite_fingerprint(&machines, options);
    if fingerprint != manifest.fingerprint {
        return Err(FleetError::FingerprintMismatch {
            found: manifest.fingerprint,
            expected: fingerprint,
        });
    }
    Ok((manifest, machines))
}

/// Runs a fleet worker until the campaign drains (or idles out).
///
/// Loop: claim the lowest pending unit by atomic rename into
/// `leased/`, heartbeat the lease from a background thread, run the
/// unit through the exact serial suite path
/// ([`ced_core::run_suite_unit`]), publish the result to `done/` (only
/// while still holding the lease), tidy the lease, repeat. Workers
/// SIGKILL'd mid-unit simply stop heartbeating; the coordinator
/// expires their lease and re-assigns the unit.
///
/// # Errors
///
/// [`FleetError::ManifestMissing`] when no coordinator shows up;
/// [`FleetError::VersionMismatch`] / [`FleetError::FingerprintMismatch`]
/// when this worker's build or options disagree with the campaign's;
/// [`FleetError::Interrupted`] when `cancel` fires (a claimed unit is
/// returned to `pending/` first).
pub fn run_worker(
    store_dir: &Path,
    options: &SuiteOptions,
    wopts: &WorkerOptions,
    library: &CellLibrary,
    cancel: &CancelToken,
    store: Option<&Arc<Store>>,
) -> Result<WorkerOutcome, FleetError> {
    check_worker_id(&wopts.worker_id)?;
    let dir = FleetDir::new(store_dir);
    let (manifest, machines) = load_corpus(&dir, options, wopts, cancel)?;
    let total = manifest.units.len();
    let mut processed = 0usize;
    let mut idle_since = Instant::now();

    loop {
        if cancel.is_cancelled() {
            return Err(FleetError::Interrupted);
        }
        if done_count(&dir, total) == total {
            return Ok(WorkerOutcome::Drained { processed });
        }

        // Claim sweep: lowest pending unit first.
        let mut pending: Vec<usize> = list_pending(&dir)?;
        pending.sort_unstable();
        let mut claimed = None;
        for index in pending {
            let lease = dir.lease_unit(index, &wopts.worker_id);
            if claim_by_rename(&dir.pending_unit(index), &lease)? {
                claimed = Some((index, lease));
                break;
            }
        }

        let Some((index, lease)) = claimed else {
            if let Some(limit) = wopts.idle_timeout {
                if idle_since.elapsed() >= limit {
                    return Ok(WorkerOutcome::IdleTimeout { processed });
                }
            }
            std::thread::sleep(wopts.poll_interval);
            continue;
        };
        idle_since = Instant::now();

        // The token rode along through the rename; it knows which
        // assignment this is (for graceful give-back on cancel).
        let token = load_checkpoint(&lease, FLEET_UNIT_KIND)
            .ok()
            .and_then(|p| UnitToken::from_bytes(&p).ok())
            .unwrap_or(UnitToken {
                index: index as u64,
                attempt: 1,
            });
        let Some((name, fsm)) = machines.get(index) else {
            // A token for a unit outside the manifest: poisonous
            // coordination state; drop the lease and move on.
            let _ = fs::remove_file(&lease);
            continue;
        };

        let heartbeat = HeartbeatGuard::start(lease.clone(), wopts.heartbeat_period);
        let outcome = run_suite_unit(name, fsm, options, library, cancel, store);
        drop(heartbeat);

        match outcome {
            Ok(record) => {
                // Publish only while still leased: after an expiry the
                // unit belongs to someone else, and a late publish
                // could overwrite a poisoned-quarantine verdict the
                // coordinator already accounted for.
                if lease.exists() {
                    publish_envelope(
                        &dir.done_unit(index),
                        FLEET_RESULT_KIND,
                        &UnitResult {
                            index: index as u64,
                            poisoned: false,
                            record,
                        }
                        .to_bytes(),
                        &wopts.worker_id,
                    )?;
                    let _ = fs::remove_file(&lease);
                    processed += 1;
                }
            }
            Err(_) => {
                // Cancelled mid-unit: give the token back gracefully
                // so no heartbeat timeout has to elapse.
                let give_back = UnitToken {
                    index: token.index,
                    attempt: token.attempt,
                };
                if lease.exists() {
                    let _ = publish_envelope(
                        &dir.pending_unit(index),
                        FLEET_UNIT_KIND,
                        &give_back.to_bytes(),
                        &wopts.worker_id,
                    );
                    let _ = fs::remove_file(&lease);
                }
                return Err(FleetError::Interrupted);
            }
        }
    }
}

/// How many units have results in `done/`.
fn done_count(dir: &FleetDir, total: usize) -> usize {
    (0..total).filter(|&i| dir.done_unit(i).exists()).count()
}

/// Unit indices with pending token files.
fn list_pending(dir: &FleetDir) -> Result<Vec<usize>, FleetError> {
    let listing = match fs::read_dir(dir.pending()) {
        Ok(l) => l,
        // The coordinator may not have created the directory yet.
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
        Err(e) => return Err(FleetError::io(&dir.pending(), &e)),
    };
    let mut out = Vec::new();
    for entry in listing.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        if let Some(idx) = name
            .strip_prefix("unit-")
            .and_then(|r| r.strip_suffix(".ced"))
            .and_then(|r| r.parse::<usize>().ok())
        {
            out.push(idx);
        }
    }
    Ok(out)
}
