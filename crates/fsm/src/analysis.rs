//! Structural statistics of symbolic machines.
//!
//! Aggregates the quantities the paper's §5 discussion correlates with
//! latency benefit: size, self-loop density, reachability and cycle
//! structure.

use crate::machine::Fsm;
use crate::reach::{girth, max_useful_latency_estimate, reachable_states};

/// A summary of an FSM's structure.
#[derive(Debug, Clone, PartialEq)]
pub struct FsmStats {
    /// Machine name.
    pub name: String,
    /// Input bits.
    pub inputs: usize,
    /// Output bits.
    pub outputs: usize,
    /// Symbolic states.
    pub states: usize,
    /// Transition lines.
    pub transitions: usize,
    /// States reachable from reset.
    pub reachable: usize,
    /// Fraction of (state, input) pairs that self-loop.
    pub self_loop_fraction: f64,
    /// Shortest cycle length anywhere (None if acyclic).
    pub girth: Option<usize>,
    /// A-priori maximum useful latency bound (paper §2).
    pub max_useful_latency: usize,
}

impl FsmStats {
    /// Computes all statistics for a machine.
    pub fn of(fsm: &Fsm) -> FsmStats {
        FsmStats {
            name: fsm.name().to_string(),
            inputs: fsm.num_inputs(),
            outputs: fsm.num_outputs(),
            states: fsm.num_states(),
            transitions: fsm.transitions().len(),
            reachable: reachable_states(fsm).len(),
            self_loop_fraction: fsm.self_loop_fraction(),
            girth: girth(fsm),
            max_useful_latency: max_useful_latency_estimate(fsm),
        }
    }
}

impl std::fmt::Display for FsmStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} in / {} states ({} reachable) / {} out, {} lines, {:.0}% self-loops, girth {:?}, max useful latency {}",
            self.name,
            self.inputs,
            self.states,
            self.reachable,
            self.outputs,
            self.transitions,
            self.self_loop_fraction * 100.0,
            self.girth,
            self.max_useful_latency
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::suite;

    #[test]
    fn stats_of_sequence_detector() {
        let fsm = suite::sequence_detector();
        let stats = FsmStats::of(&fsm);
        assert_eq!(stats.states, 4);
        assert_eq!(stats.reachable, 4);
        assert_eq!(stats.inputs, 1);
        assert_eq!(stats.girth, Some(1)); // e self-loops on 0
        assert!(stats.self_loop_fraction > 0.0);
        assert!(stats.max_useful_latency >= 1);
    }

    #[test]
    fn display_is_informative() {
        let s = FsmStats::of(&suite::traffic_light());
        let text = s.to_string();
        assert!(text.contains("traffic") || text.contains("kiss"));
        assert!(text.contains("states"));
    }
}
