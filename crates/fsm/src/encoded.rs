//! Encoded FSMs and their synthesized gate-level circuits.
//!
//! After state assignment, the machine of Fig. 1 of the paper has
//! `r` primary inputs, `s` state bits and `n − s` outputs; its next-state
//! and output functions are Boolean functions of `r + s` variables. This
//! module builds those functions as (ON, DC) covers — exploiting both
//! unspecified outputs and invalid state codes as don't-cares — and maps
//! them to a [`Netlist`] via the Espresso substrate, yielding the
//! [`FsmCircuit`] that fault simulation and costing operate on.
//!
//! Variable order of the combinational block: variables `0..r` are the
//! primary inputs, variables `r..r+s` are the present-state bits.
//! Output order: next-state bits `0..s`, then primary outputs `s..s+o`
//! (matching the paper's `b_1..b_s, b_{s+1}..b_n`).

use crate::encoding::StateEncoding;
use crate::machine::{Fsm, FsmError, OutputValue, StateId};
use ced_logic::cover::Cover;
use ced_logic::cube::{Cube, Literal};
use ced_logic::decompose::MultiOutputSpec;
use ced_logic::gate::CellLibrary;
use ced_logic::netlist::Netlist;
use ced_logic::MinimizeOptions;

/// A symbolic machine paired with a state assignment.
#[derive(Debug, Clone)]
pub struct EncodedFsm {
    fsm: Fsm,
    encoding: StateEncoding,
}

impl EncodedFsm {
    /// Pairs a machine with an encoding.
    ///
    /// The machine must be complete (call
    /// [`Fsm::complete_with_self_loops`] first if needed) and
    /// deterministic, and the encoding must cover every state.
    ///
    /// # Errors
    ///
    /// Propagates [`FsmError`] from the validity checks.
    ///
    /// # Panics
    ///
    /// Panics if the encoding's state count differs from the machine's.
    pub fn new(fsm: Fsm, encoding: StateEncoding) -> Result<EncodedFsm, FsmError> {
        assert_eq!(
            encoding.num_states(),
            fsm.num_states(),
            "encoding covers {} states, machine has {}",
            encoding.num_states(),
            fsm.num_states()
        );
        fsm.check_deterministic()?;
        fsm.check_complete()?;
        Ok(EncodedFsm { fsm, encoding })
    }

    /// The underlying symbolic machine.
    pub fn fsm(&self) -> &Fsm {
        &self.fsm
    }

    /// The state assignment.
    pub fn encoding(&self) -> &StateEncoding {
        &self.encoding
    }

    /// `r`: number of primary input bits.
    pub fn num_inputs(&self) -> usize {
        self.fsm.num_inputs()
    }

    /// `s`: number of state bits.
    pub fn state_bits(&self) -> usize {
        self.encoding.bits()
    }

    /// Number of primary output bits (`n − s`).
    pub fn num_outputs(&self) -> usize {
        self.fsm.num_outputs()
    }

    /// `n = s + outputs`: total monitored next-state/output bits.
    pub fn total_bits(&self) -> usize {
        self.state_bits() + self.num_outputs()
    }

    /// The reset state's code.
    pub fn reset_code(&self) -> u64 {
        self.encoding.code(self.fsm.reset_state())
    }

    /// Widens an `r`-bit input cube and a present state into an
    /// `(r+s)`-variable cube.
    fn transition_cube(&self, input: &Cube, from: StateId) -> Cube {
        let r = self.num_inputs();
        let s = self.state_bits();
        let mut cube = Cube::full(r + s);
        for v in 0..r {
            cube.set(v, input.literal(v));
        }
        let code = self.encoding.code(from);
        for b in 0..s {
            let lit = if (code >> b) & 1 == 1 {
                Literal::Positive
            } else {
                Literal::Negative
            };
            cube.set(r + b, lit);
        }
        cube
    }

    /// The don't-care cover arising from invalid (unused) state codes,
    /// over the `r+s` input space.
    pub fn invalid_code_dc(&self) -> Cover {
        let r = self.num_inputs();
        let s = self.state_bits();
        // Valid codes as an s-variable cover, complemented.
        let valid: Cover = Cover::from_cubes(
            s,
            self.encoding
                .codes()
                .iter()
                .map(|&c| Cube::minterm(s, c))
                .collect(),
        );
        let invalid = valid.complement();
        // Widen to r+s variables (inputs all don't-care).
        let mut out = Cover::empty(r + s);
        for c in invalid.cubes() {
            let mut wide = Cube::full(r + s);
            for v in 0..s {
                wide.set(r + v, c.literal(v));
            }
            out.push(wide);
        }
        out
    }

    /// Builds the multi-output (ON, DC) specification of the combined
    /// next-state/output logic: outputs `0..s` are next-state bits,
    /// outputs `s..s+o` the primary outputs.
    pub fn synthesis_spec(&self) -> MultiOutputSpec {
        let r = self.num_inputs();
        let s = self.state_bits();
        let o = self.num_outputs();
        let width = r + s;
        let code_dc = self.invalid_code_dc();

        let mut on = vec![Cover::empty(width); s + o];
        let mut dc = vec![code_dc; s + o];

        for t in self.fsm.transitions() {
            let cube = self.transition_cube(&t.input, t.from);
            let to_code = self.encoding.code(t.to);
            for b in 0..s {
                if (to_code >> b) & 1 == 1 {
                    on[b].push(cube.clone());
                }
            }
            for (j, v) in t.output.iter().enumerate() {
                match v {
                    OutputValue::One => on[s + j].push(cube.clone()),
                    OutputValue::DontCare => dc[s + j].push(cube.clone()),
                    OutputValue::Zero => {}
                }
            }
        }

        let mut spec = MultiOutputSpec::new(width);
        for (on_i, dc_i) in on.into_iter().zip(dc) {
            // DC must not contradict ON: drop the overlap from DC.
            // (Overlap arises when an earlier, higher-priority line pins a
            // value that a later overlapping line leaves unspecified.)
            let dc_i = dc_i.sharp(&on_i);
            spec.add_output(on_i, dc_i);
        }
        spec
    }

    /// Synthesizes the gate-level circuit via Espresso + decomposition.
    pub fn synthesize(&self, options: &MinimizeOptions) -> FsmCircuit {
        self.synthesize_with_sharing(options, true)
    }

    /// [`EncodedFsm::synthesize`] with control over cross-output
    /// structural sharing. `share = false` gives PLA-per-output cones:
    /// larger, but each fault perturbs one cone only — the implementation
    /// style classic FSM-CED analyses (and this paper's lineage) assume.
    pub fn synthesize_with_sharing(&self, options: &MinimizeOptions, share: bool) -> FsmCircuit {
        let mut spec = self.synthesis_spec();
        spec.set_isolate_outputs(!share);
        let netlist = spec.synthesize(options);
        FsmCircuit {
            netlist,
            num_inputs: self.num_inputs(),
            state_bits: self.state_bits(),
            num_outputs: self.num_outputs(),
            reset_code: self.reset_code(),
            name: self.fsm.name().to_string(),
        }
    }
}

/// A synthesized FSM: combinational next-state/output netlist plus the
/// implied state register.
///
/// The netlist has `r + s` inputs (primary inputs then present-state
/// bits) and `s + o` outputs (next-state bits then primary outputs).
#[derive(Debug, Clone)]
pub struct FsmCircuit {
    netlist: Netlist,
    num_inputs: usize,
    state_bits: usize,
    num_outputs: usize,
    reset_code: u64,
    name: String,
}

impl FsmCircuit {
    /// Builds a circuit directly from parts (used by tests and by fault
    /// injection wrappers).
    ///
    /// # Panics
    ///
    /// Panics if the netlist interface does not match the declared
    /// dimensions.
    pub fn from_parts(
        netlist: Netlist,
        num_inputs: usize,
        state_bits: usize,
        num_outputs: usize,
        reset_code: u64,
        name: impl Into<String>,
    ) -> FsmCircuit {
        assert_eq!(netlist.num_inputs(), num_inputs + state_bits);
        assert_eq!(netlist.num_outputs(), state_bits + num_outputs);
        assert!(reset_code < (1u64 << state_bits));
        FsmCircuit {
            netlist,
            num_inputs,
            state_bits,
            num_outputs,
            reset_code,
            name: name.into(),
        }
    }

    /// The circuit's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The combinational core.
    pub fn netlist(&self) -> &Netlist {
        &self.netlist
    }

    /// `r`: primary input bits.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// `s`: state bits.
    pub fn state_bits(&self) -> usize {
        self.state_bits
    }

    /// Primary output bits.
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// `n = s + o` monitored bits per transition.
    pub fn total_bits(&self) -> usize {
        self.state_bits + self.num_outputs
    }

    /// The power-on state code.
    pub fn reset_code(&self) -> u64 {
        self.reset_code
    }

    /// One synchronous step: returns `(next_state_code, output_bits)`.
    ///
    /// # Panics
    ///
    /// Panics if `state` or `input` exceed their bit widths.
    pub fn step(&self, state: u64, input: u64) -> (u64, u64) {
        assert!(state < (1u64 << self.state_bits), "state out of range");
        assert!(
            self.num_inputs == 64 || input < (1u64 << self.num_inputs),
            "input out of range"
        );
        let mut in_bits = Vec::with_capacity(self.num_inputs + self.state_bits);
        for i in 0..self.num_inputs {
            in_bits.push((input >> i) & 1 == 1);
        }
        for b in 0..self.state_bits {
            in_bits.push((state >> b) & 1 == 1);
        }
        let out = self.netlist.eval_single(&in_bits);
        let mut next = 0u64;
        for b in 0..self.state_bits {
            if out[b] {
                next |= 1 << b;
            }
        }
        let mut pout = 0u64;
        for j in 0..self.num_outputs {
            if out[self.state_bits + j] {
                pout |= 1 << j;
            }
        }
        (next, pout)
    }

    /// Runs an input sequence from reset, returning the visited
    /// `(state_before, output, state_after)` triples.
    pub fn run<I: IntoIterator<Item = u64>>(&self, inputs: I) -> Vec<(u64, u64, u64)> {
        let mut state = self.reset_code;
        let mut trace = Vec::new();
        for input in inputs {
            let (next, out) = self.step(state, input);
            trace.push((state, out, next));
            state = next;
        }
        trace
    }

    /// Port names of the combinational core: `in*`, `ps*` (present
    /// state), then `ns*` (next state) and `out*`.
    pub fn port_names(&self) -> ced_logic::export::PortNames {
        let mut inputs = Vec::with_capacity(self.num_inputs + self.state_bits);
        inputs.extend((0..self.num_inputs).map(|i| format!("in{i}")));
        inputs.extend((0..self.state_bits).map(|b| format!("ps{b}")));
        let mut outputs = Vec::with_capacity(self.state_bits + self.num_outputs);
        outputs.extend((0..self.state_bits).map(|b| format!("ns{b}")));
        outputs.extend((0..self.num_outputs).map(|o| format!("out{o}")));
        ced_logic::export::PortNames { inputs, outputs }
    }

    /// Exports the sequential machine as BLIF: the combinational core as
    /// `.names` tables plus one `.latch` per state bit (reset value from
    /// the reset code) — directly consumable by SIS-lineage tools.
    pub fn to_blif(&self) -> String {
        use std::fmt::Write as _;
        let ports = self.port_names();
        let comb = ced_logic::export::to_blif(self.netlist(), self.name(), &ports);
        // Rewrite the header: primary inputs only, latches for state.
        let mut out = String::new();
        let _ = writeln!(out, ".model {}", self.name());
        let _ = writeln!(
            out,
            ".inputs {}",
            (0..self.num_inputs)
                .map(|i| format!("in{i}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        let _ = writeln!(
            out,
            ".outputs {}",
            (0..self.num_outputs)
                .map(|o| format!("out{o}"))
                .collect::<Vec<_>>()
                .join(" ")
        );
        for b in 0..self.state_bits {
            let reset_bit = (self.reset_code >> b) & 1;
            let _ = writeln!(out, ".latch ns{b} ps{b} re clk {reset_bit}");
        }
        // Body: everything between the original header and .end.
        for line in comb.lines() {
            if line.starts_with(".model")
                || line.starts_with(".inputs")
                || line.starts_with(".outputs")
                || line == ".end"
            {
                continue;
            }
            out.push_str(line);
            out.push('\n');
        }
        out.push_str(".end\n");
        out
    }

    /// Exports the sequential machine as synthesizable Verilog: the
    /// combinational core plus a clocked state register with
    /// asynchronous reset to the reset code.
    pub fn to_verilog(&self) -> String {
        use std::fmt::Write as _;
        let ports = self.port_names();
        let comb =
            ced_logic::export::to_verilog(self.netlist(), &format!("{}_comb", self.name()), &ports);
        let mut out = comb;
        let _ = writeln!(out);
        let ins: Vec<String> = (0..self.num_inputs).map(|i| format!("in{i}")).collect();
        let outs: Vec<String> = (0..self.num_outputs).map(|o| format!("out{o}")).collect();
        let _ = writeln!(
            out,
            "module {}(clk, rst_n, {});",
            self.name(),
            ins.iter()
                .chain(outs.iter())
                .cloned()
                .collect::<Vec<_>>()
                .join(", ")
        );
        let _ = writeln!(out, "  input clk, rst_n;");
        for i in &ins {
            let _ = writeln!(out, "  input {i};");
        }
        for o in &outs {
            let _ = writeln!(out, "  output {o};");
        }
        let _ = writeln!(out, "  reg [{}:0] state;", self.state_bits.max(1) - 1);
        let _ = writeln!(out, "  wire [{}:0] next_state;", self.state_bits.max(1) - 1);
        let mut conns: Vec<String> = Vec::new();
        for (i, name) in ins.iter().enumerate() {
            conns.push(format!(".in{i}({name})"));
        }
        for b in 0..self.state_bits {
            conns.push(format!(".ps{b}(state[{b}])"));
            conns.push(format!(".ns{b}(next_state[{b}])"));
        }
        for (o, name) in outs.iter().enumerate() {
            conns.push(format!(".out{o}({name})"));
        }
        let _ = writeln!(out, "  {}_comb u_comb({});", self.name(), conns.join(", "));
        let _ = writeln!(out, "  always @(posedge clk or negedge rst_n)");
        let _ = writeln!(
            out,
            "    if (!rst_n) state <= {}'d{};",
            self.state_bits.max(1),
            self.reset_code
        );
        let _ = writeln!(out, "    else state <= next_state;");
        out.push_str("endmodule\n");
        out
    }

    /// Mapped gate count of the combinational core (the paper's `Gates`).
    pub fn gate_count(&self) -> usize {
        self.netlist.gate_count()
    }

    /// Combinational area under a cell library.
    pub fn combinational_area(&self, library: &CellLibrary) -> f64 {
        self.netlist.area(library)
    }

    /// Total area including the `s` state flip-flops (the paper's `Cost`).
    pub fn sequential_area(&self, library: &CellLibrary) -> f64 {
        self.combinational_area(library) + self.state_bits as f64 * library.dff
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encoding::{assign, EncodingStrategy};

    /// A 2-bit up counter with enable: out = carry.
    fn counter() -> Fsm {
        let mut fsm = Fsm::new("ctr", 1, 1);
        let s: Vec<StateId> = (0..4).map(|i| fsm.add_state(format!("c{i}"))).collect();
        for i in 0..4usize {
            // enable=1: advance; carry on wrap.
            let carry = if i == 3 {
                OutputValue::One
            } else {
                OutputValue::Zero
            };
            fsm.add_transition("1".parse().unwrap(), s[i], s[(i + 1) % 4], vec![carry])
                .unwrap();
            // enable=0: hold.
            fsm.add_transition("0".parse().unwrap(), s[i], s[i], vec![OutputValue::Zero])
                .unwrap();
        }
        fsm
    }

    fn encoded(strategy: EncodingStrategy) -> EncodedFsm {
        let fsm = counter();
        let enc = assign(&fsm, strategy);
        EncodedFsm::new(fsm, enc).unwrap()
    }

    #[test]
    fn dimensions() {
        let e = encoded(EncodingStrategy::Natural);
        assert_eq!(e.num_inputs(), 1);
        assert_eq!(e.state_bits(), 2);
        assert_eq!(e.num_outputs(), 1);
        assert_eq!(e.total_bits(), 3);
        assert_eq!(e.reset_code(), 0);
    }

    #[test]
    fn synthesized_circuit_matches_symbolic_semantics() {
        for strategy in [
            EncodingStrategy::Natural,
            EncodingStrategy::Gray,
            EncodingStrategy::Adjacency,
        ] {
            let e = encoded(strategy);
            let circuit = e.synthesize(&MinimizeOptions::default());
            for (i, st) in e.fsm().state_names().iter().enumerate() {
                let sid = e.fsm().state_by_name(st).unwrap();
                let code = e.encoding().code(sid);
                for input in 0..2u64 {
                    let t = e.fsm().transition_on(StateId(i as u32), input).unwrap();
                    let (next, out) = circuit.step(code, input);
                    assert_eq!(
                        next,
                        e.encoding().code(t.to),
                        "{strategy:?}: wrong next state from {st} on {input}"
                    );
                    match t.output[0] {
                        OutputValue::One => assert_eq!(out, 1),
                        OutputValue::Zero => assert_eq!(out, 0),
                        OutputValue::DontCare => {}
                    }
                }
            }
        }
    }

    #[test]
    fn run_traces_the_counter() {
        let e = encoded(EncodingStrategy::Natural);
        let circuit = e.synthesize(&MinimizeOptions::default());
        let trace = circuit.run([1, 1, 1, 1, 0]);
        let states: Vec<u64> = trace.iter().map(|(s, _, _)| *s).collect();
        assert_eq!(states, vec![0, 1, 2, 3, 0]);
        // Carry fires on the 3→0 wrap.
        assert_eq!(trace[3].1, 1);
        assert_eq!(trace[4].1, 0);
        // Hold on enable=0.
        assert_eq!(trace[4].2, 0);
    }

    #[test]
    fn invalid_code_dc_covers_unused_codes() {
        // 3 states in 2 bits: one invalid code.
        let mut fsm = Fsm::new("three", 1, 1);
        let s: Vec<StateId> = (0..3).map(|i| fsm.add_state(format!("s{i}"))).collect();
        for i in 0..3usize {
            fsm.add_transition(
                "-".parse().unwrap(),
                s[i],
                s[(i + 1) % 3],
                vec![OutputValue::Zero],
            )
            .unwrap();
        }
        let enc = assign(&fsm, EncodingStrategy::Natural);
        let e = EncodedFsm::new(fsm, enc).unwrap();
        let dc = e.invalid_code_dc();
        // Code 3 (state bits 11) is invalid: minterm input=*, state=11.
        assert!(dc.covers_minterm(0b110 | 0b110)); // any pattern with vars 1,2 set
        assert!(dc.covers_minterm(0b110));
        assert!(!dc.covers_minterm(0b010));
    }

    #[test]
    fn incomplete_machine_rejected() {
        let mut fsm = Fsm::new("inc", 1, 1);
        let s0 = fsm.add_state("s0");
        fsm.add_transition("1".parse().unwrap(), s0, s0, vec![OutputValue::One])
            .unwrap();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        assert!(matches!(
            EncodedFsm::new(fsm, enc),
            Err(FsmError::Incomplete { .. })
        ));
    }

    #[test]
    fn gate_count_and_area_positive() {
        let e = encoded(EncodingStrategy::Natural);
        let c = e.synthesize(&MinimizeOptions::default());
        assert!(c.gate_count() > 0);
        let lib = CellLibrary::new();
        assert!(c.combinational_area(&lib) > 0.0);
        assert!(c.sequential_area(&lib) > c.combinational_area(&lib));
    }

    #[test]
    fn blif_export_has_latches_and_tables() {
        let e = encoded(EncodingStrategy::Natural);
        let c = e.synthesize(&MinimizeOptions::default());
        let blif = c.to_blif();
        assert!(blif.starts_with(".model ctr\n"));
        assert!(blif.contains(".latch ns0 ps0 re clk 0"));
        assert!(blif.contains(".latch ns1 ps1 re clk 0"));
        assert!(blif.contains(".inputs in0"));
        assert!(blif.contains(".outputs out0"));
        assert!(blif.contains(".names"));
        assert!(blif.trim_end().ends_with(".end"));
    }

    #[test]
    fn verilog_export_has_register_and_instance() {
        let e = encoded(EncodingStrategy::Natural);
        let c = e.synthesize(&MinimizeOptions::default());
        let v = c.to_verilog();
        assert!(v.contains("module ctr_comb("));
        assert!(v.contains("module ctr(clk, rst_n, in0, out0);"));
        assert!(v.contains("reg [1:0] state;"));
        assert!(v.contains("u_comb"));
        assert!(v.contains("if (!rst_n) state <= 2'd0;"));
    }

    #[test]
    fn dont_care_outputs_reduce_logic() {
        // Same machine; one variant pins the output on hold transitions,
        // the other leaves it unspecified. DC version must not be larger.
        let build = |dc: bool| {
            let mut fsm = Fsm::new("m", 1, 1);
            let a = fsm.add_state("a");
            let b = fsm.add_state("b");
            let hold = if dc {
                OutputValue::DontCare
            } else {
                OutputValue::One
            };
            fsm.add_transition("1".parse().unwrap(), a, b, vec![OutputValue::One])
                .unwrap();
            fsm.add_transition("0".parse().unwrap(), a, a, vec![hold])
                .unwrap();
            fsm.add_transition("1".parse().unwrap(), b, a, vec![OutputValue::Zero])
                .unwrap();
            fsm.add_transition("0".parse().unwrap(), b, b, vec![hold])
                .unwrap();
            let enc = assign(&fsm, EncodingStrategy::Natural);
            EncodedFsm::new(fsm, enc)
                .unwrap()
                .synthesize(&MinimizeOptions::default())
        };
        assert!(build(true).gate_count() <= build(false).gate_count());
    }
}
