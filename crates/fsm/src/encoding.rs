//! State assignment: mapping symbolic states to binary codes.
//!
//! The paper performs state assignment before synthesis (with SIS). We
//! provide the common strategies plus a light-weight adjacency heuristic
//! in the spirit of MUSTANG: states that frequently transition to each
//! other receive codes at small Hamming distance, which tends to shrink
//! the next-state logic.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::machine::Fsm;
//! use ced_fsm::encoding::{assign, EncodingStrategy};
//! # use ced_fsm::machine::OutputValue;
//!
//! let mut fsm = Fsm::new("m", 1, 1);
//! let a = fsm.add_state("a");
//! let b = fsm.add_state("b");
//! fsm.add_transition("-".parse()?, a, b, vec![OutputValue::One])?;
//! fsm.add_transition("-".parse()?, b, a, vec![OutputValue::Zero])?;
//! let enc = assign(&fsm, EncodingStrategy::Natural);
//! assert_eq!(enc.bits(), 1);
//! assert_ne!(enc.code(a), enc.code(b));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::machine::{Fsm, StateId};

/// Available state-assignment strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum EncodingStrategy {
    /// Binary codes in state-id order (0, 1, 2, …).
    #[default]
    Natural,
    /// Gray-code order: consecutive ids differ in one bit.
    Gray,
    /// One bit per state (code = 1 << id). Expensive in flip-flops but
    /// cheap in next-state logic; included for completeness and ablation.
    OneHot,
    /// Greedy adjacency embedding (MUSTANG-like): heavily connected state
    /// pairs get Hamming-close codes.
    Adjacency,
}

/// A state assignment: `bits` flip-flops, one code per state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StateEncoding {
    bits: usize,
    codes: Vec<u64>,
}

impl StateEncoding {
    /// Builds an encoding from explicit codes.
    ///
    /// # Panics
    ///
    /// Panics if codes are not unique or exceed the bit width.
    pub fn from_codes(bits: usize, codes: Vec<u64>) -> StateEncoding {
        assert!(bits <= 63, "too many state bits");
        let mut seen = std::collections::HashSet::new();
        for &c in &codes {
            assert!(c < (1u64 << bits), "code {c:#b} exceeds {bits} bits");
            assert!(seen.insert(c), "duplicate state code {c:#b}");
        }
        StateEncoding { bits, codes }
    }

    /// Number of state bits (`s` in the paper).
    pub fn bits(&self) -> usize {
        self.bits
    }

    /// The code assigned to a state.
    ///
    /// # Panics
    ///
    /// Panics if the state id is out of range.
    pub fn code(&self, state: StateId) -> u64 {
        self.codes[state.index()]
    }

    /// All codes in state-id order.
    pub fn codes(&self) -> &[u64] {
        &self.codes
    }

    /// Reverse lookup: the state with the given code, if any.
    pub fn state_of_code(&self, code: u64) -> Option<StateId> {
        self.codes
            .iter()
            .position(|&c| c == code)
            .map(|i| StateId(i as u32))
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.codes.len()
    }
}

/// Minimum number of bits to encode `n` states densely.
pub fn min_bits(n: usize) -> usize {
    if n <= 1 {
        1
    } else {
        usize::BITS as usize - (n - 1).leading_zeros() as usize
    }
}

fn gray(i: u64) -> u64 {
    i ^ (i >> 1)
}

/// Assigns codes to the states of `fsm` using the given strategy.
///
/// The reset state always receives code 0 (Natural/Gray assign it id
/// order; Adjacency pins it explicitly) so that power-on state is
/// all-zero flip-flops, matching hardware convention.
///
/// # Panics
///
/// Panics if the machine has no states or needs more than 63 state bits.
pub fn assign(fsm: &Fsm, strategy: EncodingStrategy) -> StateEncoding {
    let n = fsm.num_states();
    assert!(n > 0, "cannot encode a machine with no states");
    match strategy {
        EncodingStrategy::Natural => {
            let bits = min_bits(n);
            StateEncoding::from_codes(bits, (0..n as u64).collect())
        }
        EncodingStrategy::Gray => {
            let bits = min_bits(n);
            StateEncoding::from_codes(bits, (0..n as u64).map(gray).collect())
        }
        EncodingStrategy::OneHot => {
            assert!(n <= 63, "one-hot limited to 63 states");
            StateEncoding::from_codes(n, (0..n).map(|i| 1u64 << i).collect())
        }
        EncodingStrategy::Adjacency => adjacency_assign(fsm),
    }
}

/// Greedy adjacency embedding. Builds a weighted state graph (weight =
/// number of transition lines between the pair, both directions, plus a
/// bonus for sharing a predecessor), then places states one at a time —
/// highest total weight first — choosing for each the free code with the
/// smallest weighted Hamming distance to already-placed neighbours.
fn adjacency_assign(fsm: &Fsm) -> StateEncoding {
    let n = fsm.num_states();
    let bits = min_bits(n);
    let mut weight = vec![vec![0u32; n]; n];
    for t in fsm.transitions() {
        let (a, b) = (t.from.index(), t.to.index());
        if a != b {
            weight[a][b] += 2;
            weight[b][a] += 2;
        }
    }
    // Fan-out bonus: states reached from the same predecessor benefit from
    // close codes (shared next-state logic).
    for s in 0..n {
        let succ: Vec<usize> = fsm
            .transitions()
            .iter()
            .filter(|t| t.from.index() == s)
            .map(|t| t.to.index())
            .collect();
        for i in 0..succ.len() {
            for j in (i + 1)..succ.len() {
                if succ[i] != succ[j] {
                    weight[succ[i]][succ[j]] += 1;
                    weight[succ[j]][succ[i]] += 1;
                }
            }
        }
    }

    let mut codes = vec![u64::MAX; n];
    let mut code_used = vec![false; 1 << bits];
    // Pin the reset state to code 0.
    let reset = fsm.reset_state().index();
    codes[reset] = 0;
    code_used[0] = true;

    // Place remaining states by decreasing total adjacency weight.
    let mut order: Vec<usize> = (0..n).filter(|&s| s != reset).collect();
    order.sort_by_key(|&s| std::cmp::Reverse(weight[s].iter().sum::<u32>()));

    for s in order {
        let mut best_code = 0u64;
        let mut best_cost = u64::MAX;
        for c in 0..(1u64 << bits) {
            if code_used[c as usize] {
                continue;
            }
            let mut cost = 0u64;
            for other in 0..n {
                if codes[other] != u64::MAX && weight[s][other] > 0 {
                    let d = (c ^ codes[other]).count_ones() as u64;
                    cost += d * weight[s][other] as u64;
                }
            }
            if cost < best_cost {
                best_cost = cost;
                best_code = c;
            }
        }
        codes[s] = best_code;
        code_used[best_code as usize] = true;
    }
    StateEncoding::from_codes(bits, codes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OutputValue;

    fn chain(n: usize) -> Fsm {
        let mut fsm = Fsm::new("chain", 1, 1);
        let ids: Vec<StateId> = (0..n).map(|i| fsm.add_state(format!("s{i}"))).collect();
        for i in 0..n {
            fsm.add_transition(
                "-".parse().unwrap(),
                ids[i],
                ids[(i + 1) % n],
                vec![OutputValue::Zero],
            )
            .unwrap();
        }
        fsm
    }

    #[test]
    fn min_bits_values() {
        assert_eq!(min_bits(1), 1);
        assert_eq!(min_bits(2), 1);
        assert_eq!(min_bits(3), 2);
        assert_eq!(min_bits(4), 2);
        assert_eq!(min_bits(5), 3);
        assert_eq!(min_bits(16), 4);
        assert_eq!(min_bits(17), 5);
    }

    #[test]
    fn natural_codes_are_sequential() {
        let enc = assign(&chain(5), EncodingStrategy::Natural);
        assert_eq!(enc.bits(), 3);
        assert_eq!(enc.codes(), &[0, 1, 2, 3, 4]);
    }

    #[test]
    fn gray_codes_adjacent_differ_by_one_bit() {
        let enc = assign(&chain(8), EncodingStrategy::Gray);
        for i in 0..7 {
            let d = (enc.codes()[i] ^ enc.codes()[i + 1]).count_ones();
            assert_eq!(d, 1, "gray codes {i},{} differ by {d}", i + 1);
        }
    }

    #[test]
    fn one_hot_codes() {
        let enc = assign(&chain(4), EncodingStrategy::OneHot);
        assert_eq!(enc.bits(), 4);
        assert_eq!(enc.codes(), &[1, 2, 4, 8]);
    }

    #[test]
    fn adjacency_keeps_reset_at_zero_and_codes_unique() {
        let fsm = chain(6);
        let enc = assign(&fsm, EncodingStrategy::Adjacency);
        assert_eq!(enc.code(fsm.reset_state()), 0);
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(codes.len(), 6);
    }

    #[test]
    fn adjacency_places_neighbours_close_on_a_chain() {
        // In a cycle, total adjacent Hamming distance under the heuristic
        // should not exceed the natural encoding's.
        let fsm = chain(8);
        let adj = assign(&fsm, EncodingStrategy::Adjacency);
        let nat = assign(&fsm, EncodingStrategy::Natural);
        let dist = |e: &StateEncoding| -> u32 {
            (0..8)
                .map(|i| (e.codes()[i] ^ e.codes()[(i + 1) % 8]).count_ones())
                .sum()
        };
        assert!(dist(&adj) <= dist(&nat));
    }

    #[test]
    fn reverse_lookup() {
        let enc = assign(&chain(3), EncodingStrategy::Natural);
        assert_eq!(enc.state_of_code(2), Some(StateId(2)));
        assert_eq!(enc.state_of_code(3), None);
    }

    #[test]
    #[should_panic(expected = "duplicate state code")]
    fn from_codes_rejects_duplicates() {
        let _ = StateEncoding::from_codes(2, vec![0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn from_codes_rejects_overflow() {
        let _ = StateEncoding::from_codes(1, vec![0, 2]);
    }
}
