//! Seeded synthetic FSM generation.
//!
//! The MCNC benchmark files evaluated by the paper are not shipped with
//! this repository (see DESIGN.md substitution note (a)); this module
//! generates machines with controlled interface dimensions, transition
//! cube structure and self-loop density, which are the properties the
//! paper's qualitative conclusions depend on. Generation is fully
//! deterministic in the seed.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::generator::{GeneratorConfig, generate};
//!
//! let cfg = GeneratorConfig {
//!     name: "demo".into(),
//!     num_inputs: 2,
//!     num_states: 5,
//!     num_outputs: 2,
//!     cubes_per_state: 3,
//!     self_loop_bias: 0.3,
//!     output_dc_prob: 0.1,
//!     output_pool: 0,
//!     seed: 42,
//! };
//! let fsm = generate(&cfg);
//! assert_eq!(fsm.num_states(), 5);
//! assert!(fsm.check_complete().is_ok());
//! assert!(fsm.check_deterministic().is_ok());
//! ```

use crate::machine::{Fsm, OutputValue, StateId};
use crate::reach::reachable_states;
use ced_logic::cube::{Cube, Literal};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of the synthetic generator.
#[derive(Debug, Clone)]
pub struct GeneratorConfig {
    /// Machine name.
    pub name: String,
    /// Number of input bits (`r`).
    pub num_inputs: usize,
    /// Number of symbolic states.
    pub num_states: usize,
    /// Number of output bits.
    pub num_outputs: usize,
    /// Target number of input cubes per state (≥ 1; capped at `2^r`).
    pub cubes_per_state: usize,
    /// Probability that a transition cube self-loops. Small machines in
    /// the paper (donfile, s27, s386) are self-loop heavy, which
    /// saturates the latency benefit early.
    pub self_loop_bias: f64,
    /// Probability that an output bit is left unspecified on a line.
    pub output_dc_prob: f64,
    /// Output structure: `0` draws every line's outputs independently
    /// at random; `k > 0` makes outputs Moore-like — each state owns one
    /// of `k` sparse output patterns and a transition emits its target
    /// state's pattern. Real controller benchmarks are strongly
    /// Moore-like, which correlates output-bit errors and is what lets
    /// a few parity trees compact many bits (see DESIGN.md note (a)).
    pub output_pool: usize,
    /// RNG seed; equal seeds give identical machines.
    pub seed: u64,
}

impl Default for GeneratorConfig {
    fn default() -> GeneratorConfig {
        GeneratorConfig {
            name: "synthetic".into(),
            num_inputs: 2,
            num_states: 8,
            num_outputs: 2,
            cubes_per_state: 4,
            self_loop_bias: 0.2,
            output_dc_prob: 0.05,
            output_pool: 0,
            seed: 0,
        }
    }
}

/// The dk512-shaped scaling workload behind `ced gen` and the sparse
/// engine benchmarks: the paper's dk512 interface (1 input bit, 3
/// output bits, Moore-like output pool, heavy self-loops) with
/// `scale` × its 15 states. Larger machines mean more encoded state
/// bits and a combinatorially larger detectability tensor, which is
/// exactly the regime the bit-packed engine targets. Deterministic in
/// (`scale`, `seed`); `scale` is clamped to ≥ 1.
pub fn scaled_workload(scale: usize, seed: u64) -> GeneratorConfig {
    let scale = scale.max(1);
    let states = 15 * scale;
    GeneratorConfig {
        name: format!("gen{scale}x"),
        num_inputs: 1,
        num_states: states,
        num_outputs: 3,
        cubes_per_state: 2,
        self_loop_bias: 0.45,
        output_dc_prob: 0.05,
        output_pool: (states / 3).clamp(2, 8),
        seed,
    }
}

/// Splits the full input cube into `k` disjoint cubes covering the whole
/// input space, by repeatedly splitting the cube with the most free
/// variables on a random free variable.
fn partition_input_space(width: usize, k: usize, rng: &mut StdRng) -> Vec<Cube> {
    let max_cubes = 1usize << width.min(20);
    let k = k.clamp(1, max_cubes);
    let mut cubes = vec![Cube::full(width)];
    while cubes.len() < k {
        // Split the cube with the most don't-cares.
        let (idx, _) = cubes
            .iter()
            .enumerate()
            .max_by_key(|(_, c)| c.width() - c.literal_count())
            .expect("non-empty cube list");
        let cube = cubes.swap_remove(idx);
        let free: Vec<usize> = (0..width)
            .filter(|&v| cube.literal(v) == Literal::DontCare)
            .collect();
        if free.is_empty() {
            // Cannot split further; put it back and stop.
            cubes.push(cube);
            break;
        }
        let v = free[rng.gen_range(0..free.len())];
        cubes.push(cube.with(v, Literal::Negative));
        cubes.push(cube.with(v, Literal::Positive));
    }
    cubes
}

fn random_outputs(cfg: &GeneratorConfig, rng: &mut StdRng) -> Vec<OutputValue> {
    (0..cfg.num_outputs)
        .map(|_| {
            if rng.gen_bool(cfg.output_dc_prob) {
                OutputValue::DontCare
            } else if rng.gen_bool(0.5) {
                OutputValue::One
            } else {
                OutputValue::Zero
            }
        })
        .collect()
}

/// Sparse Moore-style output patterns: one per pool slot, each bit set
/// with probability ~0.3 (controller outputs are mostly quiet).
fn output_pattern_pool(cfg: &GeneratorConfig, rng: &mut StdRng) -> Vec<Vec<OutputValue>> {
    (0..cfg.output_pool.max(1))
        .map(|_| {
            (0..cfg.num_outputs)
                .map(|_| {
                    if rng.gen_bool(0.3) {
                        OutputValue::One
                    } else {
                        OutputValue::Zero
                    }
                })
                .collect()
        })
        .collect()
}

fn moore_outputs(
    cfg: &GeneratorConfig,
    pattern: &[OutputValue],
    rng: &mut StdRng,
) -> Vec<OutputValue> {
    pattern
        .iter()
        .map(|&v| {
            if rng.gen_bool(cfg.output_dc_prob) {
                OutputValue::DontCare
            } else {
                v
            }
        })
        .collect()
}

/// Generates a complete, deterministic machine per the configuration.
///
/// Every state is reachable from the reset state: a random Hamiltonian
/// chain is threaded through the states before the remaining transition
/// targets are drawn.
///
/// # Panics
///
/// Panics if `num_states == 0` or `num_inputs > 16`.
pub fn generate(cfg: &GeneratorConfig) -> Fsm {
    assert!(cfg.num_states > 0, "need at least one state");
    assert!(cfg.num_inputs <= 16, "generator capped at 16 input bits");
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut fsm = Fsm::new(cfg.name.clone(), cfg.num_inputs, cfg.num_outputs);
    let states: Vec<StateId> = (0..cfg.num_states)
        .map(|i| fsm.add_state(format!("s{i}")))
        .collect();

    // Random chain visiting every state once, starting at the reset state,
    // guaranteeing global reachability.
    let mut chain: Vec<usize> = (1..cfg.num_states).collect();
    for i in (1..chain.len()).rev() {
        let j = rng.gen_range(0..=i);
        chain.swap(i, j);
    }
    let mut next_in_chain = vec![None; cfg.num_states];
    let mut prev = 0usize;
    for &s in &chain {
        next_in_chain[prev] = Some(s);
        prev = s;
    }

    // Moore structure: assign each state one pattern from the pool.
    let pool = output_pattern_pool(cfg, &mut rng);
    let state_pattern: Vec<usize> = (0..cfg.num_states)
        .map(|_| rng.gen_range(0..pool.len()))
        .collect();

    for (si, &state) in states.iter().enumerate() {
        let cubes = partition_input_space(cfg.num_inputs, cfg.cubes_per_state, &mut rng);
        for (ci, cube) in cubes.into_iter().enumerate() {
            // The first cube of a chain-bearing state follows the chain.
            let target = if ci == 0 {
                match next_in_chain[si] {
                    Some(t) => states[t],
                    None => states[rng.gen_range(0..cfg.num_states)],
                }
            } else if rng.gen_bool(cfg.self_loop_bias) {
                state
            } else {
                states[rng.gen_range(0..cfg.num_states)]
            };
            let outputs = if cfg.output_pool > 0 {
                moore_outputs(cfg, &pool[state_pattern[target.index()]], &mut rng)
            } else {
                random_outputs(cfg, &mut rng)
            };
            fsm.add_transition(cube, state, target, outputs)
                .expect("generated transition is well-formed");
        }
    }
    debug_assert_eq!(reachable_states(&fsm).len(), cfg.num_states);
    fsm
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(seed: u64) -> GeneratorConfig {
        GeneratorConfig {
            name: "t".into(),
            num_inputs: 3,
            num_states: 7,
            num_outputs: 2,
            cubes_per_state: 4,
            self_loop_bias: 0.3,
            output_dc_prob: 0.1,
            output_pool: 0,
            seed,
        }
    }

    #[test]
    fn generated_machine_is_well_formed() {
        for seed in 0..10 {
            let fsm = generate(&cfg(seed));
            assert!(fsm.check_complete().is_ok(), "seed {seed} incomplete");
            assert!(fsm.check_deterministic().is_ok(), "seed {seed} nondet");
            assert_eq!(fsm.num_states(), 7);
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let a = generate(&cfg(99));
        let b = generate(&cfg(99));
        assert_eq!(a, b);
        let c = generate(&cfg(100));
        assert_ne!(a, c);
    }

    #[test]
    fn all_states_reachable() {
        for seed in 0..10 {
            let fsm = generate(&cfg(seed));
            assert_eq!(reachable_states(&fsm).len(), 7, "seed {seed}");
        }
    }

    #[test]
    fn self_loop_bias_increases_loops() {
        let mut low_cfg = cfg(7);
        low_cfg.self_loop_bias = 0.0;
        let mut high_cfg = cfg(7);
        high_cfg.self_loop_bias = 0.95;
        let low = generate(&low_cfg).self_loop_fraction();
        let high = generate(&high_cfg).self_loop_fraction();
        assert!(high > low, "bias had no effect: {low} vs {high}");
    }

    #[test]
    fn partition_covers_input_space() {
        let mut rng = StdRng::seed_from_u64(1);
        for k in [1, 2, 3, 5, 8] {
            let cubes = partition_input_space(3, k, &mut rng);
            // Disjoint…
            for i in 0..cubes.len() {
                for j in (i + 1)..cubes.len() {
                    assert!(cubes[i].disjoint(&cubes[j]), "k={k}: overlap");
                }
            }
            // …and exhaustive.
            for m in 0..8u64 {
                assert!(
                    cubes.iter().any(|c| c.covers_minterm(m)),
                    "k={k}: minterm {m} uncovered"
                );
            }
        }
    }

    #[test]
    fn scaled_workload_is_well_formed_and_deterministic() {
        for scale in [1usize, 4, 10] {
            let cfg = scaled_workload(scale, 1);
            assert_eq!(cfg.num_states, 15 * scale);
            let fsm = generate(&cfg);
            assert!(fsm.check_complete().is_ok(), "scale {scale}");
            assert!(fsm.check_deterministic().is_ok(), "scale {scale}");
            assert_eq!(fsm.num_states(), 15 * scale);
            assert_eq!(fsm, generate(&scaled_workload(scale, 1)));
        }
        assert_eq!(scaled_workload(0, 0).num_states, 15, "scale clamps to 1");
    }

    #[test]
    fn single_state_machine() {
        let mut c = cfg(0);
        c.num_states = 1;
        let fsm = generate(&c);
        assert!(fsm.check_complete().is_ok());
        assert_eq!(fsm.num_states(), 1);
    }

    #[test]
    fn zero_inputs_machine() {
        let mut c = cfg(0);
        c.num_inputs = 0;
        c.cubes_per_state = 1;
        c.num_states = 3;
        let fsm = generate(&c);
        assert!(fsm.check_complete().is_ok());
        assert!(fsm.check_deterministic().is_ok());
    }
}
