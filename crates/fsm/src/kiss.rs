//! KISS2 parsing and printing.
//!
//! KISS2 is the MCNC benchmark interchange format for symbolic FSMs:
//!
//! ```text
//! .i 2          # input bits
//! .o 1          # output bits
//! .p 4          # number of transition lines (optional)
//! .s 2          # number of states (optional)
//! .r s0         # reset state (optional; defaults to first mentioned)
//! 0- s0 s0 0
//! 1- s0 s1 1
//! -1 s1 s0 0
//! -0 s1 s1 1
//! .e
//! ```
//!
//! One extension directive is understood (and emitted by
//! [`to_string`]): `.states a b c …` pins the state-id order
//! explicitly. Without it ids are assigned in order of first mention
//! (reset first), which loses the original numbering of machines whose
//! reset is not state 0 — and state numbering feeds the encoding, so a
//! faithful round trip must preserve it. Fleet workers rebuild corpus
//! machines from this text; `.states` is what makes their records
//! byte-identical to the coordinator's serial run.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::kiss;
//!
//! let text = ".i 1\n.o 1\n.s 2\n.r a\n0 a a 0\n1 a b 1\n- b a 0\n.e\n";
//! let fsm = kiss::parse(text)?;
//! assert_eq!(fsm.num_states(), 2);
//! let round = kiss::to_string(&fsm);
//! assert_eq!(kiss::parse(&round)?, fsm);
//! # Ok::<(), ced_fsm::kiss::ParseKissError>(())
//! ```

use crate::machine::{Fsm, OutputValue};
use ced_logic::cube::Cube;
use std::fmt;

/// Error produced when a KISS2 document cannot be parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseKissError {
    /// 1-based line number of the offending line; 0 for document-level
    /// problems (missing headers, count mismatches) with no single line
    /// to blame.
    pub line: usize,
    /// 1-based column (in characters) of the offending token; 0 when
    /// the whole line or document is at fault.
    pub column: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseKissError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "kiss2 parse error: {}", self.message),
            (l, 0) => write!(f, "kiss2 parse error at line {l}: {}", self.message),
            (l, c) => write!(
                f,
                "kiss2 parse error at line {l}, column {c}: {}",
                self.message
            ),
        }
    }
}

impl std::error::Error for ParseKissError {}

fn err(line: usize, message: impl Into<String>) -> ParseKissError {
    ParseKissError {
        line,
        column: 0,
        message: message.into(),
    }
}

fn err_at(line: usize, column: usize, message: impl Into<String>) -> ParseKissError {
    ParseKissError {
        line,
        column,
        message: message.into(),
    }
}

/// A token with the 1-based character column where it starts on its
/// source line, so errors can point into the original document.
type Token = (usize, String);

fn tokenize(raw: &str) -> Vec<Token> {
    let code = raw.split('#').next().unwrap_or("");
    let mut tokens = Vec::new();
    let mut current: Option<Token> = None;
    for (i, ch) in code.chars().enumerate() {
        if ch.is_whitespace() {
            tokens.extend(current.take());
        } else {
            match &mut current {
                Some((_, text)) => text.push(ch),
                None => current = Some((i + 1, String::from(ch))),
            }
        }
    }
    tokens.extend(current);
    tokens
}

/// Parses a KISS2 document into an [`Fsm`].
///
/// The machine name is taken from a `.model` line if present, otherwise
/// `"kiss"`. Comments start with `#`. `.p`/`.s` counts are checked when
/// present.
///
/// # Errors
///
/// Returns [`ParseKissError`] with line and column context for
/// malformed headers, cubes, output vectors, or count mismatches.
pub fn parse(text: &str) -> Result<Fsm, ParseKissError> {
    let mut num_inputs: Option<usize> = None;
    let mut num_outputs: Option<usize> = None;
    let mut declared_products: Option<usize> = None;
    let mut declared_states: Option<usize> = None;
    let mut reset_name: Option<String> = None;
    let mut declared_order: Option<Vec<String>> = None;
    let mut name = String::from("kiss");
    let mut body: Vec<(usize, Vec<Token>)> = Vec::new();
    let mut saw_content = false;

    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let tokens = tokenize(raw);
        if tokens.is_empty() {
            continue;
        }
        saw_content = true;
        match tokens[0].1.as_str() {
            ".i" => {
                num_inputs = Some(parse_count(&tokens, lineno, ".i")?);
            }
            ".o" => {
                num_outputs = Some(parse_count(&tokens, lineno, ".o")?);
            }
            ".p" => {
                declared_products = Some(parse_count(&tokens, lineno, ".p")?);
            }
            ".s" => {
                declared_states = Some(parse_count(&tokens, lineno, ".s")?);
            }
            ".r" => {
                let (_, state) = tokens
                    .get(1)
                    .ok_or_else(|| err_at(lineno, tokens[0].0, ".r needs a state name"))?;
                reset_name = Some(state.clone());
            }
            ".states" => {
                if tokens.len() < 2 {
                    return Err(err_at(lineno, tokens[0].0, ".states needs state names"));
                }
                declared_order = Some(tokens[1..].iter().map(|(_, t)| t.clone()).collect());
            }
            ".model" => {
                if let Some((_, n)) = tokens.get(1) {
                    name = n.clone();
                }
            }
            ".e" | ".end" => break,
            ".start_kiss" | ".end_kiss" | ".latch" | ".ilb" | ".ob" => {
                // Tolerated BLIF-embedding directives; ignored.
            }
            t if t.starts_with('.') => {
                return Err(err_at(
                    lineno,
                    tokens[0].0,
                    format!("unknown directive {t}"),
                ));
            }
            _ => body.push((lineno, tokens)),
        }
    }

    if !saw_content {
        return Err(err(
            0,
            "empty kiss2 document (no directives or transitions)",
        ));
    }
    let ni = num_inputs.ok_or_else(|| err(0, "missing .i header"))?;
    let no = num_outputs.ok_or_else(|| err(0, "missing .o header"))?;
    let mut fsm = Fsm::new(name, ni, no);

    // First pass: collect states. An explicit `.states` order wins (it
    // pins ids exactly, reset wherever the writer put it); otherwise
    // ids follow order of first mention so that the reset default
    // matches convention and the reset state gets id 0.
    if let Some(order) = &declared_order {
        for s in order {
            fsm.add_state(s.clone());
        }
    }
    if let Some(r) = &reset_name {
        fsm.add_state(r.clone());
    }
    // With zero outputs the output field is empty and lines have three
    // tokens; otherwise four.
    let expected_fields = if no == 0 { 3 } else { 4 };
    for (lineno, tokens) in &body {
        if tokens.len() != expected_fields {
            return Err(err_at(
                *lineno,
                tokens[0].0,
                format!(
                    "expected `input from to{}`, got {} fields (truncated line?)",
                    if no == 0 { "" } else { " output" },
                    tokens.len()
                ),
            ));
        }
        fsm.add_state(tokens[1].1.clone());
        fsm.add_state(tokens[2].1.clone());
    }

    for (lineno, tokens) in &body {
        let (in_col, in_text) = &tokens[0];
        let input: Cube = in_text
            .parse()
            .map_err(|e| err_at(*lineno, *in_col, format!("bad input cube: {e}")))?;
        if input.width() != ni {
            return Err(err_at(
                *lineno,
                *in_col,
                format!("input cube has {} bits, expected {ni}", input.width()),
            ));
        }
        let from = fsm.state_by_name(&tokens[1].1).expect("state interned");
        let to = fsm.state_by_name(&tokens[2].1).expect("state interned");
        let mut output = Vec::with_capacity(no);
        let (out_col, out_field) = tokens
            .get(3)
            .map(|(c, t)| (*c, t.as_str()))
            .unwrap_or((0, ""));
        for (i, ch) in out_field.chars().enumerate() {
            let v = OutputValue::from_char(ch).ok_or_else(|| {
                err_at(*lineno, out_col + i, format!("bad output character `{ch}`"))
            })?;
            output.push(v);
        }
        if output.len() != no {
            return Err(err_at(
                *lineno,
                out_col,
                format!("output has {} bits, expected {no}", output.len()),
            ));
        }
        fsm.add_transition(input, from, to, output)
            .map_err(|e| err_at(*lineno, *in_col, e.to_string()))?;
    }

    if let Some(r) = reset_name {
        let id = fsm
            .state_by_name(&r)
            .ok_or_else(|| err(0, format!("reset state {r} never used")))?;
        fsm.set_reset_state(id).expect("state exists");
    }
    if let Some(p) = declared_products {
        if p != fsm.transitions().len() {
            return Err(err(
                0,
                format!(
                    ".p declares {p} products, found {}",
                    fsm.transitions().len()
                ),
            ));
        }
    }
    if let Some(s) = declared_states {
        if s != fsm.num_states() {
            return Err(err(
                0,
                format!(".s declares {s} states, found {}", fsm.num_states()),
            ));
        }
    }
    Ok(fsm)
}

fn parse_count(tokens: &[Token], lineno: usize, what: &str) -> Result<usize, ParseKissError> {
    match tokens.get(1) {
        Some((col, t)) => t
            .parse()
            .map_err(|_| err_at(lineno, *col, format!("{what} needs a number, got `{t}`"))),
        None => Err(err_at(
            lineno,
            tokens[0].0,
            format!("{what} needs a number"),
        )),
    }
}

/// Serializes an [`Fsm`] to KISS2 text.
pub fn to_string(fsm: &Fsm) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    // Emit the model name so a round trip preserves machine identity
    // (fleet workers rebuild machines from this text; reports carry
    // the name). Names with whitespace cannot be represented in a
    // KISS2 token and fall back to the parser's default.
    if !fsm.name().is_empty() && !fsm.name().contains(char::is_whitespace) {
        let _ = writeln!(out, ".model {}", fsm.name());
    }
    let _ = writeln!(out, ".i {}", fsm.num_inputs());
    let _ = writeln!(out, ".o {}", fsm.num_outputs());
    let _ = writeln!(out, ".p {}", fsm.transitions().len());
    let _ = writeln!(out, ".s {}", fsm.num_states());
    // Pin the id order (see the module docs): without this, re-parsing
    // renumbers states by first mention and the encoding — hence every
    // downstream gate count — silently changes.
    let representable =
        |s: &str| !s.is_empty() && !s.contains(char::is_whitespace) && !s.contains('#');
    if fsm.num_states() > 0 && fsm.state_names().iter().all(|s| representable(s)) {
        let _ = writeln!(out, ".states {}", fsm.state_names().join(" "));
    }
    if fsm.num_states() > 0 {
        let _ = writeln!(out, ".r {}", fsm.state_name(fsm.reset_state()));
    }
    for t in fsm.transitions() {
        let outputs: String = t.output.iter().map(|v| v.to_char()).collect();
        if outputs.is_empty() {
            let _ = writeln!(
                out,
                "{} {} {}",
                t.input,
                fsm.state_name(t.from),
                fsm.state_name(t.to)
            );
        } else {
            let _ = writeln!(
                out,
                "{} {} {} {}",
                t.input,
                fsm.state_name(t.from),
                fsm.state_name(t.to),
                outputs
            );
        }
    }
    out.push_str(".e\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::StateId;

    const TOGGLE: &str = "\
# a 1-input toggle machine
.i 1
.o 1
.p 3
.s 2
.r a
0 a a 0
1 a b 1
- b a 0
.e
";

    #[test]
    fn parse_basic() {
        let fsm = parse(TOGGLE).unwrap();
        assert_eq!(fsm.num_inputs(), 1);
        assert_eq!(fsm.num_outputs(), 1);
        assert_eq!(fsm.num_states(), 2);
        assert_eq!(fsm.state_name(fsm.reset_state()), "a");
        assert_eq!(fsm.transitions().len(), 3);
    }

    #[test]
    fn round_trip() {
        let fsm = parse(TOGGLE).unwrap();
        let text = to_string(&fsm);
        let again = parse(&text).unwrap();
        assert_eq!(fsm, again);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let text = "\n# hi\n.i 1\n\n.o 1\n0 x x 1  # trailing\n1 x x 0\n.e\n";
        let fsm = parse(text).unwrap();
        assert_eq!(fsm.num_states(), 1);
        assert_eq!(fsm.transitions().len(), 2);
    }

    #[test]
    fn reset_defaults_to_first_mentioned() {
        let text = ".i 1\n.o 1\n- b a 0\n- a b 1\n.e\n";
        let fsm = parse(text).unwrap();
        assert_eq!(fsm.state_name(fsm.reset_state()), "b");
    }

    #[test]
    fn explicit_reset_wins() {
        let text = ".i 1\n.o 1\n.r a\n- b a 0\n- a b 1\n.e\n";
        let fsm = parse(text).unwrap();
        assert_eq!(fsm.state_name(fsm.reset_state()), "a");
        // And the reset state gets id 0 for stable downstream encoding.
        assert_eq!(fsm.reset_state(), StateId(0));
    }

    #[test]
    fn states_directive_pins_id_order() {
        // Reset is c (id 2 here), and mention order (b, a, c) differs
        // from the declared order — the directive must win on both.
        let text = ".i 1\n.o 1\n.states a b c\n.r c\n- b a 0\n- a c 1\n- c b 0\n.e\n";
        let fsm = parse(text).unwrap();
        assert_eq!(fsm.state_names(), ["a", "b", "c"]);
        assert_eq!(fsm.reset_state(), StateId(2));
    }

    #[test]
    fn round_trip_preserves_state_numbering() {
        // A machine whose reset is not state 0: first-mention numbering
        // would rotate the ids (and with them the encoding), so the
        // emitted `.states` line must carry the original order through.
        let mut fsm = Fsm::new("rot", 1, 1);
        let a = fsm.add_state("a");
        let b = fsm.add_state("b");
        let o = |v| vec![OutputValue::from_char(v).unwrap()];
        fsm.add_transition("-".parse().unwrap(), a, b, o('0'))
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), b, a, o('1'))
            .unwrap();
        fsm.set_reset_state(b).unwrap();
        let again = parse(&to_string(&fsm)).unwrap();
        assert_eq!(again, fsm);
        assert_eq!(again.state_names(), ["a", "b"]);
        assert_eq!(again.reset_state(), b);
    }

    #[test]
    fn missing_headers_rejected() {
        assert!(parse("0 a a 0\n").is_err());
        assert!(parse(".i 1\n0 a a 0\n").is_err());
    }

    #[test]
    fn bad_cube_reported_with_line() {
        let text = ".i 2\n.o 1\n0z a a 1\n";
        let e = parse(text).unwrap_err();
        assert_eq!(e.line, 3);
    }

    #[test]
    fn width_mismatches_rejected() {
        assert!(parse(".i 2\n.o 1\n0 a a 1\n").is_err());
        assert!(parse(".i 1\n.o 2\n0 a a 1\n").is_err());
    }

    #[test]
    fn count_mismatches_rejected() {
        assert!(parse(".i 1\n.o 1\n.p 5\n0 a a 1\n.e\n").is_err());
        assert!(parse(".i 1\n.o 1\n.s 3\n0 a a 1\n.e\n").is_err());
    }

    #[test]
    fn dont_care_outputs() {
        let text = ".i 1\n.o 3\n- a a 1-0\n.e\n";
        let fsm = parse(text).unwrap();
        assert_eq!(
            fsm.transitions()[0].output,
            vec![OutputValue::One, OutputValue::DontCare, OutputValue::Zero]
        );
    }

    #[test]
    fn unknown_directive_rejected() {
        let e = parse(".i 1\n.o 1\n  .bogus 3\n.e\n").unwrap_err();
        assert_eq!((e.line, e.column), (3, 3));
        assert!(e.message.contains(".bogus"));
    }

    #[test]
    fn empty_documents_rejected() {
        for text in ["", "\n\n\n", "# only a comment\n  # another\n"] {
            let e = parse(text).unwrap_err();
            assert!(e.message.contains("empty"), "{text:?}: {e}");
            assert_eq!(e.line, 0);
        }
    }

    #[test]
    fn truncated_transition_line_points_at_it() {
        // File cut off mid-transition: the last line lacks fields.
        let e = parse(".i 1\n.o 1\n0 a a 0\n1 a").unwrap_err();
        assert_eq!((e.line, e.column), (4, 1));
        assert!(e.message.contains("truncated"), "{e}");
    }

    #[test]
    fn garbage_input_is_a_parse_error_not_a_panic() {
        for text in [
            "garbage\u{0}\u{1}\u{2}",
            "<html><body>404</body></html>",
            ".i one\n.o 1\n",
            ".i 1\n.o 1\n\u{fffd}\u{fffd} a a 1\n",
            ".i 1\n.o 1\n.r\n",
        ] {
            assert!(parse(text).is_err(), "{text:?} parsed");
        }
    }

    #[test]
    fn bad_count_argument_has_column() {
        let e = parse(".i banana\n.o 1\n.e\n").unwrap_err();
        assert_eq!((e.line, e.column), (1, 4));
        assert!(e.message.contains("banana"));
    }

    #[test]
    fn bad_output_character_column_points_inside_the_token() {
        let text = ".i 1\n.o 3\n0 a a 1z0\n.e\n";
        let e = parse(text).unwrap_err();
        // The `z` is the 2nd char of the output token starting at column 7.
        assert_eq!((e.line, e.column), (3, 8));
        assert!(e.message.contains('z'));
    }

    #[test]
    fn bad_cube_column_points_at_the_cube() {
        let e = parse(".i 2\n.o 1\n   0z a a 1\n").unwrap_err();
        assert_eq!((e.line, e.column), (3, 4));
    }

    #[test]
    fn display_formats_line_and_column() {
        let e = parse(".i 2\n.o 1\n0z a a 1\n").unwrap_err();
        let s = e.to_string();
        assert!(s.contains("line 3"), "{s}");
        assert!(s.contains("column 1"), "{s}");
    }
}
