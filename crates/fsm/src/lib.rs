//! # ced-fsm — FSM toolkit for bounded-latency CED
//!
//! Symbolic finite state machines (KISS2), state assignment, gate-level
//! synthesis via the [`ced_logic`] substrate, reachability analysis and
//! a deterministic synthetic benchmark suite mirroring the MCNC circuits
//! evaluated by *"On Concurrent Error Detection with Bounded Latency in
//! FSMs"* (DATE 2004).
//!
//! Typical flow:
//!
//! ```
//! use ced_fsm::{kiss, encoding, encoded::EncodedFsm};
//! use ced_logic::MinimizeOptions;
//!
//! let fsm = ced_fsm::suite::sequence_detector();
//! let enc = encoding::assign(&fsm, encoding::EncodingStrategy::Natural);
//! let machine = EncodedFsm::new(fsm, enc)?;
//! let circuit = machine.synthesize(&MinimizeOptions::default());
//! assert!(circuit.gate_count() > 0);
//! # Ok::<(), ced_fsm::machine::FsmError>(())
//! ```

#![warn(missing_docs)]
// Indexed loops over bit positions are the clearest form for this
// bit-twiddling code; the iterator rewrites clippy suggests obscure it.
#![allow(clippy::needless_range_loop)]

pub mod analysis;
pub mod encoded;
pub mod encoding;
pub mod generator;
pub mod kiss;
pub mod machine;
pub mod minimize;
pub mod reach;
pub mod suite;

pub use encoded::{EncodedFsm, FsmCircuit};
pub use encoding::{assign, EncodingStrategy, StateEncoding};
pub use machine::{Fsm, FsmError, OutputValue, StateId, Transition};
