//! Symbolic finite state machines (the KISS2 level of abstraction).
//!
//! An [`Fsm`] is a Mealy machine over symbolic states: transitions carry
//! an input cube (ternary, so one line can cover many input vectors), a
//! present state, a next state, and a ternary output vector. This is the
//! representation MCNC benchmarks use and the entry point of the whole
//! CED pipeline.
//!
//! # Examples
//!
//! ```
//! use ced_fsm::machine::{Fsm, OutputValue};
//!
//! let mut fsm = Fsm::new("toggle", 1, 1);
//! let s0 = fsm.add_state("s0");
//! let s1 = fsm.add_state("s1");
//! fsm.add_transition("1".parse()?, s0, s1, vec![OutputValue::One])?;
//! fsm.add_transition("0".parse()?, s0, s0, vec![OutputValue::Zero])?;
//! fsm.add_transition("-".parse()?, s1, s0, vec![OutputValue::Zero])?;
//! assert_eq!(fsm.num_states(), 2);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use ced_logic::cube::Cube;
use std::collections::HashMap;
use std::fmt;

/// Index of a state in an [`Fsm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StateId(pub u32);

impl StateId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for StateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "q{}", self.0)
    }
}

/// A ternary output value of one output bit on one transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OutputValue {
    /// Output is 0.
    Zero,
    /// Output is 1.
    One,
    /// Output is unspecified (synthesis may choose either).
    DontCare,
}

impl OutputValue {
    /// The KISS2 character.
    pub fn to_char(self) -> char {
        match self {
            OutputValue::Zero => '0',
            OutputValue::One => '1',
            OutputValue::DontCare => '-',
        }
    }

    /// Parses a KISS2 output character.
    pub fn from_char(c: char) -> Option<OutputValue> {
        match c {
            '0' => Some(OutputValue::Zero),
            '1' => Some(OutputValue::One),
            '-' | '2' | 'x' | 'X' => Some(OutputValue::DontCare),
            _ => None,
        }
    }
}

/// One symbolic transition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transition {
    /// Ternary input cube over the FSM's input bits.
    pub input: Cube,
    /// Present state.
    pub from: StateId,
    /// Next state.
    pub to: StateId,
    /// Ternary outputs, one per output bit.
    pub output: Vec<OutputValue>,
}

/// Errors raised while constructing or validating an [`Fsm`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FsmError {
    /// Input cube width differs from the machine's input count.
    InputWidthMismatch {
        /// Expected width (the FSM's input count).
        expected: usize,
        /// Actual cube width.
        actual: usize,
    },
    /// Output vector length differs from the machine's output count.
    OutputWidthMismatch {
        /// Expected length (the FSM's output count).
        expected: usize,
        /// Actual vector length.
        actual: usize,
    },
    /// A state id does not exist in this machine.
    UnknownState(StateId),
    /// Two transitions from the same state overlap on inputs but disagree.
    Nondeterministic {
        /// Index of the first conflicting transition.
        first: usize,
        /// Index of the second conflicting transition.
        second: usize,
    },
    /// Some (state, input) pair has no transition.
    Incomplete {
        /// The state lacking a transition.
        state: StateId,
        /// An example input vector with no transition.
        input: u64,
    },
    /// The machine has no states.
    NoStates,
}

impl fmt::Display for FsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsmError::InputWidthMismatch { expected, actual } => {
                write!(
                    f,
                    "input cube width {actual} does not match {expected} inputs"
                )
            }
            FsmError::OutputWidthMismatch { expected, actual } => {
                write!(f, "output width {actual} does not match {expected} outputs")
            }
            FsmError::UnknownState(s) => write!(f, "unknown state {s}"),
            FsmError::Nondeterministic { first, second } => {
                write!(f, "transitions {first} and {second} overlap and disagree")
            }
            FsmError::Incomplete { state, input } => {
                write!(f, "no transition from state {state} on input {input:b}")
            }
            FsmError::NoStates => write!(f, "machine has no states"),
        }
    }
}

impl std::error::Error for FsmError {}

/// A symbolic Mealy machine.
#[derive(Debug, Clone, PartialEq)]
pub struct Fsm {
    name: String,
    num_inputs: usize,
    num_outputs: usize,
    states: Vec<String>,
    state_index: HashMap<String, StateId>,
    reset: Option<StateId>,
    transitions: Vec<Transition>,
}

impl Fsm {
    /// Creates an empty machine with the given interface.
    pub fn new(name: impl Into<String>, num_inputs: usize, num_outputs: usize) -> Fsm {
        Fsm {
            name: name.into(),
            num_inputs,
            num_outputs,
            states: Vec::new(),
            state_index: HashMap::new(),
            reset: None,
            transitions: Vec::new(),
        }
    }

    /// The machine's name (benchmark circuit name).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of primary input bits (`r` in the paper).
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary output bits (`n − s` in the paper).
    pub fn num_outputs(&self) -> usize {
        self.num_outputs
    }

    /// Number of symbolic states.
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// State names in id order.
    pub fn state_names(&self) -> &[String] {
        &self.states
    }

    /// The name of a state.
    ///
    /// # Panics
    ///
    /// Panics if the id is out of range.
    pub fn state_name(&self, id: StateId) -> &str {
        &self.states[id.index()]
    }

    /// Looks up a state id by name.
    pub fn state_by_name(&self, name: &str) -> Option<StateId> {
        self.state_index.get(name).copied()
    }

    /// Adds a state (or returns the existing id for a known name).
    pub fn add_state(&mut self, name: impl Into<String>) -> StateId {
        let name = name.into();
        if let Some(&id) = self.state_index.get(&name) {
            return id;
        }
        let id = StateId(self.states.len() as u32);
        self.state_index.insert(name.clone(), id);
        self.states.push(name);
        if self.reset.is_none() {
            self.reset = Some(id);
        }
        id
    }

    /// The reset state (defaults to the first state added).
    ///
    /// # Panics
    ///
    /// Panics if the machine has no states.
    pub fn reset_state(&self) -> StateId {
        self.reset.expect("machine has no states")
    }

    /// Overrides the reset state.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::UnknownState`] if `state` is out of range.
    pub fn set_reset_state(&mut self, state: StateId) -> Result<(), FsmError> {
        if state.index() >= self.states.len() {
            return Err(FsmError::UnknownState(state));
        }
        self.reset = Some(state);
        Ok(())
    }

    /// The transitions, in insertion order (earlier lines take priority on
    /// overlap, KISS2-style).
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// Adds a transition.
    ///
    /// # Errors
    ///
    /// Returns a width-mismatch or unknown-state error if the transition
    /// is malformed for this machine.
    pub fn add_transition(
        &mut self,
        input: Cube,
        from: StateId,
        to: StateId,
        output: Vec<OutputValue>,
    ) -> Result<(), FsmError> {
        if input.width() != self.num_inputs {
            return Err(FsmError::InputWidthMismatch {
                expected: self.num_inputs,
                actual: input.width(),
            });
        }
        if output.len() != self.num_outputs {
            return Err(FsmError::OutputWidthMismatch {
                expected: self.num_outputs,
                actual: output.len(),
            });
        }
        for s in [from, to] {
            if s.index() >= self.states.len() {
                return Err(FsmError::UnknownState(s));
            }
        }
        self.transitions.push(Transition {
            input,
            from,
            to,
            output,
        });
        Ok(())
    }

    /// Looks up the transition taken from `state` on concrete `input`
    /// (bit `i` = input bit `i`). Earlier transitions win on overlap.
    pub fn transition_on(&self, state: StateId, input: u64) -> Option<&Transition> {
        self.transitions
            .iter()
            .find(|t| t.from == state && t.input.covers_minterm(input))
    }

    /// Checks that overlapping transitions from the same state agree on
    /// next state and outputs (pseudo-nondeterminism as in well-formed
    /// KISS2 files is allowed only when consistent).
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::Nondeterministic`] naming the first conflict.
    pub fn check_deterministic(&self) -> Result<(), FsmError> {
        for i in 0..self.transitions.len() {
            for j in (i + 1)..self.transitions.len() {
                let (a, b) = (&self.transitions[i], &self.transitions[j]);
                if a.from != b.from || a.input.disjoint(&b.input) {
                    continue;
                }
                let outputs_conflict = a.output.iter().zip(&b.output).any(|(x, y)| {
                    matches!(
                        (x, y),
                        (OutputValue::Zero, OutputValue::One)
                            | (OutputValue::One, OutputValue::Zero)
                    )
                });
                if a.to != b.to || outputs_conflict {
                    return Err(FsmError::Nondeterministic {
                        first: i,
                        second: j,
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks that every (state, input) pair has a transition.
    ///
    /// # Errors
    ///
    /// Returns [`FsmError::Incomplete`] with a witness, or
    /// [`FsmError::NoStates`] for an empty machine.
    pub fn check_complete(&self) -> Result<(), FsmError> {
        if self.states.is_empty() {
            return Err(FsmError::NoStates);
        }
        for s in 0..self.states.len() {
            let state = StateId(s as u32);
            for input in 0..(1u64 << self.num_inputs) {
                if self.transition_on(state, input).is_none() {
                    return Err(FsmError::Incomplete { state, input });
                }
            }
        }
        Ok(())
    }

    /// Completes the machine: every unspecified (state, input) pair gets a
    /// self-loop with all-don't-care outputs. This mirrors the common
    /// synthesis convention for partially specified MCNC machines.
    pub fn complete_with_self_loops(&mut self) {
        for s in 0..self.states.len() {
            let state = StateId(s as u32);
            // Gather uncovered input minterms and re-cube them greedily by
            // single minterms (clarity over minimality; the DC outputs give
            // the minimizer full freedom anyway).
            let mut missing: Vec<u64> = Vec::new();
            for input in 0..(1u64 << self.num_inputs) {
                if self.transition_on(state, input).is_none() {
                    missing.push(input);
                }
            }
            for m in missing {
                let cube = Cube::minterm(self.num_inputs, m);
                self.transitions.push(Transition {
                    input: cube,
                    from: state,
                    to: state,
                    output: vec![OutputValue::DontCare; self.num_outputs],
                });
            }
        }
    }

    /// The fraction of (state, input) pairs that self-loop — the paper's
    /// §5 discussion ties latency benefit to self-loop density.
    pub fn self_loop_fraction(&self) -> f64 {
        if self.states.is_empty() || self.num_inputs > 20 {
            return 0.0;
        }
        let total = self.states.len() as f64 * (1u64 << self.num_inputs) as f64;
        let mut loops = 0usize;
        for s in 0..self.states.len() {
            let state = StateId(s as u32);
            for input in 0..(1u64 << self.num_inputs) {
                if let Some(t) = self.transition_on(state, input) {
                    if t.to == state {
                        loops += 1;
                    }
                }
            }
        }
        loops as f64 / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toggle() -> Fsm {
        let mut fsm = Fsm::new("toggle", 1, 1);
        let s0 = fsm.add_state("s0");
        let s1 = fsm.add_state("s1");
        fsm.add_transition("1".parse().unwrap(), s0, s1, vec![OutputValue::One])
            .unwrap();
        fsm.add_transition("0".parse().unwrap(), s0, s0, vec![OutputValue::Zero])
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), s1, s0, vec![OutputValue::Zero])
            .unwrap();
        fsm
    }

    #[test]
    fn build_and_query() {
        let fsm = toggle();
        assert_eq!(fsm.num_states(), 2);
        assert_eq!(fsm.reset_state(), StateId(0));
        let s0 = fsm.state_by_name("s0").unwrap();
        let t = fsm.transition_on(s0, 1).unwrap();
        assert_eq!(fsm.state_name(t.to), "s1");
    }

    #[test]
    fn duplicate_state_names_reuse_ids() {
        let mut fsm = Fsm::new("x", 1, 0);
        let a = fsm.add_state("a");
        let a2 = fsm.add_state("a");
        assert_eq!(a, a2);
        assert_eq!(fsm.num_states(), 1);
    }

    #[test]
    fn width_validation() {
        let mut fsm = Fsm::new("x", 2, 1);
        let s = fsm.add_state("s");
        let err = fsm
            .add_transition("1".parse().unwrap(), s, s, vec![OutputValue::Zero])
            .unwrap_err();
        assert!(matches!(err, FsmError::InputWidthMismatch { .. }));
        let err = fsm
            .add_transition("11".parse().unwrap(), s, s, vec![])
            .unwrap_err();
        assert!(matches!(err, FsmError::OutputWidthMismatch { .. }));
    }

    #[test]
    fn determinism_check() {
        let fsm = toggle();
        assert!(fsm.check_deterministic().is_ok());

        let mut bad = Fsm::new("bad", 1, 1);
        let s0 = bad.add_state("s0");
        let s1 = bad.add_state("s1");
        bad.add_transition("-".parse().unwrap(), s0, s0, vec![OutputValue::Zero])
            .unwrap();
        bad.add_transition("1".parse().unwrap(), s0, s1, vec![OutputValue::Zero])
            .unwrap();
        assert!(matches!(
            bad.check_deterministic(),
            Err(FsmError::Nondeterministic { .. })
        ));
    }

    #[test]
    fn consistent_overlap_is_allowed() {
        let mut fsm = Fsm::new("ok", 1, 1);
        let s0 = fsm.add_state("s0");
        fsm.add_transition("-".parse().unwrap(), s0, s0, vec![OutputValue::DontCare])
            .unwrap();
        fsm.add_transition("1".parse().unwrap(), s0, s0, vec![OutputValue::One])
            .unwrap();
        assert!(fsm.check_deterministic().is_ok());
    }

    #[test]
    fn completeness_and_completion() {
        let mut fsm = Fsm::new("partial", 2, 1);
        let s0 = fsm.add_state("s0");
        fsm.add_transition("11".parse().unwrap(), s0, s0, vec![OutputValue::One])
            .unwrap();
        assert!(matches!(
            fsm.check_complete(),
            Err(FsmError::Incomplete { .. })
        ));
        fsm.complete_with_self_loops();
        assert!(fsm.check_complete().is_ok());
        // Added self-loops go back to the same state.
        let t = fsm.transition_on(s0, 0b00).unwrap();
        assert_eq!(t.to, s0);
        assert_eq!(t.output[0], OutputValue::DontCare);
    }

    #[test]
    fn transition_priority_is_first_match() {
        let mut fsm = Fsm::new("prio", 1, 1);
        let s0 = fsm.add_state("s0");
        let s1 = fsm.add_state("s1");
        fsm.add_transition("1".parse().unwrap(), s0, s1, vec![OutputValue::One])
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), s0, s0, vec![OutputValue::Zero])
            .unwrap();
        assert_eq!(fsm.transition_on(s0, 1).unwrap().to, s1);
        assert_eq!(fsm.transition_on(s0, 0).unwrap().to, s0);
    }

    #[test]
    fn self_loop_fraction_of_toggle() {
        let fsm = toggle();
        // s0 self-loops on input 0 only; s1 never. 1 of 4 pairs.
        assert!((fsm.self_loop_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_machine_errors() {
        let fsm = Fsm::new("empty", 1, 1);
        assert!(matches!(fsm.check_complete(), Err(FsmError::NoStates)));
    }
}
