//! State minimization for completely specified machines.
//!
//! Classical Moore–Hopcroft partition refinement on the Mealy machine:
//! two states are equivalent iff for every input they emit the same
//! outputs and transition into equivalent states. Benchmarks usually
//! arrive minimized, but synthetic machines and hand-written
//! controllers benefit, and a smaller state count shrinks everything
//! downstream (encoding bits, logic, detectability table).
//!
//! Unspecified outputs are treated as a distinct output value — the
//! reduction is exact on the specified behaviour and never merges
//! states whose specified outputs could differ (minimizing *partially*
//! specified machines optimally is NP-hard and out of scope).
//!
//! # Examples
//!
//! ```
//! use ced_fsm::{machine::Fsm, machine::OutputValue, minimize::minimize_states};
//!
//! // Two copies of the same 1-state behaviour collapse.
//! let mut fsm = Fsm::new("dup", 1, 1);
//! let a = fsm.add_state("a");
//! let b = fsm.add_state("b");
//! fsm.add_transition("-".parse()?, a, b, vec![OutputValue::One])?;
//! fsm.add_transition("-".parse()?, b, a, vec![OutputValue::One])?;
//! let min = minimize_states(&fsm)?;
//! assert_eq!(min.num_states(), 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

use crate::machine::{Fsm, FsmError, OutputValue, StateId};

/// Minimizes a complete, deterministic machine by merging equivalent
/// states. The reset state's class becomes the new reset state; class
/// representatives keep their original names.
///
/// # Errors
///
/// Returns the underlying [`FsmError`] if the machine is incomplete or
/// inconsistent (call [`Fsm::complete_with_self_loops`] first for
/// partially specified machines).
pub fn minimize_states(fsm: &Fsm) -> Result<Fsm, FsmError> {
    fsm.check_deterministic()?;
    fsm.check_complete()?;
    let n = fsm.num_states();
    if n == 0 {
        return Err(FsmError::NoStates);
    }
    let r = fsm.num_inputs();
    let inputs: Vec<u64> = (0..(1u64 << r)).collect();

    // Behaviour signature per state and input: (output vector, successor).
    let step = |s: usize, a: u64| -> (&[OutputValue], usize) {
        let t = fsm
            .transition_on(StateId(s as u32), a)
            .expect("complete machine");
        (&t.output, t.to.index())
    };

    // Initial partition: by the full per-input output vector.
    let mut class = vec![0usize; n];
    {
        let mut signatures: Vec<Vec<&[OutputValue]>> = Vec::new();
        for s in 0..n {
            let sig: Vec<&[OutputValue]> = inputs.iter().map(|&a| step(s, a).0).collect();
            let found = signatures.iter().position(|x| *x == sig);
            class[s] = match found {
                Some(c) => c,
                None => {
                    signatures.push(sig);
                    signatures.len() - 1
                }
            };
        }
    }

    // Refinement: split classes whose members disagree on successor
    // classes for some input.
    loop {
        let mut new_class = vec![0usize; n];
        let mut signatures: Vec<(usize, Vec<usize>)> = Vec::new();
        for s in 0..n {
            let sig: Vec<usize> = inputs.iter().map(|&a| class[step(s, a).1]).collect();
            let key = (class[s], sig);
            let found = signatures.iter().position(|x| *x == key);
            new_class[s] = match found {
                Some(c) => c,
                None => {
                    signatures.push(key);
                    signatures.len() - 1
                }
            };
        }
        if new_class == class {
            break;
        }
        class = new_class;
    }

    // Build the quotient machine: representative = lowest-indexed member.
    let num_classes = class.iter().copied().max().unwrap_or(0) + 1;
    let mut representative = vec![usize::MAX; num_classes];
    for s in 0..n {
        if representative[class[s]] == usize::MAX {
            representative[class[s]] = s;
        }
    }

    let mut out = Fsm::new(fsm.name().to_string(), r, fsm.num_outputs());
    // Reset class first so it becomes state 0 / default reset.
    let reset_class = class[fsm.reset_state().index()];
    let mut order: Vec<usize> = (0..num_classes).collect();
    order.sort_by_key(|&c| (c != reset_class, representative[c]));
    let mut class_state = vec![StateId(0); num_classes];
    for &c in &order {
        let name = fsm.state_name(StateId(representative[c] as u32));
        class_state[c] = out.add_state(name.to_string());
    }
    for &c in &order {
        let rep = StateId(representative[c] as u32);
        for t in fsm.transitions().iter().filter(|t| t.from == rep) {
            out.add_transition(
                t.input.clone(),
                class_state[c],
                class_state[class[t.to.index()]],
                t.output.clone(),
            )?;
        }
    }
    Ok(out)
}

/// Number of equivalence classes (the minimized state count) without
/// building the quotient machine.
///
/// # Errors
///
/// Same conditions as [`minimize_states`].
pub fn equivalent_state_count(fsm: &Fsm) -> Result<usize, FsmError> {
    Ok(minimize_states(fsm)?.num_states())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{generate, GeneratorConfig};
    use crate::suite;

    fn behaviour_equal(a: &Fsm, b: &Fsm, steps: usize, seed: u64) {
        let mut sa = a.reset_state();
        let mut sb = b.reset_state();
        let mut x = seed | 1;
        for _ in 0..steps {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let input = (x >> 33) & ((1 << a.num_inputs()) - 1);
            let ta = a.transition_on(sa, input).expect("complete");
            let tb = b.transition_on(sb, input).expect("complete");
            assert_eq!(ta.output, tb.output, "outputs diverge on input {input}");
            sa = ta.to;
            sb = tb.to;
        }
    }

    #[test]
    fn duplicated_machine_halves() {
        // Two disjoint copies of a 2-state toggle, entered from a common
        // reset alias (copy B unreachable but still merged by class).
        let mut fsm = Fsm::new("twice", 1, 1);
        let a0 = fsm.add_state("a0");
        let a1 = fsm.add_state("a1");
        let b0 = fsm.add_state("b0");
        let b1 = fsm.add_state("b1");
        for (x, y) in [(a0, a1), (a1, a0), (b0, b1), (b1, b0)] {
            fsm.add_transition("-".parse().unwrap(), x, y, vec![OutputValue::One])
                .unwrap();
        }
        let min = minimize_states(&fsm).unwrap();
        // a0≡b0≡a1≡b1? toggle emits One always and alternates between two
        // states with identical behaviour — all four states equivalent.
        assert_eq!(min.num_states(), 1);
        behaviour_equal(&fsm, &min, 50, 3);
    }

    #[test]
    fn distinct_outputs_prevent_merging() {
        let mut fsm = Fsm::new("distinct", 1, 1);
        let a = fsm.add_state("a");
        let b = fsm.add_state("b");
        fsm.add_transition("-".parse().unwrap(), a, b, vec![OutputValue::One])
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), b, a, vec![OutputValue::Zero])
            .unwrap();
        let min = minimize_states(&fsm).unwrap();
        assert_eq!(min.num_states(), 2);
    }

    #[test]
    fn already_minimal_machines_unchanged_in_size() {
        for fsm in [suite::sequence_detector(), suite::serial_adder()] {
            let min = minimize_states(&fsm).unwrap();
            assert_eq!(min.num_states(), fsm.num_states(), "{}", fsm.name());
            behaviour_equal(&fsm, &min, 200, 7);
        }
    }

    #[test]
    fn successor_distinction_found_by_refinement() {
        // Outputs identical everywhere; only the 2-step future differs.
        let mut fsm = Fsm::new("deep", 1, 1);
        let a = fsm.add_state("a");
        let b = fsm.add_state("b");
        let c = fsm.add_state("c");
        let d = fsm.add_state("d"); // emits differently
        let z = vec![OutputValue::Zero];
        fsm.add_transition("-".parse().unwrap(), a, c, z.clone())
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), b, d, z.clone())
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), c, c, z.clone())
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), d, d, vec![OutputValue::One])
            .unwrap();
        let min = minimize_states(&fsm).unwrap();
        // a ≡ c (both emit 0 forever), but b ≠ a because b's successor d
        // is distinguishable — refinement must find this 2-step split.
        assert_eq!(min.num_states(), 3);
    }

    #[test]
    fn minimized_behaviour_matches_on_random_machines() {
        for seed in 0..8u64 {
            let mut fsm = generate(&GeneratorConfig {
                name: "rand".into(),
                num_inputs: 2,
                num_states: 8,
                num_outputs: 2,
                cubes_per_state: 3,
                self_loop_bias: 0.3,
                output_dc_prob: 0.0, // exact comparison wants pinned outputs
                output_pool: 2,
                seed,
            });
            fsm.complete_with_self_loops();
            let min = minimize_states(&fsm).unwrap();
            assert!(min.num_states() <= fsm.num_states());
            behaviour_equal(&fsm, &min, 300, seed ^ 0xABC);
        }
    }

    #[test]
    fn incomplete_machine_rejected() {
        let mut fsm = Fsm::new("inc", 1, 1);
        let s = fsm.add_state("s");
        fsm.add_transition("1".parse().unwrap(), s, s, vec![OutputValue::One])
            .unwrap();
        assert!(minimize_states(&fsm).is_err());
    }

    #[test]
    fn reset_class_is_new_reset() {
        let fsm = suite::traffic_light();
        let mut complete = fsm.clone();
        complete.complete_with_self_loops();
        let min = minimize_states(&complete).unwrap();
        assert_eq!(min.state_name(min.reset_state()), "G");
    }
}
