//! Reachability and cycle analysis on symbolic machines.
//!
//! The paper's §2 ties the maximum useful latency bound to the length of
//! the shortest loop in the (faulty) machine: once every path of length
//! `p` wraps around a loop, extra latency buys no new detection
//! opportunities. The symbolic-level analogues here (shortest cycle
//! through each state, girth) provide the a-priori estimates; the exact
//! product-machine computation lives in `ced-sim`.

use crate::machine::{Fsm, StateId};
use std::collections::VecDeque;

/// States reachable from the reset state, in BFS order.
///
/// Exploration follows every transition line (not just concrete input
/// minterms), which is exact for deterministic machines.
pub fn reachable_states(fsm: &Fsm) -> Vec<StateId> {
    if fsm.num_states() == 0 {
        return Vec::new();
    }
    let mut seen = vec![false; fsm.num_states()];
    let mut order = Vec::new();
    let mut queue = VecDeque::new();
    let reset = fsm.reset_state();
    seen[reset.index()] = true;
    queue.push_back(reset);
    while let Some(s) = queue.pop_front() {
        order.push(s);
        for t in fsm.transitions() {
            if t.from == s && !seen[t.to.index()] {
                seen[t.to.index()] = true;
                queue.push_back(t.to);
            }
        }
    }
    order
}

/// Length of the shortest cycle through `state` (1 for a self-loop), or
/// `None` if no cycle passes through it.
pub fn shortest_cycle_through(fsm: &Fsm, state: StateId) -> Option<usize> {
    // Self-loop?
    if fsm
        .transitions()
        .iter()
        .any(|t| t.from == state && t.to == state)
    {
        return Some(1);
    }
    // BFS from the successors of `state` back to `state`.
    let mut dist = vec![usize::MAX; fsm.num_states()];
    let mut queue = VecDeque::new();
    for t in fsm.transitions() {
        if t.from == state && dist[t.to.index()] == usize::MAX {
            dist[t.to.index()] = 1;
            queue.push_back(t.to);
        }
    }
    while let Some(s) = queue.pop_front() {
        for t in fsm.transitions() {
            if t.from != s {
                continue;
            }
            if t.to == state {
                return Some(dist[s.index()] + 1);
            }
            if dist[t.to.index()] == usize::MAX {
                dist[t.to.index()] = dist[s.index()] + 1;
                queue.push_back(t.to);
            }
        }
    }
    None
}

/// The girth: length of the shortest cycle anywhere in the machine, or
/// `None` for an acyclic transition graph (impossible for complete
/// machines, which always cycle).
pub fn girth(fsm: &Fsm) -> Option<usize> {
    (0..fsm.num_states())
        .filter_map(|i| shortest_cycle_through(fsm, StateId(i as u32)))
        .min()
}

/// A-priori estimate of the largest latency bound worth exploring for
/// this machine (paper §2): the longest, over reachable states, of the
/// shortest cycle through that state. Beyond this bound every
/// enumeration path has wrapped a loop.
pub fn max_useful_latency_estimate(fsm: &Fsm) -> usize {
    reachable_states(fsm)
        .into_iter()
        .filter_map(|s| shortest_cycle_through(fsm, s))
        .max()
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::OutputValue;

    fn ring(n: usize, with_self_loop: bool) -> Fsm {
        let mut fsm = Fsm::new("ring", 1, 1);
        let s: Vec<StateId> = (0..n).map(|i| fsm.add_state(format!("s{i}"))).collect();
        for i in 0..n {
            fsm.add_transition(
                "1".parse().unwrap(),
                s[i],
                s[(i + 1) % n],
                vec![OutputValue::Zero],
            )
            .unwrap();
            let hold_to = if with_self_loop { s[i] } else { s[(i + 1) % n] };
            fsm.add_transition("0".parse().unwrap(), s[i], hold_to, vec![OutputValue::Zero])
                .unwrap();
        }
        fsm
    }

    #[test]
    fn all_ring_states_reachable() {
        let fsm = ring(5, false);
        assert_eq!(reachable_states(&fsm).len(), 5);
    }

    #[test]
    fn unreachable_state_excluded() {
        let mut fsm = ring(3, false);
        fsm.add_state("island");
        assert_eq!(reachable_states(&fsm).len(), 3);
    }

    #[test]
    fn self_loop_gives_cycle_one() {
        let fsm = ring(4, true);
        assert_eq!(shortest_cycle_through(&fsm, StateId(0)), Some(1));
        assert_eq!(girth(&fsm), Some(1));
        assert_eq!(max_useful_latency_estimate(&fsm), 1);
    }

    #[test]
    fn pure_ring_cycle_length() {
        let fsm = ring(4, false);
        assert_eq!(shortest_cycle_through(&fsm, StateId(0)), Some(4));
        assert_eq!(girth(&fsm), Some(4));
        assert_eq!(max_useful_latency_estimate(&fsm), 4);
    }

    #[test]
    fn acyclic_state_has_no_cycle() {
        let mut fsm = Fsm::new("dag", 1, 1);
        let a = fsm.add_state("a");
        let b = fsm.add_state("b");
        fsm.add_transition("-".parse().unwrap(), a, b, vec![OutputValue::Zero])
            .unwrap();
        fsm.add_transition("-".parse().unwrap(), b, b, vec![OutputValue::Zero])
            .unwrap();
        assert_eq!(shortest_cycle_through(&fsm, a), None);
        assert_eq!(shortest_cycle_through(&fsm, b), Some(1));
        assert_eq!(girth(&fsm), Some(1));
    }

    #[test]
    fn empty_machine() {
        let fsm = Fsm::new("none", 1, 0);
        assert!(reachable_states(&fsm).is_empty());
        assert_eq!(girth(&fsm), None);
        assert_eq!(max_useful_latency_estimate(&fsm), 1);
    }
}
