//! The benchmark suite backing the experiment harnesses.
//!
//! Two families:
//!
//! 1. **Paper analogues** — for each circuit of the paper's Table 1 an
//!    FSM with the same interface dimensions (inputs, states, outputs)
//!    and a self-loop density chosen per the paper's §5 discussion
//!    (small machines loop-heavy, large ones loop-light), generated
//!    deterministically by [`crate::generator`]. These are substitutes
//!    for the original MCNC files (DESIGN.md substitution note (a));
//!    real `.kiss2` files parse with [`crate::kiss`] and drop in.
//! 2. **Classic pedagogical machines** — small hand-written controllers
//!    (sequence detector, serial adder, traffic light) with exactly
//!    known behaviour, used by examples and tests.

use crate::generator::{generate, GeneratorConfig};
use crate::kiss;
use crate::machine::Fsm;

/// Descriptor of one Table-1 circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSpec {
    /// MCNC circuit name.
    pub name: &'static str,
    /// Input bits.
    pub inputs: usize,
    /// Symbolic state count.
    pub states: usize,
    /// Output bits.
    pub outputs: usize,
    /// Self-loop bias used by the generator (from §5's qualitative
    /// description; not an MCNC-measured quantity).
    pub self_loop_bias: f64,
    /// Input cubes per state handed to the generator.
    pub cubes_per_state: usize,
}

impl CircuitSpec {
    /// Instantiates the analogue machine (deterministic per name).
    pub fn build(&self) -> Fsm {
        let seed = self.name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01b3)
        });
        generate(&GeneratorConfig {
            name: self.name.to_string(),
            num_inputs: self.inputs,
            num_states: self.states,
            num_outputs: self.outputs,
            cubes_per_state: self.cubes_per_state,
            self_loop_bias: self.self_loop_bias,
            output_dc_prob: 0.05,
            // Moore-like output structure, as in real controller
            // benchmarks: a handful of distinct output patterns.
            output_pool: (self.states / 3).clamp(2, 8),
            seed,
        })
    }
}

/// The sixteen circuits of the paper's Table 1, with MCNC interface
/// dimensions. (The garbled `dk6`/`s488` mentions in the paper text are
/// `dk16` and `s1488`.)
pub fn paper_table1() -> Vec<CircuitSpec> {
    vec![
        spec("cse", 7, 16, 7, 0.25, 10),
        spec("donfile", 2, 24, 1, 0.55, 4),
        spec("dk16", 2, 27, 3, 0.50, 4),
        spec("dk512", 1, 15, 3, 0.45, 2),
        spec("ex1", 9, 20, 19, 0.20, 10),
        spec("keyb", 7, 19, 2, 0.30, 10),
        spec("pma", 8, 24, 8, 0.10, 10),
        spec("sse", 7, 16, 7, 0.25, 10),
        spec("styr", 9, 30, 10, 0.15, 12),
        spec("s1", 8, 20, 6, 0.20, 10),
        spec("s27", 4, 6, 1, 0.60, 6),
        spec("s298", 3, 24, 6, 0.08, 6),
        spec("s386", 7, 13, 7, 0.55, 8),
        spec("s1488", 8, 48, 19, 0.10, 10),
        spec("tav", 4, 4, 4, 0.40, 8),
        spec("tbk", 6, 32, 3, 0.20, 10),
    ]
}

/// A reduced-dimension version of [`paper_table1`] for quick runs and
/// CI-speed benchmarks: input counts capped at 5, state counts at 16.
/// The qualitative shape (parity reduction with latency) is preserved.
pub fn paper_table1_scaled() -> Vec<CircuitSpec> {
    paper_table1()
        .into_iter()
        .map(|mut s| {
            s.inputs = s.inputs.min(5);
            s.states = s.states.min(16);
            s.outputs = s.outputs.min(8);
            s.cubes_per_state = s.cubes_per_state.min(8);
            s
        })
        .collect()
}

/// Looks up a Table-1 circuit by name.
pub fn by_name(name: &str) -> Option<CircuitSpec> {
    paper_table1().into_iter().find(|s| s.name == name)
}

fn spec(
    name: &'static str,
    inputs: usize,
    states: usize,
    outputs: usize,
    self_loop_bias: f64,
    cubes_per_state: usize,
) -> CircuitSpec {
    CircuitSpec {
        name,
        inputs,
        states,
        outputs,
        self_loop_bias,
        cubes_per_state,
    }
}

/// A "1011" overlapping sequence detector (Mealy): output 1 when the
/// input stream ends in `1011`.
pub fn sequence_detector() -> Fsm {
    kiss::parse(
        "\
.model sdet1011
.i 1
.o 1
.s 4
.r e
0 e e 0
1 e s1 0
1 s1 s1 0
0 s1 s10 0
1 s10 s101 0
0 s10 e 0
1 s101 s1 1
0 s101 s10 0
.e
",
    )
    .expect("embedded kiss2 is valid")
}

/// A serial (bit-at-a-time) adder: inputs = (a, b), output = sum bit,
/// state = carry.
pub fn serial_adder() -> Fsm {
    kiss::parse(
        "\
.model seradd
.i 2
.o 1
.s 2
.r c0
00 c0 c0 0
01 c0 c0 1
10 c0 c0 1
11 c0 c1 0
00 c1 c0 1
01 c1 c1 0
10 c1 c1 0
11 c1 c1 1
.e
",
    )
    .expect("embedded kiss2 is valid")
}

/// A toy traffic-light controller: input = car sensor, outputs =
/// (green, yellow, red) one-hot; stays green until a car arrives on the
/// side road, then cycles green → yellow → red → green.
pub fn traffic_light() -> Fsm {
    kiss::parse(
        "\
.model traffic
.i 1
.o 3
.s 3
.r G
0 G G 100
1 G Y 100
- Y R 010
- R G 001
.e
",
    )
    .expect("embedded kiss2 is valid")
}

/// The worked example used by the Fig. 2 regeneration binary: a 4-state
/// machine with one input and two outputs, small enough to print its
/// full error-detectability table.
pub fn worked_example() -> Fsm {
    kiss::parse(
        "\
.model fig2demo
.i 1
.o 2
.s 4
.r a
0 a a 00
1 a b 01
0 b c 10
1 b a 11
0 c d 01
1 c c 00
0 d a 10
1 d b 01
.e
",
    )
    .expect("embedded kiss2 is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::reachable_states;

    #[test]
    fn table1_has_sixteen_rows() {
        let t = paper_table1();
        assert_eq!(t.len(), 16);
        let names: Vec<&str> = t.iter().map(|s| s.name).collect();
        assert!(names.contains(&"cse"));
        assert!(names.contains(&"tbk"));
    }

    #[test]
    fn analogues_build_and_are_well_formed() {
        for spec in paper_table1_scaled() {
            let fsm = spec.build();
            assert_eq!(fsm.num_states(), spec.states, "{}", spec.name);
            assert_eq!(fsm.num_inputs(), spec.inputs);
            assert_eq!(fsm.num_outputs(), spec.outputs);
            assert!(fsm.check_complete().is_ok(), "{} incomplete", spec.name);
            assert!(fsm.check_deterministic().is_ok(), "{} nondet", spec.name);
            assert_eq!(
                reachable_states(&fsm).len(),
                spec.states,
                "{} has unreachable states",
                spec.name
            );
        }
    }

    #[test]
    fn builds_are_deterministic() {
        let spec = by_name("s27").unwrap();
        assert_eq!(spec.build(), spec.build());
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("styr").is_some());
        assert!(by_name("nonesuch").is_none());
    }

    #[test]
    fn scaled_suite_is_capped() {
        for s in paper_table1_scaled() {
            assert!(s.inputs <= 5 && s.states <= 16 && s.outputs <= 8);
        }
    }

    #[test]
    fn sequence_detector_detects_1011() {
        let fsm = sequence_detector();
        assert!(fsm.check_deterministic().is_ok());
        assert!(fsm.check_complete().is_ok());
        // Walk the stream 1 0 1 1 and check the final output.
        let mut state = fsm.reset_state();
        let mut last_out = crate::machine::OutputValue::Zero;
        for bit in [1u64, 0, 1, 1] {
            let t = fsm.transition_on(state, bit).unwrap();
            last_out = t.output[0];
            state = t.to;
        }
        assert_eq!(last_out, crate::machine::OutputValue::One);
    }

    #[test]
    fn serial_adder_adds() {
        let fsm = serial_adder();
        // 3 + 1 = 4: a = 011 (LSB first: 1,1,0), b = 001 (1,0,0).
        let mut state = fsm.reset_state();
        let mut sum = Vec::new();
        for (a, b) in [(1u64, 1u64), (1, 0), (0, 0)] {
            let input = a | (b << 1);
            let t = fsm.transition_on(state, input).unwrap();
            sum.push(t.output[0]);
            state = t.to;
        }
        use crate::machine::OutputValue::{One, Zero};
        assert_eq!(sum, vec![Zero, Zero, One]); // 100 LSB-first = 4
    }

    #[test]
    fn traffic_light_cycles() {
        let fsm = traffic_light();
        assert!(fsm.check_complete().is_ok());
        let g = fsm.state_by_name("G").unwrap();
        // No car: stay green.
        assert_eq!(fsm.transition_on(g, 0).unwrap().to, g);
        // Car: go yellow then red then green.
        let y = fsm.transition_on(g, 1).unwrap().to;
        assert_eq!(fsm.state_name(y), "Y");
        let r = fsm.transition_on(y, 0).unwrap().to;
        assert_eq!(fsm.state_name(r), "R");
        assert_eq!(fsm.transition_on(r, 1).unwrap().to, g);
    }

    #[test]
    fn worked_example_is_complete() {
        let fsm = worked_example();
        assert!(fsm.check_complete().is_ok());
        assert!(fsm.check_deterministic().is_ok());
        assert_eq!(fsm.num_states(), 4);
    }
}
