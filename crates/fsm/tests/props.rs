//! Property-based tests for the FSM toolkit: KISS2 round-trips, the
//! synthetic generator's structural guarantees, encodings, and the
//! synthesized circuit's fidelity to the symbolic machine.

use ced_fsm::encoded::EncodedFsm;
use ced_fsm::encoding::{assign, EncodingStrategy};
use ced_fsm::generator::{generate, GeneratorConfig};
use ced_fsm::kiss;
use ced_fsm::machine::OutputValue;
use ced_fsm::reach::reachable_states;
use ced_logic::MinimizeOptions;
use proptest::prelude::*;

fn config_strategy() -> impl Strategy<Value = GeneratorConfig> {
    (
        1usize..=4,  // inputs
        1usize..=10, // states
        0usize..=4,  // outputs
        1usize..=6,  // cubes per state
        0.0..0.9f64, // self-loop bias
        0.0..0.3f64, // output dc prob
        0usize..=4,  // output pool (0 = independent)
        any::<u64>(),
    )
        .prop_map(
            |(inputs, states, outputs, cubes, bias, dc, pool, seed)| GeneratorConfig {
                name: "prop".into(),
                num_inputs: inputs,
                num_states: states,
                num_outputs: outputs,
                cubes_per_state: cubes,
                self_loop_bias: bias,
                output_dc_prob: dc,
                output_pool: pool,
                seed,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn generated_machines_are_well_formed(cfg in config_strategy()) {
        let fsm = generate(&cfg);
        prop_assert!(fsm.check_complete().is_ok());
        prop_assert!(fsm.check_deterministic().is_ok());
        prop_assert_eq!(fsm.num_states(), cfg.num_states);
        prop_assert_eq!(reachable_states(&fsm).len(), cfg.num_states);
    }

    #[test]
    fn kiss_round_trip_is_identity(cfg in config_strategy()) {
        let fsm = generate(&cfg);
        let text = kiss::to_string(&fsm);
        let again = kiss::parse(&text).expect("own output parses");
        // Name differs ("prop" vs default); compare structure.
        prop_assert_eq!(fsm.num_inputs(), again.num_inputs());
        prop_assert_eq!(fsm.num_outputs(), again.num_outputs());
        prop_assert_eq!(fsm.num_states(), again.num_states());
        prop_assert_eq!(fsm.transitions().len(), again.transitions().len());
        // State ids may be renumbered (first-mention order); compare by
        // name, which is the KISS2-level identity.
        for (a, b) in fsm.transitions().iter().zip(again.transitions()) {
            prop_assert_eq!(&a.input, &b.input);
            prop_assert_eq!(fsm.state_name(a.from), again.state_name(b.from));
            prop_assert_eq!(fsm.state_name(a.to), again.state_name(b.to));
            prop_assert_eq!(&a.output, &b.output);
        }
        prop_assert_eq!(
            fsm.state_name(fsm.reset_state()),
            again.state_name(again.reset_state())
        );
    }

    #[test]
    fn encodings_are_injective_and_reset_is_zero(
        cfg in config_strategy(),
        strategy_idx in 0usize..4,
    ) {
        let fsm = generate(&cfg);
        let strategy = [
            EncodingStrategy::Natural,
            EncodingStrategy::Gray,
            EncodingStrategy::OneHot,
            EncodingStrategy::Adjacency,
        ][strategy_idx];
        let enc = assign(&fsm, strategy);
        let mut codes = enc.codes().to_vec();
        codes.sort_unstable();
        codes.dedup();
        prop_assert_eq!(codes.len(), fsm.num_states(), "{:?} codes collide", strategy);
        if matches!(strategy, EncodingStrategy::Natural | EncodingStrategy::Adjacency) {
            prop_assert_eq!(enc.code(fsm.reset_state()), 0);
        }
    }

    #[test]
    fn circuit_implements_symbolic_machine(cfg in config_strategy()) {
        // Keep synthesis cheap.
        prop_assume!(cfg.num_states <= 8 && cfg.num_inputs <= 3);
        let fsm = generate(&cfg);
        let enc = assign(&fsm, EncodingStrategy::Natural);
        let encoded = EncodedFsm::new(fsm.clone(), enc.clone()).expect("well-formed");
        let circuit = encoded.synthesize(&MinimizeOptions::default());
        for (si, _) in fsm.state_names().iter().enumerate() {
            let state = ced_fsm::StateId(si as u32);
            let code = enc.code(state);
            for input in 0..(1u64 << cfg.num_inputs) {
                let t = fsm.transition_on(state, input).expect("complete");
                let (next, out) = circuit.step(code, input);
                prop_assert_eq!(next, enc.code(t.to), "wrong next state");
                for (j, v) in t.output.iter().enumerate() {
                    match v {
                        OutputValue::One => prop_assert_eq!((out >> j) & 1, 1),
                        OutputValue::Zero => prop_assert_eq!((out >> j) & 1, 0),
                        OutputValue::DontCare => {}
                    }
                }
            }
        }
    }

    #[test]
    fn self_loop_fraction_in_unit_interval(cfg in config_strategy()) {
        let f = generate(&cfg).self_loop_fraction();
        prop_assert!((0.0..=1.0).contains(&f));
    }
}
