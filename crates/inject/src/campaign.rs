//! Stuck-at fault-injection campaigns on the protected FSM, judged by
//! the synthesized checker netlist and cross-validated against the
//! detectability tensor `V(i,j,k)`.
//!
//! For every injected fault the campaign holds two verdicts against
//! each other:
//!
//! * **analytic** — the fault's own erroneous cases, enumerated
//!   exhaustively under the hardware ([`Semantics::FaultyTrajectory`])
//!   semantics: is every case covered by the checker's parity masks?
//! * **operational** — a random-input run of the faulty machine with
//!   the *actual checker netlist* in the loop: when does `ERROR` rise
//!   relative to the first error activation?
//!
//! Analytic coverage must imply operational detection within the bound;
//! anything else is a [`Disagreement`]. Additionally, on every cycle
//! whose present state is fault-free-reachable the checker netlist's
//! answer must equal the parity model's (the predictor is exact there —
//! don't-cares only cover unreachable codes); a divergence is a
//! [`Disagreement::CheckerModelMismatch`].

use crate::checker::audit_checker;
use crate::report::{CampaignReport, Disagreement, MachineCampaign};
use ced_core::hardware::CedHardware;
use ced_fsm::encoded::FsmCircuit;
use ced_par::ParExec;
use ced_runtime::{Budget, Interrupted};
use ced_sim::coverage::SimRng;
use ced_sim::detect::{
    BuildControl, DetectError, DetectOptions, DetectabilityTable, InputModel, Semantics,
};
use ced_sim::fault::{Fault, FaultModel};
use ced_sim::tables::TransitionTables;
use ced_store::Store;
use std::fmt;

/// Campaign configuration. The latency bound is taken from the checker
/// under test ([`CedHardware::latency`]), not duplicated here.
#[derive(Debug, Clone)]
pub struct CampaignOptions {
    /// Cycles driven per injected machine fault.
    pub steps: usize,
    /// Base seed of the per-fault input streams.
    pub seed: u64,
    /// Extra cycles past the detection deadline the run keeps going, to
    /// distinguish a late detection (latency violation) from a fault
    /// that is never caught at all.
    pub grace: usize,
    /// Also audit the checker's own netlist (see [`crate::checker`]).
    pub checker_faults: bool,
    /// Cap on machine faults injected (`None` = all).
    pub max_faults: Option<usize>,
    /// Cap on probe inputs per state in the checker audit; states with
    /// more inputs are sampled deterministically.
    pub probe_input_cap: usize,
    /// Temporal/spatial fault model driven by the campaign. The
    /// analytic verdict enumerates the same model's tensor, so the two
    /// verdicts stay comparable; time-varying models assert the fault
    /// over seed-randomized activation windows instead of permanently
    /// (the permanent drive is byte-identical to the pre-model one).
    pub fault_model: FaultModel,
}

impl Default for CampaignOptions {
    fn default() -> CampaignOptions {
        CampaignOptions {
            steps: 2000,
            seed: 0xCED_CA3E,
            grace: 8,
            checker_faults: true,
            max_faults: None,
            probe_input_cap: 64,
            fault_model: FaultModel::default(),
        }
    }
}

/// Failure of a budgeted campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// Per-fault tensor construction failed.
    Detect(DetectError),
    /// The campaign's [`Budget`] ran out; the partial campaign covers
    /// every fault judged before the interrupt.
    Interrupted {
        /// The budget interruption.
        interrupted: Interrupted,
        /// Outcomes accumulated before the interrupt (its `injected`
        /// count equals the faults actually judged).
        partial: Box<MachineCampaign>,
    },
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Detect(e) => write!(f, "campaign detectability error: {e}"),
            CampaignError::Interrupted {
                interrupted,
                partial,
            } => write!(
                f,
                "campaign {} ({} faults judged)",
                interrupted, partial.injected
            ),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<DetectError> for CampaignError {
    fn from(e: DetectError) -> CampaignError {
        CampaignError::Detect(e)
    }
}

/// Per-fault operational outcome, already reconciled with the analytic
/// verdict (disagreements are recorded separately in the report).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MachineFaultOutcome {
    /// Analytically covered and caught within the bound.
    DetectedInBound {
        /// Observed detection latency (1 = activation cycle).
        latency: usize,
    },
    /// Analytically *uncovered* yet caught within the bound — no
    /// guarantee was owed; the run got lucky.
    WindfallDetection {
        /// Observed detection latency.
        latency: usize,
    },
    /// Analytically uncovered and indeed escaped — the expected outcome
    /// for faults outside the cover's obligation.
    ExpectedEscape,
    /// No error ever activated during the driven run.
    Quiet,
    /// Analytically covered but never flagged (disagreement).
    Undetected {
        /// Cycle of the escaped activation.
        at_cycle: usize,
    },
    /// Analytically covered, flagged only after the deadline
    /// (disagreement).
    LatencyViolation {
        /// Observed (too-late) latency.
        observed: usize,
    },
}

/// Raw result of one checker-in-the-loop drive.
enum RawOutcome {
    Quiet,
    Detected { latency: usize },
    Late { observed: usize },
    Missed { at_cycle: usize },
}

/// Analytic verdict for one fault against the tensor.
enum Analytic {
    Untestable,
    Covered,
    Uncovered,
}

/// Runs the full campaign: every fault in `faults` is injected into
/// `circuit` and judged by `ced` (whose [`CedHardware::latency`] is the
/// bound), then cross-validated against a per-fault exhaustive
/// detectability table; optionally the checker netlist itself is
/// audited.
///
/// # Errors
///
/// Propagates [`DetectError`] from the per-fault tensor construction
/// (row caps; never zero latency — the checker carries `p ≥ 1`).
///
/// # Panics
///
/// Panics if the checker was synthesized for a different circuit
/// interface than `circuit`.
pub fn run_campaign(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    faults: &[Fault],
    options: &CampaignOptions,
) -> Result<CampaignReport, DetectError> {
    match run_campaign_budgeted(circuit, ced, faults, options, &Budget::unlimited()) {
        Ok(report) => Ok(report),
        Err(CampaignError::Detect(e)) => Err(e),
        Err(CampaignError::Interrupted { .. }) => {
            unreachable!("an unlimited budget cannot interrupt")
        }
    }
}

/// [`run_campaign`] under a [`Budget`]: one tick per injected fault
/// (plus the ticks its per-fault tensor construction charges), checked
/// at every fault boundary. An interrupted campaign returns the
/// outcomes judged so far as a typed partial result — campaigns are
/// restartable per fault, not resumable mid-fault.
///
/// # Errors
///
/// [`CampaignError::Detect`] as [`run_campaign`];
/// [`CampaignError::Interrupted`] when the budget runs out.
///
/// # Panics
///
/// As [`run_campaign`].
pub fn run_campaign_budgeted(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    faults: &[Fault],
    options: &CampaignOptions,
    budget: &Budget,
) -> Result<CampaignReport, CampaignError> {
    run_campaign_pooled(circuit, ced, faults, options, budget, &ParExec::serial())
}

/// [`run_campaign_budgeted`] on a worker pool: faults are judged in
/// parallel (each judgement — analytic verdict, per-fault tables, the
/// checker-in-the-loop drive — is pure and carries its own
/// deterministic seed), then folded into the campaign accumulator in
/// fault-index order. The report is byte-identical to the serial run
/// at every job count; an interrupt surfaces the lowest-index
/// interrupted fault with the outcomes of every fault before it, and
/// the pool drains (no fault above the interrupt index is started
/// once it is known).
///
/// # Errors
///
/// As [`run_campaign_budgeted`].
///
/// # Panics
///
/// As [`run_campaign`].
pub fn run_campaign_pooled(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    faults: &[Fault],
    options: &CampaignOptions,
    budget: &Budget,
    pool: &ParExec,
) -> Result<CampaignReport, CampaignError> {
    run_campaign_stored(circuit, ced, faults, options, budget, pool, None)
}

/// [`run_campaign_pooled`] with an optional content-addressed artifact
/// store: each fault's analytic-verdict tensor (an exhaustive
/// single-fault detectability table) is memoized under the shared
/// `tensor` stage, so a repeat campaign — or one that follows a
/// pipeline run over the same circuit — skips the per-fault
/// enumeration. The checker-in-the-loop drives are never cached (they
/// are the operational evidence the campaign exists to collect), so a
/// hit cannot change any verdict: the tensor stage replays bytes a
/// prior build proved identical to a recompute.
///
/// # Errors
///
/// As [`run_campaign_budgeted`].
///
/// # Panics
///
/// As [`run_campaign`].
#[allow(clippy::too_many_arguments)] // mirrors run_campaign_pooled + store
pub fn run_campaign_stored(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    faults: &[Fault],
    options: &CampaignOptions,
    budget: &Budget,
    pool: &ParExec,
    store: Option<&Store>,
) -> Result<CampaignReport, CampaignError> {
    let p = ced.latency();
    assert_eq!(
        ced.masks().iter().fold(0, |a, &m| a | m) >> circuit.total_bits(),
        0,
        "checker monitors bits outside the circuit interface"
    );
    let good = TransitionTables::good(circuit);
    let valid = valid_states(&good);
    let injected: Vec<Fault> = match options.max_faults {
        Some(cap) => faults.iter().copied().take(cap).collect(),
        None => faults.to_vec(),
    };

    let mut machine = MachineCampaign {
        injected: injected.len(),
        detectable: 0,
        detected_within_bound: 0,
        latency_histogram: vec![0; p + 1],
        windfall_detections: 0,
        expected_escapes: 0,
        quiet: 0,
        outcomes: Vec::with_capacity(injected.len()),
        disagreements: Vec::new(),
    };

    // Judge faults on the pool; fold outcomes in fault-index order.
    // `judge_fault` is pure per fault (its drive seed is derived from
    // the fault index), so the parallel fold is byte-identical to the
    // serial loop; the failure-floor drain makes the surfaced error
    // the lowest-index one, again matching the serial loop.
    let judged = pool.for_each_ordered(
        &injected,
        |i, &fault| {
            budget
                .tick(1, "inject:fault")
                .map_err(JudgeError::Interrupted)?;
            judge_fault(circuit, ced, &good, &valid, p, options, i, fault, store)
                .map_err(JudgeError::Detect)
        },
        |i, judgement| apply_judgement(&mut machine, p, injected[i], judgement),
    );
    match judged {
        Ok(()) => {}
        Err(JudgeError::Detect(e)) => return Err(CampaignError::Detect(e)),
        Err(JudgeError::Interrupted(interrupted)) => {
            machine.injected = machine.outcomes.len();
            return Err(CampaignError::Interrupted {
                interrupted,
                partial: Box::new(machine),
            });
        }
    }

    let checker = if options.checker_faults {
        if let Err(interrupted) = budget.tick(1, "inject:checker-audit") {
            machine.injected = machine.outcomes.len();
            return Err(CampaignError::Interrupted {
                interrupted,
                partial: Box::new(machine),
            });
        }
        Some(audit_checker(circuit, ced, options))
    } else {
        None
    };

    Ok(CampaignReport {
        bound: p,
        machine,
        checker,
    })
}

/// Item error of one pooled fault judgement.
enum JudgeError {
    Interrupted(Interrupted),
    Detect(DetectError),
}

/// Everything one fault's judgement produces, before it touches the
/// (order-sensitive) campaign accumulator.
struct FaultJudgement {
    analytic: Analytic,
    raw: RawOutcome,
    mismatch: Option<usize>,
}

/// The pure per-fault work: analytic verdict, faulty tables, and the
/// checker-in-the-loop drive under the fault's own derived seed.
#[allow(clippy::too_many_arguments)] // campaign internals; one call site
fn judge_fault(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    good: &TransitionTables,
    valid: &[bool],
    p: usize,
    options: &CampaignOptions,
    i: usize,
    fault: Fault,
    store: Option<&Store>,
) -> Result<FaultJudgement, DetectError> {
    let analytic = analytic_verdict(circuit, fault, options.fault_model, ced.masks(), p, store)?;
    let bad = match options.fault_model {
        FaultModel::MultiBitCluster { .. } => TransitionTables::faulty_set(
            circuit,
            &options.fault_model.expand(fault, circuit.netlist()),
        ),
        _ => TransitionTables::faulty(circuit, fault),
    };
    let seed = options.seed ^ splitmix_scramble(i as u64);
    let (raw, mismatch) = drive_with_checker(circuit, ced, good, &bad, valid, p, options, seed);
    Ok(FaultJudgement {
        analytic,
        raw,
        mismatch,
    })
}

/// Folds one judgement into the campaign accumulator. Called in
/// fault-index order — disagreement and outcome lists are
/// order-sensitive report payload.
fn apply_judgement(machine: &mut MachineCampaign, p: usize, fault: Fault, j: FaultJudgement) {
    if let Some(cycle) = j.mismatch {
        machine
            .disagreements
            .push(Disagreement::CheckerModelMismatch { fault, cycle });
    }
    let outcome = match (&j.analytic, j.raw) {
        (Analytic::Covered, RawOutcome::Detected { latency }) => {
            machine.detectable += 1;
            machine.detected_within_bound += 1;
            machine.latency_histogram[latency] += 1;
            MachineFaultOutcome::DetectedInBound { latency }
        }
        (Analytic::Covered, RawOutcome::Late { observed }) => {
            machine.detectable += 1;
            machine.disagreements.push(Disagreement::LatencyViolation {
                fault,
                observed,
                bound: p,
            });
            MachineFaultOutcome::LatencyViolation { observed }
        }
        (Analytic::Covered, RawOutcome::Missed { at_cycle }) => {
            machine.detectable += 1;
            machine
                .disagreements
                .push(Disagreement::UndetectedFault { fault, at_cycle });
            MachineFaultOutcome::Undetected { at_cycle }
        }
        (Analytic::Uncovered, RawOutcome::Detected { latency }) => {
            machine.windfall_detections += 1;
            MachineFaultOutcome::WindfallDetection { latency }
        }
        (Analytic::Uncovered, RawOutcome::Late { .. } | RawOutcome::Missed { .. }) => {
            machine.expected_escapes += 1;
            MachineFaultOutcome::ExpectedEscape
        }
        (Analytic::Untestable, RawOutcome::Quiet) | (_, RawOutcome::Quiet) => {
            machine.quiet += 1;
            MachineFaultOutcome::Quiet
        }
        (Analytic::Untestable, _) => {
            machine
                .disagreements
                .push(Disagreement::PhantomActivation { fault });
            machine.quiet += 1;
            MachineFaultOutcome::Quiet
        }
    };
    machine.outcomes.push((fault, outcome));
}

/// The analytic verdict: enumerate this fault's erroneous cases
/// exhaustively under the hardware semantics — and under the
/// campaign's fault model — and test the masks.
fn analytic_verdict(
    circuit: &FsmCircuit,
    fault: Fault,
    fault_model: FaultModel,
    masks: &[u64],
    latency: usize,
    store: Option<&Store>,
) -> Result<Analytic, DetectError> {
    // Routed through the controlled builder so the single-fault tensor
    // lands in (and replays from) the shared `tensor` artifact stage.
    let unlimited = Budget::unlimited();
    let (table, stats) = DetectabilityTable::build_many_controlled(
        circuit,
        &[fault],
        &DetectOptions {
            latency,
            semantics: Semantics::FaultyTrajectory,
            input_model: InputModel::Exhaustive,
            fault_model,
            ..DetectOptions::default()
        },
        &[latency],
        BuildControl {
            store,
            ..BuildControl::new(&unlimited)
        },
    )?
    .pop()
    .expect("one latency requested");
    Ok(if stats.untestable_faults == 1 {
        Analytic::Untestable
    } else if table.all_covered(masks) {
        Analytic::Covered
    } else {
        Analytic::Uncovered
    })
}

/// One checker-in-the-loop run: the faulty machine advances on random
/// inputs while the synthesized checker watches (present state, input,
/// actual monitored bits). Returns the raw detection outcome and the
/// first cycle (if any) where the netlist's flag disagreed with the
/// parity model on a fault-free-reachable present state.
///
/// Time-invariant models (permanent, multi-bit) hold the fault
/// asserted for the whole run — byte-identical to the pre-model drive
/// for the permanent default. Time-varying models assert it over
/// seed-randomized activation windows ([`FaultModel::active_at`]
/// relative to each window's start): a transient whose window closes
/// without ever activating an error re-arms at a later random cycle,
/// so short-lived faults still produce operational evidence. A miss
/// under a transient model is an *escape of that activation* — the
/// shared trajectory carries no difference once the fault is dead,
/// which is exactly what the model's analytic tensor predicts.
#[allow(clippy::too_many_arguments)] // campaign internals; one call site
fn drive_with_checker(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    good: &TransitionTables,
    bad: &TransitionTables,
    valid: &[bool],
    p: usize,
    options: &CampaignOptions,
    seed: u64,
) -> (RawOutcome, Option<usize>) {
    let r = circuit.num_inputs();
    let input_mask = if r >= 64 { u64::MAX } else { (1u64 << r) - 1 };
    let mut rng = SimRng::new(seed);
    let mut state = circuit.reset_code();
    let mut window: Option<usize> = None;
    let mut mismatch: Option<usize> = None;
    let model = options.fault_model;
    let invariant = model.time_invariant();
    // First activation window of a time-varying model starts at a
    // seed-randomized cycle (drawn before any input, so the input
    // stream itself also shifts per window placement).
    let mut assert_at: usize = if invariant {
        0
    } else {
        (rng.next_u64() % 8) as usize
    };

    for cycle in 0..options.steps {
        let active = if invariant {
            true
        } else if cycle < assert_at {
            false
        } else {
            let step = cycle - assert_at + 1;
            if model.dead_after(step) && window.is_none() {
                // The transient died without activating an error:
                // re-arm it at a later random cycle.
                assert_at = cycle + 1 + (rng.next_u64() % 16) as usize;
                false
            } else {
                model.active_at(step)
            }
        };
        let eff = if active { bad } else { good };
        let input = rng.next_u64() & input_mask;
        let actual = eff.response(state, input);
        let d = good.response(state, input) ^ actual;
        let flagged = ced.flags(state, input, actual);
        let model_flag = ced.masks().iter().any(|&m| (m & d).count_ones() & 1 == 1);
        if flagged != model_flag && valid[state as usize] && mismatch.is_none() {
            mismatch = Some(cycle);
        }
        if d != 0 && window.is_none() {
            window = Some(cycle);
        }
        if let Some(start) = window {
            if flagged {
                let observed = cycle - start + 1;
                let raw = if observed <= p {
                    RawOutcome::Detected { latency: observed }
                } else {
                    RawOutcome::Late { observed }
                };
                return (raw, mismatch);
            }
            if cycle >= start + p - 1 + options.grace {
                return (RawOutcome::Missed { at_cycle: start }, mismatch);
            }
        }
        state = eff.next(state, input);
    }
    // No activation, or a window still open at the end of the run with
    // neither verdict reached: no observation either way.
    (RawOutcome::Quiet, mismatch)
}

/// Fault-free-reachable state codes as a dense lookup (the codes where
/// the predictor logic is exact rather than don't-care).
fn valid_states(good: &TransitionTables) -> Vec<bool> {
    let mut valid = vec![false; 1 << good.state_bits()];
    for c in good.reachable_codes() {
        valid[c as usize] = true;
    }
    valid
}

/// Decorrelates per-fault seeds (SplitMix64 finalizer).
fn splitmix_scramble(i: u64) -> u64 {
    let mut z = i.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_core::ip::ParityCover;
    use ced_core::synthesize_ced;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;
    use ced_sim::fault::collapsed_faults;

    fn circuit() -> FsmCircuit {
        let fsm = suite::sequence_detector();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default())
    }

    #[test]
    fn singleton_checker_yields_clean_campaign() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let report = run_campaign(&c, &ced, &faults, &CampaignOptions::default()).unwrap();
        assert!(report.is_clean(), "{}", report.render());
        assert_eq!(report.machine.injected, faults.len());
        assert_eq!(
            report.machine.detected_within_bound,
            report.machine.detectable
        );
        assert!(report.machine.detectable > 0);
        // Singleton masks cover every erroneous case, so nothing is
        // "uncovered": no escapes, no windfalls.
        assert_eq!(report.machine.expected_escapes, 0);
        assert_eq!(report.machine.windfall_detections, 0);
    }

    #[test]
    fn empty_cover_reports_expected_escapes_not_disagreements() {
        let c = circuit();
        // A deliberately useless checker: one mask monitoring nothing
        // cannot be synthesized, so use a single even-cancelling mask.
        let cover = ParityCover::new(vec![0b11]);
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let report = run_campaign(&c, &ced, &faults, &CampaignOptions::default()).unwrap();
        // Whatever the masks miss is an *expected* escape, never a
        // disagreement: analytic and operational verdicts must agree.
        assert!(report.is_clean(), "{}", report.render());
        assert!(report.machine.expected_escapes > 0);
    }

    #[test]
    fn max_faults_caps_the_campaign() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let report = run_campaign(
            &c,
            &ced,
            &faults,
            &CampaignOptions {
                max_faults: Some(3),
                checker_faults: false,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(report.machine.injected, 3);
        assert!(report.checker.is_none());
    }

    #[test]
    fn exhausted_budget_returns_typed_partial_campaign() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        // Enough budget for exactly 2 fault boundaries.
        let budget = Budget::new().with_tick_cap(3);
        let err = run_campaign_budgeted(&c, &ced, &faults, &CampaignOptions::default(), &budget)
            .unwrap_err();
        match err {
            CampaignError::Interrupted {
                interrupted,
                partial,
            } => {
                assert_eq!(interrupted.progress.stage, "inject:fault");
                assert!(partial.injected < faults.len());
                assert_eq!(partial.injected, partial.outcomes.len());
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn cancelled_campaign_stops_at_the_next_fault() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let budget = Budget::new();
        budget.cancel_token().cancel();
        let err = run_campaign_budgeted(&c, &ced, &faults, &CampaignOptions::default(), &budget)
            .unwrap_err();
        match err {
            CampaignError::Interrupted {
                interrupted,
                partial,
            } => {
                assert_eq!(interrupted.kind, ced_runtime::InterruptKind::Cancelled);
                assert_eq!(partial.injected, 0);
            }
            other => panic!("{other}"),
        }
    }

    #[test]
    fn unlimited_budget_matches_plain_campaign() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let opts = CampaignOptions {
            max_faults: Some(4),
            checker_faults: false,
            ..CampaignOptions::default()
        };
        let plain = run_campaign(&c, &ced, &faults, &opts).unwrap();
        let budgeted =
            run_campaign_budgeted(&c, &ced, &faults, &opts, &Budget::unlimited()).unwrap();
        assert_eq!(plain.machine.outcomes, budgeted.machine.outcomes);
        assert_eq!(plain.render(), budgeted.render());
    }

    #[test]
    fn timed_models_reconcile_analytic_and_operational_verdicts() {
        // A singleton cover detects every erroneous case at its first
        // step under any model, so transient / intermittent / multi-bit
        // campaigns must all come back free of disagreements.
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        for model in [
            FaultModel::TransientSeu { duration: 2 },
            FaultModel::Intermittent { period: 3 },
            FaultModel::MultiBitCluster { radius: 1 },
        ] {
            let faults = if matches!(model, FaultModel::MultiBitCluster { .. }) {
                ced_sim::fault::all_faults(c.netlist())
            } else {
                collapsed_faults(c.netlist())
            };
            let report = run_campaign(
                &c,
                &ced,
                &faults,
                &CampaignOptions {
                    fault_model: model,
                    checker_faults: false,
                    ..CampaignOptions::default()
                },
            )
            .unwrap();
            assert!(report.is_clean(), "{model}: {}", report.render());
            assert!(
                report.machine.detected_within_bound > 0,
                "{model}: no operational detections at all"
            );
        }
    }

    #[test]
    fn explicit_permanent_model_matches_default_campaign() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let implicit = run_campaign(&c, &ced, &faults, &CampaignOptions::default()).unwrap();
        let explicit = run_campaign(
            &c,
            &ced,
            &faults,
            &CampaignOptions {
                fault_model: FaultModel::PermanentStuckAt,
                ..CampaignOptions::default()
            },
        )
        .unwrap();
        assert_eq!(implicit.machine.outcomes, explicit.machine.outcomes);
        assert_eq!(implicit.render(), explicit.render());
    }

    #[test]
    fn campaign_is_deterministic() {
        let c = circuit();
        let cover = ParityCover::singletons(c.total_bits());
        let ced = synthesize_ced(&c, &cover, 1, &MinimizeOptions::default());
        let faults = collapsed_faults(c.netlist());
        let a = run_campaign(&c, &ced, &faults, &CampaignOptions::default()).unwrap();
        let b = run_campaign(&c, &ced, &faults, &CampaignOptions::default()).unwrap();
        assert_eq!(a.machine.outcomes, b.machine.outcomes);
        assert_eq!(a.render(), b.render());
    }
}
