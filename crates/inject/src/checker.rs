//! Fault-injection audit of the checker's own netlist.
//!
//! The Fig. 3 hardware is itself silicon; a stuck-at fault inside the
//! predictor, the parity trees, the comparator or the `ERROR` OR-tree
//! changes *what the alarm means*. This module injects every collapsed
//! stuck-at fault into the checker netlist and classifies it against a
//! deterministic probe set:
//!
//! * [`CheckerFaultClass::FalseAlarm`] — the damaged checker raises
//!   `ERROR` on some fault-free transition. Fail-safe: the fault is
//!   detectable online the moment that transition occurs.
//! * [`CheckerFaultClass::SelfMasking`] — the damaged checker stays
//!   silent on some corruption the healthy checker flags, and never
//!   false-alarms. The dangerous, dormant class (e.g. `ERROR`
//!   stuck-at-0): the system believes it is protected while it is not.
//! * [`CheckerFaultClass::Benign`] — indistinguishable from the healthy
//!   checker on every probe (typically redundant logic).
//!
//! Probes are evaluated 64 per word with the bit-parallel fault
//! simulator ([`ced_sim::eval::eval_outputs_faulty`]), so the audit
//! costs ~`⌈probes/64⌉` netlist passes per fault.

use crate::campaign::CampaignOptions;
use ced_core::hardware::CedHardware;
use ced_fsm::encoded::FsmCircuit;
use ced_sim::coverage::SimRng;
use ced_sim::eval::eval_outputs_faulty;
use ced_sim::fault::{collapsed_faults, Fault};
use ced_sim::tables::TransitionTables;

/// Classification of one checker-internal stuck-at fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckerFaultClass {
    /// Raises `ERROR` on a fault-free transition: detectable online.
    FalseAlarm,
    /// Silently swallows a corruption the healthy checker flags, and
    /// never false-alarms: dormant and dangerous.
    SelfMasking,
    /// No behavioural difference on any probe.
    Benign,
}

/// Aggregate result of the checker-netlist audit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckerCampaign {
    /// Checker-internal faults injected.
    pub injected: usize,
    /// Faults classified [`CheckerFaultClass::FalseAlarm`].
    pub false_alarms: usize,
    /// Faults classified [`CheckerFaultClass::SelfMasking`].
    pub self_masking: usize,
    /// Faults classified [`CheckerFaultClass::Benign`].
    pub benign: usize,
    /// The dormant dangerous faults (the self-masking set), for
    /// reporting and for targeting a periodic self-test.
    pub masking_faults: Vec<Fault>,
    /// Per-fault classification, in fault-list order.
    pub classes: Vec<(Fault, CheckerFaultClass)>,
}

/// A packed batch of up to 64 probe vectors for the checker netlist.
struct ProbeBatch {
    /// One word per checker input (`r + s + n`).
    words: Vec<u64>,
    /// Lanes actually populated.
    lanes: u64,
    /// Lanes that are fault-free transitions (`ERROR` must stay low).
    clean: u64,
    /// Healthy checker's `ERROR` per lane.
    pristine: u64,
}

/// Audits every collapsed stuck-at fault of the checker netlist against
/// a deterministic probe set: all fault-free-reachable states, up to
/// [`CampaignOptions::probe_input_cap`] inputs per state (sampled
/// deterministically beyond the cap), each with the clean response and
/// every single-bit corruption inside the monitored mask union.
pub fn audit_checker(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    options: &CampaignOptions,
) -> CheckerCampaign {
    let batches = build_probes(circuit, ced, options);
    let faults = collapsed_faults(ced.netlist());
    let mut campaign = CheckerCampaign {
        injected: faults.len(),
        false_alarms: 0,
        self_masking: 0,
        benign: 0,
        masking_faults: Vec::new(),
        classes: Vec::with_capacity(faults.len()),
    };

    for &fault in &faults {
        let mut alarms = false;
        let mut masks_somewhere = false;
        for batch in &batches {
            let faulty = eval_outputs_faulty(ced.netlist(), &batch.words, fault)[0] & batch.lanes;
            // ERROR raised on a fault-free transition.
            if faulty & batch.clean != 0 {
                alarms = true;
            }
            // Healthy checker flags, damaged one stays silent.
            if batch.pristine & !faulty != 0 {
                masks_somewhere = true;
            }
            if alarms && masks_somewhere {
                break;
            }
        }
        let class = if alarms {
            campaign.false_alarms += 1;
            CheckerFaultClass::FalseAlarm
        } else if masks_somewhere {
            campaign.self_masking += 1;
            campaign.masking_faults.push(fault);
            CheckerFaultClass::SelfMasking
        } else {
            campaign.benign += 1;
            CheckerFaultClass::Benign
        };
        campaign.classes.push((fault, class));
    }
    campaign
}

/// Builds the packed probe batches, precomputing the healthy checker's
/// responses word-parallel.
fn build_probes(
    circuit: &FsmCircuit,
    ced: &CedHardware,
    options: &CampaignOptions,
) -> Vec<ProbeBatch> {
    let r = circuit.num_inputs();
    let s = circuit.state_bits();
    let n = circuit.total_bits();
    let union: u64 = ced.masks().iter().fold(0, |a, &m| a | m);
    let good = TransitionTables::good(circuit);
    let mut rng = SimRng::new(options.seed ^ 0x0C4E_C4E2);

    // Probe vectors: (state, input, actual, clean?).
    let mut probes: Vec<(u64, u64, u64, bool)> = Vec::new();
    for c in good.reachable_codes() {
        let total_inputs = 1u64 << r;
        let sampled: Vec<u64> = if total_inputs as usize <= options.probe_input_cap {
            (0..total_inputs).collect()
        } else {
            (0..options.probe_input_cap)
                .map(|_| rng.next_u64() & (total_inputs - 1))
                .collect()
        };
        for input in sampled {
            let actual = good.response(c, input);
            probes.push((c, input, actual, true));
            for j in 0..n {
                if (union >> j) & 1 == 1 {
                    probes.push((c, input, actual ^ (1 << j), false));
                }
            }
        }
    }

    let mut batches = Vec::with_capacity(probes.len().div_ceil(64));
    for chunk in probes.chunks(64) {
        let mut words = vec![0u64; r + s + n];
        let mut lanes = 0u64;
        let mut clean = 0u64;
        for (lane, &(state, input, actual, is_clean)) in chunk.iter().enumerate() {
            lanes |= 1 << lane;
            if is_clean {
                clean |= 1 << lane;
            }
            // Packed layout mirrors CedHardware: inputs, then state,
            // then the monitored next-state bits.
            let fields = [(input, 0, r), (state, r, s), (actual, r + s, n)];
            for (value, base, width) in fields {
                for (bit, word) in words[base..base + width].iter_mut().enumerate() {
                    if (value >> bit) & 1 == 1 {
                        *word |= 1 << lane;
                    }
                }
            }
        }
        let pristine = ced.netlist().eval_outputs_words(&words)[0] & lanes;
        debug_assert_eq!(
            pristine & clean,
            0,
            "healthy checker false-alarms on a fault-free probe"
        );
        batches.push(ProbeBatch {
            words,
            lanes,
            clean,
            pristine,
        });
    }
    batches
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_core::ip::ParityCover;
    use ced_core::synthesize_ced;
    use ced_fsm::encoded::EncodedFsm;
    use ced_fsm::encoding::{assign, EncodingStrategy};
    use ced_fsm::suite;
    use ced_logic::MinimizeOptions;

    fn setup() -> (FsmCircuit, CedHardware) {
        let fsm = suite::sequence_detector();
        let enc = assign(&fsm, EncodingStrategy::Natural);
        let circuit = EncodedFsm::new(fsm, enc)
            .unwrap()
            .synthesize(&MinimizeOptions::default());
        let cover = ParityCover::singletons(circuit.total_bits());
        let ced = synthesize_ced(&circuit, &cover, 1, &MinimizeOptions::default());
        (circuit, ced)
    }

    #[test]
    fn every_fault_is_classified_once() {
        let (c, ced) = setup();
        let audit = audit_checker(&c, &ced, &CampaignOptions::default());
        assert_eq!(
            audit.injected,
            audit.false_alarms + audit.self_masking + audit.benign
        );
        assert_eq!(audit.classes.len(), audit.injected);
        assert_eq!(audit.masking_faults.len(), audit.self_masking);
    }

    #[test]
    fn error_output_polarities_land_in_the_right_classes() {
        let (c, ced) = setup();
        let audit = audit_checker(&c, &ced, &CampaignOptions::default());
        let error_net = ced.netlist().outputs()[0];
        let class_of = |f: Fault| {
            audit
                .classes
                .iter()
                .find(|(g, _)| *g == f)
                .map(|(_, cl)| *cl)
        };
        // ERROR stuck-at-1 rings on every fault-free transition.
        assert_eq!(
            class_of(Fault::new(error_net, true)),
            Some(CheckerFaultClass::FalseAlarm)
        );
        // ERROR stuck-at-0 silently swallows every corruption: the
        // canonical dormant fault.
        assert_eq!(
            class_of(Fault::new(error_net, false)),
            Some(CheckerFaultClass::SelfMasking)
        );
    }

    #[test]
    fn audit_is_deterministic() {
        let (c, ced) = setup();
        let a = audit_checker(&c, &ced, &CampaignOptions::default());
        let b = audit_checker(&c, &ced, &CampaignOptions::default());
        assert_eq!(a, b);
    }
}
