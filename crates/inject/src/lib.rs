//! # ced-inject — fault-injection campaigns on the CED hardware
//!
//! The paper proves coverage *analytically*: every erroneous case in
//! the detectability tensor `V(i,j,k)` is caught by some parity tree
//! within `p` cycles. This crate is the checker of the checker — it
//! closes the loop *operationally*, twice over:
//!
//! * [`campaign`] injects every modeled stuck-at fault into the
//!   **protected FSM**, drives random input paths, and judges detection
//!   with the *synthesized checker netlist* (not the abstract parity
//!   model), cross-validating observed latency against `V(i,j,k)`.
//!   Any divergence — an analytically covered fault that escapes, a
//!   detection later than the bound, or a cycle where the hardware and
//!   the tensor disagree — surfaces as a structured [`Disagreement`].
//! * [`checker`] injects stuck-at faults into the **checker's own
//!   netlist** (predictor, parity trees, comparator, `ERROR` tree) and
//!   classifies each as a false alarm (fail-safe, detectable online),
//!   self-masking (silently swallows real errors — the dangerous
//!   class), or behaviourally benign.
//!
//! ```
//! use ced_core::pipeline::{fault_list, synthesize_circuit, PipelineOptions};
//! use ced_core::search::{minimize_parity_functions, CedOptions};
//! use ced_core::synthesize_ced;
//! use ced_fsm::suite;
//! use ced_inject::{run_campaign, CampaignOptions};
//! use ced_sim::detect::{DetectOptions, DetectabilityTable, InputModel, Semantics};
//!
//! let fsm = suite::sequence_detector();
//! let options = PipelineOptions::paper_defaults();
//! let circuit = synthesize_circuit(&fsm, &options)?;
//! let faults = fault_list(&circuit, &options);
//! let (table, _) = DetectabilityTable::build(
//!     &circuit,
//!     &faults,
//!     &DetectOptions {
//!         latency: 1,
//!         semantics: Semantics::FaultyTrajectory,
//!         input_model: InputModel::Exhaustive,
//!         ..DetectOptions::default()
//!     },
//! )?;
//! let outcome = minimize_parity_functions(&table, &CedOptions::default());
//! let ced = synthesize_ced(&circuit, &outcome.cover, 1, &options.minimize);
//! let report = run_campaign(&circuit, &ced, &faults, &CampaignOptions::default())?;
//! assert!(report.is_clean(), "{}", report.render());
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod campaign;
pub mod checker;
pub mod report;

pub use campaign::{
    run_campaign, run_campaign_budgeted, run_campaign_pooled, run_campaign_stored, CampaignError,
    CampaignOptions, MachineFaultOutcome,
};
pub use checker::{audit_checker, CheckerCampaign, CheckerFaultClass};
pub use report::{CampaignReport, Disagreement, MachineCampaign};
