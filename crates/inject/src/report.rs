//! Structured campaign results: aggregates, per-fault outcomes and the
//! disagreement taxonomy.

use crate::campaign::MachineFaultOutcome;
use crate::checker::CheckerCampaign;
use ced_sim::fault::Fault;
use std::fmt;

/// A divergence between the detectability tensor's verdict and the
/// synthesized hardware's observed behaviour. An implementation that
/// matches the paper must produce none.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disagreement {
    /// `V` says every erroneous case of this fault is covered, yet an
    /// activation escaped the checker for the whole window (plus grace).
    UndetectedFault {
        /// The injected machine fault.
        fault: Fault,
        /// Cycle of the escaped activation.
        at_cycle: usize,
    },
    /// The checker did fire, but later than the proven bound.
    LatencyViolation {
        /// The injected machine fault.
        fault: Fault,
        /// Observed detection latency.
        observed: usize,
        /// The bound the cover was verified for.
        bound: usize,
    },
    /// The tensor enumerated *no* erroneous case (untestable fault),
    /// yet the simulation observed an error activation.
    PhantomActivation {
        /// The injected machine fault.
        fault: Fault,
    },
    /// On a fault-free-reachable present state — where the predictor is
    /// exact, not don't-care — the checker netlist's flag differed from
    /// the parity model over the masks.
    CheckerModelMismatch {
        /// The injected machine fault during whose run the divergence
        /// appeared.
        fault: Fault,
        /// First cycle of divergence.
        cycle: usize,
    },
}

impl fmt::Display for Disagreement {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Disagreement::UndetectedFault { fault, at_cycle } => write!(
                f,
                "{fault}: covered by V but escaped (activation at cycle {at_cycle})"
            ),
            Disagreement::LatencyViolation {
                fault,
                observed,
                bound,
            } => write!(
                f,
                "{fault}: detected in {observed} cycles, bound is {bound}"
            ),
            Disagreement::PhantomActivation { fault } => write!(
                f,
                "{fault}: V says untestable but an error activated in simulation"
            ),
            Disagreement::CheckerModelMismatch { fault, cycle } => write!(
                f,
                "{fault}: checker netlist diverged from the parity model at cycle {cycle}"
            ),
        }
    }
}

/// Aggregates over the machine-fault half of a campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MachineCampaign {
    /// Machine faults injected.
    pub injected: usize,
    /// Faults analytically covered by the tensor whose error activated
    /// during the run (the faults a guarantee was owed for).
    pub detectable: usize,
    /// Of the detectable faults, those caught within the bound.
    pub detected_within_bound: usize,
    /// `latency_histogram[l]` = detections observed at latency `l`
    /// (index 0 unused).
    pub latency_histogram: Vec<usize>,
    /// Uncovered faults that were nonetheless caught in bound (no
    /// obligation existed; not a disagreement).
    pub windfall_detections: usize,
    /// Uncovered faults that escaped, as the tensor predicts.
    pub expected_escapes: usize,
    /// Faults whose error never activated during the driven run.
    pub quiet: usize,
    /// Per-fault outcomes, in injection order.
    pub outcomes: Vec<(Fault, MachineFaultOutcome)>,
    /// Every divergence between tensor and hardware.
    pub disagreements: Vec<Disagreement>,
}

/// The full result of one fault-injection campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CampaignReport {
    /// The latency bound of the checker under test.
    pub bound: usize,
    /// The machine-fault half.
    pub machine: MachineCampaign,
    /// The checker-netlist audit, when requested.
    pub checker: Option<CheckerCampaign>,
}

impl CampaignReport {
    /// True iff the campaign produced no disagreement with the tensor —
    /// the cross-validation the paper's guarantee demands.
    pub fn is_clean(&self) -> bool {
        self.machine.disagreements.is_empty()
    }

    /// Fraction of detectable (covered and activated) faults caught
    /// within the bound; `1.0` when nothing was detectable.
    pub fn detection_rate(&self) -> f64 {
        if self.machine.detectable == 0 {
            1.0
        } else {
            self.machine.detected_within_bound as f64 / self.machine.detectable as f64
        }
    }

    /// Human-readable multi-line summary.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let m = &self.machine;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "machine faults: {} injected, {} detectable, {} caught within p = {} ({:.1}%)",
            m.injected,
            m.detectable,
            m.detected_within_bound,
            self.bound,
            100.0 * self.detection_rate()
        );
        for (l, &count) in m.latency_histogram.iter().enumerate().skip(1) {
            if count > 0 {
                let _ = writeln!(out, "  detected in {l} cycle(s): {count}");
            }
        }
        let _ = writeln!(
            out,
            "  windfall detections: {}, expected escapes: {}, quiet: {}",
            m.windfall_detections, m.expected_escapes, m.quiet
        );
        if m.disagreements.is_empty() {
            let _ = writeln!(out, "  disagreements vs V(i,j,k): none");
        } else {
            let _ = writeln!(
                out,
                "  DISAGREEMENTS vs V(i,j,k): {}",
                m.disagreements.len()
            );
            for d in &m.disagreements {
                let _ = writeln!(out, "    {d}");
            }
        }
        if let Some(checker) = &self.checker {
            let _ = writeln!(
                out,
                "checker faults: {} injected — {} false-alarm (fail-safe), {} self-masking (dormant), {} benign",
                checker.injected, checker.false_alarms, checker.self_masking, checker.benign
            );
            for f in &checker.masking_faults {
                let _ = writeln!(out, "  dormant: {f}");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ced_logic::netlist::NetId;

    fn empty_machine() -> MachineCampaign {
        MachineCampaign {
            injected: 0,
            detectable: 0,
            detected_within_bound: 0,
            latency_histogram: vec![0, 0],
            windfall_detections: 0,
            expected_escapes: 0,
            quiet: 0,
            outcomes: Vec::new(),
            disagreements: Vec::new(),
        }
    }

    #[test]
    fn empty_campaign_is_clean_with_full_rate() {
        let report = CampaignReport {
            bound: 1,
            machine: empty_machine(),
            checker: None,
        };
        assert!(report.is_clean());
        assert_eq!(report.detection_rate(), 1.0);
        assert!(report.render().contains("none"));
    }

    #[test]
    fn disagreements_render_and_dirty_the_report() {
        let mut machine = empty_machine();
        let fault = Fault::new(NetId(4), false);
        machine.disagreements.push(Disagreement::UndetectedFault {
            fault,
            at_cycle: 17,
        });
        machine.disagreements.push(Disagreement::LatencyViolation {
            fault,
            observed: 3,
            bound: 1,
        });
        machine
            .disagreements
            .push(Disagreement::PhantomActivation { fault });
        machine
            .disagreements
            .push(Disagreement::CheckerModelMismatch { fault, cycle: 2 });
        let report = CampaignReport {
            bound: 1,
            machine,
            checker: None,
        };
        assert!(!report.is_clean());
        let text = report.render();
        assert!(text.contains("escaped"));
        assert!(text.contains("bound is 1"));
        assert!(text.contains("untestable"));
        assert!(text.contains("diverged"));
    }
}
