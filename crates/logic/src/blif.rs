//! BLIF import — the other half of the SIS interchange.
//!
//! Parses the Berkeley Logic Interchange Format subset that SIS-lineage
//! tools emit: `.model`, `.inputs`, `.outputs`, multi-row `.names`
//! tables (arbitrary fanin, `1`/`0`/`-` input plane, single-output
//! cover in either ON or OFF polarity) and `.latch` declarations.
//! Together with [`crate::export`], circuits can round-trip through
//! external synthesis flows.
//!
//! # Examples
//!
//! ```
//! use ced_logic::blif::parse;
//!
//! let text = "\
//! .model xor2
//! .inputs a b
//! .outputs y
//! .names a b y
//! 10 1
//! 01 1
//! .end
//! ";
//! let model = parse(text)?;
//! assert_eq!(model.name, "xor2");
//! assert_eq!(model.netlist.eval_single(&[true, false]), vec![true]);
//! assert_eq!(model.netlist.eval_single(&[true, true]), vec![false]);
//! # Ok::<(), ced_logic::blif::ParseBlifError>(())
//! ```

use crate::cover::Cover;
use crate::cube::Cube;
use crate::decompose::sop_to_net;
use crate::netlist::{NetId, Netlist, NetlistBuilder};
use std::collections::HashMap;
use std::fmt;

/// A parsed BLIF model.
#[derive(Debug, Clone)]
pub struct BlifModel {
    /// The `.model` name.
    pub name: String,
    /// Primary input names, in declaration order. Latch outputs
    /// (present-state signals) are appended after the declared inputs.
    pub input_names: Vec<String>,
    /// Primary output names, in declaration order. Latch inputs
    /// (next-state signals) are appended after the declared outputs.
    pub output_names: Vec<String>,
    /// `(next_state_signal, present_state_signal, initial_value)` per
    /// latch, in declaration order.
    pub latches: Vec<(String, String, u8)>,
    /// The combinational netlist: inputs = declared inputs then latch
    /// present-state signals; outputs = declared outputs then latch
    /// next-state signals.
    pub netlist: Netlist,
}

/// Error from BLIF parsing, carrying the position of the problem.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line of the problem (0 for document-level issues).
    pub line: usize,
    /// 1-based column of the offending token (0 when the problem is
    /// not tied to one token — a whole-line or whole-document issue).
    pub column: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.line, self.column) {
            (0, _) => write!(f, "blif parse error: {}", self.message),
            (l, 0) => write!(f, "blif parse error at line {l}: {}", self.message),
            (l, c) => write!(
                f,
                "blif parse error at line {l}, column {c}: {}",
                self.message
            ),
        }
    }
}

impl std::error::Error for ParseBlifError {}

fn err(line: usize, message: impl Into<String>) -> ParseBlifError {
    err_at(line, 0, message)
}

fn err_at(line: usize, column: usize, message: impl Into<String>) -> ParseBlifError {
    ParseBlifError {
        line,
        column,
        message: message.into(),
    }
}

/// A whitespace-separated token with its 1-based start column. For
/// continuation-joined lines the columns refer to the joined text, not
/// the physical source — still far better than no position at all.
type Token = (usize, String);

fn tokenize(line: &str) -> Vec<Token> {
    let mut tokens = Vec::new();
    let mut current = String::new();
    let mut start = 0usize;
    for (i, c) in line.chars().enumerate() {
        if c.is_whitespace() {
            if !current.is_empty() {
                tokens.push((start + 1, std::mem::take(&mut current)));
            }
        } else {
            if current.is_empty() {
                start = i;
            }
            current.push(c);
        }
    }
    if !current.is_empty() {
        tokens.push((start + 1, current));
    }
    tokens
}

/// One raw `.names` table before elaboration.
struct NamesTable {
    line: usize,
    signals: Vec<String>, // fanins then the output signal
    rows: Vec<(String, char)>,
}

/// Parses a single-model BLIF document.
///
/// Logic is elaborated in dependency order, so tables may appear in any
/// order. Unknown dot-directives are rejected (conservative; extend as
/// needed). Signals used but never defined are reported.
///
/// # Errors
///
/// Returns [`ParseBlifError`] with a line number for malformed syntax,
/// undefined or cyclically-defined signals, and inconsistent tables.
pub fn parse(text: &str) -> Result<BlifModel, ParseBlifError> {
    let mut name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(String, String, u8)> = Vec::new();
    let mut tables: Vec<NamesTable> = Vec::new();

    // Join continuation lines (trailing backslash).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (cont, body) = match line.strip_suffix('\\') {
            Some(b) => (true, b.trim_end().to_string()),
            None => (false, line.to_string()),
        };
        match pending.take() {
            Some((l0, mut acc)) => {
                acc.push(' ');
                acc.push_str(body.trim_start());
                if cont {
                    pending = Some((l0, acc));
                } else {
                    logical.push((l0, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((lineno, body));
                } else {
                    logical.push((lineno, body));
                }
            }
        }
    }
    if let Some((l, _)) = pending {
        return Err(err(l, "dangling line continuation"));
    }

    let mut idx = 0usize;
    let mut saw_any = false;
    let mut saw_end = false;
    while idx < logical.len() {
        let (lineno, line) = &logical[idx];
        let lineno = *lineno;
        let tokens = tokenize(line);
        idx += 1;
        let Some((col0, tok0)) = tokens.first() else {
            continue;
        };
        saw_any = true;
        match tok0.as_str() {
            ".model" => {
                if let Some((_, n)) = tokens.get(1) {
                    name = n.clone();
                }
            }
            ".inputs" => inputs.extend(tokens[1..].iter().map(|(_, s)| s.clone())),
            ".outputs" => outputs.extend(tokens[1..].iter().map(|(_, s)| s.clone())),
            ".latch" => {
                // .latch <next> <present> [<type> <clk>] [<init>]
                let (next, present) = match (tokens.get(1), tokens.get(2)) {
                    (Some((_, n)), Some((_, p))) => (n.clone(), p.clone()),
                    _ => return Err(err(lineno, ".latch needs input and output signals")),
                };
                let init = tokens
                    .last()
                    .and_then(|(_, t)| t.parse::<u8>().ok())
                    .filter(|v| *v <= 1)
                    .unwrap_or(0);
                latches.push((next, present, init));
            }
            ".names" => {
                let signals: Vec<String> = tokens[1..].iter().map(|(_, s)| s.clone()).collect();
                if signals.is_empty() {
                    return Err(err_at(
                        lineno,
                        *col0,
                        ".names needs at least an output signal",
                    ));
                }
                let mut rows = Vec::new();
                while idx < logical.len() {
                    let (rl, rline) = &logical[idx];
                    if rline.trim_start().starts_with('.') {
                        break;
                    }
                    let parts = tokenize(rline);
                    if parts.is_empty() {
                        break;
                    }
                    let (plane_col, plane, value_col, value) =
                        match (signals.len() - 1, parts.as_slice()) {
                            (0, [(vc, v)]) => (0usize, String::new(), *vc, v.as_str()),
                            (_, [(pc, p), (vc, v)]) => (*pc, p.clone(), *vc, v.as_str()),
                            _ => return Err(err(*rl, "malformed .names row")),
                        };
                    let v = match value {
                        "1" => '1',
                        "0" => '0',
                        _ => return Err(err_at(*rl, value_col, "output column must be 0 or 1")),
                    };
                    if plane.len() != signals.len() - 1 {
                        return Err(err_at(*rl, plane_col, "input plane width mismatch"));
                    }
                    if let Some(bad) = plane.chars().position(|c| !matches!(c, '0' | '1' | '-')) {
                        return Err(err_at(
                            *rl,
                            plane_col + bad,
                            "input plane characters must be 0, 1 or -",
                        ));
                    }
                    rows.push((plane, v));
                    idx += 1;
                }
                tables.push(NamesTable {
                    line: lineno,
                    signals,
                    rows,
                });
            }
            ".end" => {
                saw_end = true;
                break;
            }
            ".exdc" | ".subckt" | ".gate" | ".mlatch" | ".clock" => {
                return Err(err_at(
                    lineno,
                    *col0,
                    format!("unsupported directive {tok0}"),
                ));
            }
            other if other.starts_with('.') => {
                return Err(err_at(lineno, *col0, format!("unknown directive {other}")));
            }
            _ => return Err(err_at(lineno, *col0, "logic row outside a .names table")),
        }
    }
    if !saw_any {
        return Err(err(0, "empty document: no directives found"));
    }
    if !saw_end {
        return Err(err(0, "truncated document: missing .end"));
    }

    // Combinational interface: inputs ∪ latch present-state signals.
    let mut comb_inputs = inputs.clone();
    for (_, present, _) in &latches {
        comb_inputs.push(present.clone());
    }
    let mut comb_outputs = outputs.clone();
    for (next, _, _) in &latches {
        comb_outputs.push(next.clone());
    }

    let mut builder = NetlistBuilder::new(comb_inputs.len());
    let mut nets: HashMap<String, NetId> = HashMap::new();
    for (i, n) in comb_inputs.iter().enumerate() {
        if nets.insert(n.clone(), builder.input(i)).is_some() {
            return Err(err(0, format!("signal {n} declared twice")));
        }
    }

    // Elaborate tables in dependency order (repeat until fixpoint).
    let mut remaining: Vec<&NamesTable> = tables.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|t| {
            let (fanins, output) = t.signals.split_at(t.signals.len() - 1);
            let ready = fanins.iter().all(|s| nets.contains_key(s));
            if !ready {
                return true; // keep for a later pass
            }
            let fanin_nets: Vec<NetId> = fanins.iter().map(|s| nets[s]).collect();
            let width = fanin_nets.len();
            let cubes: Vec<Cube> = t
                .rows
                .iter()
                .map(|(plane, _)| plane.parse::<Cube>().expect("plane validated at read time"))
                .collect();
            // Polarity: all rows must share the output value (standard
            // single-output BLIF covers do).
            let on_value = t.rows.first().map(|(_, v)| *v).unwrap_or('1');
            let cover = Cover::from_cubes(width, cubes);
            let mut net = sop_to_net(&mut builder, &cover, &fanin_nets);
            if on_value == '0' {
                net = builder.not(net);
            }
            nets.insert(output[0].clone(), net);
            false
        });
        if remaining.len() == before {
            let t = remaining[0];
            return Err(err(
                t.line,
                "undefined or cyclic signal in .names fanins".to_string(),
            ));
        }
    }

    for out in &comb_outputs {
        let net = nets
            .get(out)
            .copied()
            .ok_or_else(|| err(0, format!("output signal {out} never defined")))?;
        builder.mark_output(net);
    }

    Ok(BlifModel {
        name,
        input_names: comb_inputs,
        output_names: comb_outputs,
        latches,
        netlist: builder.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multilevel_logic_any_order() {
        // y defined before its fanin t.
        let text = "\
.model ooo
.inputs a b c
.outputs y
.names t c y
11 1
.names a b t
11 1
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.name, "ooo");
        assert_eq!(m.netlist.eval_single(&[true, true, true]), vec![true]);
        assert_eq!(m.netlist.eval_single(&[true, false, true]), vec![false]);
    }

    #[test]
    fn off_polarity_tables() {
        let text = ".model inv\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n";
        let m = parse(text).unwrap();
        assert_eq!(m.netlist.eval_single(&[true]), vec![false]);
        assert_eq!(m.netlist.eval_single(&[false]), vec![true]);
    }

    #[test]
    fn constants() {
        let text = "\
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.netlist.eval_single(&[false]), vec![true, false]);
    }

    #[test]
    fn latches_extend_the_interface() {
        let text = "\
.model seq
.inputs x
.outputs y
.latch ns ps re clk 1
.names x ps ns
11 1
.names ps y
1 1
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.latches, vec![("ns".into(), "ps".into(), 1)]);
        assert_eq!(m.input_names, vec!["x", "ps"]);
        assert_eq!(m.output_names, vec!["y", "ns"]);
        // comb: y = ps, ns = x & ps.
        assert_eq!(m.netlist.eval_single(&[true, true]), vec![true, true]);
        assert_eq!(m.netlist.eval_single(&[false, true]), vec![true, false]);
    }

    #[test]
    fn export_import_round_trip_is_equivalent() {
        use crate::export::{to_blif, PortNames};
        let mut b = NetlistBuilder::new(3);
        let x = b.input(0);
        let y = b.input(1);
        let z = b.input(2);
        let t = b.xor(x, y);
        let u = b.nand(t, z);
        let v = b.nor(x, z);
        b.mark_output(u);
        b.mark_output(v);
        let original = b.finish();
        let ports = PortNames::numbered(3, 2);
        let text = to_blif(&original, "round", &ports);
        let back = parse(&text).unwrap();
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                original.eval_single(&bits),
                back.netlist.eval_single(&bits),
                "mismatch at {m:03b}"
            );
        }
    }

    #[test]
    fn errors_reported_with_lines() {
        assert!(parse(".model x\n.inputs a\n.outputs y\nbogus row\n").is_err());
        assert!(parse(".model x\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n").is_err());
        let cyclic = ".model c\n.inputs a\n.outputs y\n.names y y\n1 1\n.end\n";
        let e = parse(cyclic).unwrap_err();
        assert!(e.message.contains("cyclic"));
        let undef = ".model u\n.inputs a\n.outputs y\n.end\n";
        let e = parse(undef).unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn continuation_lines_joined() {
        let text = ".model c\n.inputs a b \\\nc\n.outputs y\n.names a b c y\n111 1\n.end\n";
        let m = parse(text).unwrap();
        assert_eq!(m.input_names, vec!["a", "b", "c"]);
        assert_eq!(m.netlist.eval_single(&[true, true, true]), vec![true]);
    }

    #[test]
    fn unsupported_directives_rejected() {
        let text = ".model s\n.inputs a\n.outputs y\n.subckt foo a=a y=y\n.end\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("unsupported"));
        assert_eq!((e.line, e.column), (4, 1));
    }

    #[test]
    fn empty_documents_are_document_level_errors() {
        for text in ["", "\n\n\n", "# only a comment\n", "   \n\t\n"] {
            let e = parse(text).unwrap_err();
            assert_eq!(e.line, 0, "{text:?}");
            assert!(e.message.contains("empty document"), "{text:?}: {e}");
            assert!(e.to_string().starts_with("blif parse error: "), "{e}");
        }
    }

    #[test]
    fn truncated_documents_are_reported() {
        // Document stops mid-model: no .end.
        let text = ".model t\n.inputs a\n.outputs y\n.names a y\n1 1\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("missing .end"), "{e}");
        // Dangling continuation is reported at its own line.
        let cont = ".model t\n.inputs a \\\n";
        let e = parse(cont).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("dangling"), "{e}");
    }

    #[test]
    fn garbage_positions_carry_line_and_column() {
        // Bad output column: the `x` token at line 5, column 4.
        let text = ".model g\n.inputs a b\n.outputs y\n.names a b y\n11 x\n.end\n";
        let e = parse(text).unwrap_err();
        assert_eq!((e.line, e.column), (5, 4));
        assert!(e.message.contains("output column"), "{e}");
        assert!(
            e.to_string().contains("line 5, column 4"),
            "display lacks position: {e}"
        );

        // Bad plane character: the `2` at line 5, column 2.
        let text = ".model g\n.inputs a b\n.outputs y\n.names a b y\n12 1\n.end\n";
        let e = parse(text).unwrap_err();
        assert_eq!((e.line, e.column), (5, 2));
        assert!(e.message.contains("0, 1 or -"), "{e}");

        // Plane width mismatch points at the plane token.
        let text = ".model g\n.inputs a b\n.outputs y\n.names a b y\n111 1\n.end\n";
        let e = parse(text).unwrap_err();
        assert_eq!((e.line, e.column), (5, 1));
        assert!(e.message.contains("width mismatch"), "{e}");

        // Unknown directive points at the directive token.
        let text = ".model g\n.inputs a\n.outputs y\n  .frobnicate\n.end\n";
        let e = parse(text).unwrap_err();
        assert_eq!((e.line, e.column), (4, 3));
        assert!(e.message.contains("unknown directive"), "{e}");

        // Pure binary garbage is rejected, never panics.
        let e = parse("\u{0}\u{1}\u{2} garbage \u{7f}\n").unwrap_err();
        assert_eq!(e.line, 1);
    }
}
