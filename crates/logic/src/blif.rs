//! BLIF import — the other half of the SIS interchange.
//!
//! Parses the Berkeley Logic Interchange Format subset that SIS-lineage
//! tools emit: `.model`, `.inputs`, `.outputs`, multi-row `.names`
//! tables (arbitrary fanin, `1`/`0`/`-` input plane, single-output
//! cover in either ON or OFF polarity) and `.latch` declarations.
//! Together with [`crate::export`], circuits can round-trip through
//! external synthesis flows.
//!
//! # Examples
//!
//! ```
//! use ced_logic::blif::parse;
//!
//! let text = "\
//! .model xor2
//! .inputs a b
//! .outputs y
//! .names a b y
//! 10 1
//! 01 1
//! .end
//! ";
//! let model = parse(text)?;
//! assert_eq!(model.name, "xor2");
//! assert_eq!(model.netlist.eval_single(&[true, false]), vec![true]);
//! assert_eq!(model.netlist.eval_single(&[true, true]), vec![false]);
//! # Ok::<(), ced_logic::blif::ParseBlifError>(())
//! ```

use crate::cover::Cover;
use crate::cube::Cube;
use crate::decompose::sop_to_net;
use crate::netlist::{NetId, Netlist, NetlistBuilder};
use std::collections::HashMap;
use std::fmt;

/// A parsed BLIF model.
#[derive(Debug, Clone)]
pub struct BlifModel {
    /// The `.model` name.
    pub name: String,
    /// Primary input names, in declaration order. Latch outputs
    /// (present-state signals) are appended after the declared inputs.
    pub input_names: Vec<String>,
    /// Primary output names, in declaration order. Latch inputs
    /// (next-state signals) are appended after the declared outputs.
    pub output_names: Vec<String>,
    /// `(next_state_signal, present_state_signal, initial_value)` per
    /// latch, in declaration order.
    pub latches: Vec<(String, String, u8)>,
    /// The combinational netlist: inputs = declared inputs then latch
    /// present-state signals; outputs = declared outputs then latch
    /// next-state signals.
    pub netlist: Netlist,
}

/// Error from BLIF parsing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBlifError {
    /// 1-based line of the problem (0 for document-level issues).
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blif parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseBlifError {}

fn err(line: usize, message: impl Into<String>) -> ParseBlifError {
    ParseBlifError {
        line,
        message: message.into(),
    }
}

/// One raw `.names` table before elaboration.
struct NamesTable {
    line: usize,
    signals: Vec<String>, // fanins then the output signal
    rows: Vec<(String, char)>,
}

/// Parses a single-model BLIF document.
///
/// Logic is elaborated in dependency order, so tables may appear in any
/// order. Unknown dot-directives are rejected (conservative; extend as
/// needed). Signals used but never defined are reported.
///
/// # Errors
///
/// Returns [`ParseBlifError`] with a line number for malformed syntax,
/// undefined or cyclically-defined signals, and inconsistent tables.
pub fn parse(text: &str) -> Result<BlifModel, ParseBlifError> {
    let mut name = String::from("blif");
    let mut inputs: Vec<String> = Vec::new();
    let mut outputs: Vec<String> = Vec::new();
    let mut latches: Vec<(String, String, u8)> = Vec::new();
    let mut tables: Vec<NamesTable> = Vec::new();

    // Join continuation lines (trailing backslash).
    let mut logical: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let lineno = lineno + 1;
        let line = raw.split('#').next().unwrap_or("").trim_end();
        let (cont, body) = match line.strip_suffix('\\') {
            Some(b) => (true, b.trim_end().to_string()),
            None => (false, line.to_string()),
        };
        match pending.take() {
            Some((l0, mut acc)) => {
                acc.push(' ');
                acc.push_str(body.trim_start());
                if cont {
                    pending = Some((l0, acc));
                } else {
                    logical.push((l0, acc));
                }
            }
            None => {
                if cont {
                    pending = Some((lineno, body));
                } else {
                    logical.push((lineno, body));
                }
            }
        }
    }
    if let Some((l, _)) = pending {
        return Err(err(l, "dangling line continuation"));
    }

    let mut idx = 0usize;
    while idx < logical.len() {
        let (lineno, line) = &logical[idx];
        let lineno = *lineno;
        let line = line.trim();
        idx += 1;
        if line.is_empty() {
            continue;
        }
        let tokens: Vec<&str> = line.split_whitespace().collect();
        match tokens[0] {
            ".model" => {
                if let Some(n) = tokens.get(1) {
                    name = (*n).to_string();
                }
            }
            ".inputs" => inputs.extend(tokens[1..].iter().map(|s| s.to_string())),
            ".outputs" => outputs.extend(tokens[1..].iter().map(|s| s.to_string())),
            ".latch" => {
                // .latch <next> <present> [<type> <clk>] [<init>]
                let (next, present) = match (tokens.get(1), tokens.get(2)) {
                    (Some(n), Some(p)) => ((*n).to_string(), (*p).to_string()),
                    _ => return Err(err(lineno, ".latch needs input and output signals")),
                };
                let init = tokens
                    .last()
                    .and_then(|t| t.parse::<u8>().ok())
                    .filter(|v| *v <= 1)
                    .unwrap_or(0);
                latches.push((next, present, init));
            }
            ".names" => {
                let signals: Vec<String> = tokens[1..].iter().map(|s| s.to_string()).collect();
                if signals.is_empty() {
                    return Err(err(lineno, ".names needs at least an output signal"));
                }
                let mut rows = Vec::new();
                while idx < logical.len() {
                    let (rl, rline) = &logical[idx];
                    let rline = rline.trim();
                    if rline.is_empty() || rline.starts_with('.') {
                        break;
                    }
                    let parts: Vec<&str> = rline.split_whitespace().collect();
                    let (plane, value) = match (signals.len() - 1, parts.len()) {
                        (0, 1) => (String::new(), parts[0]),
                        (_, 2) => (parts[0].to_string(), parts[1]),
                        _ => return Err(err(*rl, "malformed .names row")),
                    };
                    let v = match value {
                        "1" => '1',
                        "0" => '0',
                        _ => return Err(err(*rl, "output column must be 0 or 1")),
                    };
                    if plane.len() != signals.len() - 1 {
                        return Err(err(*rl, "input plane width mismatch"));
                    }
                    if !plane.chars().all(|c| matches!(c, '0' | '1' | '-')) {
                        return Err(err(*rl, "input plane characters must be 0, 1 or -"));
                    }
                    rows.push((plane, v));
                    idx += 1;
                }
                tables.push(NamesTable {
                    line: lineno,
                    signals,
                    rows,
                });
            }
            ".end" => break,
            ".exdc" | ".subckt" | ".gate" | ".mlatch" | ".clock" => {
                return Err(err(lineno, format!("unsupported directive {}", tokens[0])));
            }
            other if other.starts_with('.') => {
                return Err(err(lineno, format!("unknown directive {other}")));
            }
            _ => return Err(err(lineno, "logic row outside a .names table")),
        }
    }

    // Combinational interface: inputs ∪ latch present-state signals.
    let mut comb_inputs = inputs.clone();
    for (_, present, _) in &latches {
        comb_inputs.push(present.clone());
    }
    let mut comb_outputs = outputs.clone();
    for (next, _, _) in &latches {
        comb_outputs.push(next.clone());
    }

    let mut builder = NetlistBuilder::new(comb_inputs.len());
    let mut nets: HashMap<String, NetId> = HashMap::new();
    for (i, n) in comb_inputs.iter().enumerate() {
        if nets.insert(n.clone(), builder.input(i)).is_some() {
            return Err(err(0, format!("signal {n} declared twice")));
        }
    }

    // Elaborate tables in dependency order (repeat until fixpoint).
    let mut remaining: Vec<&NamesTable> = tables.iter().collect();
    while !remaining.is_empty() {
        let before = remaining.len();
        remaining.retain(|t| {
            let (fanins, output) = t.signals.split_at(t.signals.len() - 1);
            let ready = fanins.iter().all(|s| nets.contains_key(s));
            if !ready {
                return true; // keep for a later pass
            }
            let fanin_nets: Vec<NetId> = fanins.iter().map(|s| nets[s]).collect();
            let width = fanin_nets.len();
            let cubes: Vec<Cube> = t
                .rows
                .iter()
                .map(|(plane, _)| plane.parse::<Cube>().expect("plane validated at read time"))
                .collect();
            // Polarity: all rows must share the output value (standard
            // single-output BLIF covers do).
            let on_value = t.rows.first().map(|(_, v)| *v).unwrap_or('1');
            let cover = Cover::from_cubes(width, cubes);
            let mut net = sop_to_net(&mut builder, &cover, &fanin_nets);
            if on_value == '0' {
                net = builder.not(net);
            }
            nets.insert(output[0].clone(), net);
            false
        });
        if remaining.len() == before {
            let t = remaining[0];
            return Err(err(
                t.line,
                "undefined or cyclic signal in .names fanins".to_string(),
            ));
        }
    }

    for out in &comb_outputs {
        let net = nets
            .get(out)
            .copied()
            .ok_or_else(|| err(0, format!("output signal {out} never defined")))?;
        builder.mark_output(net);
    }

    Ok(BlifModel {
        name,
        input_names: comb_inputs,
        output_names: comb_outputs,
        latches,
        netlist: builder.finish(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_multilevel_logic_any_order() {
        // y defined before its fanin t.
        let text = "\
.model ooo
.inputs a b c
.outputs y
.names t c y
11 1
.names a b t
11 1
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.name, "ooo");
        assert_eq!(m.netlist.eval_single(&[true, true, true]), vec![true]);
        assert_eq!(m.netlist.eval_single(&[true, false, true]), vec![false]);
    }

    #[test]
    fn off_polarity_tables() {
        let text = ".model inv\n.inputs a\n.outputs y\n.names a y\n1 0\n.end\n";
        let m = parse(text).unwrap();
        assert_eq!(m.netlist.eval_single(&[true]), vec![false]);
        assert_eq!(m.netlist.eval_single(&[false]), vec![true]);
    }

    #[test]
    fn constants() {
        let text = "\
.model consts
.inputs a
.outputs one zero
.names one
1
.names zero
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.netlist.eval_single(&[false]), vec![true, false]);
    }

    #[test]
    fn latches_extend_the_interface() {
        let text = "\
.model seq
.inputs x
.outputs y
.latch ns ps re clk 1
.names x ps ns
11 1
.names ps y
1 1
.end
";
        let m = parse(text).unwrap();
        assert_eq!(m.latches, vec![("ns".into(), "ps".into(), 1)]);
        assert_eq!(m.input_names, vec!["x", "ps"]);
        assert_eq!(m.output_names, vec!["y", "ns"]);
        // comb: y = ps, ns = x & ps.
        assert_eq!(m.netlist.eval_single(&[true, true]), vec![true, true]);
        assert_eq!(m.netlist.eval_single(&[false, true]), vec![true, false]);
    }

    #[test]
    fn export_import_round_trip_is_equivalent() {
        use crate::export::{to_blif, PortNames};
        let mut b = NetlistBuilder::new(3);
        let x = b.input(0);
        let y = b.input(1);
        let z = b.input(2);
        let t = b.xor(x, y);
        let u = b.nand(t, z);
        let v = b.nor(x, z);
        b.mark_output(u);
        b.mark_output(v);
        let original = b.finish();
        let ports = PortNames::numbered(3, 2);
        let text = to_blif(&original, "round", &ports);
        let back = parse(&text).unwrap();
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(
                original.eval_single(&bits),
                back.netlist.eval_single(&bits),
                "mismatch at {m:03b}"
            );
        }
    }

    #[test]
    fn errors_reported_with_lines() {
        assert!(parse(".model x\n.inputs a\n.outputs y\nbogus row\n").is_err());
        assert!(parse(".model x\n.inputs a\n.outputs y\n.names a y\n2 1\n.end\n").is_err());
        let cyclic = ".model c\n.inputs a\n.outputs y\n.names y y\n1 1\n.end\n";
        let e = parse(cyclic).unwrap_err();
        assert!(e.message.contains("cyclic"));
        let undef = ".model u\n.inputs a\n.outputs y\n.end\n";
        let e = parse(undef).unwrap_err();
        assert!(e.message.contains("never defined"));
    }

    #[test]
    fn continuation_lines_joined() {
        let text = ".model c\n.inputs a b \\\nc\n.outputs y\n.names a b c y\n111 1\n.end\n";
        let m = parse(text).unwrap();
        assert_eq!(m.input_names, vec!["a", "b", "c"]);
        assert_eq!(m.netlist.eval_single(&[true, true, true]), vec![true]);
    }

    #[test]
    fn unsupported_directives_rejected() {
        let text = ".model s\n.inputs a\n.outputs y\n.subckt foo a=a y=y\n.end\n";
        let e = parse(text).unwrap_err();
        assert!(e.message.contains("unsupported"));
    }
}
