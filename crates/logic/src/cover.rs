//! Single-output cube covers (sum-of-products) and the unate recursive
//! paradigm: tautology checking, cover/cube containment, complementation
//! and the sharp (difference) operation.
//!
//! These are the classical algorithms underlying Espresso
//! (Brayton et al., *Logic Minimization Algorithms for VLSI Synthesis*).
//!
//! # Examples
//!
//! ```
//! use ced_logic::cover::Cover;
//!
//! // f = a'b + ab' + ab  ==  a + b
//! let f = Cover::parse(2, &["01", "10", "11"])?;
//! assert!(!f.is_tautology());
//! let g = f.complement(); // a'b'
//! assert_eq!(g.len(), 1);
//! assert!(g.covers_minterm(0b00));
//! assert!(!g.covers_minterm(0b01));
//! # Ok::<(), ced_logic::cube::ParseCubeError>(())
//! ```

use crate::cube::{Cube, Literal, ParseCubeError};
use std::fmt;

/// A disjunction of [`Cube`]s over a fixed variable width.
///
/// The empty cover is the constant-0 function; a cover containing the full
/// cube is the constant-1 function.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Cover {
    width: usize,
    cubes: Vec<Cube>,
}

impl Cover {
    /// Creates the empty (constant-0) cover of the given width.
    pub fn empty(width: usize) -> Cover {
        Cover {
            width,
            cubes: Vec::new(),
        }
    }

    /// Creates the constant-1 cover (single full cube).
    pub fn tautology(width: usize) -> Cover {
        Cover {
            width,
            cubes: vec![Cube::full(width)],
        }
    }

    /// Creates a cover from cubes.
    ///
    /// # Panics
    ///
    /// Panics if any cube's width differs from `width`.
    pub fn from_cubes(width: usize, cubes: Vec<Cube>) -> Cover {
        for c in &cubes {
            assert_eq!(c.width(), width, "cube width mismatch in cover");
        }
        Cover { width, cubes }
    }

    /// Parses a cover from PLA-style cube strings.
    ///
    /// # Errors
    ///
    /// Returns [`ParseCubeError`] if any string contains an invalid
    /// character or has the wrong length.
    pub fn parse(width: usize, cubes: &[&str]) -> Result<Cover, ParseCubeError> {
        let mut parsed = Vec::with_capacity(cubes.len());
        for s in cubes {
            if s.len() != width {
                return Err(ParseCubeError { position: None });
            }
            parsed.push(s.parse::<Cube>()?);
        }
        Ok(Cover {
            width,
            cubes: parsed,
        })
    }

    /// Number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// True iff the cover has no cubes (constant 0).
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// The cubes of this cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Consumes the cover, returning its cubes.
    pub fn into_cubes(self) -> Vec<Cube> {
        self.cubes
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from the cover width.
    pub fn push(&mut self, cube: Cube) {
        assert_eq!(cube.width(), self.width, "cube width mismatch in cover");
        self.cubes.push(cube);
    }

    /// Total number of literals across all cubes (a common cost metric).
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Evaluates the cover on a single minterm (bit `i` = variable `i`).
    pub fn covers_minterm(&self, assignment: u64) -> bool {
        self.cubes.iter().any(|c| c.covers_minterm(assignment))
    }

    /// Removes cubes contained in another single cube of the cover
    /// (single-cube containment).
    pub fn remove_contained(&mut self) {
        let mut keep = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for j in 0..self.cubes.len() {
                if i == j || !keep[j] {
                    continue;
                }
                if self.cubes[i].contains(&self.cubes[j])
                    && (self.cubes[i] != self.cubes[j] || i < j)
                {
                    keep[j] = false;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// The cofactor of the cover with respect to a cube.
    pub fn cofactor(&self, wrt: &Cube) -> Cover {
        let cubes = self.cubes.iter().filter_map(|c| c.cofactor(wrt)).collect();
        Cover {
            width: self.width,
            cubes,
        }
    }

    /// The cofactor with respect to a single literal.
    pub fn cofactor_var(&self, var: usize, value: bool) -> Cover {
        let cubes = self
            .cubes
            .iter()
            .filter_map(|c| c.cofactor_var(var, value))
            .collect();
        Cover {
            width: self.width,
            cubes,
        }
    }

    /// Selects the most binate variable: the variable that appears in both
    /// polarities in the largest number of cubes, breaking ties toward the
    /// most frequently bound variable. Returns `None` when no cube binds
    /// any variable.
    pub fn most_binate_variable(&self) -> Option<usize> {
        let w = self.width;
        let mut pos = vec![0usize; w];
        let mut neg = vec![0usize; w];
        for c in &self.cubes {
            for v in 0..w {
                match c.literal(v) {
                    Literal::Positive => pos[v] += 1,
                    Literal::Negative => neg[v] += 1,
                    Literal::DontCare => {}
                }
            }
        }
        (0..w)
            .filter(|&v| pos[v] + neg[v] > 0)
            .max_by_key(|&v| (pos[v].min(neg[v]), pos[v] + neg[v]))
    }

    /// True iff every variable appears in at most one polarity (unate).
    pub fn is_unate(&self) -> bool {
        for v in 0..self.width {
            let mut seen_pos = false;
            let mut seen_neg = false;
            for c in &self.cubes {
                match c.literal(v) {
                    Literal::Positive => seen_pos = true,
                    Literal::Negative => seen_neg = true,
                    Literal::DontCare => {}
                }
            }
            if seen_pos && seen_neg {
                return false;
            }
        }
        true
    }

    /// Tautology check by the unate recursive paradigm: true iff the cover
    /// evaluates to 1 on every minterm.
    ///
    /// # Examples
    ///
    /// ```
    /// use ced_logic::cover::Cover;
    /// let f = Cover::parse(2, &["1-", "0-"]).unwrap();
    /// assert!(f.is_tautology());
    /// ```
    pub fn is_tautology(&self) -> bool {
        // Fast exits.
        if self.cubes.iter().any(Cube::is_full) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        // Unate reduction: a unate cover is a tautology iff it contains the
        // full cube (already checked above).
        if self.is_unate() {
            return false;
        }
        let v = self
            .most_binate_variable()
            .expect("non-unate cover binds at least one variable");
        self.cofactor_var(v, false).is_tautology() && self.cofactor_var(v, true).is_tautology()
    }

    /// True iff this cover contains (covers every minterm of) `cube`.
    ///
    /// Implemented as a tautology check of the cofactor (unate recursion).
    pub fn contains_cube(&self, cube: &Cube) -> bool {
        self.cofactor(cube).is_tautology()
    }

    /// True iff this cover contains every minterm of `other`.
    pub fn contains_cover(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.contains_cube(c))
    }

    /// True iff the two covers denote the same Boolean function.
    pub fn equivalent(&self, other: &Cover) -> bool {
        self.contains_cover(other) && other.contains_cover(self)
    }

    /// Complements the cover by unate recursion.
    ///
    /// The result covers exactly the minterms not covered by `self`.
    pub fn complement(&self) -> Cover {
        let mut out = self.complement_rec();
        out.remove_contained();
        out
    }

    fn complement_rec(&self) -> Cover {
        if self.cubes.is_empty() {
            return Cover::tautology(self.width);
        }
        if self.cubes.iter().any(Cube::is_full) {
            return Cover::empty(self.width);
        }
        if self.cubes.len() == 1 {
            return Self::complement_cube(&self.cubes[0]);
        }
        let v = self
            .most_binate_variable()
            .expect("non-trivial cover binds at least one variable");
        let c0 = self.cofactor_var(v, false).complement_rec();
        let c1 = self.cofactor_var(v, true).complement_rec();
        let mut cubes = Vec::with_capacity(c0.len() + c1.len());
        // Merge: cubes identical except for variable v combine to don't-care.
        let c1_cubes = c1.cubes;
        let mut used1 = vec![false; c1_cubes.len()];
        for a in c0.cubes {
            let mut merged = false;
            for (j, b) in c1_cubes.iter().enumerate() {
                if !used1[j] && a == *b {
                    used1[j] = true;
                    cubes.push(a.clone());
                    merged = true;
                    break;
                }
            }
            if !merged {
                cubes.push(a.with(v, Literal::Negative));
            }
        }
        for (j, b) in c1_cubes.into_iter().enumerate() {
            if !used1[j] {
                cubes.push(b.with(v, Literal::Positive));
            }
        }
        Cover {
            width: self.width,
            cubes,
        }
    }

    /// De Morgan complement of a single cube: one cube per literal.
    fn complement_cube(cube: &Cube) -> Cover {
        let width = cube.width();
        let mut cubes = Vec::new();
        for v in 0..width {
            match cube.literal(v) {
                Literal::Positive => cubes.push(Cube::full(width).with(v, Literal::Negative)),
                Literal::Negative => cubes.push(Cube::full(width).with(v, Literal::Positive)),
                Literal::DontCare => {}
            }
        }
        Cover { width, cubes }
    }

    /// The sharp operation `self # other`: minterms of `self` not in
    /// `other`, as a cover.
    pub fn sharp(&self, other: &Cover) -> Cover {
        let not_other = other.complement();
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &not_other.cubes {
                if let Some(c) = a.intersection(b) {
                    cubes.push(c);
                }
            }
        }
        let mut out = Cover {
            width: self.width,
            cubes,
        };
        out.remove_contained();
        out
    }

    /// Union (disjunction) of two covers.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn union(&self, other: &Cover) -> Cover {
        assert_eq!(self.width, other.width, "cover width mismatch");
        let mut cubes = self.cubes.clone();
        cubes.extend(other.cubes.iter().cloned());
        Cover {
            width: self.width,
            cubes,
        }
    }

    /// Intersection (conjunction) of two covers, by pairwise cube
    /// intersection.
    ///
    /// # Panics
    ///
    /// Panics if widths differ.
    pub fn intersect(&self, other: &Cover) -> Cover {
        assert_eq!(self.width, other.width, "cover width mismatch");
        let mut cubes = Vec::new();
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersection(b) {
                    cubes.push(c);
                }
            }
        }
        let mut out = Cover {
            width: self.width,
            cubes,
        };
        out.remove_contained();
        out
    }

    /// The smallest single cube containing the whole cover, or `None` for
    /// the empty cover.
    pub fn supercube(&self) -> Option<Cube> {
        let mut it = self.cubes.iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |acc, c| acc.supercube(c)))
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return write!(f, "(0)");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                write!(f, " + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({} vars, [{}])", self.width, self)
    }
}

impl FromIterator<Cube> for Cover {
    /// Collects cubes into a cover.
    ///
    /// # Panics
    ///
    /// Panics if the cubes have differing widths. An empty iterator yields
    /// a zero-width empty cover.
    fn from_iter<T: IntoIterator<Item = Cube>>(iter: T) -> Cover {
        let cubes: Vec<Cube> = iter.into_iter().collect();
        let width = cubes.first().map_or(0, Cube::width);
        Cover::from_cubes(width, cubes)
    }
}

impl Extend<Cube> for Cover {
    fn extend<T: IntoIterator<Item = Cube>>(&mut self, iter: T) {
        for c in iter {
            self.push(c);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, cubes: &[&str]) -> Cover {
        Cover::parse(width, cubes).unwrap()
    }

    /// Brute-force truth vector of a cover over ≤ 16 vars.
    fn truth(c: &Cover) -> Vec<bool> {
        (0..(1u64 << c.width()))
            .map(|m| c.covers_minterm(m))
            .collect()
    }

    #[test]
    fn empty_cover_is_constant_zero() {
        let f = Cover::empty(3);
        assert!(!f.is_tautology());
        assert!(!f.covers_minterm(0));
        assert!(f.is_empty());
    }

    #[test]
    fn tautology_detection() {
        assert!(cover(2, &["1-", "0-"]).is_tautology());
        assert!(cover(2, &["11", "10", "01", "00"]).is_tautology());
        assert!(!cover(2, &["11", "10", "01"]).is_tautology());
        assert!(cover(3, &["1--", "-1-", "00-"]).is_tautology());
        assert!(Cover::tautology(4).is_tautology());
    }

    #[test]
    fn tautology_zero_width() {
        // Width-0 function: a single (empty) cube is constant 1.
        assert!(Cover::tautology(0).is_tautology());
        assert!(!Cover::empty(0).is_tautology());
    }

    #[test]
    fn unate_detection() {
        assert!(cover(3, &["1--", "-1-"]).is_unate());
        assert!(!cover(3, &["1--", "0--"]).is_unate());
    }

    #[test]
    fn contains_cube_by_multiple_cubes() {
        // f = a + b contains the cube "--" restricted to a+b's minterms? No:
        // f does not contain "--" (misses 00), but contains "1-" and "-1".
        let f = cover(2, &["1-", "-1"]);
        assert!(f.contains_cube(&"1-".parse().unwrap()));
        assert!(f.contains_cube(&"-1".parse().unwrap()));
        assert!(!f.contains_cube(&"--".parse().unwrap()));
        // "10" + "01" + "11" jointly cover cube "1-"? yes via 10 and 11.
        let g = cover(2, &["10", "01", "11"]);
        assert!(g.contains_cube(&"1-".parse().unwrap()));
    }

    #[test]
    fn complement_matches_brute_force() {
        let cases = [
            cover(3, &["1--", "-1-"]),
            cover(3, &["101", "010"]),
            cover(4, &["1--0", "-11-", "0-0-"]),
            Cover::empty(3),
            Cover::tautology(3),
            cover(1, &["1"]),
        ];
        for f in &cases {
            let g = f.complement();
            let tf = truth(f);
            let tg = truth(&g);
            for (m, (a, b)) in tf.iter().zip(&tg).enumerate() {
                assert_ne!(a, b, "complement wrong at minterm {m} of {f}");
            }
        }
    }

    #[test]
    fn sharp_removes_minterms() {
        let f = cover(3, &["1--"]);
        let g = cover(3, &["11-"]);
        let d = f.sharp(&g);
        let td = truth(&d);
        for m in 0..8u64 {
            let expect = f.covers_minterm(m) && !g.covers_minterm(m);
            assert_eq!(td[m as usize], expect, "sharp wrong at {m:03b}");
        }
    }

    #[test]
    fn union_and_intersect() {
        let f = cover(2, &["1-"]);
        let g = cover(2, &["-1"]);
        let u = f.union(&g);
        let i = f.intersect(&g);
        assert!(u.covers_minterm(0b01) && u.covers_minterm(0b10));
        assert!(i.covers_minterm(0b11));
        assert!(!i.covers_minterm(0b01));
        assert!(!i.covers_minterm(0b10));
    }

    #[test]
    fn equivalence() {
        // a'b + ab' + ab == a + b
        let f = cover(2, &["01", "10", "11"]);
        let g = cover(2, &["1-", "-1"]);
        assert!(f.equivalent(&g));
        let h = cover(2, &["1-"]);
        assert!(!f.equivalent(&h));
    }

    #[test]
    fn remove_contained_keeps_maximal() {
        let mut f = cover(3, &["1--", "10-", "101", "01-"]);
        f.remove_contained();
        assert_eq!(f.len(), 2);
        assert!(f.cubes().contains(&"1--".parse().unwrap()));
        assert!(f.cubes().contains(&"01-".parse().unwrap()));
    }

    #[test]
    fn remove_contained_dedupes_equal_cubes() {
        let mut f = cover(2, &["1-", "1-", "1-"]);
        f.remove_contained();
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn supercube_of_cover() {
        let f = cover(3, &["101", "100"]);
        assert_eq!(f.supercube().unwrap().to_string(), "10-");
        assert!(Cover::empty(3).supercube().is_none());
    }

    #[test]
    fn most_binate_prefers_two_polarity_vars() {
        let f = cover(3, &["1--", "0--", "-1-"]);
        assert_eq!(f.most_binate_variable(), Some(0));
    }
}
