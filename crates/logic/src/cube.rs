//! Ternary cubes — the basic unit of two-level (sum-of-products) logic.
//!
//! A cube is a product term over `n` Boolean variables. Each variable takes
//! one of three literal states: positive (`1`), negative (`0`), or absent
//! (`-`, don't-care). Following the classic PLA/Espresso encoding, every
//! variable is stored as a 2-bit field:
//!
//! | field | meaning                 |
//! |-------|-------------------------|
//! | `01`  | negative literal (v=0)  |
//! | `10`  | positive literal (v=1)  |
//! | `11`  | no literal (don't care) |
//! | `00`  | empty (contradiction)   |
//!
//! With this encoding, cube intersection is a bitwise AND, and a cube is
//! empty iff any field is `00`.
//!
//! # Examples
//!
//! ```
//! use ced_logic::cube::Cube;
//!
//! let a: Cube = "1-0".parse()?;
//! let b: Cube = "110".parse()?;
//! assert!(a.contains(&b));
//! assert_eq!(a.intersection(&b), Some(b.clone()));
//! # Ok::<(), ced_logic::cube::ParseCubeError>(())
//! ```

use std::fmt;
use std::str::FromStr;

/// Number of variables packed into one `u64` word (2 bits per variable).
const VARS_PER_WORD: usize = 32;

/// The state of one variable inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Literal {
    /// The variable appears complemented (`0` in PLA notation).
    Negative,
    /// The variable appears uncomplemented (`1` in PLA notation).
    Positive,
    /// The variable does not appear (`-` in PLA notation).
    DontCare,
}

impl Literal {
    /// The 2-bit field encoding of this literal.
    fn bits(self) -> u64 {
        match self {
            Literal::Negative => 0b01,
            Literal::Positive => 0b10,
            Literal::DontCare => 0b11,
        }
    }

    /// Decodes a 2-bit field. Returns `None` for the empty field `00`.
    fn from_bits(bits: u64) -> Option<Literal> {
        match bits & 0b11 {
            0b01 => Some(Literal::Negative),
            0b10 => Some(Literal::Positive),
            0b11 => Some(Literal::DontCare),
            _ => None,
        }
    }

    /// The PLA character for this literal.
    pub fn to_char(self) -> char {
        match self {
            Literal::Negative => '0',
            Literal::Positive => '1',
            Literal::DontCare => '-',
        }
    }
}

/// A product term (cube) over a fixed number of Boolean variables.
///
/// Cubes are value types: cheap to clone for the variable counts used in
/// FSM synthesis (tens of variables). All binary operations panic if the
/// operands have different widths; widths are established at construction.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Cube {
    /// Number of variables.
    width: usize,
    /// 2-bit fields, variable `i` in word `i / 32`, bits `2*(i%32)..`.
    words: Vec<u64>,
}

/// Error returned when parsing a PLA cube string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseCubeError {
    /// Byte offset of the offending character, if any.
    pub position: Option<usize>,
}

impl fmt::Display for ParseCubeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.position {
            Some(p) => write!(f, "invalid cube character at position {p}"),
            None => write!(f, "invalid cube string"),
        }
    }
}

impl std::error::Error for ParseCubeError {}

impl Cube {
    /// Creates the full cube (all variables don't-care) of the given width.
    ///
    /// # Examples
    ///
    /// ```
    /// use ced_logic::cube::Cube;
    /// let c = Cube::full(4);
    /// assert_eq!(c.to_string(), "----");
    /// ```
    pub fn full(width: usize) -> Cube {
        let nwords = width.div_ceil(VARS_PER_WORD).max(1);
        let mut words = vec![u64::MAX; nwords];
        Self::mask_tail(width, &mut words);
        Cube { width, words }
    }

    /// Creates a minterm cube from variable assignments.
    ///
    /// Bit `i` of `assignment` gives the value of variable `i`.
    ///
    /// # Examples
    ///
    /// ```
    /// use ced_logic::cube::Cube;
    /// let c = Cube::minterm(3, 0b101);
    /// assert_eq!(c.to_string(), "101");
    /// ```
    pub fn minterm(width: usize, assignment: u64) -> Cube {
        let mut cube = Cube::full(width);
        for v in 0..width {
            let lit = if (assignment >> v) & 1 == 1 {
                Literal::Positive
            } else {
                Literal::Negative
            };
            cube.set(v, lit);
        }
        cube
    }

    /// Creates a cube from an iterator of literals.
    pub fn from_literals<I: IntoIterator<Item = Literal>>(lits: I) -> Cube {
        let lits: Vec<Literal> = lits.into_iter().collect();
        let mut cube = Cube::full(lits.len());
        for (v, lit) in lits.iter().enumerate() {
            cube.set(v, *lit);
        }
        cube
    }

    /// Zeroes the unused 2-bit fields above `width`.
    fn mask_tail(width: usize, words: &mut [u64]) {
        let used = width % VARS_PER_WORD;
        if used != 0 {
            let last = words.len() - 1;
            words[last] &= (1u64 << (2 * used)) - 1;
        }
        if width == 0 {
            for w in words.iter_mut() {
                *w = 0;
            }
        }
    }

    /// Number of variables in this cube.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Returns the literal state of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.width()`.
    pub fn literal(&self, v: usize) -> Literal {
        assert!(
            v < self.width,
            "variable {v} out of range 0..{}",
            self.width
        );
        let bits = self.words[v / VARS_PER_WORD] >> (2 * (v % VARS_PER_WORD));
        Literal::from_bits(bits).expect("cube invariant: no empty fields")
    }

    /// Sets the literal state of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= self.width()`.
    pub fn set(&mut self, v: usize, lit: Literal) {
        assert!(
            v < self.width,
            "variable {v} out of range 0..{}",
            self.width
        );
        let shift = 2 * (v % VARS_PER_WORD);
        let word = &mut self.words[v / VARS_PER_WORD];
        *word = (*word & !(0b11 << shift)) | (lit.bits() << shift);
    }

    /// Returns a copy of this cube with variable `v` set to `lit`.
    pub fn with(&self, v: usize, lit: Literal) -> Cube {
        let mut c = self.clone();
        c.set(v, lit);
        c
    }

    /// Number of literals (non-don't-care variables) in the cube.
    ///
    /// # Examples
    ///
    /// ```
    /// use ced_logic::cube::Cube;
    /// let c: Cube = "1-0-".parse().unwrap();
    /// assert_eq!(c.literal_count(), 2);
    /// ```
    pub fn literal_count(&self) -> usize {
        // A don't-care field is `11`; a literal field has exactly one bit set.
        // Count fields whose two bits differ.
        let mut count = 0;
        for &w in &self.words {
            let lo = w & 0x5555_5555_5555_5555;
            let hi = (w >> 1) & 0x5555_5555_5555_5555;
            count += (lo ^ hi).count_ones() as usize;
        }
        count
    }

    /// Iterates over the literal states of all variables.
    pub fn literals(&self) -> impl Iterator<Item = Literal> + '_ {
        (0..self.width).map(move |v| self.literal(v))
    }

    /// Tests whether this cube contains (covers) `other`: every minterm of
    /// `other` is a minterm of `self`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn contains(&self, other: &Cube) -> bool {
        self.check_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & b == *b)
    }

    /// Computes the intersection of two cubes, or `None` if they are
    /// disjoint.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn intersection(&self, other: &Cube) -> Option<Cube> {
        self.check_width(other);
        let mut words = Vec::with_capacity(self.words.len());
        for (a, b) in self.words.iter().zip(&other.words) {
            let w = a & b;
            // Empty field `00` detection: a field is 00 iff both bits clear.
            let lo = w & 0x5555_5555_5555_5555;
            let hi = (w >> 1) & 0x5555_5555_5555_5555;
            if (lo | hi) != Self::full_lo_mask(self.width, words.len()) {
                return None;
            }
            words.push(w);
        }
        Some(Cube {
            width: self.width,
            words,
        })
    }

    /// Fast disjointness test: true iff the cubes share no minterm.
    pub fn disjoint(&self, other: &Cube) -> bool {
        self.distance(other) > 0
    }

    /// The mask of low field bits that must be non-empty in word `word_idx`.
    fn full_lo_mask(width: usize, word_idx: usize) -> u64 {
        let base = 0x5555_5555_5555_5555u64;
        let start = word_idx * VARS_PER_WORD;
        if start + VARS_PER_WORD <= width {
            base
        } else if start >= width {
            0
        } else {
            base & ((1u64 << (2 * (width - start))) - 1)
        }
    }

    /// Hamming distance between cubes: the number of variables in which the
    /// two cubes have opposite literals. Distance 0 means the cubes
    /// intersect; distance 1 means consensus exists.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn distance(&self, other: &Cube) -> usize {
        self.check_width(other);
        let mut d = 0;
        for (idx, (a, b)) in self.words.iter().zip(&other.words).enumerate() {
            let w = a & b;
            let lo = w & 0x5555_5555_5555_5555;
            let hi = (w >> 1) & 0x5555_5555_5555_5555;
            let nonempty = lo | hi;
            d += (Self::full_lo_mask(self.width, idx) & !nonempty).count_ones() as usize;
        }
        d
    }

    /// The consensus (resolvent) of two cubes at distance exactly 1: the
    /// largest cube contained in their union that spans both. Returns
    /// `None` when the distance is not 1.
    ///
    /// # Examples
    ///
    /// ```
    /// use ced_logic::cube::Cube;
    /// let a: Cube = "10-".parse().unwrap();
    /// let b: Cube = "11-".parse().unwrap();
    /// assert_eq!(a.consensus(&b).unwrap().to_string(), "1--");
    /// ```
    pub fn consensus(&self, other: &Cube) -> Option<Cube> {
        if self.distance(other) != 1 {
            return None;
        }
        let mut out = Cube::full(self.width);
        for v in 0..self.width {
            let (a, b) = (self.literal(v), other.literal(v));
            let lit = match (a, b) {
                (Literal::Positive, Literal::Negative) | (Literal::Negative, Literal::Positive) => {
                    Literal::DontCare
                }
                (Literal::DontCare, x) | (x, Literal::DontCare) => x,
                (x, y) if x == y => x,
                _ => unreachable!("distance-1 cubes conflict in one variable"),
            };
            out.set(v, lit);
        }
        Some(out)
    }

    /// The supercube: the smallest cube containing both operands.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn supercube(&self, other: &Cube) -> Cube {
        self.check_width(other);
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| a | b)
            .collect();
        Cube {
            width: self.width,
            words,
        }
    }

    /// The positive cofactor of the cube with respect to another cube, as
    /// used by the unate recursive paradigm: `None` if disjoint, otherwise
    /// the cube with the literals of `wrt` raised to don't-care.
    pub fn cofactor(&self, wrt: &Cube) -> Option<Cube> {
        if self.distance(wrt) > 0 {
            return None;
        }
        let mut out = self.clone();
        for v in 0..self.width {
            if wrt.literal(v) != Literal::DontCare {
                out.set(v, Literal::DontCare);
            }
        }
        Some(out)
    }

    /// The cofactor with respect to a single literal `(var, value)`.
    ///
    /// Returns `None` if the cube requires the opposite literal.
    pub fn cofactor_var(&self, var: usize, value: bool) -> Option<Cube> {
        let lit = self.literal(var);
        match (lit, value) {
            (Literal::Positive, false) | (Literal::Negative, true) => None,
            _ => Some(self.with(var, Literal::DontCare)),
        }
    }

    /// Number of minterms covered by this cube (2^(don't-cares)).
    ///
    /// Saturates at `u64::MAX` for very wide cubes.
    pub fn minterm_count(&self) -> u64 {
        let dc = self.width - self.literal_count();
        if dc >= 64 {
            u64::MAX
        } else {
            1u64 << dc
        }
    }

    /// Tests whether `assignment` (bit `i` = variable `i`) is covered.
    ///
    /// # Examples
    ///
    /// ```
    /// use ced_logic::cube::Cube;
    /// let c: Cube = "1-0".parse().unwrap();
    /// assert!(c.covers_minterm(0b001));
    /// assert!(c.covers_minterm(0b011));
    /// assert!(!c.covers_minterm(0b100));
    /// ```
    pub fn covers_minterm(&self, assignment: u64) -> bool {
        for v in 0..self.width {
            let bit = (assignment >> v) & 1 == 1;
            match self.literal(v) {
                Literal::Positive if !bit => return false,
                Literal::Negative if bit => return false,
                _ => {}
            }
        }
        true
    }

    /// True iff the cube is the full cube (tautology of one term).
    pub fn is_full(&self) -> bool {
        self.literal_count() == 0
    }

    /// Variables on which the cube depends (has a literal).
    pub fn support(&self) -> Vec<usize> {
        (0..self.width)
            .filter(|&v| self.literal(v) != Literal::DontCare)
            .collect()
    }

    fn check_width(&self, other: &Cube) {
        assert_eq!(
            self.width, other.width,
            "cube width mismatch: {} vs {}",
            self.width, other.width
        );
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lit in self.literals() {
            write!(f, "{}", lit.to_char())?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube(\"{self}\")")
    }
}

impl FromStr for Cube {
    type Err = ParseCubeError;

    fn from_str(s: &str) -> Result<Cube, ParseCubeError> {
        let mut lits = Vec::with_capacity(s.len());
        for (i, ch) in s.chars().enumerate() {
            let lit = match ch {
                '0' => Literal::Negative,
                '1' => Literal::Positive,
                '-' | '2' | 'x' | 'X' => Literal::DontCare,
                _ => return Err(ParseCubeError { position: Some(i) }),
            };
            lits.push(lit);
        }
        Ok(Cube::from_literals(lits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_cube_is_all_dont_care() {
        let c = Cube::full(5);
        assert_eq!(c.to_string(), "-----");
        assert_eq!(c.literal_count(), 0);
        assert!(c.is_full());
    }

    #[test]
    fn parse_and_display_round_trip() {
        for s in ["", "1", "0", "-", "10-1", "0---1", "1010101010"] {
            let c: Cube = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn parse_rejects_bad_chars() {
        let err = "1a0".parse::<Cube>().unwrap_err();
        assert_eq!(err.position, Some(1));
    }

    #[test]
    fn wide_cube_crosses_word_boundary() {
        let mut c = Cube::full(70);
        c.set(0, Literal::Positive);
        c.set(33, Literal::Negative);
        c.set(69, Literal::Positive);
        assert_eq!(c.literal(0), Literal::Positive);
        assert_eq!(c.literal(33), Literal::Negative);
        assert_eq!(c.literal(69), Literal::Positive);
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn containment() {
        let big: Cube = "1--".parse().unwrap();
        let small: Cube = "1-0".parse().unwrap();
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
    }

    #[test]
    fn intersection_basic() {
        let a: Cube = "1--".parse().unwrap();
        let b: Cube = "-0-".parse().unwrap();
        assert_eq!(a.intersection(&b).unwrap().to_string(), "10-");
        let c: Cube = "0--".parse().unwrap();
        assert!(a.intersection(&c).is_none());
        assert!(a.disjoint(&c));
    }

    #[test]
    fn distance_counts_conflicts() {
        let a: Cube = "10-1".parse().unwrap();
        let b: Cube = "01-1".parse().unwrap();
        assert_eq!(a.distance(&b), 2);
        let c: Cube = "1--1".parse().unwrap();
        assert_eq!(a.distance(&c), 0);
    }

    #[test]
    fn consensus_merges_adjacent() {
        let a: Cube = "10".parse().unwrap();
        let b: Cube = "11".parse().unwrap();
        assert_eq!(a.consensus(&b).unwrap().to_string(), "1-");
        // Distance 2 has no consensus.
        let c: Cube = "01".parse().unwrap();
        assert!(a.consensus(&c).is_none());
    }

    #[test]
    fn supercube_is_smallest_containing() {
        let a: Cube = "101".parse().unwrap();
        let b: Cube = "100".parse().unwrap();
        assert_eq!(a.supercube(&b).to_string(), "10-");
    }

    #[test]
    fn cofactor_by_cube() {
        let a: Cube = "1-0".parse().unwrap();
        let wrt: Cube = "1--".parse().unwrap();
        assert_eq!(a.cofactor(&wrt).unwrap().to_string(), "--0");
        let opp: Cube = "0--".parse().unwrap();
        assert!(a.cofactor(&opp).is_none());
    }

    #[test]
    fn cofactor_by_var() {
        let a: Cube = "1-0".parse().unwrap();
        assert_eq!(a.cofactor_var(0, true).unwrap().to_string(), "--0");
        assert!(a.cofactor_var(0, false).is_none());
        assert_eq!(a.cofactor_var(1, false).unwrap().to_string(), "1-0");
    }

    #[test]
    fn minterm_membership_matches_enumeration() {
        let c: Cube = "1-0-".parse().unwrap();
        let covered: Vec<u64> = (0..16).filter(|&m| c.covers_minterm(m)).collect();
        assert_eq!(covered.len() as u64, c.minterm_count());
        for m in &covered {
            assert_eq!(m & 1, 1, "var0 must be 1 in {m:04b}");
            assert_eq!((m >> 2) & 1, 0, "var2 must be 0 in {m:04b}");
        }
    }

    #[test]
    fn minterm_constructor() {
        let c = Cube::minterm(4, 0b0110);
        assert_eq!(c.to_string(), "0110");
        assert!(c.covers_minterm(0b0110));
        assert_eq!(c.minterm_count(), 1);
    }

    #[test]
    fn support_lists_bound_variables() {
        let c: Cube = "-1-0".parse().unwrap();
        assert_eq!(c.support(), vec![1, 3]);
    }

    #[test]
    fn zero_width_cube() {
        let c = Cube::full(0);
        assert_eq!(c.to_string(), "");
        assert_eq!(c.literal_count(), 0);
        assert!(c.covers_minterm(0));
        assert_eq!(c.intersection(&Cube::full(0)), Some(Cube::full(0)));
    }
}
