//! Decomposition of two-level covers into gate netlists.
//!
//! Bridges the two-level minimizer ([`crate::espresso`]) and the mapped
//! netlist: each cube becomes a balanced AND tree over (possibly
//! inverted) input nets, and the cover becomes an OR tree over the cube
//! nets. Structural hashing in [`crate::netlist::NetlistBuilder`] shares
//! identical subtrees across cubes and across outputs, approximating the
//! sharing a multi-level synthesis system would extract.
//!
//! # Examples
//!
//! ```
//! use ced_logic::cover::Cover;
//! use ced_logic::netlist::NetlistBuilder;
//! use ced_logic::decompose::sop_to_net;
//!
//! let f = Cover::parse(2, &["01", "10"])?; // XOR as SOP
//! let mut b = NetlistBuilder::new(2);
//! let ins = [b.input(0), b.input(1)];
//! let out = sop_to_net(&mut b, &f, &ins);
//! b.mark_output(out);
//! let n = b.finish();
//! assert_eq!(n.eval_single(&[true, false]), vec![true]);
//! # Ok::<(), ced_logic::cube::ParseCubeError>(())
//! ```

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use crate::espresso::{minimize, MinimizeOptions};
use crate::netlist::{NetId, NetlistBuilder};
use crate::truth::Truth;

/// Builds the net computing one cube (product term) over `inputs`.
///
/// # Panics
///
/// Panics if `inputs.len() != cube.width()`.
pub fn cube_to_net(builder: &mut NetlistBuilder, cube: &Cube, inputs: &[NetId]) -> NetId {
    assert_eq!(inputs.len(), cube.width(), "input arity mismatch");
    let mut terms = Vec::new();
    for (v, net) in inputs.iter().enumerate() {
        match cube.literal(v) {
            Literal::Positive => terms.push(*net),
            Literal::Negative => {
                let n = builder.not(*net);
                terms.push(n);
            }
            Literal::DontCare => {}
        }
    }
    builder.and_tree(&terms)
}

/// Builds the net computing a cover (sum of products) over `inputs`.
///
/// # Panics
///
/// Panics if `inputs.len() != cover.width()`.
pub fn sop_to_net(builder: &mut NetlistBuilder, cover: &Cover, inputs: &[NetId]) -> NetId {
    assert_eq!(inputs.len(), cover.width(), "input arity mismatch");
    let cubes: Vec<NetId> = cover
        .cubes()
        .iter()
        .map(|c| cube_to_net(builder, c, inputs))
        .collect();
    builder.or_tree(&cubes)
}

/// A multi-output combinational specification: one (ON, DC) pair per
/// output over a shared input space.
#[derive(Debug, Clone, Default)]
pub struct MultiOutputSpec {
    width: usize,
    outputs: Vec<(Cover, Cover)>,
    isolate_outputs: bool,
    factoring: bool,
}

impl MultiOutputSpec {
    /// Creates an empty specification over `width` input variables.
    pub fn new(width: usize) -> MultiOutputSpec {
        MultiOutputSpec {
            width,
            outputs: Vec::new(),
            isolate_outputs: false,
            factoring: false,
        }
    }

    /// Decompose each minimized cover through algebraic quick factoring
    /// ([`crate::factor`]) before gate mapping — a multi-level step that
    /// can reduce gate count on covers with shared literals.
    pub fn set_factoring(&mut self, factoring: bool) {
        self.factoring = factoring;
    }

    /// Synthesize each output as an independent logic cone (no
    /// cross-output structural sharing). Costs area but localizes each
    /// fault's effect to one output cone, as in PLA-per-output
    /// implementations.
    pub fn set_isolate_outputs(&mut self, isolate: bool) {
        self.isolate_outputs = isolate;
    }

    /// Number of input variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of outputs added so far.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// Adds an output with explicit ON and DC sets.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ from the spec width.
    pub fn add_output(&mut self, on: Cover, dc: Cover) {
        assert_eq!(on.width(), self.width, "ON width mismatch");
        assert_eq!(dc.width(), self.width, "DC width mismatch");
        self.outputs.push((on, dc));
    }

    /// Adds an output with no don't-cares.
    pub fn add_exact_output(&mut self, on: Cover) {
        let dc = Cover::empty(self.width);
        self.add_output(on, dc);
    }

    /// The (ON, DC) covers of output `i`.
    pub fn output(&self, i: usize) -> &(Cover, Cover) {
        &self.outputs[i]
    }

    /// Minimizes every output and synthesizes a shared netlist.
    ///
    /// Each output is minimized independently; gate-level sharing comes
    /// from structural hashing. Up to [`TRUTH_SYNTH_MAX_VARS`] input
    /// variables the minimizer is the Minato–Morreale interval ISOP on
    /// bit-packed truth tables (fast and robust for wide, DC-heavy FSM
    /// specifications); beyond that it falls back to cube-level
    /// Espresso, whose OFF-set complement stays tractable only for
    /// narrow functions anyway.
    pub fn synthesize(&self, options: &MinimizeOptions) -> crate::netlist::Netlist {
        let mut builder = NetlistBuilder::new(self.width);
        let inputs: Vec<NetId> = (0..self.width).map(|i| builder.input(i)).collect();
        for (on, dc) in &self.outputs {
            if self.isolate_outputs {
                builder.clear_strash();
            }
            let min = minimize_output(on, dc, self.width, options);
            let net = if self.factoring {
                crate::factor::quick_factor(&min).to_net(&mut builder, &inputs)
            } else {
                sop_to_net(&mut builder, &min, &inputs)
            };
            builder.mark_output(net);
        }
        builder.finish()
    }
}

/// Variable-count threshold below which [`MultiOutputSpec::synthesize`]
/// minimizes through truth tables (interval ISOP) instead of cube-level
/// Espresso.
pub const TRUTH_SYNTH_MAX_VARS: usize = 18;

/// Minimizes one (ON, DC) output with the strategy described on
/// [`MultiOutputSpec::synthesize`].
pub fn minimize_output(on: &Cover, dc: &Cover, width: usize, options: &MinimizeOptions) -> Cover {
    if width <= TRUTH_SYNTH_MAX_VARS {
        let lower = Truth::from_cover(on);
        let upper = lower.or(&Truth::from_cover(dc));
        crate::isop::isop(&lower, &upper)
    } else {
        minimize(on, dc, options)
    }
}

/// Synthesizes a netlist computing the given truth tables (one output per
/// table), minimizing each via ISOP + Espresso first.
///
/// # Panics
///
/// Panics if the tables have differing arities.
pub fn synthesize_truth_tables(
    tables: &[Truth],
    options: &MinimizeOptions,
) -> crate::netlist::Netlist {
    let width = tables.first().map_or(0, Truth::vars);
    let mut spec = MultiOutputSpec::new(width);
    for t in tables {
        assert_eq!(t.vars(), width, "truth table arity mismatch");
        let cover = crate::isop::isop_exact(t);
        spec.add_exact_output(cover);
    }
    spec.synthesize(options)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, cubes: &[&str]) -> Cover {
        Cover::parse(width, cubes).unwrap()
    }

    fn check_net_matches_cover(c: &Cover) {
        let mut b = NetlistBuilder::new(c.width());
        let ins: Vec<NetId> = (0..c.width()).map(|i| b.input(i)).collect();
        let out = sop_to_net(&mut b, c, &ins);
        b.mark_output(out);
        let n = b.finish();
        for m in 0..(1u64 << c.width()) {
            let bits: Vec<bool> = (0..c.width()).map(|v| (m >> v) & 1 == 1).collect();
            assert_eq!(
                n.eval_single(&bits)[0],
                c.covers_minterm(m),
                "mismatch at {m:b} for {c}"
            );
        }
    }

    #[test]
    fn cube_with_mixed_literals() {
        let c: Cube = "1-0".parse().unwrap();
        let mut b = NetlistBuilder::new(3);
        let ins: Vec<NetId> = (0..3).map(|i| b.input(i)).collect();
        let net = cube_to_net(&mut b, &c, &ins);
        b.mark_output(net);
        let n = b.finish();
        assert_eq!(n.eval_single(&[true, true, false]), vec![true]);
        assert_eq!(n.eval_single(&[true, true, true]), vec![false]);
        assert_eq!(n.eval_single(&[false, true, false]), vec![false]);
    }

    #[test]
    fn full_cube_is_constant_one() {
        let c: Cube = "---".parse().unwrap();
        let mut b = NetlistBuilder::new(3);
        let ins: Vec<NetId> = (0..3).map(|i| b.input(i)).collect();
        let net = cube_to_net(&mut b, &c, &ins);
        b.mark_output(net);
        let n = b.finish();
        assert_eq!(n.eval_single(&[false, false, false]), vec![true]);
    }

    #[test]
    fn sop_of_various_covers() {
        check_net_matches_cover(&cover(3, &["1--", "-1-", "--1"]));
        check_net_matches_cover(&cover(3, &["101", "010"]));
        check_net_matches_cover(&Cover::empty(2));
        check_net_matches_cover(&Cover::tautology(2));
        check_net_matches_cover(&cover(4, &["1--0", "-01-", "11-1"]));
    }

    #[test]
    fn sharing_across_outputs() {
        // Two outputs with a common cube: the AND gate must be shared.
        let f = cover(3, &["11-"]);
        let g = cover(3, &["11-", "--1"]);
        let mut spec = MultiOutputSpec::new(3);
        spec.add_exact_output(f);
        spec.add_exact_output(g);
        let n = spec.synthesize(&MinimizeOptions::default());
        // Gates: one AND (shared) + one OR. Inverters: none.
        assert!(
            n.gate_count() <= 2,
            "expected sharing, got {}",
            n.gate_count()
        );
    }

    #[test]
    fn synthesize_truth_tables_round_trip() {
        let f = Truth::var(3, 0)
            .xor(&Truth::var(3, 1))
            .and(&Truth::var(3, 2));
        let g = Truth::var(3, 2).not();
        let n = synthesize_truth_tables(&[f.clone(), g.clone()], &MinimizeOptions::default());
        assert_eq!(n.num_outputs(), 2);
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|v| (m >> v) & 1 == 1).collect();
            let out = n.eval_single(&bits);
            assert_eq!(out[0], f.value(m));
            assert_eq!(out[1], g.value(m));
        }
    }

    #[test]
    fn factoring_preserves_function_and_never_hurts_much() {
        let f = cover(4, &["11--", "1-1-", "1--1"]);
        let g = cover(4, &["-11-", "-1-1"]);
        let mut flat = MultiOutputSpec::new(4);
        flat.add_exact_output(f.clone());
        flat.add_exact_output(g.clone());
        let mut factored = flat.clone();
        factored.set_factoring(true);
        let n1 = flat.synthesize(&MinimizeOptions::default());
        let n2 = factored.synthesize(&MinimizeOptions::default());
        for m in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|v| (m >> v) & 1 == 1).collect();
            assert_eq!(n1.eval_single(&bits), n2.eval_single(&bits), "minterm {m}");
        }
        // On these literal-sharing covers factoring must not be larger.
        assert!(n2.gate_count() <= n1.gate_count());
    }

    #[test]
    fn multi_output_spec_with_dont_cares() {
        let mut spec = MultiOutputSpec::new(2);
        spec.add_output(cover(2, &["00"]), cover(2, &["01", "10", "11"]));
        let n = spec.synthesize(&MinimizeOptions::default());
        // With full don't-care freedom, the output should be constant 1:
        // zero logic gates.
        assert_eq!(n.gate_count(), 0);
        assert_eq!(n.eval_single(&[false, false]), vec![true]);
    }
}
