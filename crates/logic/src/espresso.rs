//! An Espresso-style heuristic two-level minimizer.
//!
//! Implements the classic EXPAND → IRREDUNDANT → REDUCE loop over an
//! (ON-set, DC-set) specification, iterating until the cover cost stops
//! improving. This is the workhorse behind the "SIS" substitute used to
//! cost the FSM next-state/output logic and the CED predictor.
//!
//! The implementation favours clarity over the last few percent of
//! quality: EXPAND raises literals greedily against the OFF-set,
//! IRREDUNDANT removes relatively redundant cubes greedily (largest
//! first), and REDUCE shrinks each cube to the supercube of the part of
//! the function only it covers.
//!
//! # Examples
//!
//! ```
//! use ced_logic::cover::Cover;
//! use ced_logic::espresso::{minimize, MinimizeOptions};
//!
//! // f = a'b'c' + a'b'c + ab'c' + ab'c  ==  b'
//! let on = Cover::parse(3, &["000", "100", "001", "101"])?;
//! let dc = Cover::empty(3);
//! let min = minimize(&on, &dc, &MinimizeOptions::default());
//! assert_eq!(min.len(), 1);
//! assert_eq!(min.cubes()[0].to_string(), "-0-");
//! # Ok::<(), ced_logic::cube::ParseCubeError>(())
//! ```

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use ced_runtime::{Budget, Interrupted};

/// Tuning knobs for [`minimize`].
#[derive(Debug, Clone)]
pub struct MinimizeOptions {
    /// Maximum number of EXPAND/IRREDUNDANT/REDUCE sweeps.
    pub max_iterations: usize,
    /// Run a final EXPAND + IRREDUNDANT after the loop exits.
    pub final_expand: bool,
}

impl Default for MinimizeOptions {
    fn default() -> MinimizeOptions {
        MinimizeOptions {
            max_iterations: 8,
            final_expand: true,
        }
    }
}

/// Cost of a cover: primary = cube count, secondary = literal count.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct CoverCost {
    /// Number of product terms.
    pub cubes: usize,
    /// Number of literals summed over all terms.
    pub literals: usize,
}

impl CoverCost {
    /// Measures a cover.
    pub fn of(cover: &Cover) -> CoverCost {
        CoverCost {
            cubes: cover.len(),
            literals: cover.literal_count(),
        }
    }
}

/// Minimizes `on` against the don't-care set `dc`, returning a cover `F`
/// with `on ⊆ F ⊆ on ∪ dc` and (heuristically) few cubes/literals.
///
/// Minterms appearing in both `on` and `dc` are treated as required
/// (the ON-set takes precedence), so the contract `on ⊆ F` holds even
/// for overlapping specifications.
///
/// The result is verified cheap invariants aside — callers that need a
/// guarantee should check with [`Cover::contains_cover`], as the unit
/// tests here do.
///
/// # Panics
///
/// Panics if `on` and `dc` have different widths.
pub fn minimize(on: &Cover, dc: &Cover, options: &MinimizeOptions) -> Cover {
    match minimize_budgeted(on, dc, options, &Budget::unlimited()) {
        Ok(f) => f,
        Err(_) => unreachable!("an unlimited budget cannot interrupt"),
    }
}

/// [`minimize`] under a [`Budget`]: one work unit is charged per cube
/// per sweep, and the budget is checked before every
/// EXPAND/IRREDUNDANT/REDUCE sweep, so a cancelled or over-deadline
/// minimization stops between sweeps with a typed error instead of
/// grinding the full iteration count.
///
/// # Errors
///
/// The budget's interruption; minimization is restartable from scratch
/// (the sweeps carry no external state worth checkpointing).
///
/// # Panics
///
/// See [`minimize`].
pub fn minimize_budgeted(
    on: &Cover,
    dc: &Cover,
    options: &MinimizeOptions,
    budget: &Budget,
) -> Result<Cover, Interrupted> {
    assert_eq!(on.width(), dc.width(), "ON/DC width mismatch");
    if on.is_empty() {
        return Ok(Cover::empty(on.width()));
    }
    // ON priority: a minterm required by ON must survive even if the
    // caller also listed it as DC (IRREDUNDANT would otherwise drop
    // cubes "covered" by the DC set alone).
    let dc = &dc.sharp(on);
    let care_off = on.union(dc).complement();
    if care_off.is_empty() {
        // The function is 1 everywhere it is cared about.
        return Ok(Cover::tautology(on.width()));
    }

    let mut f = on.clone();
    f.remove_contained();
    let mut best_cost = CoverCost::of(&f);

    for _ in 0..options.max_iterations {
        budget.tick(f.len() as u64 + 1, "espresso:sweep")?;
        f = expand(&f, &care_off);
        f = irredundant(&f, on, dc);
        let cost_after_first = CoverCost::of(&f);
        f = reduce(&f, dc);
        f = expand(&f, &care_off);
        f = irredundant(&f, on, dc);
        let cost = CoverCost::of(&f).min(cost_after_first);
        if cost >= best_cost {
            break;
        }
        best_cost = cost;
    }
    if options.final_expand {
        budget.tick(f.len() as u64 + 1, "espresso:final-expand")?;
        f = expand(&f, &care_off);
        f = irredundant(&f, on, dc);
    }
    Ok(f)
}

/// Convenience wrapper: minimize with default options and no don't-cares.
pub fn minimize_exact_care(on: &Cover) -> Cover {
    minimize(on, &Cover::empty(on.width()), &MinimizeOptions::default())
}

/// EXPAND: enlarge each cube as much as possible without hitting the
/// OFF-set, then drop cubes contained in the expanded ones.
///
/// Literals are raised in order of increasing OFF-set conflict count, a
/// light-weight version of Espresso's column ordering heuristic.
pub fn expand(f: &Cover, off: &Cover) -> Cover {
    let width = f.width();
    // Weight of a variable: how many OFF cubes bind it. Raising a literal
    // on a rarely-bound variable is less likely to collide with OFF.
    let mut weight = vec![0usize; width];
    for c in off.cubes() {
        for v in 0..width {
            if c.literal(v) != Literal::DontCare {
                weight[v] += 1;
            }
        }
    }

    let mut expanded: Vec<Cube> = Vec::with_capacity(f.len());
    for cube in f.cubes() {
        let mut cur = cube.clone();
        let mut vars: Vec<usize> = cur.support();
        vars.sort_by_key(|&v| weight[v]);
        for v in vars {
            let raised = cur.with(v, Literal::DontCare);
            if off.cubes().iter().all(|o| raised.disjoint(o)) {
                cur = raised;
            }
        }
        expanded.push(cur);
    }
    let mut out = Cover::from_cubes(width, expanded);
    out.remove_contained();
    out
}

/// IRREDUNDANT: remove cubes covered by the remaining cubes plus the
/// don't-care set. Cubes are visited largest-first so that big cubes are
/// preferentially kept.
pub fn irredundant(f: &Cover, on: &Cover, dc: &Cover) -> Cover {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Visit smaller cubes first for removal (they are the most likely to
    // be redundant); equivalently keep larger cubes.
    let mut order: Vec<usize> = (0..cubes.len()).collect();
    order.sort_by_key(|&i| cubes[i].literal_count());
    order.reverse(); // most literals (smallest cubes) first

    let mut alive = vec![true; cubes.len()];
    for &i in &order {
        // Build rest ∪ DC and check containment of cube i.
        let mut rest = Cover::empty(width);
        for (j, c) in cubes.iter().enumerate() {
            if j != i && alive[j] {
                rest.push(c.clone());
            }
        }
        let rest = rest.union(dc);
        if rest.contains_cube(&cubes[i]) {
            alive[i] = false;
        }
    }
    let mut idx = 0;
    cubes.retain(|_| {
        let k = alive[idx];
        idx += 1;
        k
    });
    let out = Cover::from_cubes(width, cubes);
    debug_assert!(out.union(dc).contains_cover(on), "irredundant broke cover");
    out
}

/// REDUCE: shrink each cube to the smallest cube still covering the part
/// of the ON-set that no other cube (nor the DC-set) covers, opening room
/// for the next EXPAND to move in a different direction.
pub fn reduce(f: &Cover, dc: &Cover) -> Cover {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Largest cubes first, as in Espresso.
    cubes.sort_by_key(|c| c.literal_count());
    for i in 0..cubes.len() {
        let mut rest = Cover::empty(width);
        for (j, c) in cubes.iter().enumerate() {
            if j != i {
                rest.push(c.clone());
            }
        }
        let rest = rest.union(dc);
        // Part of cube i not covered elsewhere.
        let only_mine = Cover::from_cubes(width, vec![cubes[i].clone()]).sharp(&rest);
        if let Some(sc) = only_mine.supercube() {
            cubes[i] = sc;
        }
        // If only_mine is empty the cube is redundant; leave it for
        // IRREDUNDANT to remove (shrinking to nothing is not expressible
        // as a cube).
    }
    Cover::from_cubes(width, cubes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, cubes: &[&str]) -> Cover {
        Cover::parse(width, cubes).unwrap()
    }

    /// Checks ON ⊆ F ⊆ ON ∪ DC.
    fn check_valid(f: &Cover, on: &Cover, dc: &Cover) {
        assert!(
            f.union(dc).contains_cover(on),
            "minimized cover misses ON minterms"
        );
        assert!(
            on.union(dc).contains_cover(f),
            "minimized cover spills outside ON ∪ DC"
        );
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(3, &["000", "100", "001", "101"]);
        let dc = Cover::empty(3);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        check_valid(&min, &on, &dc);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "-0-");
    }

    #[test]
    fn uses_dont_cares() {
        // ON = {00}, DC = {01, 10, 11} → constant 1 is a legal cover.
        let on = cover(2, &["00"]);
        let dc = cover(2, &["01", "10", "11"]);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        check_valid(&min, &on, &dc);
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].is_full());
    }

    #[test]
    fn minimizes_xor_to_two_cubes() {
        // XOR is already minimal at 2 cubes.
        let on = cover(2, &["01", "10"]);
        let dc = Cover::empty(2);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        check_valid(&min, &on, &dc);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    fn classic_espresso_example() {
        // From the Espresso book: f = a'b' + ab minimizes no further, but
        // a redundant middle term must go.
        let on = cover(2, &["00", "11", "0-"]);
        let dc = Cover::empty(2);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        check_valid(&min, &on, &dc);
        assert!(min.len() <= 2);
    }

    #[test]
    fn empty_on_set() {
        let on = Cover::empty(3);
        let dc = cover(3, &["1--"]);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        assert!(min.is_empty());
    }

    #[test]
    fn full_care_set() {
        let on = cover(1, &["0", "1"]);
        let dc = Cover::empty(1);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        assert_eq!(min.len(), 1);
        assert!(min.cubes()[0].is_full());
    }

    #[test]
    fn reduce_then_expand_escapes_local_minimum() {
        // A function where naive expansion order matters:
        // f = a'b' + b'c + ab  (3 cubes) can be written as a'b' + ab + b'c;
        // the loop should not increase cost.
        let on = cover(3, &["00-", "-01", "11-"]);
        let dc = Cover::empty(3);
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        check_valid(&min, &on, &dc);
        assert!(min.len() <= 3);
    }

    #[test]
    fn random_functions_stay_equivalent() {
        // Deterministic pseudo-random covers; verify exact equivalence when
        // DC is empty.
        let mut seed = 0x1234_5678_u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            seed >> 33
        };
        for _ in 0..30 {
            let width = 4 + (next() % 3) as usize; // 4..6
            let ncubes = 1 + (next() % 8) as usize;
            let mut cubes = Vec::new();
            for _ in 0..ncubes {
                let mut c = Cube::full(width);
                for v in 0..width {
                    match next() % 3 {
                        0 => c.set(v, Literal::Negative),
                        1 => c.set(v, Literal::Positive),
                        _ => {}
                    }
                }
                cubes.push(c);
            }
            let on = Cover::from_cubes(width, cubes);
            let dc = Cover::empty(width);
            let min = minimize(&on, &dc, &MinimizeOptions::default());
            assert!(min.equivalent(&on), "lost equivalence for {on}");
            assert!(
                CoverCost::of(&min)
                    <= CoverCost::of(&{
                        let mut x = on.clone();
                        x.remove_contained();
                        x
                    })
                    || min.equivalent(&on)
            );
        }
    }

    #[test]
    fn expand_respects_off_set() {
        let on = cover(3, &["110"]);
        let off = cover(3, &["111"]);
        let e = expand(&on, &off);
        for c in e.cubes() {
            assert!(c.disjoint(&"111".parse().unwrap()));
        }
    }

    #[test]
    fn irredundant_removes_covered_cube() {
        let f = cover(2, &["1-", "-1", "11"]);
        let on = f.clone();
        let out = irredundant(&f, &on, &Cover::empty(2));
        assert_eq!(out.len(), 2);
    }
}
