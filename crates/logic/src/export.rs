//! Netlist export: BLIF and structural Verilog.
//!
//! BLIF is the interchange format of SIS — the paper's synthesis tool —
//! so circuits produced here can be fed back into classical EDA flows;
//! the Verilog writer emits a flat structural module accepted by any
//! simulator or synthesis tool.
//!
//! # Examples
//!
//! ```
//! use ced_logic::netlist::NetlistBuilder;
//! use ced_logic::export::{to_blif, to_verilog, PortNames};
//!
//! let mut b = NetlistBuilder::new(2);
//! let x = b.input(0);
//! let y = b.input(1);
//! let f = b.xor(x, y);
//! b.mark_output(f);
//! let n = b.finish();
//! let ports = PortNames::numbered(2, 1);
//! assert!(to_blif(&n, "xor2", &ports).contains(".names"));
//! assert!(to_verilog(&n, "xor2", &ports).contains("module xor2"));
//! ```

use crate::gate::GateKind;
use crate::netlist::Netlist;
use std::fmt::Write as _;

/// Port naming for exports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortNames {
    /// One name per primary input.
    pub inputs: Vec<String>,
    /// One name per primary output.
    pub outputs: Vec<String>,
}

impl PortNames {
    /// Generic names `i0..i{n}` / `o0..o{m}`.
    pub fn numbered(inputs: usize, outputs: usize) -> PortNames {
        PortNames {
            inputs: (0..inputs).map(|i| format!("i{i}")).collect(),
            outputs: (0..outputs).map(|o| format!("o{o}")).collect(),
        }
    }

    fn check(&self, netlist: &Netlist) {
        assert_eq!(
            self.inputs.len(),
            netlist.num_inputs(),
            "input name count mismatch"
        );
        assert_eq!(
            self.outputs.len(),
            netlist.num_outputs(),
            "output name mismatch"
        );
    }
}

/// Net naming: inputs keep their port names, internal nets are `n{idx}`.
fn net_name(netlist: &Netlist, ports: &PortNames, idx: usize) -> String {
    if idx < netlist.num_inputs() {
        ports.inputs[idx].clone()
    } else {
        format!("n{idx}")
    }
}

/// Serializes a combinational netlist as BLIF (`.model`/`.names`).
///
/// # Panics
///
/// Panics if the port name counts do not match the netlist interface.
pub fn to_blif(netlist: &Netlist, model: &str, ports: &PortNames) -> String {
    ports.check(netlist);
    let mut out = String::new();
    let _ = writeln!(out, ".model {model}");
    let _ = writeln!(out, ".inputs {}", ports.inputs.join(" "));
    let _ = writeln!(out, ".outputs {}", ports.outputs.join(" "));

    for (i, g) in netlist.gates().iter().enumerate() {
        let name = net_name(netlist, ports, i);
        let a = || net_name(netlist, ports, g.fanin[0].index());
        let b = || net_name(netlist, ports, g.fanin[1].index());
        match g.kind {
            GateKind::Input => {}
            GateKind::Const0 => {
                let _ = writeln!(out, ".names {name}");
            }
            GateKind::Const1 => {
                let _ = writeln!(out, ".names {name}\n1");
            }
            GateKind::Buf => {
                let _ = writeln!(out, ".names {} {name}\n1 1", a());
            }
            GateKind::Not => {
                let _ = writeln!(out, ".names {} {name}\n0 1", a());
            }
            GateKind::And => {
                let _ = writeln!(out, ".names {} {} {name}\n11 1", a(), b());
            }
            GateKind::Or => {
                let _ = writeln!(out, ".names {} {} {name}\n1- 1\n-1 1", a(), b());
            }
            GateKind::Nand => {
                let _ = writeln!(out, ".names {} {} {name}\n0- 1\n-0 1", a(), b());
            }
            GateKind::Nor => {
                let _ = writeln!(out, ".names {} {} {name}\n00 1", a(), b());
            }
            GateKind::Xor => {
                let _ = writeln!(out, ".names {} {} {name}\n10 1\n01 1", a(), b());
            }
            GateKind::Xnor => {
                let _ = writeln!(out, ".names {} {} {name}\n11 1\n00 1", a(), b());
            }
        }
    }
    // Output aliases.
    for (o, net) in netlist.outputs().iter().enumerate() {
        let src = net_name(netlist, ports, net.index());
        let dst = &ports.outputs[o];
        if &src != dst {
            let _ = writeln!(out, ".names {src} {dst}\n1 1");
        }
    }
    out.push_str(".end\n");
    out
}

/// Serializes a combinational netlist as flat structural Verilog
/// (`assign` statements over `wire`s).
///
/// # Panics
///
/// Panics if the port name counts do not match the netlist interface.
pub fn to_verilog(netlist: &Netlist, module: &str, ports: &PortNames) -> String {
    ports.check(netlist);
    let mut out = String::new();
    let all_ports: Vec<String> = ports
        .inputs
        .iter()
        .chain(ports.outputs.iter())
        .cloned()
        .collect();
    let _ = writeln!(out, "module {module}({});", all_ports.join(", "));
    for i in &ports.inputs {
        let _ = writeln!(out, "  input {i};");
    }
    for o in &ports.outputs {
        let _ = writeln!(out, "  output {o};");
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        if !matches!(g.kind, GateKind::Input) {
            let _ = writeln!(out, "  wire n{i};");
        }
    }
    for (i, g) in netlist.gates().iter().enumerate() {
        let a = || net_name(netlist, ports, g.fanin[0].index());
        let b = || net_name(netlist, ports, g.fanin[1].index());
        let expr = match g.kind {
            GateKind::Input => continue,
            GateKind::Const0 => "1'b0".to_string(),
            GateKind::Const1 => "1'b1".to_string(),
            GateKind::Buf => a(),
            GateKind::Not => format!("~{}", a()),
            GateKind::And => format!("{} & {}", a(), b()),
            GateKind::Or => format!("{} | {}", a(), b()),
            GateKind::Nand => format!("~({} & {})", a(), b()),
            GateKind::Nor => format!("~({} | {})", a(), b()),
            GateKind::Xor => format!("{} ^ {}", a(), b()),
            GateKind::Xnor => format!("~({} ^ {})", a(), b()),
        };
        let _ = writeln!(out, "  assign n{i} = {expr};");
    }
    for (o, net) in netlist.outputs().iter().enumerate() {
        let src = net_name(netlist, ports, net.index());
        let _ = writeln!(out, "  assign {} = {src};", ports.outputs[o]);
    }
    out.push_str("endmodule\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::netlist::NetlistBuilder;

    fn sample() -> Netlist {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let g = b.and(x, y);
        let h = b.not(g);
        let k = b.xor(h, y);
        b.mark_output(k);
        b.mark_output(x); // direct input-to-output alias
        b.finish()
    }

    #[test]
    fn blif_structure() {
        let n = sample();
        let ports = PortNames::numbered(2, 2);
        let text = to_blif(&n, "sample", &ports);
        assert!(text.starts_with(".model sample\n"));
        assert!(text.contains(".inputs i0 i1"));
        assert!(text.contains(".outputs o0 o1"));
        assert!(text.ends_with(".end\n"));
        // AND, NOT, XOR tables present.
        assert!(text.contains("11 1"));
        assert!(text.contains("0 1"));
        assert!(text.contains("10 1\n01 1"));
        // Input alias to output.
        assert!(text.contains(".names i0 o1"));
    }

    #[test]
    fn verilog_structure() {
        let n = sample();
        let ports = PortNames::numbered(2, 2);
        let text = to_verilog(&n, "sample", &ports);
        assert!(text.starts_with("module sample(i0, i1, o0, o1);"));
        assert!(text.contains("input i0;"));
        assert!(text.contains("output o1;"));
        assert!(text.contains("&"));
        assert!(text.contains("^"));
        assert!(text.contains("assign o1 = i0;"));
        assert!(text.ends_with("endmodule\n"));
    }

    #[test]
    fn constants_exported() {
        let mut b = NetlistBuilder::new(1);
        let c1 = b.const1();
        let c0 = b.const0();
        b.mark_output(c1);
        b.mark_output(c0);
        let n = b.finish();
        let ports = PortNames::numbered(1, 2);
        let blif = to_blif(&n, "consts", &ports);
        // Constant-1 has a "1" line; constant-0 a bare .names.
        assert!(blif.contains("1\n"));
        let verilog = to_verilog(&n, "consts", &ports);
        assert!(verilog.contains("1'b1"));
        assert!(verilog.contains("1'b0"));
    }

    #[test]
    #[should_panic(expected = "input name count mismatch")]
    fn port_count_validated() {
        let n = sample();
        let ports = PortNames::numbered(1, 2);
        let _ = to_blif(&n, "bad", &ports);
    }

    #[test]
    fn blif_names_are_unique() {
        let n = sample();
        let ports = PortNames::numbered(2, 2);
        let text = to_blif(&n, "sample", &ports);
        let mut defined = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix(".names ") {
                let target = rest.split_whitespace().last().unwrap();
                assert!(
                    defined.insert(target.to_string()),
                    "double-defined {target}"
                );
            }
        }
    }
}
