//! Algebraic factoring — the multi-level step of the SIS substitute.
//!
//! Two-level covers often hide shared structure: `ab + ac + ad` is one
//! AND per cube flat, but factors to `a(b + c + d)`. This module
//! implements the classical algebraic machinery — single-cube division,
//! kernel/co-kernel extraction, and *quick factoring* (most-frequent-
//! literal division, recursively) — plus decomposition of the factored
//! form into gates.
//!
//! # Examples
//!
//! ```
//! use ced_logic::cover::Cover;
//! use ced_logic::factor::{quick_factor, FactorTree};
//!
//! let f = Cover::parse(4, &["11--", "1-1-", "1--1"])?; // a(b+c+d)
//! let tree = quick_factor(&f);
//! assert!(tree.literal_count() < f.literal_count());
//! # Ok::<(), ced_logic::cube::ParseCubeError>(())
//! ```

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use crate::netlist::{NetId, NetlistBuilder};
use std::fmt;

/// A factored Boolean expression over positive/negative literals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FactorTree {
    /// Constant 0 (empty cover).
    Zero,
    /// Constant 1 (tautologous cube).
    One,
    /// A single literal: variable index and phase (`true` = positive).
    Literal(usize, bool),
    /// Conjunction of factors.
    And(Vec<FactorTree>),
    /// Disjunction of factors.
    Or(Vec<FactorTree>),
}

impl FactorTree {
    /// Number of literal leaves — the classical factored-form cost.
    pub fn literal_count(&self) -> usize {
        match self {
            FactorTree::Zero | FactorTree::One => 0,
            FactorTree::Literal(..) => 1,
            FactorTree::And(xs) | FactorTree::Or(xs) => {
                xs.iter().map(FactorTree::literal_count).sum()
            }
        }
    }

    /// Evaluates the tree on a minterm (bit `i` = variable `i`).
    pub fn evaluate(&self, assignment: u64) -> bool {
        match self {
            FactorTree::Zero => false,
            FactorTree::One => true,
            FactorTree::Literal(v, phase) => ((assignment >> v) & 1 == 1) == *phase,
            FactorTree::And(xs) => xs.iter().all(|x| x.evaluate(assignment)),
            FactorTree::Or(xs) => xs.iter().any(|x| x.evaluate(assignment)),
        }
    }

    /// Builds the net computing this tree over `inputs`.
    pub fn to_net(&self, builder: &mut NetlistBuilder, inputs: &[NetId]) -> NetId {
        match self {
            FactorTree::Zero => builder.const0(),
            FactorTree::One => builder.const1(),
            FactorTree::Literal(v, phase) => {
                let net = inputs[*v];
                if *phase {
                    net
                } else {
                    builder.not(net)
                }
            }
            FactorTree::And(xs) => {
                let nets: Vec<NetId> = xs.iter().map(|x| x.to_net(builder, inputs)).collect();
                builder.and_tree(&nets)
            }
            FactorTree::Or(xs) => {
                let nets: Vec<NetId> = xs.iter().map(|x| x.to_net(builder, inputs)).collect();
                builder.or_tree(&nets)
            }
        }
    }
}

impl fmt::Display for FactorTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FactorTree::Zero => write!(f, "0"),
            FactorTree::One => write!(f, "1"),
            FactorTree::Literal(v, true) => write!(f, "x{v}"),
            FactorTree::Literal(v, false) => write!(f, "x{v}'"),
            FactorTree::And(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "·")?;
                    }
                    if matches!(x, FactorTree::Or(_)) {
                        write!(f, "({x})")?;
                    } else {
                        write!(f, "{x}")?;
                    }
                }
                Ok(())
            }
            FactorTree::Or(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
        }
    }
}

/// Algebraic division of a cover by a single literal: returns
/// `(quotient, remainder)` with `F = lit·Q + R` and no cube of `R`
/// containing the literal.
pub fn divide_by_literal(f: &Cover, var: usize, phase: bool) -> (Cover, Cover) {
    let lit = if phase {
        Literal::Positive
    } else {
        Literal::Negative
    };
    let mut q = Cover::empty(f.width());
    let mut r = Cover::empty(f.width());
    for cube in f.cubes() {
        if cube.literal(var) == lit {
            q.push(cube.with(var, Literal::DontCare));
        } else {
            r.push(cube.clone());
        }
    }
    (q, r)
}

/// Algebraic division by a cube divisor: `(quotient, remainder)` with
/// `F = D·Q + R` (algebraic, i.e. cube-wise containment of D's
/// literals).
pub fn divide_by_cube(f: &Cover, divisor: &Cube) -> (Cover, Cover) {
    let mut q = Cover::empty(f.width());
    let mut r = Cover::empty(f.width());
    'cubes: for cube in f.cubes() {
        let mut quotient_cube = cube.clone();
        for v in 0..f.width() {
            match divisor.literal(v) {
                Literal::DontCare => {}
                lit => {
                    if cube.literal(v) != lit {
                        r.push(cube.clone());
                        continue 'cubes;
                    }
                    quotient_cube.set(v, Literal::DontCare);
                }
            }
        }
        q.push(quotient_cube);
    }
    (q, r)
}

/// The literal (variable, phase) appearing in the most cubes, among
/// literals appearing at least twice; `None` when every literal is
/// unique (the cover is its own best form).
pub fn most_frequent_literal(f: &Cover) -> Option<(usize, bool)> {
    let w = f.width();
    let mut pos = vec![0usize; w];
    let mut neg = vec![0usize; w];
    for cube in f.cubes() {
        for v in 0..w {
            match cube.literal(v) {
                Literal::Positive => pos[v] += 1,
                Literal::Negative => neg[v] += 1,
                Literal::DontCare => {}
            }
        }
    }
    let mut best: Option<(usize, bool, usize)> = None;
    for v in 0..w {
        for (phase, count) in [(true, pos[v]), (false, neg[v])] {
            if count >= 2 && best.is_none_or(|(_, _, c)| count > c) {
                best = Some((v, phase, count));
            }
        }
    }
    best.map(|(v, p, _)| (v, p))
}

/// Quick factoring: recursively divide by the most frequent literal.
///
/// Produces an algebraically factored form computing exactly the same
/// function (every cube of the input is reproduced); no Boolean
/// (don't-care) transformations are applied.
pub fn quick_factor(f: &Cover) -> FactorTree {
    if f.is_empty() {
        return FactorTree::Zero;
    }
    if f.cubes().iter().any(Cube::is_full) {
        return FactorTree::One;
    }
    if f.len() == 1 {
        return cube_tree(&f.cubes()[0]);
    }
    match most_frequent_literal(f) {
        None => {
            // No shared literal: flat OR of cube ANDs.
            FactorTree::Or(f.cubes().iter().map(cube_tree).collect())
        }
        Some((v, phase)) => {
            let (q, r) = divide_by_literal(f, v, phase);
            let mut and_parts = vec![FactorTree::Literal(v, phase)];
            match quick_factor(&q) {
                FactorTree::One => {}
                FactorTree::And(xs) => and_parts.extend(xs),
                t => and_parts.push(t),
            }
            let left = if and_parts.len() == 1 {
                and_parts.pop().expect("non-empty")
            } else {
                FactorTree::And(and_parts)
            };
            if r.is_empty() {
                left
            } else {
                let mut or_parts = vec![left];
                match quick_factor(&r) {
                    FactorTree::Or(xs) => or_parts.extend(xs),
                    FactorTree::Zero => {}
                    t => or_parts.push(t),
                }
                FactorTree::Or(or_parts)
            }
        }
    }
}

fn cube_tree(cube: &Cube) -> FactorTree {
    let lits: Vec<FactorTree> = (0..cube.width())
        .filter_map(|v| match cube.literal(v) {
            Literal::Positive => Some(FactorTree::Literal(v, true)),
            Literal::Negative => Some(FactorTree::Literal(v, false)),
            Literal::DontCare => None,
        })
        .collect();
    match lits.len() {
        0 => FactorTree::One,
        1 => lits.into_iter().next().expect("one literal"),
        _ => FactorTree::And(lits),
    }
}

/// One kernel of a cover: the co-kernel cube and the kernel cover
/// (cube-free quotient).
#[derive(Debug, Clone, PartialEq)]
pub struct Kernel {
    /// The co-kernel (the cube divisor).
    pub co_kernel: Cube,
    /// The kernel (quotient; cube-free, ≥ 2 cubes).
    pub kernel: Cover,
}

/// The largest cube dividing every cube of the cover (its "common
/// cube"), or the full cube if the cover is empty.
pub fn common_cube(f: &Cover) -> Cube {
    let width = f.width();
    let mut acc: Option<Cube> = None;
    for cube in f.cubes() {
        acc = Some(match acc {
            None => cube.clone(),
            Some(a) => {
                let mut out = Cube::full(width);
                for v in 0..width {
                    if a.literal(v) != Literal::DontCare && a.literal(v) == cube.literal(v) {
                        out.set(v, a.literal(v));
                    }
                }
                out
            }
        });
    }
    acc.unwrap_or_else(|| Cube::full(width))
}

/// True iff no single literal divides every cube (the cover is
/// "cube-free").
pub fn is_cube_free(f: &Cover) -> bool {
    common_cube(f).is_full()
}

/// Enumerates all kernels and co-kernels of a cover (the classical
/// recursive algorithm; exponential in the worst case, fine for the
/// cover sizes FSM synthesis produces).
pub fn kernels(f: &Cover) -> Vec<Kernel> {
    let mut out = Vec::new();
    let cc = common_cube(f);
    let (base, _) = divide_by_cube(f, &cc);
    kernels_rec(&base, &cc, 0, &mut out);
    // The cover itself (made cube-free) is the level-0 kernel.
    if base.len() >= 2 && !out.iter().any(|k| k.kernel == base) {
        out.push(Kernel {
            co_kernel: cc,
            kernel: base,
        });
    }
    out
}

fn kernels_rec(f: &Cover, co: &Cube, start_var: usize, out: &mut Vec<Kernel>) {
    let w = f.width();
    for v in start_var..w {
        for phase in [true, false] {
            let lit = if phase {
                Literal::Positive
            } else {
                Literal::Negative
            };
            // Count cubes containing this literal.
            let count = f.cubes().iter().filter(|c| c.literal(v) == lit).count();
            if count < 2 {
                continue;
            }
            let (q, _) = divide_by_literal(f, v, phase);
            let cc = common_cube(&q);
            let (kernel, _) = divide_by_cube(&q, &cc);
            if kernel.len() < 2 {
                continue;
            }
            let mut co_kernel = co.intersection(&cc).unwrap_or_else(|| co.clone());
            co_kernel.set(v, lit);
            if !out
                .iter()
                .any(|k| k.kernel == kernel && k.co_kernel == co_kernel)
            {
                out.push(Kernel {
                    co_kernel: co_kernel.clone(),
                    kernel: kernel.clone(),
                });
                kernels_rec(&kernel, &co_kernel, v + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(width: usize, cubes: &[&str]) -> Cover {
        Cover::parse(width, cubes).unwrap()
    }

    fn check_tree_equals_cover(tree: &FactorTree, f: &Cover) {
        for m in 0..(1u64 << f.width()) {
            assert_eq!(
                tree.evaluate(m),
                f.covers_minterm(m),
                "mismatch at {m:b}: {tree} vs {f}"
            );
        }
    }

    #[test]
    fn divide_by_literal_splits() {
        let f = cover(3, &["11-", "1-1", "0--"]);
        let (q, r) = divide_by_literal(&f, 0, true);
        assert_eq!(q.len(), 2);
        assert_eq!(r.len(), 1);
        assert_eq!(q.cubes()[0].to_string(), "-1-");
    }

    #[test]
    fn divide_by_cube_requires_all_literals() {
        let f = cover(4, &["11--", "11-1", "1---"]);
        let d: Cube = "11--".parse().unwrap();
        let (q, r) = divide_by_cube(&f, &d);
        assert_eq!(q.len(), 2);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn quick_factor_shares_literal() {
        // ab + ac + ad = a(b + c + d): 6 literals flat, 4 factored.
        let f = cover(4, &["11--", "1-1-", "1--1"]);
        let tree = quick_factor(&f);
        check_tree_equals_cover(&tree, &f);
        assert_eq!(f.literal_count(), 6);
        assert_eq!(tree.literal_count(), 4);
    }

    #[test]
    fn quick_factor_handles_constants() {
        assert_eq!(quick_factor(&Cover::empty(3)), FactorTree::Zero);
        assert_eq!(quick_factor(&Cover::tautology(3)), FactorTree::One);
    }

    #[test]
    fn quick_factor_on_xor_stays_flat() {
        // XOR has no algebraic divisor: literal count unchanged.
        let f = cover(2, &["01", "10"]);
        let tree = quick_factor(&f);
        check_tree_equals_cover(&tree, &f);
        assert_eq!(tree.literal_count(), 4);
    }

    #[test]
    fn quick_factor_preserves_random_functions() {
        let mut seed = 77u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed >> 33
        };
        for _ in 0..40 {
            let width = 3 + (next() % 3) as usize;
            let ncubes = 1 + (next() % 6) as usize;
            let mut cubes = Vec::new();
            for _ in 0..ncubes {
                let mut c = Cube::full(width);
                for v in 0..width {
                    match next() % 3 {
                        0 => c.set(v, Literal::Negative),
                        1 => c.set(v, Literal::Positive),
                        _ => {}
                    }
                }
                cubes.push(c);
            }
            let f = Cover::from_cubes(width, cubes);
            let tree = quick_factor(&f);
            check_tree_equals_cover(&tree, &f);
            assert!(tree.literal_count() <= f.literal_count());
        }
    }

    #[test]
    fn factored_netlist_computes_function() {
        let f = cover(4, &["11--", "1-1-", "1--1", "0001"]);
        let tree = quick_factor(&f);
        let mut b = NetlistBuilder::new(4);
        let ins: Vec<NetId> = (0..4).map(|i| b.input(i)).collect();
        let out = tree.to_net(&mut b, &ins);
        b.mark_output(out);
        let n = b.finish();
        for m in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|v| (m >> v) & 1 == 1).collect();
            assert_eq!(n.eval_single(&bits)[0], f.covers_minterm(m));
        }
    }

    #[test]
    fn common_cube_and_cube_free() {
        let f = cover(3, &["11-", "1-1"]);
        assert_eq!(common_cube(&f).to_string(), "1--");
        assert!(!is_cube_free(&f));
        let g = cover(3, &["1--", "-1-"]);
        assert!(is_cube_free(&g));
    }

    #[test]
    fn kernels_of_textbook_example() {
        // F = ace + bce + de + g (DeMicheli): kernels include
        // {a+b} (co-kernel ce), {ac+bc+d} (co-kernel e), F itself.
        // Variables: a=0 b=1 c=2 d=3 e=4 g=5.
        let f = cover(
            6,
            &[
                "1-1-1-", // ace
                "-11-1-", // bce
                "---11-", // de
                "-----1", // g
            ],
        );
        let ks = kernels(&f);
        let kernel_strings: Vec<String> = ks.iter().map(|k| k.kernel.to_string()).collect();
        // a + b as a kernel (cubes "1-----" and "-1----").
        assert!(
            kernel_strings
                .iter()
                .any(|s| s.contains("1-----") && s.contains("-1----")),
            "missing kernel a+b in {kernel_strings:?}"
        );
        // All kernels are cube-free and have ≥ 2 cubes.
        for k in &ks {
            assert!(k.kernel.len() >= 2);
            assert!(is_cube_free(&k.kernel), "kernel {} not cube-free", k.kernel);
        }
    }

    #[test]
    fn kernel_identity_holds() {
        // For every kernel: co_kernel · kernel ⊆ F (algebraically).
        let f = cover(4, &["11--", "1-1-", "-11-", "---1"]);
        for k in kernels(&f) {
            for cube in k.kernel.cubes() {
                let product = cube.intersection(&k.co_kernel);
                let product = product.expect("co-kernel and kernel cube are disjoint-support");
                assert!(
                    f.cubes().iter().any(|c| c == &product),
                    "product {product} not a cube of {f}"
                );
            }
        }
    }

    #[test]
    fn display_formats_factored_form() {
        let f = cover(3, &["11-", "1-1"]);
        let tree = quick_factor(&f);
        let text = tree.to_string();
        assert!(text.contains("x0"), "{text}");
        assert!(text.contains('('), "{text}");
    }
}
