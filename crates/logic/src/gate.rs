//! Gate primitives and the standard-cell library used for costing.
//!
//! The paper reports `Gates` (mapped cell count) and `Cost` (area from
//! SIS's standard-cell library). We substitute a compact generic library
//! with fixed per-cell areas; absolute numbers differ from `lib2.genlib`
//! but ratios — the quantity the paper's conclusions rest on — are
//! preserved (see DESIGN.md substitution note (b)).

use std::fmt;

/// The kind of a netlist node.
///
/// All logic gates are at most 2-input; wider functions are decomposed
/// into balanced trees by [`crate::decompose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum GateKind {
    /// A primary input (no fanin).
    Input,
    /// Constant 0 (no fanin).
    Const0,
    /// Constant 1 (no fanin).
    Const1,
    /// Buffer (1 fanin). Produced only at output stitching; free to map.
    Buf,
    /// Inverter (1 fanin).
    Not,
    /// 2-input AND.
    And,
    /// 2-input OR.
    Or,
    /// 2-input NAND.
    Nand,
    /// 2-input NOR.
    Nor,
    /// 2-input XOR.
    Xor,
    /// 2-input XNOR.
    Xnor,
}

impl GateKind {
    /// Number of fanins this kind requires.
    pub fn arity(self) -> usize {
        match self {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0,
            GateKind::Buf | GateKind::Not => 1,
            _ => 2,
        }
    }

    /// True for kinds whose two fanins commute.
    pub fn is_commutative(self) -> bool {
        self.arity() == 2
    }

    /// Stable serialization tag (the declaration order; used by
    /// circuit artifacts and fingerprints).
    pub fn tag(self) -> u8 {
        match self {
            GateKind::Input => 0,
            GateKind::Const0 => 1,
            GateKind::Const1 => 2,
            GateKind::Buf => 3,
            GateKind::Not => 4,
            GateKind::And => 5,
            GateKind::Or => 6,
            GateKind::Nand => 7,
            GateKind::Nor => 8,
            GateKind::Xor => 9,
            GateKind::Xnor => 10,
        }
    }

    /// Inverse of [`GateKind::tag`]; `None` for unknown tags.
    pub fn from_tag(tag: u8) -> Option<GateKind> {
        Some(match tag {
            0 => GateKind::Input,
            1 => GateKind::Const0,
            2 => GateKind::Const1,
            3 => GateKind::Buf,
            4 => GateKind::Not,
            5 => GateKind::And,
            6 => GateKind::Or,
            7 => GateKind::Nand,
            8 => GateKind::Nor,
            9 => GateKind::Xor,
            10 => GateKind::Xnor,
            _ => return None,
        })
    }

    /// Evaluates the gate on word-parallel operand(s).
    pub fn eval(self, a: u64, b: u64) -> u64 {
        match self {
            GateKind::Input => unreachable!("inputs are not evaluated"),
            GateKind::Const0 => 0,
            GateKind::Const1 => u64::MAX,
            GateKind::Buf => a,
            GateKind::Not => !a,
            GateKind::And => a & b,
            GateKind::Or => a | b,
            GateKind::Nand => !(a & b),
            GateKind::Nor => !(a | b),
            GateKind::Xor => a ^ b,
            GateKind::Xnor => !(a ^ b),
        }
    }
}

impl fmt::Display for GateKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            GateKind::Input => "IN",
            GateKind::Const0 => "C0",
            GateKind::Const1 => "C1",
            GateKind::Buf => "BUF",
            GateKind::Not => "INV",
            GateKind::And => "AND2",
            GateKind::Or => "OR2",
            GateKind::Nand => "NAND2",
            GateKind::Nor => "NOR2",
            GateKind::Xor => "XOR2",
            GateKind::Xnor => "XNOR2",
        };
        write!(f, "{s}")
    }
}

/// Per-cell areas of the generic standard-cell library.
///
/// Units are abstract area units; the defaults roughly track the relative
/// sizes of a typical CMOS library (inverter smallest, XOR largest,
/// flip-flop dominant).
#[derive(Debug, Clone, PartialEq)]
pub struct CellLibrary {
    /// Inverter area.
    pub inv: f64,
    /// Buffer area.
    pub buf: f64,
    /// 2-input AND area.
    pub and2: f64,
    /// 2-input OR area.
    pub or2: f64,
    /// 2-input NAND area.
    pub nand2: f64,
    /// 2-input NOR area.
    pub nor2: f64,
    /// 2-input XOR area.
    pub xor2: f64,
    /// 2-input XNOR area.
    pub xnor2: f64,
    /// D flip-flop area (used by sequential costing).
    pub dff: f64,
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary {
            inv: 1.0,
            buf: 2.0,
            and2: 3.0,
            or2: 3.0,
            nand2: 2.0,
            nor2: 2.0,
            xor2: 5.0,
            xnor2: 5.0,
            dff: 8.0,
        }
    }
}

impl CellLibrary {
    /// A fresh library with the default areas.
    pub fn new() -> CellLibrary {
        CellLibrary::default()
    }

    /// Area of one gate of the given kind; inputs and constants are free.
    pub fn area(&self, kind: GateKind) -> f64 {
        match kind {
            GateKind::Input | GateKind::Const0 | GateKind::Const1 => 0.0,
            GateKind::Buf => self.buf,
            GateKind::Not => self.inv,
            GateKind::And => self.and2,
            GateKind::Or => self.or2,
            GateKind::Nand => self.nand2,
            GateKind::Nor => self.nor2,
            GateKind::Xor => self.xor2,
            GateKind::Xnor => self.xnor2,
        }
    }

    /// True if the kind counts as a gate in the `Gates` column.
    pub fn counts_as_gate(&self, kind: GateKind) -> bool {
        !matches!(kind, GateKind::Input | GateKind::Const0 | GateKind::Const1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arity_matches_kind() {
        assert_eq!(GateKind::Input.arity(), 0);
        assert_eq!(GateKind::Not.arity(), 1);
        assert_eq!(GateKind::Xor.arity(), 2);
    }

    #[test]
    fn eval_semantics() {
        let a = 0b1100u64;
        let b = 0b1010u64;
        assert_eq!(GateKind::And.eval(a, b) & 0xF, 0b1000);
        assert_eq!(GateKind::Or.eval(a, b) & 0xF, 0b1110);
        assert_eq!(GateKind::Xor.eval(a, b) & 0xF, 0b0110);
        assert_eq!(GateKind::Nand.eval(a, b) & 0xF, 0b0111);
        assert_eq!(GateKind::Nor.eval(a, b) & 0xF, 0b0001);
        assert_eq!(GateKind::Xnor.eval(a, b) & 0xF, 0b1001);
        assert_eq!(GateKind::Not.eval(a, 0) & 0xF, 0b0011);
        assert_eq!(GateKind::Buf.eval(a, 0), a);
        assert_eq!(GateKind::Const1.eval(0, 0), u64::MAX);
    }

    #[test]
    fn library_area_positive_for_gates() {
        let lib = CellLibrary::new();
        for kind in [
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
            GateKind::Buf,
        ] {
            assert!(lib.area(kind) > 0.0);
            assert!(lib.counts_as_gate(kind));
        }
        assert_eq!(lib.area(GateKind::Input), 0.0);
        assert!(!lib.counts_as_gate(GateKind::Const0));
    }

    #[test]
    fn tags_round_trip() {
        for kind in [
            GateKind::Input,
            GateKind::Const0,
            GateKind::Const1,
            GateKind::Buf,
            GateKind::Not,
            GateKind::And,
            GateKind::Or,
            GateKind::Nand,
            GateKind::Nor,
            GateKind::Xor,
            GateKind::Xnor,
        ] {
            assert_eq!(GateKind::from_tag(kind.tag()), Some(kind));
        }
        assert_eq!(GateKind::from_tag(11), None);
    }

    #[test]
    fn xor_costs_more_than_nand() {
        let lib = CellLibrary::new();
        assert!(lib.area(GateKind::Xor) > lib.area(GateKind::Nand));
    }
}
