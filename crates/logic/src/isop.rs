//! Irredundant sum-of-products extraction from truth tables
//! (Minato–Morreale algorithm).
//!
//! Given an interval `L ⊆ f ⊆ U` (lower bound = required ON-set, upper
//! bound = allowed ON-set, so `U \ L` is the don't-care set), [`isop`]
//! produces an irredundant cover of some function inside the interval.
//! This is how CED predictor functions — which arise as truth tables,
//! not cube lists — re-enter the two-level minimizer.
//!
//! # Examples
//!
//! ```
//! use ced_logic::truth::Truth;
//! use ced_logic::isop::isop_exact;
//!
//! let f = Truth::var(3, 0).xor(&Truth::var(3, 1));
//! let cover = isop_exact(&f);
//! assert!(Truth::from_cover(&cover) == f);
//! assert_eq!(cover.len(), 2);
//! ```

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use crate::truth::Truth;
use ced_runtime::{Budget, Interrupted};

/// Computes an irredundant SOP cover of a function `f` with
/// `lower ⊆ f ⊆ upper`.
///
/// # Panics
///
/// Panics if the arities differ or `lower ⊄ upper` (i.e. some minterm is
/// required but not allowed).
pub fn isop(lower: &Truth, upper: &Truth) -> Cover {
    match isop_budgeted(lower, upper, &Budget::unlimited()) {
        Ok(cover) => cover,
        Err(_) => unreachable!("an unlimited budget cannot interrupt"),
    }
}

/// [`isop`] under a [`Budget`]: one work unit per recursion step, with
/// a budget check at every step so deep recursions over many-variable
/// functions stay cancellable.
///
/// # Errors
///
/// The budget's interruption; the extraction is restartable from
/// scratch (the recursion carries no checkpointable external state).
///
/// # Panics
///
/// See [`isop`].
pub fn isop_budgeted(lower: &Truth, upper: &Truth, budget: &Budget) -> Result<Cover, Interrupted> {
    assert_eq!(lower.vars(), upper.vars(), "ISOP bound arity mismatch");
    assert!(
        lower.and(&upper.not()).is_zero(),
        "ISOP lower bound exceeds upper bound"
    );
    let mut cover = Cover::empty(lower.vars());
    isop_rec(
        lower,
        upper,
        lower.vars(),
        &mut cover,
        &Cube::full(lower.vars()),
        budget,
    )?;
    Ok(cover)
}

/// [`isop`] with `lower == upper` (no don't-cares).
pub fn isop_exact(f: &Truth) -> Cover {
    isop(f, f)
}

/// Recursive core. `context` carries the literals fixed so far; `top` is
/// the number of variables still eligible for splitting (we always split
/// on the highest remaining variable, giving a canonical recursion).
///
/// Returns the truth table of the sub-cover produced (in the full space),
/// needed by the caller to compute the residual lower bound.
fn isop_rec(
    lower: &Truth,
    upper: &Truth,
    top: usize,
    cover: &mut Cover,
    context: &Cube,
    budget: &Budget,
) -> Result<Truth, Interrupted> {
    budget.tick(1, "isop:recurse")?;
    if lower.is_zero() {
        return Ok(Truth::zero(lower.vars()));
    }
    if upper.is_one() {
        cover.push(context.clone());
        return Ok(Truth::one(lower.vars()));
    }
    // Find the highest variable below `top` that either bound depends on.
    let mut split = None;
    for v in (0..top).rev() {
        if lower.depends_on(v) || upper.depends_on(v) {
            split = Some(v);
            break;
        }
    }
    let Some(v) = split else {
        // Both bounds constant on the remaining space: lower is non-zero
        // everywhere it matters, upper is not one — pick lower's value.
        // Since neither depends on anything below `top` and lower ⊆ upper,
        // lower non-zero ⇒ upper non-zero on the same region; emit context.
        cover.push(context.clone());
        return Ok(Truth::one(lower.vars()));
    };

    let l0 = lower.cofactor(v, false);
    let l1 = lower.cofactor(v, true);
    let u0 = upper.cofactor(v, false);
    let u1 = upper.cofactor(v, true);

    // Minterms that must be covered by cubes containing the literal v'
    // (cannot be covered by v-free cubes because u1 forbids them).
    let f0 = isop_rec(
        &l0.and(&u1.not()),
        &u0,
        v,
        cover,
        &context.with(v, Literal::Negative),
        budget,
    )?;
    let f1 = isop_rec(
        &l1.and(&u0.not()),
        &u1,
        v,
        cover,
        &context.with(v, Literal::Positive),
        budget,
    )?;

    // Residual: minterms not yet covered, coverable by v-free cubes.
    let l_new = l0.and(&f0.not()).or(&l1.and(&f1.not()));
    let u_new = u0.and(&u1);
    let fd = isop_rec(&l_new, &u_new, v, cover, context, budget)?;

    // Truth of everything emitted at this level, in the full space.
    let xv = Truth::var(lower.vars(), v);
    Ok(xv.not().and(&f0).or(&xv.and(&f1)).or(&fd))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_interval(cover: &Cover, lower: &Truth, upper: &Truth) {
        let t = Truth::from_cover(cover);
        assert!(
            lower.and(&t.not()).is_zero(),
            "cover misses required minterms"
        );
        assert!(
            t.and(&upper.not()).is_zero(),
            "cover spills outside allowed minterms"
        );
    }

    #[test]
    fn exact_xor() {
        let f = Truth::var(2, 0).xor(&Truth::var(2, 1));
        let c = isop_exact(&f);
        check_interval(&c, &f, &f);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn exact_constants() {
        let z = Truth::zero(3);
        assert!(isop_exact(&z).is_empty());
        let o = Truth::one(3);
        let c = isop_exact(&o);
        assert_eq!(c.len(), 1);
        assert!(c.cubes()[0].is_full());
    }

    #[test]
    fn exact_single_var() {
        let f = Truth::var(4, 2);
        let c = isop_exact(&f);
        check_interval(&c, &f, &f);
        assert_eq!(c.len(), 1);
        assert_eq!(c.literal_count(), 1);
    }

    #[test]
    fn dont_cares_shrink_cover() {
        // f required on {000}, allowed anywhere: one full cube suffices.
        let mut lower = Truth::zero(3);
        lower.set(0, true);
        let upper = Truth::one(3);
        let c = isop(&lower, &upper);
        check_interval(&c, &lower, &upper);
        assert_eq!(c.len(), 1);
        assert!(c.cubes()[0].is_full());
    }

    #[test]
    fn dont_cares_partial() {
        // Required: minterms where a=1,b=1. Allowed additionally: a=1,b=0.
        let a = Truth::var(3, 0);
        let b = Truth::var(3, 1);
        let lower = a.and(&b);
        let upper = a.clone();
        let c = isop(&lower, &upper);
        check_interval(&c, &lower, &upper);
        // "a" alone is inside the interval and should be found.
        assert_eq!(c.len(), 1);
        assert_eq!(c.literal_count(), 1);
    }

    #[test]
    #[should_panic(expected = "lower bound exceeds")]
    fn rejects_inverted_interval() {
        let lower = Truth::one(2);
        let upper = Truth::zero(2);
        let _ = isop(&lower, &upper);
    }

    #[test]
    fn random_functions_round_trip() {
        let mut seed = 0x9e37_79b9_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1);
            seed
        };
        for vars in 1..=7 {
            for _ in 0..20 {
                let f = Truth::from_fn(vars, |_| next() & 1 == 1);
                let c = isop_exact(&f);
                assert_eq!(Truth::from_cover(&c), f, "round trip failed, {vars} vars");
            }
        }
    }

    #[test]
    fn isop_is_irredundant_on_samples() {
        let mut seed = 0xdead_beef_u64;
        let mut next = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(99);
            seed
        };
        for _ in 0..10 {
            let f = Truth::from_fn(5, |_| next() % 3 == 0);
            let c = isop_exact(&f);
            // Removing any single cube must lose some required minterm.
            for skip in 0..c.len() {
                let rest: Cover = c
                    .cubes()
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| *i != skip)
                    .map(|(_, cube)| cube.clone())
                    .collect::<Vec<_>>()
                    .into_iter()
                    .collect();
                let rest = if rest.is_empty() {
                    Cover::empty(5)
                } else {
                    rest
                };
                assert_ne!(
                    Truth::from_cover(&rest),
                    f,
                    "cube {skip} is redundant in ISOP output"
                );
            }
        }
    }
}
