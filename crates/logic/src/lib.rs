//! # ced-logic — logic synthesis substrate for bounded-latency CED
//!
//! A compact, self-contained logic-synthesis library standing in for the
//! SIS flow used by *"On Concurrent Error Detection with Bounded Latency
//! in FSMs"* (DATE 2004): two-level minimization, truth-table
//! manipulation, gate-level netlists and standard-cell area costing.
//!
//! The layers, bottom-up:
//!
//! * [`cube`] / [`cover`] — ternary cubes and SOP covers with the unate
//!   recursive paradigm (tautology, containment, complement, sharp);
//! * [`espresso`] — the EXPAND/IRREDUNDANT/REDUCE heuristic minimizer;
//! * [`truth`] / [`isop`] — bit-packed truth tables and Minato–Morreale
//!   irredundant SOP extraction;
//! * [`factor`] — algebraic division, kernels and quick factoring
//!   (the multi-level step);
//! * [`gate`] / [`netlist`] / [`decompose`] — 2-input gate netlists with
//!   structural hashing, balanced tree decomposition, and a generic
//!   standard-cell library for `Gates`/`Cost` reporting.
//!
//! # Examples
//!
//! Minimize a function and map it to gates:
//!
//! ```
//! use ced_logic::cover::Cover;
//! use ced_logic::espresso::{minimize, MinimizeOptions};
//! use ced_logic::decompose::MultiOutputSpec;
//! use ced_logic::gate::CellLibrary;
//!
//! let on = Cover::parse(3, &["000", "100", "001", "101"])?;
//! let min = minimize(&on, &Cover::empty(3), &MinimizeOptions::default());
//! assert_eq!(min.len(), 1); // b'
//!
//! let mut spec = MultiOutputSpec::new(3);
//! spec.add_exact_output(on);
//! let netlist = spec.synthesize(&MinimizeOptions::default());
//! let area = netlist.area(&CellLibrary::new());
//! assert!(area > 0.0);
//! # Ok::<(), ced_logic::cube::ParseCubeError>(())
//! ```

#![warn(missing_docs)]
// Indexed loops over bit positions are the clearest form for this
// bit-twiddling code; the iterator rewrites clippy suggests obscure it.
#![allow(clippy::needless_range_loop)]

pub mod blif;
pub mod cover;
pub mod cube;
pub mod decompose;
pub mod espresso;
pub mod export;
pub mod factor;
pub mod gate;
pub mod isop;
pub mod netlist;
pub mod truth;

pub use cover::Cover;
pub use cube::{Cube, Literal};
pub use espresso::{minimize, MinimizeOptions};
pub use gate::{CellLibrary, GateKind};
pub use netlist::{NetId, Netlist, NetlistBuilder};
pub use truth::Truth;
