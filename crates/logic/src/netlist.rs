//! Combinational netlists with structural hashing.
//!
//! A [`Netlist`] is a DAG of at-most-2-input gates in topological order
//! (every fanin index precedes its consumer). [`NetlistBuilder`] performs
//! structural hashing (common-subexpression sharing), constant folding
//! and double-inverter elimination, so logic built from several covers
//! automatically shares structure — the mechanism by which parity trees
//! and predictors amortize cost, mirroring multi-level synthesis sharing.
//!
//! # Examples
//!
//! ```
//! use ced_logic::netlist::NetlistBuilder;
//!
//! let mut b = NetlistBuilder::new(2);
//! let x = b.input(0);
//! let y = b.input(1);
//! let f = b.xor(x, y);
//! b.mark_output(f);
//! let netlist = b.finish();
//! assert_eq!(netlist.eval_single(&[true, false]), vec![true]);
//! ```

use crate::gate::{CellLibrary, GateKind};
use std::collections::HashMap;
use std::fmt;

/// Index of a net (gate output) in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NetId(pub u32);

impl NetId {
    /// The underlying index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// One node of the netlist.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Gate {
    /// The gate function.
    pub kind: GateKind,
    /// Fanins; entries beyond `kind.arity()` are unused (set to self-id 0).
    pub fanin: [NetId; 2],
}

/// An immutable combinational netlist in topological order.
#[derive(Debug, Clone, PartialEq)]
pub struct Netlist {
    num_inputs: usize,
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
}

impl Netlist {
    /// Reassembles a netlist from its raw parts (the exact gate list,
    /// in topological order, as returned by [`Netlist::gates`] and
    /// [`Netlist::outputs`]). Unlike [`NetlistBuilder`], no strashing
    /// or folding is applied, so a serialize → deserialize round trip
    /// reproduces the original structure gate-for-gate.
    ///
    /// # Errors
    ///
    /// Returns a description of the first structural violation: a
    /// non-`Input` gate in the input prefix (or vice versa), a fanin
    /// that does not precede its consumer, or an out-of-range output.
    pub fn from_parts(
        num_inputs: usize,
        gates: Vec<Gate>,
        outputs: Vec<NetId>,
    ) -> Result<Netlist, String> {
        if gates.len() < num_inputs {
            return Err(format!(
                "{} gates cannot hold {num_inputs} inputs",
                gates.len()
            ));
        }
        for (i, g) in gates.iter().enumerate() {
            let is_input = g.kind == GateKind::Input;
            if is_input != (i < num_inputs) {
                return Err(format!("gate {i}: {:?} misplaced in input prefix", g.kind));
            }
            for k in 0..g.kind.arity() {
                if g.fanin[k].index() >= i {
                    return Err(format!(
                        "gate {i}: fanin {} does not precede it",
                        g.fanin[k]
                    ));
                }
            }
        }
        for o in &outputs {
            if o.index() >= gates.len() {
                return Err(format!("output {o} out of range"));
            }
        }
        Ok(Netlist {
            num_inputs,
            gates,
            outputs,
        })
    }

    /// Number of primary inputs.
    pub fn num_inputs(&self) -> usize {
        self.num_inputs
    }

    /// Number of primary outputs.
    pub fn num_outputs(&self) -> usize {
        self.outputs.len()
    }

    /// All nodes, inputs first, in topological order.
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Primary output nets.
    pub fn outputs(&self) -> &[NetId] {
        &self.outputs
    }

    /// The [`NetId`] of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input_net(&self, i: usize) -> NetId {
        assert!(i < self.num_inputs, "input {i} out of range");
        NetId(i as u32)
    }

    /// Number of logic gates (excluding inputs and constants).
    pub fn gate_count(&self) -> usize {
        self.gates
            .iter()
            .filter(|g| {
                !matches!(
                    g.kind,
                    GateKind::Input | GateKind::Const0 | GateKind::Const1
                )
            })
            .count()
    }

    /// Total mapped area under a cell library.
    pub fn area(&self, library: &CellLibrary) -> f64 {
        self.gates.iter().map(|g| library.area(g.kind)).sum()
    }

    /// Logic depth (longest input→output path, in gates).
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.gates.len()];
        for (i, g) in self.gates.iter().enumerate() {
            let a = g.kind.arity();
            let mut l = 0;
            if a >= 1 {
                l = l.max(level[g.fanin[0].index()] + 1);
            }
            if a >= 2 {
                l = l.max(level[g.fanin[1].index()] + 1);
            }
            level[i] = l;
        }
        self.outputs
            .iter()
            .map(|o| level[o.index()])
            .max()
            .unwrap_or(0)
    }

    /// Evaluates the netlist on 64 input patterns at once: bit `k` of
    /// `inputs[i]` is the value of input `i` in pattern `k`. Returns one
    /// word per net, in topological order.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    pub fn eval_words(&self, inputs: &[u64]) -> Vec<u64> {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        let mut values = vec![0u64; self.gates.len()];
        self.eval_words_into(inputs, &mut values);
        values
    }

    /// Like [`Netlist::eval_words`] but reuses a caller-provided buffer
    /// (resized as needed) to avoid per-call allocation in hot loops.
    pub fn eval_words_into(&self, inputs: &[u64], values: &mut Vec<u64>) {
        assert_eq!(inputs.len(), self.num_inputs, "input arity mismatch");
        values.clear();
        values.resize(self.gates.len(), 0);
        for (i, g) in self.gates.iter().enumerate() {
            values[i] = match g.kind {
                GateKind::Input => inputs[i],
                kind => {
                    let a = values[g.fanin[0].index()];
                    let b = values[g.fanin[1].index()];
                    kind.eval(a, b)
                }
            };
        }
    }

    /// Word-parallel output values for 64 patterns.
    pub fn eval_outputs_words(&self, inputs: &[u64]) -> Vec<u64> {
        let values = self.eval_words(inputs);
        self.outputs.iter().map(|o| values[o.index()]).collect()
    }

    /// Evaluates a single pattern; convenience for tests and examples.
    ///
    /// # Panics
    ///
    /// Panics if `inputs.len() != num_inputs`.
    pub fn eval_single(&self, inputs: &[bool]) -> Vec<bool> {
        let words: Vec<u64> = inputs.iter().map(|&b| if b { 1 } else { 0 }).collect();
        self.eval_outputs_words(&words)
            .into_iter()
            .map(|w| w & 1 == 1)
            .collect()
    }
}

/// Incremental netlist constructor with structural hashing.
#[derive(Debug, Clone)]
pub struct NetlistBuilder {
    gates: Vec<Gate>,
    outputs: Vec<NetId>,
    num_inputs: usize,
    const0: Option<NetId>,
    const1: Option<NetId>,
    strash: HashMap<(GateKind, NetId, NetId), NetId>,
}

impl NetlistBuilder {
    /// Creates a builder with `num_inputs` primary inputs (nets `0..n`).
    pub fn new(num_inputs: usize) -> NetlistBuilder {
        let gates = (0..num_inputs)
            .map(|_| Gate {
                kind: GateKind::Input,
                fanin: [NetId(0), NetId(0)],
            })
            .collect();
        NetlistBuilder {
            gates,
            outputs: Vec::new(),
            num_inputs,
            const0: None,
            const1: None,
            strash: HashMap::new(),
        }
    }

    /// The net of primary input `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= num_inputs`.
    pub fn input(&self, i: usize) -> NetId {
        assert!(i < self.num_inputs, "input {i} out of range");
        NetId(i as u32)
    }

    /// The constant-0 net (created on first use).
    pub fn const0(&mut self) -> NetId {
        if let Some(id) = self.const0 {
            return id;
        }
        let id = self.push(GateKind::Const0, NetId(0), NetId(0));
        self.const0 = Some(id);
        id
    }

    /// The constant-1 net (created on first use).
    pub fn const1(&mut self) -> NetId {
        if let Some(id) = self.const1 {
            return id;
        }
        let id = self.push(GateKind::Const1, NetId(0), NetId(0));
        self.const1 = Some(id);
        id
    }

    fn push(&mut self, kind: GateKind, a: NetId, b: NetId) -> NetId {
        let id = NetId(self.gates.len() as u32);
        self.gates.push(Gate {
            kind,
            fanin: [a, b],
        });
        id
    }

    fn kind_of(&self, id: NetId) -> GateKind {
        self.gates[id.index()].kind
    }

    fn is_const(&self, id: NetId) -> Option<bool> {
        match self.kind_of(id) {
            GateKind::Const0 => Some(false),
            GateKind::Const1 => Some(true),
            _ => None,
        }
    }

    /// Inverter with double-negation elimination and constant folding.
    pub fn not(&mut self, a: NetId) -> NetId {
        match self.kind_of(a) {
            GateKind::Const0 => return self.const1(),
            GateKind::Const1 => return self.const0(),
            GateKind::Not => return self.gates[a.index()].fanin[0],
            _ => {}
        }
        self.hashed(GateKind::Not, a, a)
    }

    /// 2-input AND with folding.
    pub fn and(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) | (_, Some(false)) => return self.const0(),
            (Some(true), _) => return b,
            (_, Some(true)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        self.hashed(GateKind::And, a, b)
    }

    /// 2-input OR with folding.
    pub fn or(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.is_const(a), self.is_const(b)) {
            (Some(true), _) | (_, Some(true)) => return self.const1(),
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            _ => {}
        }
        if a == b {
            return a;
        }
        self.hashed(GateKind::Or, a, b)
    }

    /// 2-input XOR with folding.
    pub fn xor(&mut self, a: NetId, b: NetId) -> NetId {
        match (self.is_const(a), self.is_const(b)) {
            (Some(false), _) => return b,
            (_, Some(false)) => return a,
            (Some(true), _) => return self.not(b),
            (_, Some(true)) => return self.not(a),
            _ => {}
        }
        if a == b {
            return self.const0();
        }
        self.hashed(GateKind::Xor, a, b)
    }

    /// 2-input NAND with folding.
    pub fn nand(&mut self, a: NetId, b: NetId) -> NetId {
        let g = self.and(a, b);
        self.not(g)
    }

    /// 2-input NOR with folding.
    pub fn nor(&mut self, a: NetId, b: NetId) -> NetId {
        let g = self.or(a, b);
        self.not(g)
    }

    /// 2-input XNOR with folding.
    pub fn xnor(&mut self, a: NetId, b: NetId) -> NetId {
        let g = self.xor(a, b);
        self.not(g)
    }

    fn hashed(&mut self, kind: GateKind, a: NetId, b: NetId) -> NetId {
        let (a, b) = if kind.is_commutative() && b < a {
            (b, a)
        } else {
            (a, b)
        };
        if let Some(&id) = self.strash.get(&(kind, a, b)) {
            return id;
        }
        let id = self.push(kind, a, b);
        self.strash.insert((kind, a, b), id);
        id
    }

    /// Balanced n-ary AND; the empty conjunction is constant 1.
    pub fn and_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, |b, x, y| b.and(x, y), true)
    }

    /// Balanced n-ary OR; the empty disjunction is constant 0.
    pub fn or_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, |b, x, y| b.or(x, y), false)
    }

    /// Balanced n-ary XOR (parity); the empty parity is constant 0.
    pub fn xor_tree(&mut self, nets: &[NetId]) -> NetId {
        self.tree(nets, |b, x, y| b.xor(x, y), false)
    }

    fn tree(
        &mut self,
        nets: &[NetId],
        mut op: impl FnMut(&mut Self, NetId, NetId) -> NetId,
        empty_is_one: bool,
    ) -> NetId {
        match nets.len() {
            0 => {
                if empty_is_one {
                    self.const1()
                } else {
                    self.const0()
                }
            }
            1 => nets[0],
            _ => {
                let mut layer: Vec<NetId> = nets.to_vec();
                while layer.len() > 1 {
                    let mut next = Vec::with_capacity(layer.len().div_ceil(2));
                    let mut it = layer.chunks(2);
                    for pair in &mut it {
                        if pair.len() == 2 {
                            next.push(op(self, pair[0], pair[1]));
                        } else {
                            next.push(pair[0]);
                        }
                    }
                    layer = next;
                }
                layer[0]
            }
        }
    }

    /// Clears the structural-hashing table: nodes built afterwards are
    /// not merged with earlier structure. Used to synthesize logic
    /// cones independently (PLA-per-output style), which localizes
    /// fault effects to one cone — the structure classic FSM-CED
    /// analyses assume.
    pub fn clear_strash(&mut self) {
        self.strash.clear();
    }

    /// Declares `net` as the next primary output.
    pub fn mark_output(&mut self, net: NetId) {
        assert!(net.index() < self.gates.len(), "unknown net {net}");
        self.outputs.push(net);
    }

    /// Number of nodes created so far.
    pub fn len(&self) -> usize {
        self.gates.len()
    }

    /// True iff no nodes exist (only possible with zero inputs).
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Finalizes the netlist, sweeping nodes not reachable from outputs.
    pub fn finish(self) -> Netlist {
        // Mark reachable nodes (inputs are always kept to preserve
        // numbering).
        let mut live = vec![false; self.gates.len()];
        for i in 0..self.num_inputs {
            live[i] = true;
        }
        let mut stack: Vec<usize> = self.outputs.iter().map(|o| o.index()).collect();
        while let Some(i) = stack.pop() {
            if live[i] {
                continue;
            }
            live[i] = true;
            let g = &self.gates[i];
            for k in 0..g.kind.arity() {
                stack.push(g.fanin[k].index());
            }
        }
        // Compact.
        let mut remap = vec![NetId(0); self.gates.len()];
        let mut gates = Vec::with_capacity(self.gates.len());
        for (i, g) in self.gates.iter().enumerate() {
            if live[i] {
                remap[i] = NetId(gates.len() as u32);
                let mut ng = *g;
                for k in 0..g.kind.arity() {
                    ng.fanin[k] = remap[g.fanin[k].index()];
                }
                // Unused fanin slots point at self for hygiene.
                for k in g.kind.arity()..2 {
                    ng.fanin[k] = remap[i];
                }
                gates.push(ng);
            }
        }
        let outputs = self.outputs.iter().map(|o| remap[o.index()]).collect();
        Netlist {
            num_inputs: self.num_inputs,
            gates,
            outputs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_eval_xor() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let f = b.xor(x, y);
        b.mark_output(f);
        let n = b.finish();
        assert_eq!(n.eval_single(&[false, false]), vec![false]);
        assert_eq!(n.eval_single(&[true, false]), vec![true]);
        assert_eq!(n.eval_single(&[false, true]), vec![true]);
        assert_eq!(n.eval_single(&[true, true]), vec![false]);
    }

    #[test]
    fn strash_shares_structure() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let f1 = b.and(x, y);
        let f2 = b.and(y, x); // commuted — must hash to the same node
        assert_eq!(f1, f2);
        let g1 = b.not(f1);
        let g2 = b.not(f2);
        assert_eq!(g1, g2);
    }

    #[test]
    fn double_negation_eliminated() {
        let mut b = NetlistBuilder::new(1);
        let x = b.input(0);
        let nx = b.not(x);
        let nnx = b.not(nx);
        assert_eq!(nnx, x);
    }

    #[test]
    fn constant_folding() {
        let mut b = NetlistBuilder::new(1);
        let x = b.input(0);
        let one = b.const1();
        let zero = b.const0();
        assert_eq!(b.and(x, one), x);
        assert_eq!(b.and(x, zero), zero);
        assert_eq!(b.or(x, zero), x);
        assert_eq!(b.or(x, one), one);
        assert_eq!(b.xor(x, zero), x);
        let nx = b.not(x);
        assert_eq!(b.xor(x, one), nx);
        assert_eq!(b.xor(x, x), zero);
        assert_eq!(b.and(x, x), x);
    }

    #[test]
    fn trees_balanced_and_correct() {
        let mut b = NetlistBuilder::new(5);
        let ins: Vec<NetId> = (0..5).map(|i| b.input(i)).collect();
        let f = b.xor_tree(&ins);
        b.mark_output(f);
        let n = b.finish();
        for m in 0..32u64 {
            let bits: Vec<bool> = (0..5).map(|i| (m >> i) & 1 == 1).collect();
            assert_eq!(n.eval_single(&bits)[0], m.count_ones() % 2 == 1);
        }
        // Depth of a balanced 5-leaf tree is 3.
        assert_eq!(n.depth(), 3);
    }

    #[test]
    fn empty_trees() {
        let mut b = NetlistBuilder::new(0);
        let t = b.and_tree(&[]);
        let z = b.or_tree(&[]);
        b.mark_output(t);
        b.mark_output(z);
        let n = b.finish();
        assert_eq!(n.eval_single(&[]), vec![true, false]);
    }

    #[test]
    fn dead_node_sweep() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let _dead = b.xor(x, y);
        let live = b.and(x, y);
        b.mark_output(live);
        let n = b.finish();
        // 2 inputs + 1 AND survive.
        assert_eq!(n.gates().len(), 3);
        assert_eq!(n.gate_count(), 1);
    }

    #[test]
    fn word_parallel_matches_single() {
        let mut b = NetlistBuilder::new(3);
        let i: Vec<NetId> = (0..3).map(|k| b.input(k)).collect();
        let t1 = b.and(i[0], i[1]);
        let f = b.xor(t1, i[2]);
        b.mark_output(f);
        let n = b.finish();
        // Pack all 8 patterns into words.
        let mut inputs = vec![0u64; 3];
        for m in 0..8u64 {
            for v in 0..3 {
                if (m >> v) & 1 == 1 {
                    inputs[v] |= 1 << m;
                }
            }
        }
        let out = n.eval_outputs_words(&inputs)[0];
        for m in 0..8u64 {
            let bits: Vec<bool> = (0..3).map(|v| (m >> v) & 1 == 1).collect();
            assert_eq!((out >> m) & 1 == 1, n.eval_single(&bits)[0]);
        }
    }

    #[test]
    fn area_and_gate_count() {
        let mut b = NetlistBuilder::new(2);
        let x = b.input(0);
        let y = b.input(1);
        let a = b.and(x, y);
        let f = b.not(a);
        b.mark_output(f);
        let n = b.finish();
        assert_eq!(n.gate_count(), 2);
        let lib = CellLibrary::new();
        assert_eq!(n.area(&lib), lib.and2 + lib.inv);
    }

    #[test]
    fn from_parts_round_trips_exact_structure() {
        let mut b = NetlistBuilder::new(3);
        let i: Vec<NetId> = (0..3).map(|k| b.input(k)).collect();
        let t = b.nand(i[0], i[1]);
        let f = b.xor(t, i[2]);
        b.mark_output(f);
        b.mark_output(t);
        let n = b.finish();
        let back =
            Netlist::from_parts(n.num_inputs(), n.gates().to_vec(), n.outputs().to_vec()).unwrap();
        assert_eq!(back, n);
    }

    #[test]
    fn from_parts_rejects_malformed_structure() {
        let input = Gate {
            kind: GateKind::Input,
            fanin: [NetId(0), NetId(0)],
        };
        let and = |a: u32, b: u32| Gate {
            kind: GateKind::And,
            fanin: [NetId(a), NetId(b)],
        };
        // Non-input gate inside the input prefix.
        assert!(Netlist::from_parts(2, vec![input, and(0, 0)], vec![]).is_err());
        // Fanin that does not precede its consumer.
        assert!(Netlist::from_parts(2, vec![input, input, and(0, 2)], vec![]).is_err());
        // Output out of range.
        assert!(Netlist::from_parts(1, vec![input], vec![NetId(3)]).is_err());
        // Fewer gates than inputs.
        assert!(Netlist::from_parts(2, vec![input], vec![]).is_err());
        // Valid case still accepted.
        assert!(Netlist::from_parts(2, vec![input, input, and(0, 1)], vec![NetId(2)]).is_ok());
    }

    #[test]
    fn depth_of_constant_output() {
        let mut b = NetlistBuilder::new(1);
        let c = b.const1();
        b.mark_output(c);
        let n = b.finish();
        assert_eq!(n.depth(), 0);
    }
}
