//! Bit-packed truth tables for complete Boolean functions.
//!
//! A [`Truth`] stores the value of a function on all `2^n` minterms, one
//! bit per minterm (minterm `m`'s value is bit `m % 64` of word `m / 64`).
//! Truth tables are the exchange format between the two-level world
//! ([`crate::cover::Cover`]) and gate-level structures: the CED predictor
//! functions are built by XOR-ing next-state/output truth tables and then
//! re-covered via [`crate::isop`].
//!
//! # Examples
//!
//! ```
//! use ced_logic::truth::Truth;
//!
//! let a = Truth::var(3, 0);
//! let b = Truth::var(3, 1);
//! let f = a.xor(&b);
//! assert!(f.value(0b001));
//! assert!(!f.value(0b011));
//! ```

use crate::cover::Cover;
use crate::cube::Cube;
use std::fmt;

/// Maximum supported variable count (keeps tables ≤ 32 MiB).
pub const MAX_VARS: usize = 28;

/// A complete truth table over `n ≤ 28` variables.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Truth {
    vars: usize,
    words: Vec<u64>,
}

impl Truth {
    fn word_count(vars: usize) -> usize {
        if vars >= 6 {
            1 << (vars - 6)
        } else {
            1
        }
    }

    fn tail_mask(vars: usize) -> u64 {
        if vars >= 6 {
            u64::MAX
        } else {
            (1u64 << (1 << vars)) - 1
        }
    }

    /// The constant-0 function.
    ///
    /// # Panics
    ///
    /// Panics if `vars > MAX_VARS`.
    pub fn zero(vars: usize) -> Truth {
        assert!(vars <= MAX_VARS, "too many variables: {vars}");
        Truth {
            vars,
            words: vec![0; Self::word_count(vars)],
        }
    }

    /// The constant-1 function.
    ///
    /// # Panics
    ///
    /// Panics if `vars > MAX_VARS`.
    pub fn one(vars: usize) -> Truth {
        assert!(vars <= MAX_VARS, "too many variables: {vars}");
        let mut words = vec![u64::MAX; Self::word_count(vars)];
        let last = words.len() - 1;
        words[last] &= Self::tail_mask(vars);
        Truth { vars, words }
    }

    /// The projection function of variable `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v >= vars` or `vars > MAX_VARS`.
    pub fn var(vars: usize, v: usize) -> Truth {
        assert!(v < vars, "variable {v} out of range 0..{vars}");
        let mut t = Truth::zero(vars);
        if v >= 6 {
            // Whole words alternate in blocks of 2^(v-6).
            let block = 1usize << (v - 6);
            for (i, w) in t.words.iter_mut().enumerate() {
                if (i / block) % 2 == 1 {
                    *w = u64::MAX;
                }
            }
        } else {
            // Pattern repeats inside each word.
            const PATTERNS: [u64; 6] = [
                0xAAAA_AAAA_AAAA_AAAA,
                0xCCCC_CCCC_CCCC_CCCC,
                0xF0F0_F0F0_F0F0_F0F0,
                0xFF00_FF00_FF00_FF00,
                0xFFFF_0000_FFFF_0000,
                0xFFFF_FFFF_0000_0000,
            ];
            for w in t.words.iter_mut() {
                *w = PATTERNS[v];
            }
        }
        let last = t.words.len() - 1;
        t.words[last] &= Self::tail_mask(vars);
        t
    }

    /// Builds a truth table from a cover (ON-set).
    pub fn from_cover(cover: &Cover) -> Truth {
        let vars = cover.width();
        assert!(vars <= MAX_VARS, "too many variables: {vars}");
        let mut t = Truth::zero(vars);
        for cube in cover.cubes() {
            t.or_cube_in_place(cube);
        }
        t
    }

    /// Builds a truth table from a closure over minterms.
    pub fn from_fn<F: FnMut(u64) -> bool>(vars: usize, mut f: F) -> Truth {
        let mut t = Truth::zero(vars);
        for m in 0..(1u64 << vars) {
            if f(m) {
                t.set(m, true);
            }
        }
        t
    }

    /// ORs a single cube into the table.
    fn or_cube_in_place(&mut self, cube: &Cube) {
        assert_eq!(cube.width(), self.vars, "cube width mismatch");
        // Enumerate the cube's minterms by iterating free variables.
        let support = cube.support();
        let free: Vec<usize> = (0..self.vars).filter(|v| !support.contains(v)).collect();
        let mut base = 0u64;
        for v in &support {
            if cube.literal(*v) == crate::cube::Literal::Positive {
                base |= 1 << v;
            }
        }
        let n_free = free.len();
        for k in 0..(1u64 << n_free) {
            let mut m = base;
            for (i, v) in free.iter().enumerate() {
                if (k >> i) & 1 == 1 {
                    m |= 1 << v;
                }
            }
            self.set(m, true);
        }
    }

    /// Number of variables.
    pub fn vars(&self) -> usize {
        self.vars
    }

    /// Number of minterms (`2^vars`).
    pub fn size(&self) -> u64 {
        1u64 << self.vars
    }

    /// The value on minterm `m` (bit `i` of `m` = variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^vars`.
    pub fn value(&self, m: u64) -> bool {
        assert!(m < self.size(), "minterm {m} out of range");
        (self.words[(m / 64) as usize] >> (m % 64)) & 1 == 1
    }

    /// Sets the value on minterm `m`.
    ///
    /// # Panics
    ///
    /// Panics if `m >= 2^vars`.
    pub fn set(&mut self, m: u64, value: bool) {
        assert!(m < self.size(), "minterm {m} out of range");
        let w = &mut self.words[(m / 64) as usize];
        if value {
            *w |= 1 << (m % 64);
        } else {
            *w &= !(1 << (m % 64));
        }
    }

    /// Number of ON minterms.
    pub fn count_ones(&self) -> u64 {
        self.words.iter().map(|w| w.count_ones() as u64).sum()
    }

    /// True iff the function is constant 0.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// True iff the function is constant 1.
    pub fn is_one(&self) -> bool {
        self.count_ones() == self.size()
    }

    fn zip(&self, other: &Truth, f: impl Fn(u64, u64) -> u64) -> Truth {
        assert_eq!(self.vars, other.vars, "truth table arity mismatch");
        let words = self
            .words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| f(*a, *b))
            .collect();
        Truth {
            vars: self.vars,
            words,
        }
    }

    /// Bitwise AND (conjunction).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn and(&self, other: &Truth) -> Truth {
        self.zip(other, |a, b| a & b)
    }

    /// Bitwise OR (disjunction).
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn or(&self, other: &Truth) -> Truth {
        self.zip(other, |a, b| a | b)
    }

    /// Bitwise XOR.
    ///
    /// # Panics
    ///
    /// Panics if arities differ.
    pub fn xor(&self, other: &Truth) -> Truth {
        self.zip(other, |a, b| a ^ b)
    }

    /// Complement.
    pub fn not(&self) -> Truth {
        let mut words: Vec<u64> = self.words.iter().map(|w| !w).collect();
        let last = words.len() - 1;
        words[last] &= Self::tail_mask(self.vars);
        Truth {
            vars: self.vars,
            words,
        }
    }

    /// The cofactor with respect to `var = value`, keeping the arity: the
    /// result no longer depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= vars`.
    pub fn cofactor(&self, var: usize, value: bool) -> Truth {
        assert!(var < self.vars, "variable {var} out of range");
        let mut out = self.clone();
        let half = 1u64 << var;
        // Copy the selected half over the other half.
        for m in 0..self.size() {
            let bit_is_one = (m >> var) & 1 == 1;
            if bit_is_one != value {
                let src = if value { m | half } else { m & !half };
                out.set(m, self.value(src));
            }
        }
        out
    }

    /// True iff the function depends on `var`.
    pub fn depends_on(&self, var: usize) -> bool {
        self.cofactor(var, false) != self.cofactor(var, true)
    }

    /// The support: variables the function actually depends on.
    pub fn support(&self) -> Vec<usize> {
        (0..self.vars).filter(|&v| self.depends_on(v)).collect()
    }

    /// Converts to a cover by listing minterms (use [`crate::isop`] for a
    /// compact cover).
    pub fn to_minterm_cover(&self) -> Cover {
        let mut cover = Cover::empty(self.vars);
        for m in 0..self.size() {
            if self.value(m) {
                cover.push(Cube::minterm(self.vars, m));
            }
        }
        cover
    }

    /// Parity (XOR) of a set of truth tables; the identity is constant 0.
    ///
    /// # Panics
    ///
    /// Panics if arities differ or `tables` is empty.
    pub fn parity_of(tables: &[&Truth]) -> Truth {
        assert!(!tables.is_empty(), "parity of zero tables is ambiguous");
        let mut acc = tables[0].clone();
        for t in &tables[1..] {
            acc = acc.xor(t);
        }
        acc
    }
}

impl fmt::Debug for Truth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Truth({} vars, {} ones)", self.vars, self.count_ones())
    }
}

impl fmt::Display for Truth {
    /// Hex dump, most significant minterm first (like ABC's truth tables).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for w in self.words.iter().rev() {
            write!(f, "{w:016x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants() {
        let z = Truth::zero(4);
        let o = Truth::one(4);
        assert!(z.is_zero() && !z.is_one());
        assert!(o.is_one() && !o.is_zero());
        assert_eq!(o.count_ones(), 16);
    }

    #[test]
    fn small_arity_tail_masking() {
        let o = Truth::one(2);
        assert_eq!(o.count_ones(), 4);
        let n = o.not();
        assert!(n.is_zero());
    }

    #[test]
    fn var_projection() {
        for vars in 1..=8 {
            for v in 0..vars {
                let t = Truth::var(vars, v);
                for m in 0..(1u64 << vars) {
                    assert_eq!(t.value(m), (m >> v) & 1 == 1, "vars={vars} v={v} m={m}");
                }
            }
        }
    }

    #[test]
    fn var_projection_wide() {
        let t = Truth::var(8, 7);
        assert_eq!(t.count_ones(), 128);
        assert!(!t.value(0));
        assert!(t.value(1 << 7));
    }

    #[test]
    fn boolean_ops_match_semantics() {
        let a = Truth::var(3, 0);
        let b = Truth::var(3, 1);
        let c = Truth::var(3, 2);
        let f = a.and(&b).or(&c.not());
        for m in 0..8u64 {
            let (av, bv, cv) = (m & 1 == 1, m >> 1 & 1 == 1, m >> 2 & 1 == 1);
            assert_eq!(f.value(m), (av && bv) || !cv);
        }
    }

    #[test]
    fn xor_and_parity() {
        let a = Truth::var(3, 0);
        let b = Truth::var(3, 1);
        let c = Truth::var(3, 2);
        let p = Truth::parity_of(&[&a, &b, &c]);
        for m in 0..8u64 {
            assert_eq!(p.value(m), (m.count_ones() % 2) == 1);
        }
    }

    #[test]
    fn from_cover_matches_cover_semantics() {
        let cover = Cover::parse(4, &["1--0", "-01-"]).unwrap();
        let t = Truth::from_cover(&cover);
        for m in 0..16u64 {
            assert_eq!(t.value(m), cover.covers_minterm(m));
        }
    }

    #[test]
    fn cofactor_removes_dependence() {
        let a = Truth::var(3, 0);
        let b = Truth::var(3, 1);
        let f = a.and(&b);
        let f0 = f.cofactor(0, false);
        assert!(f0.is_zero());
        let f1 = f.cofactor(0, true);
        for m in 0..8u64 {
            assert_eq!(f1.value(m), (m >> 1) & 1 == 1);
        }
        assert!(!f1.depends_on(0));
    }

    #[test]
    fn support_detection() {
        let a = Truth::var(4, 0);
        let c = Truth::var(4, 2);
        let f = a.xor(&c);
        assert_eq!(f.support(), vec![0, 2]);
    }

    #[test]
    fn minterm_cover_round_trip() {
        let f = Truth::var(3, 1).xor(&Truth::var(3, 2));
        let cover = f.to_minterm_cover();
        assert_eq!(Truth::from_cover(&cover), f);
    }

    #[test]
    fn from_fn_builder() {
        let f = Truth::from_fn(4, |m| m % 3 == 0);
        for m in 0..16u64 {
            assert_eq!(f.value(m), m % 3 == 0);
        }
    }

    #[test]
    fn seven_var_word_boundary() {
        // 7 vars = 2 words; make sure var 6 alternates whole words.
        let t = Truth::var(7, 6);
        assert!(!t.value(63));
        assert!(t.value(64));
        assert_eq!(t.count_ones(), 64);
    }
}
