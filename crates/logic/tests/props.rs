// Indexed bit loops intentionally kept (see crate-level note).
#![allow(clippy::needless_range_loop)]

//! Property-based tests for the logic substrate: the minimizers must
//! preserve function semantics, the Boolean algebra must obey its laws,
//! and netlists must compute their specifying covers.

use ced_logic::cover::Cover;
use ced_logic::cube::{Cube, Literal};
use ced_logic::decompose::{sop_to_net, MultiOutputSpec};
use ced_logic::espresso::{minimize, MinimizeOptions};
use ced_logic::isop::{isop, isop_exact};
use ced_logic::netlist::{NetId, NetlistBuilder};
use ced_logic::truth::Truth;
use proptest::prelude::*;

/// Strategy: a random cube over `width` variables.
fn cube_strategy(width: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(0..3u8, width).prop_map(|lits| {
        Cube::from_literals(lits.into_iter().map(|l| match l {
            0 => Literal::Negative,
            1 => Literal::Positive,
            _ => Literal::DontCare,
        }))
    })
}

/// Strategy: a random cover with 0..=max_cubes cubes.
fn cover_strategy(width: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(cube_strategy(width), 0..=max_cubes)
        .prop_map(move |cubes| Cover::from_cubes(width, cubes))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn complement_is_involutive_and_exact(cover in cover_strategy(5, 6)) {
        let not = cover.complement();
        for m in 0..32u64 {
            prop_assert_ne!(cover.covers_minterm(m), not.covers_minterm(m));
        }
        let back = not.complement();
        prop_assert!(back.equivalent(&cover));
    }

    #[test]
    fn sharp_is_set_difference(a in cover_strategy(4, 5), b in cover_strategy(4, 5)) {
        let d = a.sharp(&b);
        for m in 0..16u64 {
            prop_assert_eq!(
                d.covers_minterm(m),
                a.covers_minterm(m) && !b.covers_minterm(m)
            );
        }
    }

    #[test]
    fn tautology_agrees_with_enumeration(cover in cover_strategy(5, 7)) {
        let all = (0..32u64).all(|m| cover.covers_minterm(m));
        prop_assert_eq!(cover.is_tautology(), all);
    }

    #[test]
    fn containment_agrees_with_enumeration(
        cover in cover_strategy(4, 5),
        cube in cube_strategy(4),
    ) {
        let contained = (0..16u64)
            .filter(|&m| cube.covers_minterm(m))
            .all(|m| cover.covers_minterm(m));
        prop_assert_eq!(cover.contains_cube(&cube), contained);
    }

    #[test]
    fn espresso_preserves_function(on in cover_strategy(5, 6)) {
        let min = minimize(&on, &Cover::empty(5), &MinimizeOptions::default());
        prop_assert!(min.equivalent(&on), "minimized {} != {}", min, on);
        prop_assert!(min.len() <= on.len().max(1));
    }

    #[test]
    fn espresso_stays_inside_dc_interval(
        on in cover_strategy(4, 4),
        dc in cover_strategy(4, 4),
    ) {
        let min = minimize(&on, &dc, &MinimizeOptions::default());
        for m in 0..16u64 {
            if on.covers_minterm(m) {
                prop_assert!(min.covers_minterm(m), "lost ON minterm {m}");
            }
            if min.covers_minterm(m) {
                prop_assert!(
                    on.covers_minterm(m) || dc.covers_minterm(m),
                    "minterm {m} outside ON ∪ DC"
                );
            }
        }
    }

    #[test]
    fn isop_exact_round_trips(bits in proptest::collection::vec(any::<bool>(), 32)) {
        let f = Truth::from_fn(5, |m| bits[m as usize]);
        let cover = isop_exact(&f);
        prop_assert_eq!(Truth::from_cover(&cover), f);
    }

    #[test]
    fn isop_interval_respected(
        lo_bits in proptest::collection::vec(any::<bool>(), 16),
        up_extra in proptest::collection::vec(any::<bool>(), 16),
    ) {
        let lower = Truth::from_fn(4, |m| lo_bits[m as usize]);
        let upper = Truth::from_fn(4, |m| lo_bits[m as usize] || up_extra[m as usize]);
        let cover = isop(&lower, &upper);
        let t = Truth::from_cover(&cover);
        prop_assert!(lower.and(&t.not()).is_zero(), "missed required minterm");
        prop_assert!(t.and(&upper.not()).is_zero(), "spilled outside interval");
    }

    #[test]
    fn truth_ops_match_bitwise(a_bits in any::<u16>(), b_bits in any::<u16>()) {
        let a = Truth::from_fn(4, |m| (a_bits >> m) & 1 == 1);
        let b = Truth::from_fn(4, |m| (b_bits >> m) & 1 == 1);
        for m in 0..16u64 {
            let (av, bv) = ((a_bits >> m) & 1 == 1, (b_bits >> m) & 1 == 1);
            prop_assert_eq!(a.and(&b).value(m), av && bv);
            prop_assert_eq!(a.or(&b).value(m), av || bv);
            prop_assert_eq!(a.xor(&b).value(m), av ^ bv);
            prop_assert_eq!(a.not().value(m), !av);
        }
    }

    #[test]
    fn netlist_computes_cover(cover in cover_strategy(5, 6)) {
        let mut b = NetlistBuilder::new(5);
        let ins: Vec<NetId> = (0..5).map(|i| b.input(i)).collect();
        let out = sop_to_net(&mut b, &cover, &ins);
        b.mark_output(out);
        let n = b.finish();
        for m in 0..32u64 {
            let bits: Vec<bool> = (0..5).map(|v| (m >> v) & 1 == 1).collect();
            prop_assert_eq!(n.eval_single(&bits)[0], cover.covers_minterm(m));
        }
    }

    #[test]
    fn synthesis_with_and_without_sharing_agree_functionally(
        f in cover_strategy(4, 4),
        g in cover_strategy(4, 4),
    ) {
        let mut shared = MultiOutputSpec::new(4);
        shared.add_exact_output(f.clone());
        shared.add_exact_output(g.clone());
        let mut isolated = shared.clone();
        isolated.set_isolate_outputs(true);
        let n1 = shared.synthesize(&MinimizeOptions::default());
        let n2 = isolated.synthesize(&MinimizeOptions::default());
        for m in 0..16u64 {
            let bits: Vec<bool> = (0..4).map(|v| (m >> v) & 1 == 1).collect();
            prop_assert_eq!(n1.eval_single(&bits), n2.eval_single(&bits));
        }
        prop_assert!(n2.gate_count() >= n1.gate_count());
    }

    #[test]
    fn word_parallel_eval_matches_single(cover in cover_strategy(4, 4), patterns in any::<u16>()) {
        let mut b = NetlistBuilder::new(4);
        let ins: Vec<NetId> = (0..4).map(|i| b.input(i)).collect();
        let out = sop_to_net(&mut b, &cover, &ins);
        b.mark_output(out);
        let n = b.finish();
        // Pack 16 patterns derived from `patterns` into words.
        let mut words = vec![0u64; 4];
        let mut expect = [false; 16];
        for t in 0..16u64 {
            let m = (patterns as u64).wrapping_mul(t + 1) & 0xF;
            for v in 0..4 {
                if (m >> v) & 1 == 1 {
                    words[v] |= 1 << t;
                }
            }
            expect[t as usize] = cover.covers_minterm(m);
        }
        let got = n.eval_outputs_words(&words)[0];
        for t in 0..16 {
            prop_assert_eq!((got >> t) & 1 == 1, expect[t]);
        }
    }
}
