//! # ced-lp — linear programming and randomized rounding, from scratch
//!
//! A dense two-phase primal simplex solver with bounded variables, plus
//! Raghavan–Thompson randomized rounding helpers. Built for the LP
//! relaxation (Statement 5) of *"On Concurrent Error Detection with
//! Bounded Latency in FSMs"* (DATE 2004); no external LP dependency is
//! available offline (DESIGN.md substitution note (c)).
//!
//! # Examples
//!
//! ```
//! use ced_lp::{LinearProgram, Sense, ConstraintOp, solve};
//!
//! // minimize x + 2y  s.t.  x + y ≥ 1,  x, y ∈ [0, 1]
//! let mut lp = LinearProgram::new(Sense::Minimize);
//! let x = lp.add_variable(0.0, 1.0, 1.0);
//! let y = lp.add_variable(0.0, 1.0, 2.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Ge, 1.0);
//! let sol = solve(&lp)?;
//! assert!((sol.objective - 1.0).abs() < 1e-7);
//! assert!((sol.x[0] - 1.0).abs() < 1e-7);
//! # Ok::<(), ced_lp::SolveError>(())
//! ```

#![warn(missing_docs)]
// Indexed loops over bit positions are the clearest form for this
// bit-twiddling code; the iterator rewrites clippy suggests obscure it.
#![allow(clippy::needless_range_loop)]

pub mod problem;
pub mod rational;
pub mod rounding;
pub mod simplex;
pub mod sparse;

/// The workspace-wide float tolerance for LP numerics.
///
/// Every "is this zero?" decision in the solver chain — simplex
/// optimality and feasibility tests, ratio-test tie breaking (via
/// [`simplex`]'s internal constants, all defined as multiples of this
/// value) and the certification layer's refusal band — derives from
/// this single constant, so a point judged feasible by one stage cannot
/// be judged infeasible by another merely because the two stages
/// disagreed on epsilon. Exact re-checks ([`rational`]) use no
/// tolerance at all; `EPS` is the width of the float band inside which
/// they refuse to certify rather than trust float arithmetic.
pub const EPS: f64 = 1e-9;

pub use problem::{Constraint, ConstraintOp, LinearProgram, Sense, VarId};
pub use rational::{check_feasibility_exact, Rat64, RatError, RationalVerdict, SlackReport};
pub use rounding::{round_binary, round_to_mask, round_until, round_until_budgeted};
pub use simplex::{solve, solve_budgeted, LpSolution, SolveError};
pub use sparse::{solve_budgeted_sparse, solve_sparse};
