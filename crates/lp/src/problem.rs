//! Linear-program model building.
//!
//! A [`LinearProgram`] is a set of bounded continuous variables, sparse
//! linear constraints, and a linear objective. The paper's Statement 5
//! (LP relaxation of the parity-selection integer program) is expressed
//! through this interface and solved by [`crate::simplex`].
//!
//! # Examples
//!
//! ```
//! use ced_lp::problem::{LinearProgram, Sense, ConstraintOp};
//!
//! // maximize x + y  s.t.  x + 2y ≤ 4,  3x + y ≤ 6,  x,y ∈ [0, 10]
//! let mut lp = LinearProgram::new(Sense::Maximize);
//! let x = lp.add_variable(0.0, 10.0, 1.0);
//! let y = lp.add_variable(0.0, 10.0, 1.0);
//! lp.add_constraint(vec![(x, 1.0), (y, 2.0)], ConstraintOp::Le, 4.0);
//! lp.add_constraint(vec![(x, 3.0), (y, 1.0)], ConstraintOp::Le, 6.0);
//! let sol = ced_lp::simplex::solve(&lp)?;
//! assert!((sol.objective - 2.8).abs() < 1e-6);
//! # Ok::<(), ced_lp::simplex::SolveError>(())
//! ```

use std::fmt;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Sense {
    /// Maximize the objective.
    #[default]
    Maximize,
    /// Minimize the objective.
    Minimize,
}

/// Relation of a constraint row to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintOp {
    /// `a·x ≤ b`
    Le,
    /// `a·x ≥ b`
    Ge,
    /// `a·x = b`
    Eq,
}

impl fmt::Display for ConstraintOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConstraintOp::Le => "<=",
            ConstraintOp::Ge => ">=",
            ConstraintOp::Eq => "=",
        };
        write!(f, "{s}")
    }
}

/// Handle to a variable of a [`LinearProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub usize);

/// One sparse constraint row.
#[derive(Debug, Clone, PartialEq)]
pub struct Constraint {
    /// `(variable, coefficient)` terms; duplicate variables are summed.
    pub terms: Vec<(VarId, f64)>,
    /// The relation.
    pub op: ConstraintOp,
    /// The right-hand side.
    pub rhs: f64,
}

/// A linear program with bounded variables.
#[derive(Debug, Clone, Default)]
pub struct LinearProgram {
    sense: Sense,
    lower: Vec<f64>,
    upper: Vec<f64>,
    objective: Vec<f64>,
    constraints: Vec<Constraint>,
}

impl LinearProgram {
    /// Creates an empty program with the given sense.
    pub fn new(sense: Sense) -> LinearProgram {
        LinearProgram {
            sense,
            ..Default::default()
        }
    }

    /// The optimization direction.
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a variable with bounds `[lower, upper]` and objective
    /// coefficient `cost`. Use `f64::INFINITY` for an unbounded-above
    /// variable.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_variable(&mut self, lower: f64, upper: f64, cost: f64) -> VarId {
        assert!(!lower.is_nan() && !upper.is_nan(), "NaN bound");
        assert!(lower <= upper, "lower bound {lower} exceeds upper {upper}");
        assert!(lower.is_finite(), "lower bound must be finite");
        let id = VarId(self.lower.len());
        self.lower.push(lower);
        self.upper.push(upper);
        self.objective.push(cost);
        id
    }

    /// Adds a constraint row.
    ///
    /// # Panics
    ///
    /// Panics if any referenced variable does not exist or `rhs` is NaN.
    pub fn add_constraint(&mut self, terms: Vec<(VarId, f64)>, op: ConstraintOp, rhs: f64) {
        assert!(!rhs.is_nan(), "NaN right-hand side");
        for (v, _) in &terms {
            assert!(v.0 < self.lower.len(), "unknown variable {v:?}");
        }
        self.constraints.push(Constraint { terms, op, rhs });
    }

    /// Number of variables.
    pub fn num_variables(&self) -> usize {
        self.lower.len()
    }

    /// Number of constraints.
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Lower bounds, indexed by variable.
    pub fn lower_bounds(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds, indexed by variable.
    pub fn upper_bounds(&self) -> &[f64] {
        &self.upper
    }

    /// Objective coefficients, indexed by variable.
    pub fn objective(&self) -> &[f64] {
        &self.objective
    }

    /// The constraint rows.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Evaluates the objective at `x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the variable count.
    pub fn objective_value(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.num_variables(), "point arity mismatch");
        self.objective.iter().zip(x).map(|(c, v)| c * v).sum()
    }

    /// Checks primal feasibility of `x` within tolerance `tol`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` differs from the variable count.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        assert_eq!(x.len(), self.num_variables(), "point arity mismatch");
        for (i, &v) in x.iter().enumerate() {
            if v < self.lower[i] - tol || v > self.upper[i] + tol {
                return false;
            }
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|(v, a)| a * x[v.0]).sum();
            let ok = match c.op {
                ConstraintOp::Le => lhs <= c.rhs + tol,
                ConstraintOp::Ge => lhs >= c.rhs - tol,
                ConstraintOp::Eq => (lhs - c.rhs).abs() <= tol,
            };
            if !ok {
                return false;
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_inspect() {
        let mut lp = LinearProgram::new(Sense::Minimize);
        let x = lp.add_variable(0.0, 1.0, 2.0);
        let y = lp.add_variable(-1.0, f64::INFINITY, -1.0);
        lp.add_constraint(vec![(x, 1.0), (y, 1.0)], ConstraintOp::Eq, 0.5);
        assert_eq!(lp.num_variables(), 2);
        assert_eq!(lp.num_constraints(), 1);
        assert_eq!(lp.objective_value(&[1.0, 3.0]), -1.0);
    }

    #[test]
    fn feasibility_check() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        let x = lp.add_variable(0.0, 1.0, 1.0);
        lp.add_constraint(vec![(x, 2.0)], ConstraintOp::Le, 1.0);
        assert!(lp.is_feasible(&[0.5], 1e-9));
        assert!(!lp.is_feasible(&[0.8], 1e-9)); // violates 2x ≤ 1
        assert!(!lp.is_feasible(&[-0.1], 1e-9)); // violates lower bound
    }

    #[test]
    #[should_panic(expected = "exceeds upper")]
    fn rejects_crossed_bounds() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_variable(1.0, 0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "unknown variable")]
    fn rejects_unknown_variable() {
        let mut lp = LinearProgram::new(Sense::Maximize);
        lp.add_constraint(vec![(VarId(3), 1.0)], ConstraintOp::Le, 0.0);
    }
}
